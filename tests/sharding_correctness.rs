//! Prefix-sharding soundness (§4.5 / §7): co-sharding of dependent
//! prefixes, equality of sharded and unsharded results on randomized
//! workloads, and the runtime cross-shard dependency check.

use proptest::prelude::*;
use s2::{NetworkModel, S2Options, S2Verifier, Scheme};
use s2_routing::SwitchModel;
use s2_shard::{collect_aggregates, collect_prefixes, plan, ShardPlan};
use s2_topogen::dcn::{generate as gen_dcn, DcnParams};
use s2_topogen::fattree::{generate as gen_ft, FatTreeParams};

fn dcn_switches() -> (NetworkModel, Vec<SwitchModel>) {
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology, dcn.configs).unwrap();
    let switches = model
        .topology
        .nodes()
        .map(|n| SwitchModel::new(&model, n))
        .collect();
    (model, switches)
}

#[test]
fn aggregates_are_cosharded_with_contributors() {
    let (_, switches) = dcn_switches();
    let prefixes = collect_prefixes(&switches);
    let aggregates = collect_aggregates(&switches);
    assert!(!aggregates.is_empty(), "the DCN configures aggregates");

    for num_shards in [2usize, 4, 8, 16] {
        let p = plan(&switches, num_shards, 99);
        for agg in &aggregates {
            let agg_shard = p.shard_of(*agg).expect("aggregate is planned");
            for q in &prefixes {
                if agg.covers(*q) {
                    assert_eq!(
                        p.shard_of(*q),
                        Some(agg_shard),
                        "{q} split from its aggregate {agg} with {num_shards} shards"
                    );
                }
            }
        }
    }
}

#[test]
fn every_prefix_planned_exactly_once() {
    let (_, switches) = dcn_switches();
    let prefixes = collect_prefixes(&switches);
    for num_shards in [1usize, 3, 7, 50] {
        let p = plan(&switches, num_shards, 1);
        assert_eq!(p.total_prefixes(), prefixes.len());
        for q in &prefixes {
            assert_eq!(
                p.shards.iter().filter(|s| s.contains(q)).count(),
                1,
                "{q} with {num_shards} shards"
            );
        }
    }
}

#[test]
fn runtime_dependency_check_passes_for_planned_shards() {
    let (_, switches) = dcn_switches();
    let aggregates = collect_aggregates(&switches);
    let prefixes = collect_prefixes(&switches);
    let p = plan(&switches, 6, 5);
    // The observed dependencies at runtime are exactly the aggregate →
    // contributor pairs.
    let mut deps = Vec::new();
    for agg in &aggregates {
        for q in &prefixes {
            if agg.covers(*q) && agg != q {
                deps.push((*agg, *q));
            }
        }
    }
    assert!(p.cross_shard_violations(&deps).is_empty());

    // Sanity: a deliberately split plan is flagged.
    let bad = ShardPlan {
        shards: prefixes.iter().map(|q| [*q].into_iter().collect()).collect(),
    };
    assert!(!bad.cross_shard_violations(&deps).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded and unsharded S2 runs produce identical RIBs for random
    /// shard counts and seeds.
    #[test]
    fn prop_shard_count_never_changes_results(shards in 2usize..12, seed in any::<u64>()) {
        let ft = gen_ft(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
        let reference = {
            let v = S2Verifier::new(model.clone(), &S2Options::default()).unwrap();
            let (rib, _, _) = v.simulate().unwrap();
            v.shutdown();
            rib
        };
        let opts = S2Options {
            workers: 2,
            shards,
            shard_seed: seed,
            scheme: Scheme::Metis,
            ..Default::default()
        };
        let v = S2Verifier::new(model, &opts).unwrap();
        let (rib, _, _) = v.simulate().unwrap();
        v.shutdown();
        prop_assert_eq!(rib, reference);
    }
}
