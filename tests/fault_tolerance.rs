//! Chaos tests for the fault-tolerant runtime: deterministic fault plans
//! (worker kill / hang, frame drop / duplication / corruption / delay)
//! must leave the verdict bit-identical to an undisturbed run, memory
//! pressure must degrade into shard bisection instead of aborting, and
//! the failure-detection knobs (barrier timeout, fatal wire errors) must
//! fire as configured.

use s2::{NetworkModel, S2Options, S2Verifier};
use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
use s2_net::topology::{NodeId, Topology};
use s2_net::Ipv4Addr;
use s2_routing::RibSnapshot;
use s2_runtime::{Cluster, ClusterOptions, CpRunStats, FaultPlan, RuntimeConfig, RuntimeError};
use s2_shard::ShardPlan;
use s2_topogen::fattree::{generate as gen_ft, FatTree, FatTreeParams};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The 4-node eBGP line t0—m1—m2—t3; t0 announces two prefixes.
fn line_model() -> NetworkModel {
    let mut topo = Topology::new();
    let names = ["t0", "m1", "m2", "t3"];
    let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
    topo.connect(ids[0], ids[1]);
    topo.connect(ids[1], ids[2]);
    topo.connect(ids[2], ids[3]);

    let mut cfgs: Vec<DeviceConfig> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut c = DeviceConfig::new(*n, Vendor::A);
            c.bgp = Some(BgpProcess::new(
                65000 + i as u32,
                Ipv4Addr::new(1, 1, 1, i as u8 + 1),
            ));
            c
        })
        .collect();
    let subnets = [
        (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
        (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
        (Ipv4Addr::new(172, 16, 0, 4), Ipv4Addr::new(172, 16, 0, 5)),
    ];
    for (li, (i, j)) in [(0usize, 1usize), (1, 2), (2, 3)].iter().copied().enumerate() {
        let (ai, aj) = subnets[li];
        cfgs[i]
            .interfaces
            .push(InterfaceConfig::new(format!("e{li}a"), ai, 31));
        cfgs[j]
            .interfaces
            .push(InterfaceConfig::new(format!("e{li}b"), aj, 31));
        let asn_i = 65000 + i as u32;
        let asn_j = 65000 + j as u32;
        cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: aj,
            remote_as: asn_j,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: ai,
            remote_as: asn_i,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
    }
    for p in ["10.0.0.0/24", "10.0.1.0/24"] {
        cfgs[0].bgp.as_mut().unwrap().networks.push(Network {
            prefix: p.parse().unwrap(),
        });
    }
    NetworkModel::build(topo, cfgs).unwrap()
}

fn line_plan(model: &Arc<NetworkModel>) -> ShardPlan {
    let switches: Vec<_> = model
        .topology
        .nodes()
        .map(|n| s2_routing::SwitchModel::new(model, n))
        .collect();
    ShardPlan::single(s2_shard::collect_prefixes(&switches))
}

/// Runs the line-model control plane under `config`, returning the RIBs
/// and stats. Workers 0 hosts {t0, m1}; worker 1 hosts {m2, t3}, so every
/// m1—m2 exchange crosses the wire.
fn run_line(model: &Arc<NetworkModel>, config: RuntimeConfig) -> (RibSnapshot, CpRunStats, Cluster) {
    let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
    let plan = line_plan(model);
    let (rib, stats) = cluster
        .run_control_plane(&plan, &ClusterOptions::default())
        .unwrap();
    (rib, stats, cluster)
}

fn line_reference(model: &Arc<NetworkModel>) -> RibSnapshot {
    let (rib, _, cluster) = run_line(model, RuntimeConfig::default());
    cluster.shutdown();
    rib
}

#[test]
fn killed_worker_recovers_bit_identical_on_line() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    // Sweep kill points across the phases: early OSPF, prefix collection,
    // and mid-BGP.
    for nth in [2u64, 5, 9, 14] {
        let config = RuntimeConfig {
            barrier_timeout: Duration::from_secs(10),
            faults: FaultPlan::new().kill_worker(1, nth),
            ..RuntimeConfig::default()
        };
        let (rib, stats, cluster) = run_line(&model, config);
        cluster.shutdown();
        assert_eq!(rib, reference, "kill at command {nth} changed the verdict");
        assert!(stats.recoveries >= 1, "kill at {nth} must trigger recovery");
    }
}

#[test]
fn killed_worker_recovers_bit_identical_on_fattree() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let mut endpoints = Vec::new();
    for p in 0..4 {
        for e in 0..2 {
            endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
        }
    }
    let request =
        s2::VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap());

    let clean_opts = S2Options {
        workers: 2,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &clean_opts).unwrap();
    let reference = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert!(reference.all_clear());

    let faulty_opts = S2Options {
        workers: 2,
        runtime: RuntimeConfig {
            barrier_timeout: Duration::from_secs(10),
            faults: FaultPlan::new().kill_worker(1, 30),
            ..RuntimeConfig::default()
        },
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &faulty_opts).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert_eq!(report.rib, reference.rib, "recovered RIBs must be bit-identical");
    assert!(report.all_clear());
    assert!(
        report.cp.recoveries + report.dpv.recoveries >= 1,
        "the kill must have triggered a recovery (cp={}, dpv={})",
        report.cp.recoveries,
        report.dpv.recoveries
    );
}

#[test]
fn hung_worker_trips_barrier_timeout_and_recovers() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        barrier_timeout: Duration::from_millis(500),
        faults: FaultPlan::new().hang_worker(1, 6),
        ..RuntimeConfig::default()
    };
    let started = Instant::now();
    let (rib, stats, cluster) = run_line(&model, config);
    cluster.shutdown();
    let elapsed = started.elapsed();
    assert_eq!(rib, reference, "hang recovery changed the verdict");
    assert!(stats.recoveries >= 1, "hang must trigger a timeout recovery");
    // One timeout to detect the hang, one to confirm it during recovery,
    // plus the re-run — generous bound proves the run is wall-clock
    // bounded rather than stuck.
    assert!(elapsed < Duration::from_secs(30), "took {elapsed:?}");
}

#[test]
fn corrupted_frame_is_detected_counted_and_healed() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        faults: FaultPlan::new().corrupt_message(3),
        ..RuntimeConfig::default()
    };
    let (rib, stats, cluster) = run_line(&model, config);
    let wire_errors = cluster
        .net_stats()
        .wire_errors
        .load(std::sync::atomic::Ordering::Relaxed);
    cluster.shutdown();
    assert_eq!(rib, reference, "corruption changed the verdict");
    assert!(wire_errors >= 1, "the bad checksum must be counted");
    assert_eq!(stats.wire_errors, wire_errors);
}

#[test]
fn dropped_frame_is_healed_by_resync() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    // Drop each of the four BGP frames the fault-free line run sends
    // (this model runs no IGP, so all cross-worker traffic is BGP and
    // every loss must be healed by an adj-out resync).
    for nth in [0u64, 1, 2, 3] {
        let config = RuntimeConfig {
            faults: FaultPlan::new().drop_message(nth),
            ..RuntimeConfig::default()
        };
        let (rib, _, cluster) = run_line(&model, config);
        let drops = cluster
            .net_stats()
            .injected_drops
            .load(std::sync::atomic::Ordering::Relaxed);
        cluster.shutdown();
        assert_eq!(rib, reference, "drop of frame {nth} changed the verdict");
        assert_eq!(drops, 1, "frame {nth} must exist and be dropped");
    }
}

#[test]
fn duplicated_frame_is_deduplicated_by_sequence() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        faults: FaultPlan::new().duplicate_message(2),
        ..RuntimeConfig::default()
    };
    let (rib, _, cluster) = run_line(&model, config);
    let dup_skips = cluster
        .net_stats()
        .dup_skips
        .load(std::sync::atomic::Ordering::Relaxed);
    cluster.shutdown();
    assert_eq!(rib, reference, "duplication changed the verdict");
    assert!(dup_skips >= 1, "the duplicate must be skipped by seq dedup");
}

#[test]
fn delayed_frame_cannot_corrupt_the_fixpoint() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    for (nth, rounds) in [(0u64, 1u32), (1, 2), (2, 3), (3, 1)] {
        let config = RuntimeConfig {
            faults: FaultPlan::new().delay_message(nth, rounds),
            ..RuntimeConfig::default()
        };
        let (rib, _, cluster) = run_line(&model, config);
        cluster.shutdown();
        assert_eq!(
            rib, reference,
            "delaying frame {nth} by {rounds} rounds changed the verdict"
        );
    }
}

#[test]
fn fatal_wire_errors_aborts_the_run() {
    let model = Arc::new(line_model());
    let config = RuntimeConfig {
        fatal_wire_errors: true,
        faults: FaultPlan::new().corrupt_message(1),
        ..RuntimeConfig::default()
    };
    let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
    let plan = line_plan(&model);
    let err = cluster
        .run_control_plane(&plan, &ClusterOptions::default())
        .unwrap_err();
    cluster.shutdown();
    assert!(matches!(err, RuntimeError::Wire { errors } if errors >= 1), "{err:?}");
}

#[test]
fn over_budget_shard_completes_via_bisection_on_fattree() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();

    // Empirically bracket the budget: the peak of an unsharded run (too
    // big) vs the peak of a heavily sharded run (fits), then demand the
    // unsharded plan complete under the midpoint.
    let unsharded = S2Options {
        workers: 2,
        shards: 1,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &unsharded).unwrap();
    let (reference_rib, full_stats, _) = verifier.simulate().unwrap();
    verifier.shutdown();

    let sharded = S2Options {
        workers: 2,
        shards: 8,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &sharded).unwrap();
    let (_, split_stats, _) = verifier.simulate().unwrap();
    verifier.shutdown();

    let full_peak = full_stats.max_worker_peak();
    let split_peak = split_stats.max_worker_peak();
    assert!(
        split_peak < full_peak,
        "sharding must reduce peak memory ({split_peak} vs {full_peak})"
    );
    let budget = (full_peak + split_peak) / 2;

    let budgeted = S2Options {
        workers: 2,
        shards: 1,
        memory_budget: Some(budget),
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &budgeted).unwrap();
    let (rib, stats, shards) = verifier.simulate().unwrap();
    verifier.shutdown();
    assert_eq!(rib, reference_rib, "degraded run must be bit-identical");
    assert!(stats.oom_splits >= 1, "the budget must force a bisection");
    assert!(shards >= 2, "the single shard must have been split");
    assert!(
        stats.shard_retries >= stats.oom_splits,
        "every split implies a retried shard"
    );
}

#[test]
fn minimal_shard_over_budget_is_still_fatal() {
    // A budget nothing fits under must surface OOM even with adaptive
    // degradation available.
    let model = Arc::new(line_model());
    let config = RuntimeConfig {
        memory_budget: Some(8),
        ..RuntimeConfig::default()
    };
    let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
    let plan = line_plan(&model);
    let err = cluster
        .run_control_plane(&plan, &ClusterOptions::default())
        .unwrap_err();
    cluster.shutdown();
    assert!(matches!(err, RuntimeError::OutOfMemory { .. }), "{err:?}");
}

#[test]
fn double_recovery_restores_rib_store_across_two_epoch_bumps() {
    // Recovery during recovery: a kill bumps the fabric epoch and
    // respawns worker 1 from the RIB-store checkpoint; a later hang
    // trips the barrier timeout on the *recovered* run, forcing a
    // second epoch bump and a second restore. The fixpoint must still
    // land bit-identical with no zombie frames crossing either epoch.
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        barrier_timeout: Duration::from_secs(5),
        faults: FaultPlan::new().kill_worker(1, 5).hang_worker(0, 20),
        ..RuntimeConfig::default()
    };
    let (rib, stats, cluster) = run_line(&model, config);
    cluster.shutdown();
    assert_eq!(rib, reference, "double recovery changed the verdict");
    assert!(
        stats.recoveries >= 2,
        "expected two epoch bumps, got {}",
        stats.recoveries
    );
    assert_eq!(
        stats.traffic.protocol_violations, 0,
        "zombie frames must be discarded by the epoch filter, not flagged"
    );
}

#[test]
fn combined_faults_still_converge_to_the_reference() {
    // Kitchen sink: a kill, a drop, a duplicate, and a delay in one run.
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        barrier_timeout: Duration::from_secs(10),
        faults: FaultPlan::new()
            .kill_worker(0, 11)
            .drop_message(1)
            .duplicate_message(2)
            .delay_message(3, 2),
        ..RuntimeConfig::default()
    };
    let (rib, stats, cluster) = run_line(&model, config);
    cluster.shutdown();
    assert_eq!(rib, reference, "combined faults changed the verdict");
    assert!(stats.recoveries >= 1);
}

