//! BGP conditional advertisement (§4.5's second prefix-dependency source)
//! and the §7 runtime dependency check / shard refinement.
//!
//! Scenario: a two-homed stub. `primary` originates 10.1.0.0/24. `backup`
//! originates 10.9.0.0/24 but advertises it only while 10.1.0.0/24 is
//! ABSENT from its RIB (a non-exist backup announcement). The two prefixes
//! are therefore dependent and must be co-sharded.

use s2::{NetworkModel, S2Options, S2Verifier};
use s2_net::config::{
    BgpNeighbor, BgpProcess, ConditionalAdvertisement, DeviceConfig, InterfaceConfig, Network,
    Vendor,
};
use s2_net::topology::Topology;
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::SwitchModel;
use s2_runtime::{Cluster, ClusterOptions};
use s2_shard::{plan, ShardPlan};
use std::sync::Arc;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Chain: primary — mid — backup.
fn conditional_net(primary_announces: bool) -> NetworkModel {
    let mut topo = Topology::new();
    let names = ["primary", "mid", "backup"];
    let ids: Vec<_> = names.iter().map(|n| topo.add_node(*n)).collect();
    topo.connect(ids[0], ids[1]);
    topo.connect(ids[1], ids[2]);

    let mut cfgs: Vec<DeviceConfig> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut c = DeviceConfig::new(*n, Vendor::A);
            c.bgp = Some(BgpProcess::new(
                65001 + i as u32,
                Ipv4Addr::new(1, 1, 1, i as u8 + 1),
            ));
            c
        })
        .collect();
    let subnets = [
        (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
        (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
    ];
    for (li, (i, j)) in [(0usize, 1usize), (1, 2)].iter().copied().enumerate() {
        let (ai, aj) = subnets[li];
        cfgs[i].interfaces.push(InterfaceConfig::new(format!("e{li}a"), ai, 31));
        cfgs[j].interfaces.push(InterfaceConfig::new(format!("e{li}b"), aj, 31));
        cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: aj,
            remote_as: 65001 + j as u32,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: ai,
            remote_as: 65001 + i as u32,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
    }
    if primary_announces {
        cfgs[0].bgp.as_mut().unwrap().networks.push(Network { prefix: p("10.1.0.0/24") });
    }
    let backup = cfgs[2].bgp.as_mut().unwrap();
    backup.networks.push(Network { prefix: p("10.9.0.0/24") });
    backup.conditional.push(ConditionalAdvertisement {
        advertise: p("10.9.0.0/24"),
        condition: p("10.1.0.0/24"),
        when_present: false, // non-exist-map: announce only while primary is down
    });
    NetworkModel::build(topo, cfgs).unwrap()
}

fn mid_has(model: &NetworkModel, rib: &s2::RibSnapshot, prefix: Prefix) -> bool {
    let mid = model.topology.node_by_name("mid").unwrap();
    rib.node(mid).iter().any(|r| r.prefix == prefix)
}

#[test]
fn non_exist_condition_suppresses_while_primary_up() {
    let model = conditional_net(true);
    let v = S2Verifier::new(model.clone(), &S2Options::default()).unwrap();
    let (rib, _, _) = v.simulate().unwrap();
    v.shutdown();
    assert!(mid_has(&model, &rib, p("10.1.0.0/24")));
    // Backup's announcement is suppressed: the condition prefix exists.
    assert!(!mid_has(&model, &rib, p("10.9.0.0/24")));
    // Backup itself still holds its own route locally.
    let backup = model.topology.node_by_name("backup").unwrap();
    assert!(rib.node(backup).iter().any(|r| r.prefix == p("10.9.0.0/24")));
}

#[test]
fn non_exist_condition_fires_when_primary_down() {
    let model = conditional_net(false);
    let v = S2Verifier::new(model.clone(), &S2Options::default()).unwrap();
    let (rib, _, _) = v.simulate().unwrap();
    v.shutdown();
    assert!(!mid_has(&model, &rib, p("10.1.0.0/24")));
    assert!(mid_has(&model, &rib, p("10.9.0.0/24")));
}

#[test]
fn vendor_dialects_roundtrip_conditionals() {
    let model = conditional_net(true);
    for cfg in &model.configs {
        for vendor in [Vendor::A, Vendor::B] {
            let mut c = (**cfg).clone();
            c.vendor = vendor;
            let text = s2_net::vendor::emit(&c);
            let parsed = s2_net::vendor::parse(&text).unwrap();
            assert_eq!(parsed, c, "{} in {vendor:?}", c.hostname);
        }
    }
}

#[test]
fn planner_coshards_conditional_pairs() {
    let model = conditional_net(true);
    let switches: Vec<SwitchModel> = model
        .topology
        .nodes()
        .map(|n| SwitchModel::new(&model, n))
        .collect();
    for shards in [2usize, 4, 8] {
        let plan = plan(&switches, shards, 3);
        assert_eq!(
            plan.shard_of(p("10.1.0.0/24")),
            plan.shard_of(p("10.9.0.0/24")),
            "{shards} shards split the conditional pair"
        );
    }
}

#[test]
fn refinement_repairs_a_bad_external_plan() {
    // A plan that deliberately splits the dependent pair: without
    // refinement, the backup prefix would be advertised in its shard
    // (where 10.1.0.0/24 is never computed, so the non-exist condition
    // "holds") — a false announcement. The §7 loop must detect the
    // observed cross-shard dependency, merge, and recompute.
    let model = Arc::new(conditional_net(true));
    let cluster = Cluster::new(model.clone(), vec![0, 0, 0], 1, None);
    let opts = ClusterOptions::default();
    cluster.run_ospf(&opts).unwrap();

    let bad_plan = ShardPlan {
        shards: vec![
            [p("10.1.0.0/24")].into_iter().collect(),
            [p("10.9.0.0/24")].into_iter().collect(),
        ],
    };
    // Unrefined run on the bad plan: the backup prefix leaks to mid.
    let (bad_rib, _) = cluster.run_control_plane(&bad_plan, &opts).unwrap();
    let mid = model.topology.node_by_name("mid").unwrap();
    assert!(
        bad_rib.node(mid).iter().any(|r| r.prefix == p("10.9.0.0/24")),
        "the bad plan must produce the false announcement this test is about"
    );

    // Refined run: detects the violation, merges, recomputes — and now
    // matches the unsharded truth (suppressed announcement).
    let (rib, _, final_plan) = cluster
        .run_control_plane_refined(bad_plan, &opts)
        .unwrap();
    cluster.shutdown();
    assert_eq!(final_plan.len(), 1, "shards were merged");
    assert!(!rib.node(mid).iter().any(|r| r.prefix == p("10.9.0.0/24")));
    assert!(rib.node(mid).iter().any(|r| r.prefix == p("10.1.0.0/24")));
}
