//! The §5.3 headline claim: S2 and the monolithic baseline "output the
//! same set of RIBs" — on FatTrees and the DCN, across worker counts,
//! partition schemes and shard counts.

use s2::{NetworkModel, RibSnapshot, S2Options, S2Verifier, Scheme};
use s2_baselines::{simulate_control_plane, MonolithicOptions};
use s2_topogen::dcn::{generate as gen_dcn, DcnParams};
use s2_topogen::fattree::{generate as gen_ft, FatTreeParams};

fn reference_rib(model: &NetworkModel) -> RibSnapshot {
    let (rib, _) = simulate_control_plane(model, &MonolithicOptions::default())
        .expect("baseline converges");
    rib
}

fn s2_rib(model: &NetworkModel, workers: u32, shards: usize, scheme: Scheme) -> RibSnapshot {
    let opts = S2Options {
        workers,
        shards,
        scheme,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &opts).expect("fleet spawns");
    let (rib, _, _) = verifier.simulate().expect("S2 converges");
    verifier.shutdown();
    rib
}

#[test]
fn fattree_ribs_identical_across_configurations() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let reference = reference_rib(&model);
    assert!(reference.total_routes() > 0);

    for (workers, shards, scheme) in [
        (1, 1, Scheme::Metis),
        (2, 1, Scheme::Metis),
        (4, 4, Scheme::Random { seed: 9 }),
        (8, 7, Scheme::Expert),
        (3, 2, Scheme::Imbalanced),
        (4, 5, Scheme::CommHeavy),
    ] {
        let rib = s2_rib(&model, workers, shards, scheme);
        assert_eq!(
            rib, reference,
            "RIBs differ for workers={workers} shards={shards} scheme={}",
            scheme.name()
        );
    }
}

#[test]
fn dcn_ribs_identical_with_policies_active() {
    // The DCN exercises route maps, AS_PATH overwrite, aggregation,
    // remove-private-as with both vendor semantics, and mixed ECMP — the
    // equality must survive all of it.
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology, dcn.configs).unwrap();
    let reference = reference_rib(&model);

    for (workers, shards) in [(1, 1), (2, 4), (4, 8), (6, 3)] {
        let rib = s2_rib(&model, workers, shards, Scheme::Metis);
        assert_eq!(rib, reference, "RIBs differ for workers={workers} shards={shards}");
    }
}

#[test]
fn sharded_monolithic_matches_unsharded() {
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology, dcn.configs).unwrap();
    let reference = reference_rib(&model);
    for shards in [2usize, 5, 12] {
        let opts = MonolithicOptions {
            shards,
            ..Default::default()
        };
        let (rib, stats) = simulate_control_plane(&model, &opts).unwrap();
        assert_eq!(rib, reference, "shards={shards}");
        assert!(stats.shards <= shards);
    }
}

#[test]
fn route_counts_match_the_quadratic_growth() {
    // Every edge prefix lands on every switch: routes ≈ prefixes × nodes
    // (§2.2's "quadric to the number of switches" observation).
    for k in [4usize, 6] {
        let ft = gen_ft(FatTreeParams::new(k));
        let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
        let rib = reference_rib(&model);
        let nodes = k * k + k * k / 4;
        let prefixes = k * k / 2;
        let bgp_routes: usize = rib
            .per_node
            .iter()
            .flatten()
            .filter(|r| r.protocol == s2_net::policy::Protocol::Bgp)
            .count();
        assert_eq!(bgp_routes, nodes * prefixes, "k={k}");
    }
}

mod random_networks {
    use super::*;
    use proptest::prelude::*;
    use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::{Ipv4Addr, Prefix};

    /// Builds a random connected eBGP network: a spanning tree over `n`
    /// nodes plus `extra` random chords, unique ASNs, a random subset of
    /// nodes originating one /24 each.
    fn random_network(
        n: usize,
        extra_edges: &[(usize, usize)],
        originators: &[bool],
    ) -> NetworkModel {
        let mut topo = Topology::new();
        let ids: Vec<_> = (0..n).map(|i| topo.add_node(format!("r{i}"))).collect();
        let mut links: Vec<(usize, usize)> = (1..n).map(|i| (i / 2, i)).collect(); // tree
        for &(a, b) in extra_edges {
            let (a, b) = (a % n, b % n);
            if a != b && !links.contains(&(a.min(b), a.max(b))) {
                links.push((a.min(b), a.max(b)));
            }
        }

        let mut cfgs: Vec<DeviceConfig> = (0..n)
            .map(|i| {
                let mut c = DeviceConfig::new(format!("r{i}"), if i % 2 == 0 { Vendor::A } else { Vendor::B });
                let mut bgp = BgpProcess::new(65000 + i as u32, Ipv4Addr::new(1, 1, 1, i as u8 + 1));
                bgp.max_ecmp = 16;
                c.bgp = Some(bgp);
                c
            })
            .collect();

        for (li, &(a, b)) in links.iter().enumerate() {
            let base = 0xac10_0000u32 + (li as u32) * 2;
            let (aa, ab) = (Ipv4Addr(base), Ipv4Addr(base + 1));
            let ifc = |idx: usize| format!("e{idx}");
            let ia = cfgs[a].interfaces.len();
            let ib = cfgs[b].interfaces.len();
            cfgs[a].interfaces.push(InterfaceConfig::new(ifc(ia), aa, 31));
            cfgs[b].interfaces.push(InterfaceConfig::new(ifc(ib), ab, 31));
            cfgs[a].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: ab,
                remote_as: 65000 + b as u32,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
            cfgs[b].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: aa,
                remote_as: 65000 + a as u32,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
            topo.connect(ids[a], ids[b]);
        }
        for (i, &orig) in originators.iter().enumerate() {
            if orig && i < n {
                cfgs[i].bgp.as_mut().unwrap().networks.push(Network {
                    prefix: Prefix::new(Ipv4Addr::new(10, 0, i as u8, 0), 24),
                });
            }
        }
        NetworkModel::build(topo, cfgs).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// On arbitrary random connected graphs with random originations,
        /// S2 (random worker count, scheme, shard count) and the
        /// monolithic baseline compute identical RIBs.
        #[test]
        fn prop_random_graphs_equivalent(
            n in 3usize..14,
            extra in proptest::collection::vec((0usize..16, 0usize..16), 0..8),
            orig_bits in proptest::collection::vec(any::<bool>(), 14),
            workers in 1u32..5,
            shards in 1usize..6,
            seed in any::<u64>(),
        ) {
            // Ensure at least one originator.
            let mut originators = orig_bits;
            originators[0] = true;
            let model = random_network(n, &extra, &originators);
            let reference = reference_rib(&model);
            let rib = s2_rib(&model, workers, shards, Scheme::Random { seed });
            prop_assert_eq!(rib, reference);
        }
    }
}
