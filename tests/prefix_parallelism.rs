//! §7 prefix parallelism: executing shard groups concurrently on replica
//! fleets must change nothing about the results — only the memory/time
//! trade-off.

use s2::{NetworkModel, S2Options, S2Verifier};
use s2_topogen::dcn::{generate as gen_dcn, DcnParams};
use s2_topogen::fattree::{generate as gen_ft, FatTreeParams};

fn rib_with(model: &NetworkModel, groups: usize, shards: usize) -> (s2::RibSnapshot, usize) {
    let opts = S2Options {
        workers: 2,
        shards,
        parallel_shard_groups: groups,
        ..Default::default()
    };
    let v = S2Verifier::new(model.clone(), &opts).unwrap();
    let (rib, stats, shard_count) = v.simulate().unwrap();
    v.shutdown();
    assert!(shard_count >= 1);
    (rib, stats.per_worker_peak.iter().sum())
}

#[test]
fn parallel_groups_produce_identical_ribs_on_fattree() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let (reference, _) = rib_with(&model, 1, 6);
    for groups in [2usize, 3, 6] {
        let (rib, _) = rib_with(&model, groups, 6);
        assert_eq!(rib, reference, "groups={groups}");
    }
}

#[test]
fn parallel_groups_produce_identical_ribs_on_dcn() {
    // Aggregation + conditional machinery must survive group splitting
    // (dependent prefixes stay co-sharded, hence co-grouped).
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology, dcn.configs).unwrap();
    let (reference, _) = rib_with(&model, 1, 8);
    let (rib, _) = rib_with(&model, 4, 8);
    assert_eq!(rib, reference);
}

#[test]
fn parallelism_trades_memory_for_concurrency() {
    // The §7 trade-off, made measurable: G replica fleets hold ~G× the
    // per-worker route state of the sequential schedule.
    let ft = gen_ft(FatTreeParams::new(6));
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let (_, mem_seq) = rib_with(&model, 1, 6);
    let (_, mem_par) = rib_with(&model, 3, 6);
    assert!(
        mem_par > mem_seq * 3 / 2,
        "parallel groups should cost extra memory: {mem_par} !> 1.5*{mem_seq}"
    );
}

#[test]
fn single_shard_falls_back_to_sequential() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let (reference, _) = rib_with(&model, 1, 1);
    let (rib, _) = rib_with(&model, 4, 1); // one shard: groups collapse
    assert_eq!(rib, reference);
}
