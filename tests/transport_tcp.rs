//! Chaos tests for the TCP transport: the framed-TCP fabric must produce
//! RIBs bit-identical to the in-process channel fabric, survive a severed
//! connection mid-fixpoint via supervised reconnect, heal a timed
//! partition, and keep sender memory bounded under a throttled link
//! (credit-based backpressure instead of unbounded buffering).

use s2::{NetworkModel, S2Options, S2Verifier, VerificationRequest};
use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
use s2_net::topology::{NodeId, Topology};
use s2_net::Ipv4Addr;
use s2_routing::RibSnapshot;
use s2_runtime::{
    Cluster, ClusterOptions, FaultPlan, RuntimeConfig, TcpConfig, TransportKind,
};
use s2_shard::ShardPlan;
use s2_topogen::fattree::{generate as gen_ft, FatTree, FatTreeParams};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The 4-node eBGP line t0—m1—m2—t3; t0 announces two prefixes. Workers
/// split {t0, m1} / {m2, t3}, so every m1—m2 exchange crosses the fabric.
fn line_model() -> NetworkModel {
    let mut topo = Topology::new();
    let names = ["t0", "m1", "m2", "t3"];
    let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
    topo.connect(ids[0], ids[1]);
    topo.connect(ids[1], ids[2]);
    topo.connect(ids[2], ids[3]);

    let mut cfgs: Vec<DeviceConfig> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut c = DeviceConfig::new(*n, Vendor::A);
            c.bgp = Some(BgpProcess::new(
                65000 + i as u32,
                Ipv4Addr::new(1, 1, 1, i as u8 + 1),
            ));
            c
        })
        .collect();
    let subnets = [
        (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
        (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
        (Ipv4Addr::new(172, 16, 0, 4), Ipv4Addr::new(172, 16, 0, 5)),
    ];
    for (li, (i, j)) in [(0usize, 1usize), (1, 2), (2, 3)].iter().copied().enumerate() {
        let (ai, aj) = subnets[li];
        cfgs[i]
            .interfaces
            .push(InterfaceConfig::new(format!("e{li}a"), ai, 31));
        cfgs[j]
            .interfaces
            .push(InterfaceConfig::new(format!("e{li}b"), aj, 31));
        let asn_i = 65000 + i as u32;
        let asn_j = 65000 + j as u32;
        cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: aj,
            remote_as: asn_j,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
            peer: ai,
            remote_as: asn_i,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
    }
    for p in ["10.0.0.0/24", "10.0.1.0/24"] {
        cfgs[0].bgp.as_mut().unwrap().networks.push(Network {
            prefix: p.parse().unwrap(),
        });
    }
    NetworkModel::build(topo, cfgs).unwrap()
}

fn line_plan(model: &Arc<NetworkModel>) -> ShardPlan {
    let switches: Vec<_> = model
        .topology
        .nodes()
        .map(|n| s2_routing::SwitchModel::new(model, n))
        .collect();
    ShardPlan::single(s2_shard::collect_prefixes(&switches))
}

fn run_line(model: &Arc<NetworkModel>, config: RuntimeConfig) -> (RibSnapshot, Cluster) {
    let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
    let plan = line_plan(model);
    let (rib, _) = cluster
        .run_control_plane(&plan, &ClusterOptions::default())
        .unwrap();
    (rib, cluster)
}

fn line_reference(model: &Arc<NetworkModel>) -> RibSnapshot {
    let (rib, cluster) = run_line(model, RuntimeConfig::default());
    cluster.shutdown();
    rib
}

#[test]
fn tcp_fabric_matches_channel_ribs_on_line() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        transport: TransportKind::tcp(),
        ..RuntimeConfig::default()
    };
    let (rib, cluster) = run_line(&model, config);
    let messages = cluster.net_stats().messages.load(Ordering::Relaxed);
    cluster.shutdown();
    assert_eq!(rib, reference, "TCP fabric changed the verdict");
    assert!(messages > 0, "cross-worker frames must traverse the sockets");
}

#[test]
fn severed_connection_mid_fixpoint_reconnects_bit_identical() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    // Sever the live m1↔m2 sockets at several points of the BGP fixpoint
    // (each direction of the line's only cross-worker adjacency carries
    // two data frames); the supervisor must reconnect, the loss
    // accounting must keep the round from converging on the dead frames,
    // and the resync must re-send — bit-identical RIBs every time.
    for (src, dst, nth) in [(0u32, 1u32, 0u64), (0, 1, 1), (1, 0, 0), (1, 0, 1)] {
        let config = RuntimeConfig {
            transport: TransportKind::tcp(),
            faults: FaultPlan::new().sever_connection(src, dst, nth),
            ..RuntimeConfig::default()
        };
        let (rib, cluster) = run_line(&model, config);
        let reconnects = cluster.net_stats().reconnects.load(Ordering::Relaxed);
        cluster.shutdown();
        assert_eq!(
            rib, reference,
            "sever of {src}→{dst} at frame {nth} changed the verdict"
        );
        assert!(
            reconnects >= 1,
            "sever of {src}→{dst} at frame {nth} must force a reconnect (got {reconnects})"
        );
    }
}

#[test]
fn partitioned_worker_heals_bit_identical() {
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    // Every cross-worker frame in the line model touches worker 1, so
    // the frame that arms the partition is itself parked until the
    // window elapses: the run must take at least the window, and the
    // parked (not lost) frames must still produce identical RIBs.
    let window = Duration::from_millis(300);
    let config = RuntimeConfig {
        transport: TransportKind::tcp(),
        faults: FaultPlan::new().partition_worker(1, 2, window),
        ..RuntimeConfig::default()
    };
    let started = std::time::Instant::now();
    let (rib, cluster) = run_line(&model, config);
    let elapsed = started.elapsed();
    cluster.shutdown();
    assert_eq!(rib, reference, "partition changed the verdict");
    assert!(
        elapsed >= window,
        "the armed partition must have stalled the run (took {elapsed:?})"
    );
}

fn fattree_request(ft: &FatTree) -> VerificationRequest {
    let k = ft.params.k;
    let endpoints = (0..k)
        .flat_map(|p| (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)])))
        .collect();
    VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap())
}

#[test]
fn full_verification_over_tcp_matches_channel() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let request = fattree_request(&ft);

    let channel_opts = S2Options {
        workers: 3,
        shards: 2,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &channel_opts).unwrap();
    let reference = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert!(reference.all_clear());

    let mut tcp_opts = channel_opts.clone();
    tcp_opts.runtime.transport = TransportKind::tcp();
    let verifier = S2Verifier::new(model, &tcp_opts).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert_eq!(report.rib, reference.rib, "TCP RIBs must be bit-identical");
    assert!(report.all_clear(), "{}", report.summary());
    assert_eq!(report.dpv.reachable_pairs, reference.dpv.reachable_pairs);
    assert!(report.cp.traffic.messages > 0);
}

#[test]
fn throttled_link_backpressures_sender_without_unbounded_buffering() {
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let request = fattree_request(&ft);

    let channel_opts = S2Options {
        workers: 2,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &channel_opts).unwrap();
    let reference = verifier.verify(&request).unwrap();
    verifier.shutdown();

    // A tiny outbox over a slow 0→1 link: export bursts outpace the
    // 3ms-per-frame writer, so senders must stall on flow control
    // (bounded memory) rather than queue without limit — while the
    // ample credit window lets the writer keep draining, so every stall
    // is brief and the verdict must not change. (Shrinking the credit
    // window *as well* would let an export burst exceed everything the
    // fabric can buffer while the receiver sits at the same barrier —
    // progress would then rely on send-deadline drops + resyncs.)
    let mut tcp_opts = channel_opts.clone();
    tcp_opts.runtime.transport = TransportKind::Tcp(TcpConfig {
        outbox_capacity: 2,
        ..TcpConfig::default()
    });
    tcp_opts.runtime.faults = FaultPlan::new().throttle_link(0, 1, 3);
    let verifier = S2Verifier::new(model, &tcp_opts).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();

    assert_eq!(report.rib, reference.rib, "throttle changed the verdict");
    assert!(report.all_clear(), "{}", report.summary());
    let t = report.traffic();
    assert!(
        t.backpressure_stalls > 0,
        "the tiny window over a slow link must stall the sender \
         (messages={}, stalls={})",
        t.messages,
        t.backpressure_stalls
    );
}

#[test]
fn faults_from_prior_pr_compose_with_tcp_fabric() {
    // The PR-1 fault set (drop/duplicate/corrupt) is injected above the
    // transport, so it must compose with the TCP backend unchanged.
    let model = Arc::new(line_model());
    let reference = line_reference(&model);
    let config = RuntimeConfig {
        transport: TransportKind::tcp(),
        faults: FaultPlan::new()
            .drop_message(1)
            .duplicate_message(2)
            .corrupt_message(3),
        ..RuntimeConfig::default()
    };
    let (rib, cluster) = run_line(&model, config);
    cluster.shutdown();
    assert_eq!(rib, reference, "injected faults over TCP changed the verdict");
}
