//! Differential oracle: symbolic forwarding must agree with a concrete
//! hop-by-hop packet simulation for every individual header.
//!
//! The symbolic engine computes, per source, the *set* of headers reaching
//! each final state. The oracle here walks one concrete destination
//! address through the FIBs (exploring every ECMP branch) and classifies
//! its outcomes; membership of that address in the symbolic sets must
//! match exactly. This catches errors in predicate compilation, LPM
//! shadowing, and the forwarding transformation that unit tests of either
//! side alone would miss.

use proptest::prelude::*;
use s2_baselines::{simulate_control_plane, MonolithicOptions};
use s2_dataplane::{forward, FinalKind, Fib, ForwardOptions, NodePredicates, PacketSpace};
use s2_net::topology::NodeId;
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::{NetworkModel, RibSnapshot};
use s2_topogen::fattree::{generate, FatTreeParams};
use std::collections::BTreeSet;

/// Concrete outcomes of one destination address injected at `src`,
/// exploring every ECMP branch: (kind, node-where-final).
fn oracle(
    model: &NetworkModel,
    fibs: &[Fib],
    src: NodeId,
    dst: Ipv4Addr,
    max_hops: u16,
) -> BTreeSet<(FinalKind, NodeId)> {
    let mut outcomes = BTreeSet::new();
    let mut stack = vec![(src, 0u16)];
    while let Some((node, hops)) = stack.pop() {
        match fibs[node.index()].lookup(dst) {
            None => {
                outcomes.insert((FinalKind::Blackhole, node));
            }
            Some((_, entry)) if entry.is_local => {
                outcomes.insert((FinalKind::Arrive, node));
            }
            Some((_, entry)) if entry.is_discard() => {
                outcomes.insert((FinalKind::Blackhole, node));
            }
            Some((_, entry)) => {
                for port in &entry.egress {
                    match model.topology.peer_of(node, *port) {
                        None => {
                            outcomes.insert((FinalKind::Exit, node));
                        }
                        Some((peer, _)) => {
                            if hops + 1 > max_hops {
                                outcomes.insert((FinalKind::Loop, node));
                            } else {
                                stack.push((peer, hops + 1));
                            }
                        }
                    }
                }
            }
        }
    }
    outcomes
}

/// Whether `dst` (with all other header bits zero, metadata clear) is a
/// member of the symbolic set `f`.
fn member(m: &s2_bdd::BddManager, f: s2_bdd::Bdd, dst: Ipv4Addr) -> bool {
    let mut assign = vec![false; m.num_vars() as usize];
    for i in 0..32u8 {
        assign[i as usize] = dst.bit(i);
    }
    m.eval(f, &assign)
}

fn setup(k: usize) -> (NetworkModel, RibSnapshot) {
    let ft = generate(FatTreeParams::new(k));
    let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
    let (rib, _) = simulate_control_plane(&model, &MonolithicOptions::default()).unwrap();
    (model, rib)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random destinations and sources on FatTree4, the symbolic
    /// engine's per-(kind, node) membership equals the concrete oracle's
    /// outcome set.
    #[test]
    fn prop_symbolic_matches_concrete(
        dst_bits in 0u32..=0x00ff_ffff,   // anywhere in 10.0.0.0/8
        src_idx in 0usize..8,
    ) {
        let (model, rib) = setup(4);
        let dst = Ipv4Addr(0x0a00_0000 | dst_bits);
        let fibs: Vec<Fib> = model
            .topology
            .nodes()
            .map(|n| Fib::from_rib(rib.node(n)))
            .collect();
        // Sources are the 8 edge switches; find them by name.
        let mut edges: Vec<NodeId> = model
            .topology
            .nodes()
            .filter(|n| model.topology.name(*n).contains("edge"))
            .collect();
        edges.sort();
        let src = edges[src_idx];

        let opts = ForwardOptions::default();
        let expected = oracle(&model, &fibs, src, dst, s2_dataplane::DEFAULT_MAX_HOPS);

        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let preds: Vec<NodePredicates> = model
            .topology
            .nodes()
            .map(|n| NodePredicates::compile(&model, n, &fibs[n.index()], &space, &mut mgr))
            .collect();
        let inject = space.dst_in(&mut mgr, "10.0.0.0/8".parse::<Prefix>().unwrap());
        let res = forward(&model.topology, &preds, &space, &mut mgr, vec![(src, inject)], &opts);

        // Union symbolic finals per (kind, node) and check membership.
        let mut symbolic: BTreeSet<(FinalKind, NodeId)> = BTreeSet::new();
        for f in &res.finals {
            if member(&mgr, f.set, dst) {
                symbolic.insert((f.kind, f.node));
            }
        }
        prop_assert_eq!(&symbolic, &expected, "src={} dst={}", src, dst);
    }

    /// Same oracle on a FatTree with an injected ACL blackhole: the ACL's
    /// concrete semantics and its BDD compilation must classify every
    /// probed destination identically.
    #[test]
    fn prop_acl_blackhole_matches_concrete(dst_last in 0u32..256, src_idx in 0usize..4) {
        let ft = generate(FatTreeParams::new(4));
        let mut configs = ft.configs.clone();
        s2_topogen::inject::acl_block_dst(&mut configs, "core0", "10.2.0.0/24".parse().unwrap());
        let model = NetworkModel::build(ft.topology.clone(), configs).unwrap();
        let (rib, _) = simulate_control_plane(&model, &MonolithicOptions::default()).unwrap();
        let dst = Ipv4Addr(0x0a02_0000 | dst_last); // inside 10.2.0.x
        let src = ft.edge(0, src_idx % 2);

        let space = PacketSpace::new(0);
        let mut mgr = space.manager();
        let fibs: Vec<Fib> = model
            .topology
            .nodes()
            .map(|n| Fib::from_rib(rib.node(n)))
            .collect();
        let preds: Vec<NodePredicates> = model
            .topology
            .nodes()
            .map(|n| NodePredicates::compile(&model, n, &fibs[n.index()], &space, &mut mgr))
            .collect();
        let inject = space.dst_in(&mut mgr, "10.2.0.0/24".parse::<Prefix>().unwrap());
        let res = forward(
            &model.topology,
            &preds,
            &space,
            &mut mgr,
            vec![(src, inject)],
            &ForwardOptions::default(),
        );

        let core0 = model.topology.node_by_name("core0").unwrap();
        let dstnode = ft.edge(2, 0);
        // Copies through core0 blackhole there; copies through other cores
        // arrive. Both must hold for every concrete address in the prefix.
        let blackholed_at_core0 = res
            .finals
            .iter()
            .any(|f| f.kind == FinalKind::Blackhole && f.node == core0 && member(&mgr, f.set, dst));
        let arrived = res
            .finals
            .iter()
            .any(|f| f.kind == FinalKind::Arrive && f.node == dstnode && member(&mgr, f.set, dst));
        prop_assert!(blackholed_at_core0, "dst={dst}");
        prop_assert!(arrived, "dst={dst}");
    }
}
