//! Loop detection end-to-end: two routers with static default routes
//! pointing at each other form a genuine forwarding loop for any
//! destination neither owns; S2 must classify that traffic as `Loop`
//! (§4.3 final state 4) in both the monolithic and distributed engines.

use s2::{NetworkModel, S2Options, S2Verifier, VerificationRequest};
use s2_net::config::{DeviceConfig, InterfaceConfig, StaticRoute, Vendor};
use s2_net::topology::Topology;
use s2_net::{Ipv4Addr, Prefix};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// a — b, both with static default routes toward each other; `a` also owns
/// 10.1.0.0/24 locally (connected), so only *unowned* space loops.
fn looping_net() -> NetworkModel {
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    topo.connect(a, b);

    let mut ca = DeviceConfig::new("a", Vendor::A);
    ca.interfaces.push(InterfaceConfig::new("e0", Ipv4Addr::new(172, 16, 0, 0), 31));
    ca.interfaces.push(InterfaceConfig::new("lan", Ipv4Addr::new(10, 1, 0, 1), 24));
    ca.static_routes.push(StaticRoute {
        prefix: p("0.0.0.0/0"),
        next_hop: Some(Ipv4Addr::new(172, 16, 0, 1)),
    });

    let mut cb = DeviceConfig::new("b", Vendor::A);
    cb.interfaces.push(InterfaceConfig::new("e0", Ipv4Addr::new(172, 16, 0, 1), 31));
    cb.static_routes.push(StaticRoute {
        prefix: p("0.0.0.0/0"),
        next_hop: Some(Ipv4Addr::new(172, 16, 0, 0)),
    });

    NetworkModel::build(topo, vec![ca, cb]).unwrap()
}

#[test]
fn static_default_loop_is_reported() {
    let model = looping_net();
    let a = model.topology.node_by_name("a").unwrap();
    let request = VerificationRequest {
        sources: vec![a],
        expected: vec![(a, vec![p("10.1.0.0/24")])],
        dst_space: p("0.0.0.0/0"),
        transits: vec![],
    };
    // Distributed across 2 workers: the looping packet ping-pongs across
    // the worker boundary until TTL.
    let opts = S2Options {
        workers: 2,
        max_hops: 8,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &opts).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert!(report.dpv.loops > 0, "{}", report.summary());
    assert!(!report.all_clear());
}

#[test]
fn owned_space_does_not_loop() {
    let model = looping_net();
    let a = model.topology.node_by_name("a").unwrap();
    let b = model.topology.node_by_name("b").unwrap();
    // Traffic from b to a's LAN follows the default route once and
    // arrives — no loop for owned space.
    let request = VerificationRequest::single_pair(b, a, p("10.1.0.0/24"));
    let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert_eq!(report.dpv.reachable_pairs, 1);
    assert_eq!(report.dpv.loops, 0);
}

#[test]
fn loop_verdict_is_worker_count_invariant() {
    let model = looping_net();
    let a = model.topology.node_by_name("a").unwrap();
    let request = VerificationRequest {
        sources: vec![a],
        expected: vec![(a, vec![p("10.1.0.0/24")])],
        dst_space: p("0.0.0.0/0"),
        transits: vec![],
    };
    let mut loop_headers_seen = None;
    for workers in [1u32, 2] {
        let opts = S2Options {
            workers,
            max_hops: 8,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        let has_loops = report.dpv.loops > 0;
        match loop_headers_seen {
            None => loop_headers_seen = Some(has_loops),
            Some(prev) => assert_eq!(prev, has_loops, "workers={workers}"),
        }
        assert!(has_loops);
    }
}
