//! Invariants of the distributed runtime: verdicts never depend on the
//! partition, traffic accounting behaves, OOM isolation, and randomized
//! partition fuzzing.

use proptest::prelude::*;
use s2::{NetworkModel, S2Options, S2Verifier, Scheme, VerificationRequest};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_partition::Partition;
use s2_topogen::fattree::{generate as gen_ft, FatTree, FatTreeParams};

fn fattree4() -> (NetworkModel, VerificationRequest) {
    let ft = gen_ft(FatTreeParams::new(4));
    let mut endpoints: Vec<(NodeId, Vec<Prefix>)> = Vec::new();
    for p in 0..4 {
        for e in 0..2 {
            endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
        }
    }
    let request =
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap());
    (NetworkModel::build(ft.topology, ft.configs).unwrap(), request)
}

#[test]
fn single_worker_has_zero_cross_traffic() {
    let (model, request) = fattree4();
    let verifier = S2Verifier::new(model, &S2Options::default()).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert_eq!(report.cp.messages, 0, "one worker must never use the sidecar");
    assert_eq!(report.cp.bytes, 0);
    assert!(report.all_clear());
}

#[test]
fn cross_traffic_scales_with_edge_cut() {
    let (model, request) = fattree4();
    let mut traffic = Vec::new();
    for scheme in [Scheme::Expert, Scheme::CommHeavy] {
        let opts = S2Options {
            workers: 4,
            scheme,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
        let cut = verifier.partition().edge_cut(&verifier.model().topology);
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        traffic.push((cut, report.cp.messages));
    }
    // The comm-heavy partition cuts more links and therefore moves more
    // messages than the expert partition.
    assert!(traffic[1].0 > traffic[0].0);
    assert!(traffic[1].1 > traffic[0].1, "{traffic:?}");
}

#[test]
fn per_worker_memory_shrinks_with_more_workers() {
    let (model, request) = fattree4();
    let mut peaks = Vec::new();
    for workers in [1u32, 2, 4] {
        let opts = S2Options {
            workers,
            shards: 1,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        peaks.push(report.cp.max_worker_peak());
    }
    assert!(peaks[1] < peaks[0], "{peaks:?}");
    assert!(peaks[2] < peaks[1], "{peaks:?}");
}

#[test]
fn oom_reports_the_overloaded_worker() {
    let (model, _) = fattree4();
    // Pathological partition: everything on worker 0 of 2, with a budget
    // only the empty worker can respect.
    let n = model.topology.node_count();
    let partition = Partition::new(vec![0; n], 2);
    let opts = S2Options {
        workers: 2,
        memory_budget: Some(4096),
        ..Default::default()
    };
    let verifier = S2Verifier::with_partition(model, partition, &opts).unwrap();
    let err = verifier.simulate().unwrap_err();
    verifier.shutdown();
    match err {
        s2::verifier::S2Error::Runtime(s2_runtime::RuntimeError::OutOfMemory {
            worker, ..
        }) => assert_eq!(worker, 0),
        other => panic!("expected OOM, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any valid random partition yields the same verdicts and RIBs.
    #[test]
    fn prop_arbitrary_partitions_are_equivalent(
        assignment in proptest::collection::vec(0u32..3, 20),
    ) {
        let (model, request) = fattree4();
        let reference = {
            let v = S2Verifier::new(model.clone(), &S2Options::default()).unwrap();
            let r = v.verify(&request).unwrap();
            v.shutdown();
            r
        };
        let partition = Partition::new(assignment, 3);
        let v = S2Verifier::with_partition(
            model,
            partition,
            &S2Options { workers: 3, ..Default::default() },
        )
        .unwrap();
        let report = v.verify(&request).unwrap();
        v.shutdown();
        prop_assert_eq!(report.rib, reference.rib);
        prop_assert_eq!(report.dpv.reachable_pairs, reference.dpv.reachable_pairs);
        prop_assert_eq!(&report.dpv.unreachable_pairs, &reference.dpv.unreachable_pairs);
        prop_assert_eq!(report.dpv.loops, reference.dpv.loops);
    }
}
