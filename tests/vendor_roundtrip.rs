//! Vendor front-end integration: emit → parse round-trips for whole
//! generated networks, cross-dialect conversion, and the semantic
//! vendor-specific behaviours surviving the text round-trip.

use proptest::prelude::*;
use s2_net::config::{DeviceConfig, Vendor};
use s2_net::vendor;
use s2_topogen::dcn::{generate as gen_dcn, DcnParams};
use s2_topogen::fattree::{generate as gen_ft, FatTreeParams};

#[test]
fn fattree_configs_roundtrip() {
    let ft = gen_ft(FatTreeParams::new(6));
    for cfg in &ft.configs {
        let text = vendor::emit(cfg);
        let parsed = vendor::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", cfg.hostname));
        assert_eq!(&parsed, cfg, "{} did not roundtrip", cfg.hostname);
    }
}

#[test]
fn dcn_configs_roundtrip_both_dialects() {
    let dcn = gen_dcn(DcnParams::small());
    let mut dialects_seen = std::collections::HashSet::new();
    for cfg in &dcn.configs {
        dialects_seen.insert(cfg.vendor);
        let text = vendor::emit(cfg);
        let parsed = vendor::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", cfg.hostname));
        assert_eq!(&parsed, cfg, "{} did not roundtrip", cfg.hostname);
    }
    assert_eq!(dialects_seen.len(), 2, "the DCN must exercise both dialects");
}

#[test]
fn cross_dialect_conversion_preserves_semantics() {
    // Re-emit a vendor-A config as vendor B (and back): the model content
    // must be identical up to the vendor tag.
    let dcn = gen_dcn(DcnParams::small());
    for cfg in dcn.configs.iter().take(8) {
        let mut as_b: DeviceConfig = cfg.clone();
        as_b.vendor = Vendor::B;
        let text_b = vendor::emit(&as_b);
        let parsed_b = vendor::parse(&text_b).unwrap();
        assert_eq!(parsed_b, as_b, "{} B-dialect roundtrip", cfg.hostname);

        let mut back_to_a = parsed_b;
        back_to_a.vendor = Vendor::A;
        let text_a = vendor::emit(&back_to_a);
        let parsed_a = vendor::parse(&text_a).unwrap();
        assert_eq!(parsed_a, back_to_a, "{} A-dialect roundtrip", cfg.hostname);
    }
}

#[test]
fn parse_rejects_mixed_garbage_gracefully() {
    for bad in [
        "",
        "hostname\n",
        "host-name x\n", // missing semicolon
        "hostname x\n interface eth0\n", // indented section header
        "hostname x\nrouter bgp notanumber\n",
        "host-name x;\nprotocols { bgp { autonomous-system 1; }\n", // unbalanced
    ] {
        assert!(vendor::parse(bad).is_err(), "{bad:?} should not parse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary valid-ish configs roundtrip in both dialects: fuzz the
    /// numeric fields of a template config.
    #[test]
    fn prop_numeric_fields_roundtrip(
        asn in 1u32..4_000_000_000,
        ecmp in 1u8..=64,
        lp in 0u32..1000,
        addr in any::<u32>(),
        len in 8u8..=31,
        vendor_b in any::<bool>(),
    ) {
        use s2_net::config::{BgpProcess, InterfaceConfig, Network};
        use s2_net::policy::{PolicyAction, RouteMap, RouteMapClause, RouteMapDisposition};
        use s2_net::{Ipv4Addr, Prefix};

        let vendor = if vendor_b { Vendor::B } else { Vendor::A };
        let mut cfg = DeviceConfig::new("fuzz", vendor);
        cfg.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr(addr), len));
        let mut bgp = BgpProcess::new(asn, Ipv4Addr::new(9, 9, 9, 9));
        bgp.max_ecmp = ecmp;
        bgp.networks.push(Network { prefix: Prefix::new(Ipv4Addr(addr), len) });
        cfg.bgp = Some(bgp);
        let mut rm = RouteMap::default();
        rm.push_clause(RouteMapClause {
            seq: 10,
            disposition: RouteMapDisposition::Permit,
            matches: vec![],
            actions: vec![PolicyAction::SetLocalPref(lp)],
        });
        cfg.route_maps.insert("RM".into(), rm);

        let text = vendor::emit(&cfg);
        let parsed = vendor::parse(&text).unwrap();
        prop_assert_eq!(parsed, cfg);
    }
}
