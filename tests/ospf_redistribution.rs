//! Multi-protocol integration: an OSPF fabric redistributed into eBGP.
//! Exercises the §4.2 protocol scheduling (IGP before EGP), prefix
//! collection across protocols ("add the prefixes of protocol A to those
//! of protocol B if A is redistributed into B", §4.5), and mixed-protocol
//! forwarding.
//!
//! Topology: a — b — c (OSPF fabric with loopbacks) and c — d (eBGP).
//! `c` redistributes OSPF into BGP, so `d` learns the fabric's loopbacks.

use s2::{NetworkModel, S2Options, S2Verifier, VerificationRequest};
use s2_net::config::{
    BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, OspfProcess, Vendor,
};
use s2_net::policy::Protocol;
use s2_net::topology::Topology;
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::SwitchModel;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn build() -> NetworkModel {
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let c = topo.add_node("c");
    let d = topo.add_node("d");
    topo.connect(a, b);
    topo.connect(b, c);
    topo.connect(c, d);

    let ip = Ipv4Addr::new;
    // OSPF fabric members get a loopback advertised into OSPF.
    let mk_fabric = |name: &str, loopback: Ipv4Addr, ifaces: Vec<(&str, Ipv4Addr)>| {
        let mut cfg = DeviceConfig::new(name, Vendor::A);
        let mut ospf_ifaces = vec!["lo0".to_string()];
        cfg.interfaces.push(InterfaceConfig::new("lo0", loopback, 32));
        for (n, addr) in ifaces {
            cfg.interfaces.push(InterfaceConfig::new(n, addr, 31));
            ospf_ifaces.push(n.to_string());
        }
        cfg.ospf = Some(OspfProcess {
            interfaces: ospf_ifaces,
            default_cost: 1,
        });
        cfg
    };

    let ca = mk_fabric("a", ip(1, 1, 1, 1), vec![("e0", ip(172, 16, 0, 0))]);
    let cb = mk_fabric(
        "b",
        ip(1, 1, 1, 2),
        vec![("e0", ip(172, 16, 0, 1)), ("e1", ip(172, 16, 0, 2))],
    );
    let mut cc = mk_fabric(
        "c",
        ip(1, 1, 1, 3),
        vec![("e0", ip(172, 16, 0, 3))],
    );
    // c's BGP edge toward d, redistributing the OSPF fabric.
    cc.interfaces.push(InterfaceConfig::new("e1", ip(172, 16, 0, 4), 31));
    let mut bgp_c = BgpProcess::new(65001, ip(1, 1, 1, 3));
    bgp_c.redistribute.push(Protocol::Ospf);
    bgp_c.neighbors.push(BgpNeighbor {
        peer: ip(172, 16, 0, 5),
        remote_as: 65002,
        import_policy: None,
        export_policy: None,
        remove_private_as: false,
    });
    cc.bgp = Some(bgp_c);

    let mut cd = DeviceConfig::new("d", Vendor::B);
    cd.interfaces.push(InterfaceConfig::new("xe0", ip(172, 16, 0, 5), 31));
    let mut bgp_d = BgpProcess::new(65002, ip(1, 1, 1, 4));
    bgp_d.neighbors.push(BgpNeighbor {
        peer: ip(172, 16, 0, 4),
        remote_as: 65001,
        import_policy: None,
        export_policy: None,
        remove_private_as: false,
    });
    cd.bgp = Some(bgp_d);

    NetworkModel::build(topo, vec![ca, cb, cc, cd]).unwrap()
}

#[test]
fn redistributed_loopbacks_reach_the_bgp_edge() {
    let model = build();
    let v = S2Verifier::new(model.clone(), &S2Options { workers: 2, ..Default::default() }).unwrap();
    let (rib, stats, _) = v.simulate().unwrap();
    v.shutdown();
    assert!(stats.ospf_rounds >= 1);

    let d = model.topology.node_by_name("d").unwrap();
    // d learned every fabric loopback via BGP.
    for lo in ["1.1.1.1/32", "1.1.1.2/32", "1.1.1.3/32"] {
        let r = rib
            .node(d)
            .iter()
            .find(|r| r.prefix == p(lo))
            .unwrap_or_else(|| panic!("d missing {lo}"));
        assert_eq!(r.protocol, Protocol::Bgp, "{lo}");
    }
    // Inside the fabric, loopbacks are OSPF routes, not BGP.
    let a = model.topology.node_by_name("a").unwrap();
    let r = rib.node(a).iter().find(|r| r.prefix == p("1.1.1.2/32")).unwrap();
    assert_eq!(r.protocol, Protocol::Ospf);
}

#[test]
fn end_to_end_forwarding_spans_both_protocols() {
    let model = build();
    let d = model.topology.node_by_name("d").unwrap();
    let a = model.topology.node_by_name("a").unwrap();
    // d -> a's loopback crosses the BGP edge then the OSPF fabric.
    let request = VerificationRequest::single_pair(d, a, p("1.1.1.1/32"));
    let v = S2Verifier::new(model, &S2Options { workers: 3, ..Default::default() }).unwrap();
    let report = v.verify(&request).unwrap();
    v.shutdown();
    assert_eq!(report.dpv.reachable_pairs, 1, "{:?}", report.dpv.unreachable_pairs);
    assert_eq!(report.dpv.loops, 0);
}

#[test]
fn shard_planner_sees_redistributed_prefixes() {
    let model = build();
    let mut switches: Vec<SwitchModel> = model
        .topology
        .nodes()
        .map(|n| SwitchModel::new(&model, n))
        .collect();
    // Prefix collection must run after OSPF so redistribution targets are
    // known (§4.5): before convergence only c's own subnets appear...
    let before = s2_shard::collect_prefixes(&switches);
    s2_routing::converge_ospf(&model, &mut switches, 64).unwrap();
    let after = s2_shard::collect_prefixes(&switches);
    assert!(after.len() > before.len(), "{before:?} !< {after:?}");
    assert!(after.contains(&p("1.1.1.1/32")));
    assert!(after.contains(&p("1.1.1.2/32")));

    // Sharded and unsharded runs agree even with redistribution active.
    let reference = {
        let v = S2Verifier::new(model.clone(), &S2Options::default()).unwrap();
        let (rib, _, _) = v.simulate().unwrap();
        v.shutdown();
        rib
    };
    let v = S2Verifier::new(
        model,
        &S2Options {
            workers: 2,
            shards: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let (rib, _, shards) = v.simulate().unwrap();
    v.shutdown();
    assert!(shards >= 2);
    assert_eq!(rib, reference);
}
