//! Full-pipeline integration tests: vendor text → parse → model →
//! distributed verification → property verdicts, including misconfigured
//! networks where the verifier must find the bug.

use s2::{ingest, S2Options, S2Verifier, VerificationRequest};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_routing::NetworkModel;
use s2_topogen::dcn::{generate as gen_dcn, Dcn, DcnParams};
use s2_topogen::fattree::{generate as gen_ft, FatTree, FatTreeParams};
use s2_topogen::{emit_configs, inject};

fn fattree_endpoints(ft: &FatTree) -> Vec<(NodeId, Vec<Prefix>)> {
    let mut endpoints = Vec::new();
    for p in 0..ft.params.k {
        for e in 0..ft.params.k / 2 {
            endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
        }
    }
    endpoints
}

#[test]
fn text_configs_to_clean_verdict() {
    let ft = gen_ft(FatTreeParams::new(4));
    let texts: Vec<String> = emit_configs(&ft.configs).into_iter().map(|(_, t)| t).collect();
    let model = ingest(ft.topology.clone(), &texts).expect("emitted configs parse");
    let request = VerificationRequest::all_pair_reachability(
        fattree_endpoints(&ft),
        "10.0.0.0/8".parse().unwrap(),
    );
    let verifier = S2Verifier::new(
        model,
        &S2Options {
            workers: 3,
            shards: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    assert!(report.all_clear(), "{}", report.summary());
    assert_eq!(report.dpv.reachable_pairs, 8 * 7);
}

#[test]
fn forgotten_origination_breaks_exactly_one_destination() {
    let ft = gen_ft(FatTreeParams::new(4));
    let mut configs = ft.configs.clone();
    inject::drop_network_statement(&mut configs, "pod2-edge1", FatTree::server_prefix(2, 1));
    let model = NetworkModel::build(ft.topology.clone(), configs).unwrap();
    let request = VerificationRequest::all_pair_reachability(
        fattree_endpoints(&ft),
        "10.0.0.0/8".parse().unwrap(),
    );
    let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();

    let victim = ft.edge(2, 1);
    assert_eq!(report.dpv.unreachable_pairs.len(), 7);
    assert!(report.dpv.unreachable_pairs.iter().all(|(_, d)| *d == victim));
    // Each source's traffic for the missing prefix blackholes somewhere.
    assert!(report.dpv.blackholes > 0);
}

#[test]
fn waypoint_holds_when_single_path_enforced() {
    // Shrink ECMP to one path by blocking one aggregation switch entirely:
    // traffic from pod0-edge0 must then flow through pod0-agg1... still
    // two cores beyond. Use a direct intra-pod pair instead, where the
    // only 2 paths go via agg0/agg1, and demand transit through agg0
    // after blocking nothing — expect a violation; then assert the
    // healthy waypoint case via an intra-pod pair where the transit is the
    // destination-attached aggregation layer as a whole (both paths pass
    // *some* agg, but we can only tag one node, so the violation is the
    // expected outcome for ECMP fabrics).
    let ft = gen_ft(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let src = ft.edge(0, 0);
    let dst = ft.edge(0, 1);
    let request = VerificationRequest::single_pair(src, dst, FatTree::server_prefix(0, 1))
        .via(ft.aggs[0]); // pod0-agg0
    let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    // ECMP also uses pod0-agg1, so the waypoint is violated — and the
    // violation names the right triple.
    assert_eq!(
        report.dpv.waypoint_violations,
        vec![(src, dst, ft.aggs[0])]
    );
}

#[test]
fn dcn_aggregation_hides_specifics_from_borders() {
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology.clone(), dcn.configs.clone()).unwrap();
    let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
    let (rib, _, _) = verifier.simulate().unwrap();
    verifier.shutdown();

    // Cluster 1 is the 5-layer cluster with summary-only aggregation: the
    // borders must hold its /16 aggregates but not its /24 specifics.
    let border = dcn.borders[0];
    let border_routes: Vec<_> = rib.node(border).iter().map(|r| r.prefix).collect();
    assert!(border_routes.contains(&Dcn::server_aggregate(1)));
    assert!(!border_routes.contains(&Dcn::server_prefix(1, 0)));
    // Cluster 0 (3 layers, no aggregation) leaks its specifics upward.
    assert!(border_routes.contains(&Dcn::server_prefix(0, 0)));
}

#[test]
fn dcn_remove_private_as_strips_cluster_path_at_borders() {
    let dcn = gen_dcn(DcnParams::small());
    let model = NetworkModel::build(dcn.topology.clone(), dcn.configs.clone()).unwrap();
    let verifier = S2Verifier::new(model, &S2Options::default()).unwrap();
    let (rib, _, _) = verifier.simulate().unwrap();
    verifier.shutdown();
    // The spine applies remove-private-as toward borders, so the AS path
    // of a 3-layer-cluster specific at the border keeps only the public
    // ASNs plus the spine: path length must be well below the layer count
    // + spine depth it traversed.
    let border = dcn.borders[0];
    let r = rib
        .node(border)
        .iter()
        .find(|r| r.prefix == Dcn::server_prefix(0, 0))
        .expect("specific present at border");
    assert!(
        r.as_path_len <= 3,
        "private ASNs were not stripped: path length {}",
        r.as_path_len
    );
}
