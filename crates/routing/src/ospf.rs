//! OSPF model: a round-based distance-vector formulation of SPF.
//!
//! The converged state of OSPF is the all-pairs shortest-path tree; S2's
//! round-based exchange machinery (Algorithm 1) computes exactly that via
//! synchronous Bellman-Ford iterations, which lets OSPF ride the same
//! real/shadow-node transport as BGP. IGPs run to convergence before BGP
//! starts, matching the paper's protocol scheduling (§4.2).

use crate::model::NetworkModel;
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An OSPF route at a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfRoute {
    /// Total path cost.
    pub cost: u32,
    /// ECMP egress interfaces (empty for locally connected prefixes).
    pub egress: Vec<InterfaceId>,
    /// Whether the prefix is connected to this node.
    pub is_local: bool,
}

/// The advertisement a node sends to all OSPF neighbors: its current
/// prefix→cost table.
pub type OspfAdvertisement = BTreeMap<Prefix, u32>;

/// Per-node OSPF state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OspfState {
    /// The owning node.
    pub node: NodeId,
    /// Current routing table.
    pub table: BTreeMap<Prefix, OspfRoute>,
}

impl OspfState {
    /// Initializes the table with the node's own OSPF-enabled subnets.
    ///
    /// A directly connected network carries its interface cost (OSPF stub
    /// network semantics), so a neighbor's total path cost is the sum of
    /// outgoing interface costs including the final hop onto the subnet.
    pub fn originate(model: &NetworkModel, node: NodeId) -> Self {
        let mut table = BTreeMap::new();
        let cfg = &model.configs[node.index()];
        if let Some(ospf) = cfg.ospf.as_ref() {
            for iface in &cfg.interfaces {
                if ospf.interfaces.contains(&iface.name) {
                    table.insert(
                        iface.prefix,
                        OspfRoute {
                            cost: iface.ospf_cost.unwrap_or(ospf.default_cost),
                            egress: Vec::new(),
                            is_local: true,
                        },
                    );
                }
            }
        }
        OspfState { node, table }
    }

    /// The advertisement sent to every neighbor this round.
    pub fn export(&self) -> OspfAdvertisement {
        self.table.iter().map(|(p, r)| (*p, r.cost)).collect()
    }

    /// Merges a neighbor's advertisement received over the adjacency with
    /// link cost `link_cost` and egress `via`. Returns whether the table
    /// changed.
    pub fn receive(&mut self, adv: &OspfAdvertisement, link_cost: u32, via: InterfaceId) -> bool {
        let mut changed = false;
        for (&prefix, &peer_cost) in adv {
            let cand_cost = peer_cost.saturating_add(link_cost);
            match self.table.get_mut(&prefix) {
                None => {
                    self.table.insert(
                        prefix,
                        OspfRoute {
                            cost: cand_cost,
                            egress: vec![via],
                            is_local: false,
                        },
                    );
                    changed = true;
                }
                Some(existing) => {
                    if existing.is_local {
                        continue;
                    }
                    if cand_cost < existing.cost {
                        existing.cost = cand_cost;
                        existing.egress = vec![via];
                        changed = true;
                    } else if cand_cost == existing.cost && !existing.egress.contains(&via) {
                        existing.egress.push(via);
                        existing.egress.sort();
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Number of routes held.
    pub fn route_count(&self) -> usize {
        self.table.len()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.table
            .values()
            .map(|r| std::mem::size_of::<(Prefix, OspfRoute)>() + r.egress.capacity() * 2)
            .sum()
    }
}

/// Runs OSPF to convergence on the full model (monolithic helper used by
/// the baseline verifier and by tests; the distributed runtime drives the
/// same state machine through its own round loop).
pub fn converge(model: &NetworkModel, max_rounds: usize) -> Result<Vec<OspfState>, crate::RoutingError> {
    let mut states: Vec<OspfState> = model
        .topology
        .nodes()
        .map(|n| OspfState::originate(model, n))
        .collect();
    for _ in 0..max_rounds {
        let exports: Vec<OspfAdvertisement> = states.iter().map(OspfState::export).collect();
        let mut changed = false;
        for node in model.topology.nodes() {
            for adj in &model.ospf_adj[node.index()] {
                let adv = &exports[adj.peer_node.index()];
                changed |= states[node.index()].receive(adv, adj.cost, adj.local_if);
            }
        }
        if !changed {
            return Ok(states);
        }
    }
    Err(crate::RoutingError::NotConverged {
        protocol: "ospf",
        rounds: max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkModel;
    use s2_net::config::{DeviceConfig, InterfaceConfig, OspfProcess, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;

    /// A 3-node chain a—b—c with OSPF everywhere; link costs 1 except b→c
    /// which costs 10 on b's side.
    fn chain() -> NetworkModel {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        topo.connect(a, b); // subnet 10.0.0.0/31
        topo.connect(b, c); // subnet 10.0.1.0/31

        let mk = |name: &str, ifaces: Vec<(&str, Ipv4Addr, u8, Option<u32>)>| {
            let mut cfg = DeviceConfig::new(name, Vendor::A);
            let mut ospf_ifaces = Vec::new();
            for (iname, addr, len, cost) in ifaces {
                let mut ic = InterfaceConfig::new(iname, addr, len);
                ic.ospf_cost = cost;
                ospf_ifaces.push(iname.to_string());
                cfg.interfaces.push(ic);
            }
            cfg.ospf = Some(OspfProcess {
                interfaces: ospf_ifaces,
                default_cost: 1,
            });
            cfg
        };

        let ca = mk("a", vec![
            ("eth0", Ipv4Addr::new(10, 0, 0, 0), 31, None),
            ("lo0", Ipv4Addr::new(1, 1, 1, 1), 32, None),
        ]);
        let cb = mk("b", vec![
            ("eth0", Ipv4Addr::new(10, 0, 0, 1), 31, None),
            ("eth1", Ipv4Addr::new(10, 0, 1, 0), 31, Some(10)),
        ]);
        let cc = mk("c", vec![("eth0", Ipv4Addr::new(10, 0, 1, 1), 31, None)]);

        NetworkModel::build(topo, vec![ca, cb, cc]).unwrap()
    }

    #[test]
    fn converges_to_shortest_paths() {
        let m = chain();
        let states = converge(&m, 32).unwrap();
        // a reaches 10.0.1.0/31 via b at cost 1 (a's iface) + 10 (b's eth1).
        let a_route = &states[0].table[&"10.0.1.0/31".parse().unwrap()];
        assert_eq!(a_route.cost, 11);
        assert!(!a_route.is_local);
        assert_eq!(a_route.egress.len(), 1);
        // b holds both subnets locally.
        assert!(states[1].table[&"10.0.0.0/31".parse().unwrap()].is_local);
        // c reaches a's loopback: /32 on a is OSPF-enabled so advertised.
        // Cost: c.eth0 (1) + b.eth0 (1) + a.lo0 stub cost (1).
        let c_route = &states[2].table[&"1.1.1.1/32".parse().unwrap()];
        assert_eq!(c_route.cost, 3);
    }

    #[test]
    fn local_routes_never_overwritten() {
        let m = chain();
        let states = converge(&m, 32).unwrap();
        for s in &states {
            for r in s.table.values() {
                if r.is_local {
                    // Stub cost = interface cost; never replaced by a
                    // learned path, and no egress.
                    assert!(r.cost >= 1);
                    assert!(r.egress.is_empty());
                }
            }
        }
    }

    #[test]
    fn export_reflects_table() {
        let m = chain();
        let s = OspfState::originate(&m, s2_net::topology::NodeId(0));
        let adv = s.export();
        assert_eq!(adv.len(), 2);
        // Stub costs: eth0 uses the default cost, lo0 too.
        assert!(adv.values().all(|&c| c == 1));
    }

    #[test]
    fn receive_is_idempotent_at_fixpoint() {
        let m = chain();
        let mut states = converge(&m, 32).unwrap();
        let exports: Vec<OspfAdvertisement> = states.iter().map(OspfState::export).collect();
        for node in m.topology.nodes() {
            for adj in &m.ospf_adj[node.index()] {
                assert!(!states[node.index()].receive(&exports[adj.peer_node.index()], adj.cost, adj.local_if));
            }
        }
    }

    #[test]
    fn ecmp_merges_equal_cost() {
        // Diamond: a—b—d and a—c—d, equal costs; a sees d's subnet via two
        // interfaces.
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        let d = topo.add_node("d");
        topo.connect(a, b);
        topo.connect(a, c);
        topo.connect(b, d);
        topo.connect(c, d);

        let mk = |name: &str, ifaces: Vec<(&str, Ipv4Addr)>| {
            let mut cfg = DeviceConfig::new(name, Vendor::A);
            let mut ospf_ifaces = Vec::new();
            for (iname, addr) in ifaces {
                cfg.interfaces.push(InterfaceConfig::new(iname, addr, 31));
                ospf_ifaces.push(iname.to_string());
            }
            cfg.ospf = Some(OspfProcess { interfaces: ospf_ifaces, default_cost: 1 });
            cfg
        };
        let ip = Ipv4Addr::new;
        let cfgs = vec![
            mk("a", vec![("e0", ip(10, 0, 0, 0)), ("e1", ip(10, 0, 1, 0))]),
            mk("b", vec![("e0", ip(10, 0, 0, 1)), ("e1", ip(10, 0, 2, 0))]),
            mk("c", vec![("e0", ip(10, 0, 1, 1)), ("e1", ip(10, 0, 3, 0))]),
            mk("d", vec![("e0", ip(10, 0, 2, 1)), ("e1", ip(10, 0, 3, 1))]),
        ];
        let m = NetworkModel::build(topo, cfgs).unwrap();
        let states = converge(&m, 32).unwrap();
        // From a, d's two subnets are each reachable one way at equal cost;
        // but b's far subnet (10.0.2.0/31) is cost 2 via e0 only; check a
        // reaches *some* prefix via 2 equal-cost interfaces: none here.
        // Instead check from d: a's subnets are symmetric.
        let d_to_ab = &states[3].table[&"10.0.0.0/31".parse().unwrap()];
        assert_eq!(d_to_ab.cost, 2);
        assert_eq!(d_to_ab.egress.len(), 1);
        // d does not see an ECMP pair for a—b subnet (only via b), but the
        // a—b and a—c subnets jointly prove both paths work.
        let d_to_ac = &states[3].table[&"10.0.1.0/31".parse().unwrap()];
        assert_eq!(d_to_ac.cost, 2);
    }

    #[test]
    fn not_converged_errors_out() {
        let m = chain();
        assert!(matches!(
            converge(&m, 1),
            Err(crate::RoutingError::NotConverged { .. })
        ));
    }
}
