//! The per-switch control-plane state machine.
//!
//! A [`SwitchModel`] is the "off-the-shelf switch model" of the paper: it
//! owns the node's adjacency RIBs and local RIB and exposes exactly the
//! operations the round-based fix-point needs:
//!
//! * [`SwitchModel::begin_bgp`] — (re)originate local routes, optionally
//!   restricted to a prefix shard,
//! * [`SwitchModel::bgp_export`] — compute the advertisement for one
//!   session from the current local RIB (export policy, aggregation
//!   suppression, `remove-private-as`, ASN prepending, next-hop rewrite),
//! * [`SwitchModel::bgp_receive`] — import an advertisement (loop check,
//!   vendor quirks, import policy) into the per-session Adj-RIB-In,
//! * [`SwitchModel::bgp_decide`] — rerun best-path selection and
//!   aggregation activation over all candidates.
//!
//! The same state machine is driven by the monolithic baseline and by the
//! distributed S2 runtime — the *only* difference is who transports the
//! advertisements, which is precisely the decoupling the paper advocates.

use crate::bgp::{select_multipath, Candidate};
use crate::model::{BgpSession, NetworkModel};
use crate::ospf::OspfState;
use crate::policy_eval::{self, PolicyVerdict};
use crate::route::{BgpRoute, Origin, RibRoute, LOCAL_WEIGHT, DEFAULT_LOCAL_PREF};
use s2_net::config::{DeviceConfig, VendorQuirks};
use s2_net::policy::Protocol;
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::Prefix;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// A resolved static route: destination plus egress decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StaticVia {
    Interface(InterfaceId),
    Discard,
}

/// Per-switch control-plane state.
#[derive(Debug, Clone)]
pub struct SwitchModel {
    /// The node this model simulates.
    pub node: NodeId,
    cfg: Arc<DeviceConfig>,
    /// Established sessions (shared with the network model).
    pub sessions: Vec<BgpSession>,
    quirks: VendorQuirks,
    asn: u32,
    max_ecmp: u8,
    /// OSPF state (run to convergence before BGP starts).
    pub ospf: OspfState,
    /// Adj-RIB-In per session: the latest advertisement from that peer.
    adj_in: Vec<BTreeMap<Prefix, BgpRoute>>,
    /// Locally originated routes for the current shard.
    local_routes: Vec<BgpRoute>,
    /// The local RIB: selected multipath candidates per prefix.
    loc_rib: BTreeMap<Prefix, Vec<Candidate>>,
    /// Resolved static routes.
    statics: Vec<(Prefix, StaticVia)>,
    /// Prefix dependencies observed while computing routes (aggregate
    /// activations, conditional-advertisement evaluations). The §7
    /// soundness check compares these against the shard plan.
    observed_deps: std::collections::BTreeSet<(Prefix, Prefix)>,
    /// Interfaces failed for the current scenario (resilience sweeps,
    /// chaos plans). A session on a failed interface exports nothing —
    /// the peer sees a full withdrawal — and the interface's connected
    /// route leaves the base RIB.
    failed_ifaces: HashSet<InterfaceId>,
    /// Connected prefixes of the failed interfaces (precomputed so
    /// `base_rib_routes` needs no model access).
    failed_connected: HashSet<Prefix>,
}

impl SwitchModel {
    /// Builds the switch model for `node` from the resolved network model.
    pub fn new(model: &NetworkModel, node: NodeId) -> Self {
        let cfg = model.configs[node.index()].clone();
        let sessions = model.bgp_sessions[node.index()].clone();
        let (asn, max_ecmp) = cfg
            .bgp
            .as_ref()
            .map(|b| (b.asn, b.max_ecmp))
            .unwrap_or((0, 1));
        let statics = cfg
            .static_routes
            .iter()
            .map(|s| {
                let via = match s.next_hop {
                    None => StaticVia::Discard,
                    Some(nh) => {
                        // Resolve via a connected subnet's topology port.
                        let mut found = StaticVia::Discard;
                        for (ifid, _, _) in model.topology.neighbors(node) {
                            if let Some(icfg) = model.iface_config(node, *ifid) {
                                if icfg.prefix.contains_addr(nh) && icfg.addr != nh {
                                    found = StaticVia::Interface(*ifid);
                                    break;
                                }
                            }
                        }
                        found
                    }
                };
                (s.prefix, via)
            })
            .collect();
        let adj_in = vec![BTreeMap::new(); sessions.len()];
        SwitchModel {
            node,
            quirks: cfg.vendor.quirks(),
            sessions,
            asn,
            max_ecmp,
            ospf: OspfState::originate(model, node),
            adj_in,
            local_routes: Vec::new(),
            loc_rib: BTreeMap::new(),
            statics,
            observed_deps: std::collections::BTreeSet::new(),
            failed_ifaces: HashSet::new(),
            failed_connected: HashSet::new(),
            cfg,
        }
    }

    /// Marks `ifaces` as failed, replacing any previous failure set. The
    /// same switch model then computes the post-failure control plane
    /// through the ordinary export/receive/decide machinery: exports on
    /// failed sessions become empty (so peers withdraw on their next
    /// apply) and the interfaces' connected routes vanish from
    /// [`SwitchModel::base_rib_routes`]. Pass an empty set to restore the
    /// healthy state.
    pub fn set_failed_interfaces(
        &mut self,
        model: &NetworkModel,
        ifaces: impl IntoIterator<Item = InterfaceId>,
    ) {
        self.failed_ifaces = ifaces.into_iter().collect();
        self.failed_connected = self
            .failed_ifaces
            .iter()
            .filter_map(|&i| model.iface_config(self.node, i).map(|c| c.prefix))
            .collect();
    }

    /// The interfaces currently failed on this switch.
    pub fn failed_interfaces(&self) -> &HashSet<InterfaceId> {
        &self.failed_ifaces
    }

    /// Drains the dependencies observed since the last call.
    pub fn take_observed_deps(&mut self) -> Vec<(Prefix, Prefix)> {
        std::mem::take(&mut self.observed_deps).into_iter().collect()
    }

    /// Statically known prefix dependencies of this device's configuration:
    /// each conditional advertisement makes `advertise` depend on
    /// `condition`. (Aggregate→contributor edges are derived from prefix
    /// coverage by the shard planner itself.)
    pub fn prefix_dependencies(&self) -> Vec<(Prefix, Prefix)> {
        self.cfg
            .bgp
            .as_ref()
            .map(|b| {
                b.conditional
                    .iter()
                    .map(|c| (c.advertise, c.condition))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether the conditional-advertisement gates allow exporting routes
    /// for `prefix` given the current local RIB.
    fn conditionals_allow(&self, prefix: Prefix) -> bool {
        let Some(bgp) = self.cfg.bgp.as_ref() else { return true };
        bgp.conditional.iter().all(|c| {
            if c.advertise != prefix {
                return true;
            }
            let present = self.loc_rib.contains_key(&c.condition);
            present == c.when_present
        })
    }

    /// This switch's ASN (0 if BGP is not configured).
    pub fn asn(&self) -> u32 {
        self.asn
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// All prefixes this node can originate into BGP (networks, statics,
    /// connected and OSPF redistribution targets, aggregates). Used by the
    /// prefix-sharding planner to build the dependency graph.
    pub fn originated_prefixes(&self) -> Vec<(Prefix, Protocol)> {
        let mut out = Vec::new();
        if let Some(bgp) = self.cfg.bgp.as_ref() {
            for n in &bgp.networks {
                out.push((n.prefix, Protocol::Bgp));
            }
            for a in &bgp.aggregates {
                out.push((a.prefix, Protocol::Aggregate));
            }
            for proto in &bgp.redistribute {
                match proto {
                    Protocol::Connected => {
                        for i in &self.cfg.interfaces {
                            out.push((i.prefix, Protocol::Connected));
                        }
                    }
                    Protocol::Static => {
                        for (p, _) in &self.statics {
                            out.push((*p, Protocol::Static));
                        }
                    }
                    Protocol::Ospf => {
                        for p in self.ospf.table.keys() {
                            out.push((*p, Protocol::Ospf));
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Starts a BGP computation round-set: clears all BGP state and
    /// originates local routes, restricted to `shard` when given.
    ///
    /// OSPF must already be converged (redistribution reads its table).
    pub fn begin_bgp(&mut self, shard: Option<&BTreeSet<Prefix>>) {
        for m in &mut self.adj_in {
            m.clear();
        }
        self.loc_rib.clear();
        self.local_routes.clear();
        let Some(bgp) = self.cfg.bgp.as_ref() else { return };
        let in_shard = |p: Prefix| shard.is_none_or(|s| s.contains(&p));

        let mut seen: HashSet<Prefix> = HashSet::new();
        for n in &bgp.networks {
            if in_shard(n.prefix) && seen.insert(n.prefix) {
                self.local_routes
                    .push(BgpRoute::local(n.prefix, Origin::Igp, Protocol::Bgp));
            }
        }
        for proto in &bgp.redistribute {
            match proto {
                Protocol::Connected => {
                    for i in &self.cfg.interfaces {
                        if in_shard(i.prefix) && seen.insert(i.prefix) {
                            self.local_routes.push(BgpRoute::local(
                                i.prefix,
                                Origin::Incomplete,
                                Protocol::Connected,
                            ));
                        }
                    }
                }
                Protocol::Static => {
                    for (p, _) in &self.statics {
                        if in_shard(*p) && seen.insert(*p) {
                            self.local_routes.push(BgpRoute::local(
                                *p,
                                Origin::Incomplete,
                                Protocol::Static,
                            ));
                        }
                    }
                }
                Protocol::Ospf => {
                    for p in self.ospf.table.keys() {
                        if in_shard(*p) && seen.insert(*p) {
                            self.local_routes.push(BgpRoute::local(
                                *p,
                                Origin::Incomplete,
                                Protocol::Ospf,
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        // Every conditional advertisement is a prefix dependency the
        // moment the computation starts, whichever way it evaluates.
        for (a, c) in self.prefix_dependencies() {
            self.observed_deps.insert((a, c));
        }
        // Install the initial local RIB.
        self.bgp_decide(shard);
    }

    /// Active summary-only aggregate prefixes (present in the local RIB).
    fn active_summary_aggregates(&self) -> Vec<Prefix> {
        let Some(bgp) = self.cfg.bgp.as_ref() else { return Vec::new() };
        bgp.aggregates
            .iter()
            .filter(|a| a.summary_only && self.loc_rib.contains_key(&a.prefix))
            .map(|a| a.prefix)
            .collect()
    }

    /// Computes the advertisement for session `si` from the current local
    /// RIB. Pure with respect to `self`; the fix-point engine snapshots all
    /// exports before applying any (synchronous rounds).
    pub fn bgp_export(&self, si: usize) -> Vec<BgpRoute> {
        let Some(bgp) = self.cfg.bgp.as_ref() else { return Vec::new() };
        let session = &self.sessions[si];
        // A session on a failed interface is down: it advertises nothing,
        // which the two-phase rounds deliver to the peer as a withdrawal
        // of everything previously advertised here.
        if self.failed_ifaces.contains(&session.local_if) {
            return Vec::new();
        }
        let neighbor = &bgp.neighbors[session.neighbor_index];
        let suppressors = self.active_summary_aggregates();
        let mut out = Vec::new();

        for (prefix, cands) in &self.loc_rib {
            let best = &cands[0].route;
            // Summary-only suppression: more-specific contributors of an
            // active aggregate are not advertised.
            let suppressed = suppressors
                .iter()
                .any(|agg| agg.covers(*prefix) && *prefix != *agg);
            if suppressed {
                continue;
            }
            if !self.conditionals_allow(*prefix) {
                continue;
            }
            let mut r = best.clone();
            // Local-only attributes are not advertised.
            r.weight = 0;
            r.local_pref = DEFAULT_LOCAL_PREF;
            r.med = 0;
            if let Some(map) = &neighbor.export_policy {
                match policy_eval::run_route_map(&self.cfg, map, &r) {
                    PolicyVerdict::Permit(pr) => r = pr,
                    PolicyVerdict::Deny => continue,
                }
            }
            if neighbor.remove_private_as {
                policy_eval::remove_private_as(&mut r.as_path, self.quirks.remove_private_as);
            }
            r.as_path.insert(0, self.asn);
            r.next_hop = session.local_addr;
            r.source_protocol = Protocol::Bgp;
            out.push(r);
        }
        out
    }

    /// Ingests a full advertisement from the peer on session `si`,
    /// replacing that session's Adj-RIB-In. Returns whether it changed.
    pub fn bgp_receive(&mut self, si: usize, routes: &[BgpRoute]) -> bool {
        let mut new_map: BTreeMap<Prefix, BgpRoute> = BTreeMap::new();
        let import_policy = self
            .cfg
            .bgp
            .as_ref()
            .map(|b| b.neighbors[self.sessions[si].neighbor_index].import_policy.clone())
            .unwrap_or(None);
        for r in routes {
            // eBGP loop prevention.
            if r.as_path_contains(self.asn) {
                continue;
            }
            // Vendor-specific: some vendors reject empty eBGP AS paths.
            if r.as_path.is_empty() && !self.quirks.accept_empty_ebgp_as_path {
                continue;
            }
            let mut r = r.clone();
            r.weight = 0;
            if let Some(map) = &import_policy {
                match policy_eval::run_route_map(&self.cfg, map, &r) {
                    PolicyVerdict::Permit(pr) => r = pr,
                    PolicyVerdict::Deny => continue,
                }
            }
            new_map.entry(r.prefix).or_insert(r);
        }
        if new_map != self.adj_in[si] {
            self.adj_in[si] = new_map;
            true
        } else {
            false
        }
    }

    /// Reruns best-path selection and aggregation over all candidates.
    /// Returns whether the local RIB changed.
    pub fn bgp_decide(&mut self, shard: Option<&BTreeSet<Prefix>>) -> bool {
        let mut cands: BTreeMap<Prefix, Vec<Candidate>> = BTreeMap::new();
        for r in &self.local_routes {
            cands.entry(r.prefix).or_default().push(Candidate {
                route: r.clone(),
                peer: None,
                session: u32::MAX,
            });
        }
        for (si, map) in self.adj_in.iter().enumerate() {
            let peer = self.sessions[si].peer_addr;
            for r in map.values() {
                cands.entry(r.prefix).or_default().push(Candidate {
                    route: r.clone(),
                    peer: Some(peer),
                    session: si as u32,
                });
            }
        }
        let mut new_rib: BTreeMap<Prefix, Vec<Candidate>> = cands
            .into_iter()
            .map(|(p, cs)| (p, select_multipath(cs, self.max_ecmp)))
            .collect();

        // Aggregation: most specific aggregates first so aggregates can
        // contribute to covering aggregates.
        if let Some(bgp) = self.cfg.bgp.as_ref() {
            let mut aggs: Vec<_> = bgp.aggregates.iter().collect();
            aggs.sort_by(|a, b| b.prefix.len().cmp(&a.prefix.len()).then(a.prefix.cmp(&b.prefix)));
            for agg in aggs {
                if let Some(s) = shard {
                    if !s.contains(&agg.prefix) {
                        continue;
                    }
                }
                let contributors: Vec<Prefix> = new_rib
                    .keys()
                    .filter(|p| agg.prefix.covers(**p) && **p != agg.prefix)
                    .copied()
                    .collect();
                if contributors.is_empty() {
                    continue;
                }
                for c in contributors {
                    self.observed_deps.insert((agg.prefix, c));
                }
                let mut route = BgpRoute::local(agg.prefix, Origin::Incomplete, Protocol::Aggregate);
                route.weight = LOCAL_WEIGHT;
                for c in &agg.communities {
                    route.add_community(*c);
                }
                let entry = new_rib.entry(agg.prefix).or_default();
                entry.push(Candidate {
                    route,
                    peer: None,
                    session: u32::MAX,
                });
                *entry = select_multipath(std::mem::take(entry), self.max_ecmp);
            }
        }

        if new_rib != self.loc_rib {
            self.loc_rib = new_rib;
            true
        } else {
            false
        }
    }

    /// Read access to the local RIB (tests, diagnostics).
    pub fn loc_rib(&self) -> &BTreeMap<Prefix, Vec<Candidate>> {
        &self.loc_rib
    }

    /// Number of paths (prefix × ECMP alternatives) in the local RIB —
    /// the paper's "number of routes" metric.
    pub fn loc_rib_path_count(&self) -> usize {
        self.loc_rib.values().map(Vec::len).sum()
    }

    /// Approximate bytes held by BGP state (Adj-RIB-Ins + local RIB), the
    /// quantity prefix sharding exists to bound.
    pub fn approx_bgp_bytes(&self) -> usize {
        let adj: usize = self
            .adj_in
            .iter()
            .flat_map(|m| m.values())
            .map(BgpRoute::approx_bytes)
            .sum();
        let rib: usize = self
            .loc_rib
            .values()
            .flatten()
            .map(|c| c.route.approx_bytes())
            .sum();
        adj + rib
    }

    /// Extracts the BGP portion of the final RIB (call once per shard,
    /// after convergence).
    pub fn bgp_rib_routes(&self) -> Vec<RibRoute> {
        let mut out = Vec::new();
        for (prefix, cands) in &self.loc_rib {
            let best = &cands[0];
            let protocol = best.route.source_protocol;
            // A locally *redistributed* route (OSPF/static/connected pulled
            // into BGP) exists for advertisement only; the source
            // protocol's entry — emitted by `base_rib_routes` — carries the
            // real forwarding state on this router. Installing the BGP
            // copy would wrongly claim local delivery and, with BGP's
            // lower administrative distance, shadow the IGP route.
            if best.session == u32::MAX
                && !matches!(protocol, Protocol::Bgp | Protocol::Aggregate)
            {
                continue;
            }
            let is_local = best.session == u32::MAX && protocol != Protocol::Aggregate;
            let mut egress: Vec<InterfaceId> = cands
                .iter()
                .filter(|c| c.session != u32::MAX)
                .map(|c| self.sessions[c.session as usize].local_if)
                .filter(|i| !self.failed_ifaces.contains(i))
                .collect();
            egress.sort();
            egress.dedup();
            out.push(RibRoute {
                prefix: *prefix,
                protocol: if protocol == Protocol::Aggregate {
                    Protocol::Aggregate
                } else {
                    Protocol::Bgp
                },
                egress,
                is_local,
                as_path_len: best.route.as_path.len() as u32,
            });
        }
        out
    }

    /// Extracts the non-BGP portion of the final RIB: connected, static and
    /// OSPF routes (call once, independent of sharding).
    pub fn base_rib_routes(&self) -> Vec<RibRoute> {
        let mut out = Vec::new();
        for i in &self.cfg.interfaces {
            if self.failed_connected.contains(&i.prefix) {
                continue;
            }
            out.push(RibRoute {
                prefix: i.prefix,
                protocol: Protocol::Connected,
                egress: Vec::new(),
                is_local: true,
                as_path_len: 0,
            });
        }
        for (p, via) in &self.statics {
            out.push(RibRoute {
                prefix: *p,
                protocol: Protocol::Static,
                egress: match via {
                    StaticVia::Interface(i) if !self.failed_ifaces.contains(i) => vec![*i],
                    _ => Vec::new(),
                },
                is_local: false,
                as_path_len: 0,
            });
        }
        for (p, r) in &self.ospf.table {
            if r.is_local {
                continue; // covered by connected
            }
            out.push(RibRoute {
                prefix: *p,
                protocol: Protocol::Ospf,
                egress: r
                    .egress
                    .iter()
                    .copied()
                    .filter(|e| !self.failed_ifaces.contains(e))
                    .collect(),
                is_local: false,
                as_path_len: 0,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkModel;
    use s2_net::config::{BgpNeighbor, BgpProcess, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;

    /// Two nodes, a (AS 65001, originates 10.1.0.0/24) — b (AS 65002).
    fn pair() -> (NetworkModel, SwitchModel, SwitchModel) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b);

        let mut ca = DeviceConfig::new("a", Vendor::A);
        ca.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 0), 31));
        ca.interfaces.push(InterfaceConfig::new("lo0", Ipv4Addr::new(10, 1, 0, 1), 24));
        let mut bgp_a = BgpProcess::new(65001, Ipv4Addr::new(1, 0, 0, 1));
        bgp_a.networks.push(Network { prefix: "10.1.0.0/24".parse().unwrap() });
        bgp_a.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 1),
            remote_as: 65002,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        ca.bgp = Some(bgp_a);

        let mut cb = DeviceConfig::new("b", Vendor::A);
        cb.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 1), 31));
        let mut bgp_b = BgpProcess::new(65002, Ipv4Addr::new(1, 0, 0, 2));
        bgp_b.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 0),
            remote_as: 65001,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cb.bgp = Some(bgp_b);

        let model = NetworkModel::build(topo, vec![ca, cb]).unwrap();
        let sa = SwitchModel::new(&model, NodeId(0));
        let sb = SwitchModel::new(&model, NodeId(1));
        (model, sa, sb)
    }

    fn converge_pair(sa: &mut SwitchModel, sb: &mut SwitchModel) {
        sa.begin_bgp(None);
        sb.begin_bgp(None);
        for _ in 0..8 {
            let a_out = sa.bgp_export(0);
            let b_out = sb.bgp_export(0);
            let mut changed = sb.bgp_receive(0, &a_out);
            changed |= sa.bgp_receive(0, &b_out);
            changed |= sa.bgp_decide(None);
            changed |= sb.bgp_decide(None);
            if !changed {
                break;
            }
        }
    }

    #[test]
    fn origination_and_propagation() {
        let (_, mut sa, mut sb) = pair();
        converge_pair(&mut sa, &mut sb);
        let p: Prefix = "10.1.0.0/24".parse().unwrap();
        // a holds its network locally.
        assert_eq!(sa.loc_rib()[&p][0].session, u32::MAX);
        // b learned it with AS path [65001].
        let b_route = &sb.loc_rib()[&p][0];
        assert_eq!(b_route.route.as_path, vec![65001]);
        assert_eq!(b_route.route.next_hop, Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(b_route.session, 0);
    }

    #[test]
    fn loop_prevention_rejects_own_asn() {
        let (_, mut sa, mut sb) = pair();
        converge_pair(&mut sa, &mut sb);
        // b advertises a's own prefix back; a must reject it (path holds
        // 65001 after b's export prepends 65002 to [65001]).
        let b_out = sb.bgp_export(0);
        let back: Vec<_> = b_out
            .iter()
            .filter(|r| r.prefix == "10.1.0.0/24".parse().unwrap())
            .collect();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].as_path, vec![65002, 65001]);
        // a's adj-in for that prefix stays empty (loop check).
        assert!(!sa.bgp_receive(0, &b_out) || !sa.loc_rib()[&"10.1.0.0/24".parse().unwrap()]
            .iter()
            .any(|c| c.session != u32::MAX));
        let changed = sa.bgp_decide(None);
        assert!(!changed, "loop-rejected route must not alter the RIB");
    }

    #[test]
    fn export_resets_local_attributes() {
        let (_, mut sa, _) = pair();
        sa.begin_bgp(None);
        let out = sa.bgp_export(0);
        let r = out.iter().find(|r| r.prefix == "10.1.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(r.weight, 0);
        assert_eq!(r.local_pref, DEFAULT_LOCAL_PREF);
        assert_eq!(r.as_path, vec![65001]);
    }

    #[test]
    fn sharding_filters_origination() {
        let (_, mut sa, _) = pair();
        let empty: BTreeSet<Prefix> = BTreeSet::new();
        sa.begin_bgp(Some(&empty));
        assert!(sa.loc_rib().is_empty());
        let mut shard = BTreeSet::new();
        shard.insert("10.1.0.0/24".parse::<Prefix>().unwrap());
        sa.begin_bgp(Some(&shard));
        assert_eq!(sa.loc_rib().len(), 1);
    }

    #[test]
    fn rib_routes_report_egress() {
        let (_, mut sa, mut sb) = pair();
        converge_pair(&mut sa, &mut sb);
        let rib_b = sb.bgp_rib_routes();
        let r = rib_b.iter().find(|r| r.prefix == "10.1.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(r.egress.len(), 1);
        assert!(!r.is_local);
        assert_eq!(r.as_path_len, 1);
        let rib_a = sa.bgp_rib_routes();
        let ra = rib_a.iter().find(|r| r.prefix == "10.1.0.0/24".parse().unwrap()).unwrap();
        assert!(ra.is_local);
        assert!(ra.egress.is_empty());
    }

    #[test]
    fn base_rib_contains_connected() {
        let (_, sa, _) = pair();
        let base = sa.base_rib_routes();
        assert!(base
            .iter()
            .any(|r| r.protocol == Protocol::Connected && r.prefix == "10.0.0.0/31".parse().unwrap()));
        assert!(base.iter().all(|r| r.protocol != Protocol::Bgp));
    }

    #[test]
    fn failed_interface_withdraws_and_drops_connected() {
        let (model, mut sa, mut sb) = pair();
        converge_pair(&mut sa, &mut sb);
        let p: Prefix = "10.1.0.0/24".parse().unwrap();
        assert!(sb.loc_rib().contains_key(&p));

        // Fail the a—b link on both endpoints (both sessions ride eth0).
        sa.set_failed_interfaces(&model, [InterfaceId(0)]);
        sb.set_failed_interfaces(&model, [InterfaceId(0)]);
        // Re-run rounds *without* begin_bgp: the warm state withdraws.
        for _ in 0..8 {
            let a_out = sa.bgp_export(0);
            let b_out = sb.bgp_export(0);
            let mut changed = sb.bgp_receive(0, &a_out);
            changed |= sa.bgp_receive(0, &b_out);
            changed |= sa.bgp_decide(None);
            changed |= sb.bgp_decide(None);
            if !changed {
                break;
            }
        }
        assert!(sa.bgp_export(0).is_empty(), "failed session exports nothing");
        assert!(!sb.loc_rib().contains_key(&p), "peer withdrew the route");
        // The connected /31 left the base RIB on both sides.
        let link: Prefix = "10.0.0.0/31".parse().unwrap();
        assert!(!sa.base_rib_routes().iter().any(|r| r.prefix == link));
        assert!(!sb.base_rib_routes().iter().any(|r| r.prefix == link));
        // lo0's /24 connected route survives on a.
        assert!(sa.base_rib_routes().iter().any(|r| r.prefix == p));

        // Restoring the empty failure set heals the model.
        sa.set_failed_interfaces(&model, []);
        sb.set_failed_interfaces(&model, []);
        assert!(sa.failed_interfaces().is_empty());
        for _ in 0..8 {
            let a_out = sa.bgp_export(0);
            let b_out = sb.bgp_export(0);
            let mut changed = sb.bgp_receive(0, &a_out);
            changed |= sa.bgp_receive(0, &b_out);
            changed |= sa.bgp_decide(None);
            changed |= sb.bgp_decide(None);
            if !changed {
                break;
            }
        }
        assert!(sb.loc_rib().contains_key(&p), "route relearned after repair");
    }

    #[test]
    fn route_counting_and_memory() {
        let (_, mut sa, mut sb) = pair();
        converge_pair(&mut sa, &mut sb);
        assert!(sb.loc_rib_path_count() >= 1);
        assert!(sb.approx_bgp_bytes() > 0);
    }
}
