//! The synchronous fix-point engine (Algorithm 1 of the paper).
//!
//! Rounds are Jacobi-style: all advertisements are computed from the state
//! at the start of the round, then delivered and applied. This makes the
//! converged result independent of node iteration order and of how nodes
//! are spread over workers — the property behind the paper's claim that S2
//! and Batfish "output the same set of RIBs" (§5.3). The monolithic engine
//! here is used by the Batfish-like baseline and by differential tests; the
//! distributed runtime replays the identical schedule with worker-local
//! round halves and sidecar-delivered remote advertisements.

use crate::model::NetworkModel;
use crate::route::BgpRoute;
use crate::switch::SwitchModel;
use s2_net::Prefix;
use std::collections::BTreeSet;

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The fix point was not reached within the round budget (the paper's
    /// §7 limitation: a non-converging control plane cannot terminate).
    NotConverged {
        /// Which protocol failed to converge.
        protocol: &'static str,
        /// The round budget that was exhausted.
        rounds: usize,
    },
    /// A worker exceeded its memory budget (used by the distributed
    /// runtime and the OOM-aware benchmarks).
    OutOfMemory {
        /// The memory budget in bytes.
        budget: usize,
        /// Observed peak in bytes.
        observed: usize,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::NotConverged { protocol, rounds } => {
                write!(f, "{protocol} did not converge within {rounds} rounds")
            }
            RoutingError::OutOfMemory { budget, observed } => {
                write!(f, "out of memory: {observed} bytes used, budget {budget}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Statistics from one BGP fix-point run (one shard).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BgpStats {
    /// Rounds until convergence.
    pub rounds: usize,
    /// Advertised routes delivered in total (message volume).
    pub routes_exchanged: usize,
    /// Peak of the summed per-switch BGP memory estimate, in bytes.
    pub peak_bytes: usize,
    /// Total installed paths at convergence.
    pub total_paths: usize,
}

/// Default round budget: generous for any realistic DC diameter.
pub const DEFAULT_MAX_ROUNDS: usize = 256;

/// Runs OSPF on all switches to convergence (monolithic).
pub fn converge_ospf(
    model: &NetworkModel,
    switches: &mut [SwitchModel],
    max_rounds: usize,
) -> Result<usize, RoutingError> {
    for round in 0..max_rounds {
        let exports: Vec<_> = switches.iter().map(|s| s.ospf.export()).collect();
        let mut changed = false;
        for node in model.topology.nodes() {
            for adj in &model.ospf_adj[node.index()] {
                let adv = &exports[adj.peer_node.index()];
                changed |= switches[node.index()]
                    .ospf
                    .receive(adv, adj.cost, adj.local_if);
            }
        }
        if !changed {
            return Ok(round + 1);
        }
    }
    Err(RoutingError::NotConverged {
        protocol: "ospf",
        rounds: max_rounds,
    })
}

/// Runs BGP on all switches to convergence for one (optional) prefix shard.
/// `begin_bgp` must not have been called by the caller — this function
/// does it.
pub fn converge_bgp(
    model: &NetworkModel,
    switches: &mut [SwitchModel],
    shard: Option<&BTreeSet<Prefix>>,
    max_rounds: usize,
) -> Result<BgpStats, RoutingError> {
    let mut stats = BgpStats::default();
    for s in switches.iter_mut() {
        s.begin_bgp(shard);
    }
    for round in 0..max_rounds {
        // Phase 1: snapshot all advertisements.
        // deliveries[target_node] = (target_session, routes) list.
        let mut deliveries: Vec<Vec<(u32, Vec<BgpRoute>)>> =
            model.topology.nodes().map(|_| Vec::new()).collect();
        for s in switches.iter() {
            for (si, session) in s.sessions.iter().enumerate() {
                let adv = s.bgp_export(si);
                stats.routes_exchanged += adv.len();
                deliveries[session.peer_node.index()].push((session.peer_session_index, adv));
            }
        }
        // Phase 2: apply.
        let mut changed = false;
        for (node, batch) in deliveries.into_iter().enumerate() {
            let s = &mut switches[node];
            for (target_session, adv) in batch {
                changed |= s.bgp_receive(target_session as usize, &adv);
            }
            changed |= s.bgp_decide(shard);
        }
        let bytes: usize = switches.iter().map(SwitchModel::approx_bgp_bytes).sum();
        stats.peak_bytes = stats.peak_bytes.max(bytes);
        stats.rounds = round + 1;
        if !changed {
            stats.total_paths = switches.iter().map(SwitchModel::loc_rib_path_count).sum();
            return Ok(stats);
        }
    }
    Err(RoutingError::NotConverged {
        protocol: "bgp",
        rounds: max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::{
        Aggregate, BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor,
    };
    use s2_net::policy::community;
    use s2_net::topology::{NodeId, Topology};
    use s2_net::Ipv4Addr;

    /// A 4-node line: t0(65000) — m1(65001) — m2(65002) — t3(65003).
    /// t0 originates 10.0.0.0/24 and 10.0.1.0/24; m2 aggregates 10.0.0.0/16
    /// summary-only with a community tag.
    fn line_with_aggregation() -> NetworkModel {
        let mut topo = Topology::new();
        let names = ["t0", "m1", "m2", "t3"];
        let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
        topo.connect(ids[0], ids[1]);
        topo.connect(ids[1], ids[2]);
        topo.connect(ids[2], ids[3]);

        let link_subnets = [
            (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
            (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
            (Ipv4Addr::new(172, 16, 0, 4), Ipv4Addr::new(172, 16, 0, 5)),
        ];

        let mut cfgs: Vec<DeviceConfig> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut c = DeviceConfig::new(*n, Vendor::A);
                c.bgp = Some(BgpProcess::new(
                    65000 + i as u32,
                    Ipv4Addr::new(1, 1, 1, i as u8 + 1),
                ));
                c
            })
            .collect();

        let add_link = |cfgs: &mut Vec<DeviceConfig>, i: usize, j: usize, li: usize| {
            let (ai, aj) = link_subnets[li];
            let ifname_i = format!("eth{li}_a");
            let ifname_j = format!("eth{li}_b");
            cfgs[i].interfaces.push(InterfaceConfig::new(ifname_i, ai, 31));
            cfgs[j].interfaces.push(InterfaceConfig::new(ifname_j, aj, 31));
            let asn_i = cfgs[i].bgp.as_ref().unwrap().asn;
            let asn_j = cfgs[j].bgp.as_ref().unwrap().asn;
            cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: aj,
                remote_as: asn_j,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
            cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: ai,
                remote_as: asn_i,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
        };
        add_link(&mut cfgs, 0, 1, 0);
        add_link(&mut cfgs, 1, 2, 1);
        add_link(&mut cfgs, 2, 3, 2);

        for p in ["10.0.0.0/24", "10.0.1.0/24"] {
            cfgs[0]
                .bgp
                .as_mut()
                .unwrap()
                .networks
                .push(Network { prefix: p.parse().unwrap() });
        }
        cfgs[2].bgp.as_mut().unwrap().aggregates.push(Aggregate {
            prefix: "10.0.0.0/16".parse().unwrap(),
            summary_only: true,
            communities: vec![community(65000, 99)],
        });

        NetworkModel::build(topo, cfgs).unwrap()
    }

    fn run(model: &NetworkModel) -> (Vec<SwitchModel>, BgpStats) {
        let mut switches: Vec<SwitchModel> = model
            .topology
            .nodes()
            .map(|n| SwitchModel::new(model, n))
            .collect();
        let stats = converge_bgp(model, &mut switches, None, DEFAULT_MAX_ROUNDS).unwrap();
        (switches, stats)
    }

    #[test]
    fn routes_propagate_end_to_end() {
        let model = line_with_aggregation();
        let (switches, stats) = run(&model);
        assert!(stats.rounds >= 3, "needs at least diameter rounds");
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        // m1 and m2 learn the specific.
        assert_eq!(switches[1].loc_rib()[&p][0].route.as_path, vec![65000]);
        assert_eq!(switches[2].loc_rib()[&p][0].route.as_path, vec![65001, 65000]);
    }

    #[test]
    fn summary_only_aggregate_suppresses_specifics_downstream() {
        let model = line_with_aggregation();
        let (switches, _) = run(&model);
        let spec: Prefix = "10.0.0.0/24".parse().unwrap();
        let agg: Prefix = "10.0.0.0/16".parse().unwrap();
        // m2 has both the specifics and the active aggregate.
        assert!(switches[2].loc_rib().contains_key(&spec));
        assert!(switches[2].loc_rib().contains_key(&agg));
        // t3 sees only the aggregate, tagged with the community.
        assert!(!switches[3].loc_rib().contains_key(&spec));
        let t3_agg = &switches[3].loc_rib()[&agg][0].route;
        assert_eq!(t3_agg.as_path, vec![65002]);
        assert!(t3_agg.has_community(community(65000, 99)));
        // Upstream (m1) still sees the specifics — they arrived from t0
        // directly, and the aggregate also propagates backwards.
        assert!(switches[1].loc_rib().contains_key(&spec));
    }

    #[test]
    fn sharded_union_equals_unsharded() {
        let model = line_with_aggregation();
        let (unsharded, _) = run(&model);

        // Shard 1: the aggregate and its contributors; shard 2: empty-ish.
        // Dependencies force all three prefixes into one shard; we emulate
        // the planner's output here.
        let mut shard1: BTreeSet<Prefix> = BTreeSet::new();
        shard1.insert("10.0.0.0/24".parse().unwrap());
        shard1.insert("10.0.1.0/24".parse().unwrap());
        shard1.insert("10.0.0.0/16".parse().unwrap());

        let mut switches: Vec<SwitchModel> = model
            .topology
            .nodes()
            .map(|n| SwitchModel::new(&model, n))
            .collect();
        converge_bgp(&model, &mut switches, Some(&shard1), DEFAULT_MAX_ROUNDS).unwrap();
        for node in model.topology.nodes() {
            assert_eq!(
                switches[node.index()].loc_rib(),
                unsharded[node.index()].loc_rib(),
                "node {node} differs"
            );
        }
    }

    #[test]
    fn stats_track_volume_and_memory() {
        let model = line_with_aggregation();
        let (_, stats) = run(&model);
        assert!(stats.routes_exchanged > 0);
        assert!(stats.peak_bytes > 0);
        assert!(stats.total_paths >= 8);
    }

    #[test]
    fn zero_round_budget_fails() {
        let model = line_with_aggregation();
        let mut switches: Vec<SwitchModel> = model
            .topology
            .nodes()
            .map(|n| SwitchModel::new(&model, n))
            .collect();
        assert!(matches!(
            converge_bgp(&model, &mut switches, None, 0),
            Err(RoutingError::NotConverged { protocol: "bgp", .. })
        ));
    }
}
