//! Route-map evaluation against BGP routes.
//!
//! Follows Cisco semantics: clauses are tried in sequence order, all match
//! conditions of a clause must hold, the first matching clause decides
//! (permit ⇒ apply actions, deny ⇒ reject), and a route matching no clause
//! is rejected. Vendor-specific `remove-private-as` semantics are honoured
//! through [`RemovePrivateAsMode`].

use crate::route::BgpRoute;
use s2_net::config::DeviceConfig;
use s2_net::policy::{
    is_private_asn, AsPathAction, CommunityAction, MatchCondition, PolicyAction,
    RemovePrivateAsMode, RouteMap, RouteMapDisposition,
};

/// Outcome of running a route map over a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Route accepted; the (possibly modified) route is returned.
    Permit(BgpRoute),
    /// Route rejected.
    Deny,
}

/// Evaluates the route map named `map_name` from `cfg` against `route`.
///
/// The device configuration provides the prefix lists referenced by match
/// conditions. An unknown map name denies everything (configurations are
/// validated up front, so this only happens for deliberately broken inputs).
pub fn run_route_map(cfg: &DeviceConfig, map_name: &str, route: &BgpRoute) -> PolicyVerdict {
    match cfg.route_maps.get(map_name) {
        Some(rm) => run(cfg, rm, route),
        None => PolicyVerdict::Deny,
    }
}

/// Evaluates `rm` against `route` with `cfg` supplying named objects.
pub fn run(cfg: &DeviceConfig, rm: &RouteMap, route: &BgpRoute) -> PolicyVerdict {
    for clause in &rm.clauses {
        if clause.matches.iter().all(|m| matches(cfg, m, route)) {
            return match clause.disposition {
                RouteMapDisposition::Deny => PolicyVerdict::Deny,
                RouteMapDisposition::Permit => {
                    let mut out = route.clone();
                    for action in &clause.actions {
                        apply(&mut out, action);
                    }
                    PolicyVerdict::Permit(out)
                }
            };
        }
    }
    PolicyVerdict::Deny
}

fn matches(cfg: &DeviceConfig, m: &MatchCondition, route: &BgpRoute) -> bool {
    match m {
        MatchCondition::PrefixList(name) => cfg
            .prefix_lists
            .get(name)
            .map(|pl| pl.permits(route.prefix))
            .unwrap_or(false),
        MatchCondition::Community(c) => route.has_community(*c),
        MatchCondition::AsPathContains(asn) => route.as_path_contains(*asn),
        MatchCondition::AsPathEmpty => route.as_path.is_empty(),
        MatchCondition::PrefixLenRange(lo, hi) => {
            (*lo..=*hi).contains(&route.prefix.len())
        }
        MatchCondition::Protocol(p) => route.source_protocol == *p,
    }
}

fn apply(route: &mut BgpRoute, action: &PolicyAction) {
    match action {
        PolicyAction::SetLocalPref(v) => route.local_pref = *v,
        PolicyAction::SetMed(v) => route.med = *v,
        PolicyAction::Community(CommunityAction::Add(c)) => route.add_community(*c),
        PolicyAction::Community(CommunityAction::Delete(c)) => route.remove_community(*c),
        PolicyAction::Community(CommunityAction::Set(cs)) => {
            route.communities.clear();
            for c in cs {
                route.add_community(*c);
            }
        }
        PolicyAction::AsPath(AsPathAction::Prepend { asn, count }) => {
            for _ in 0..*count {
                route.as_path.insert(0, *asn);
            }
        }
        PolicyAction::AsPath(AsPathAction::Overwrite(asns)) => {
            route.as_path = asns.clone();
        }
        PolicyAction::AsPath(AsPathAction::RemovePrivate(mode)) => {
            remove_private_as(&mut route.as_path, *mode);
        }
    }
}

/// Strips private ASNs from `path` according to the vendor mode — the
/// paper's flagship example of a vendor-specific behaviour.
pub fn remove_private_as(path: &mut Vec<u32>, mode: RemovePrivateAsMode) {
    match mode {
        RemovePrivateAsMode::All => path.retain(|a| !is_private_asn(*a)),
        RemovePrivateAsMode::LeadingOnly => {
            let lead = path.iter().take_while(|a| is_private_asn(**a)).count();
            path.drain(..lead);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::Vendor;
    use s2_net::ip::Prefix;
    use s2_net::policy::{
        community, PrefixList, PrefixListEntry, Protocol, RouteMapClause,
    };
    use crate::route::Origin;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn route(prefix: &str) -> BgpRoute {
        BgpRoute::local(p(prefix), Origin::Igp, Protocol::Bgp)
    }

    fn cfg_with(rm: RouteMap) -> DeviceConfig {
        let mut cfg = DeviceConfig::new("r", Vendor::A);
        cfg.prefix_lists.insert(
            "PL".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    prefix: p("10.0.0.0/8"),
                    ge: Some(8),
                    le: Some(32),
                    permit: true,
                }],
            },
        );
        cfg.route_maps.insert("RM".into(), rm);
        cfg
    }

    fn permit_clause(seq: u32, matches: Vec<MatchCondition>, actions: Vec<PolicyAction>) -> RouteMapClause {
        RouteMapClause {
            seq,
            disposition: RouteMapDisposition::Permit,
            matches,
            actions,
        }
    }

    #[test]
    fn empty_map_denies() {
        let cfg = cfg_with(RouteMap::default());
        assert_eq!(run_route_map(&cfg, "RM", &route("10.0.0.0/24")), PolicyVerdict::Deny);
    }

    #[test]
    fn unknown_map_denies() {
        let cfg = cfg_with(RouteMap::permit_all());
        assert_eq!(run_route_map(&cfg, "NOPE", &route("10.0.0.0/24")), PolicyVerdict::Deny);
    }

    #[test]
    fn prefix_list_gates_clause() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![MatchCondition::PrefixList("PL".into())],
            vec![PolicyAction::SetLocalPref(200)],
        ));
        let cfg = cfg_with(rm);
        match run_route_map(&cfg, "RM", &route("10.1.0.0/16")) {
            PolicyVerdict::Permit(r) => assert_eq!(r.local_pref, 200),
            other => panic!("{other:?}"),
        }
        assert_eq!(run_route_map(&cfg, "RM", &route("192.168.0.0/16")), PolicyVerdict::Deny);
    }

    #[test]
    fn first_matching_clause_wins() {
        let mut rm = RouteMap::default();
        rm.push_clause(RouteMapClause {
            seq: 10,
            disposition: RouteMapDisposition::Deny,
            matches: vec![MatchCondition::PrefixLenRange(24, 32)],
            actions: vec![],
        });
        rm.push_clause(permit_clause(20, vec![], vec![]));
        let cfg = cfg_with(rm);
        assert_eq!(run_route_map(&cfg, "RM", &route("10.0.0.0/24")), PolicyVerdict::Deny);
        assert!(matches!(
            run_route_map(&cfg, "RM", &route("10.0.0.0/16")),
            PolicyVerdict::Permit(_)
        ));
    }

    #[test]
    fn all_conditions_must_match() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![
                MatchCondition::PrefixList("PL".into()),
                MatchCondition::Community(community(65000, 1)),
            ],
            vec![],
        ));
        let cfg = cfg_with(rm);
        // Prefix matches but community missing.
        assert_eq!(run_route_map(&cfg, "RM", &route("10.0.0.0/24")), PolicyVerdict::Deny);
        let mut r = route("10.0.0.0/24");
        r.add_community(community(65000, 1));
        assert!(matches!(run_route_map(&cfg, "RM", &r), PolicyVerdict::Permit(_)));
    }

    #[test]
    fn community_actions() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![],
            vec![
                PolicyAction::Community(CommunityAction::Add(community(1, 1))),
                PolicyAction::Community(CommunityAction::Add(community(1, 2))),
                PolicyAction::Community(CommunityAction::Delete(community(1, 1))),
            ],
        ));
        let cfg = cfg_with(rm);
        match run_route_map(&cfg, "RM", &route("10.0.0.0/24")) {
            PolicyVerdict::Permit(r) => assert_eq!(r.communities, vec![community(1, 2)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn community_set_replaces() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![],
            vec![PolicyAction::Community(CommunityAction::Set(vec![community(9, 9)]))],
        ));
        let cfg = cfg_with(rm);
        let mut r = route("10.0.0.0/24");
        r.add_community(community(1, 1));
        match run_route_map(&cfg, "RM", &r) {
            PolicyVerdict::Permit(out) => assert_eq!(out.communities, vec![community(9, 9)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn as_path_prepend_and_overwrite() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![],
            vec![PolicyAction::AsPath(AsPathAction::Prepend { asn: 65000, count: 2 })],
        ));
        let cfg = cfg_with(rm);
        let mut r = route("10.0.0.0/24");
        r.as_path = vec![1, 2];
        match run_route_map(&cfg, "RM", &r) {
            PolicyVerdict::Permit(out) => assert_eq!(out.as_path, vec![65000, 65000, 1, 2]),
            other => panic!("{other:?}"),
        }

        let mut rm2 = RouteMap::default();
        rm2.push_clause(permit_clause(
            10,
            vec![MatchCondition::AsPathContains(2)],
            vec![PolicyAction::AsPath(AsPathAction::Overwrite(vec![65009]))],
        ));
        let cfg2 = cfg_with(rm2);
        match run_route_map(&cfg2, "RM", &r) {
            PolicyVerdict::Permit(out) => assert_eq!(out.as_path, vec![65009]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn remove_private_modes_differ() {
        // 64512 and 64513 are private, 1000 is not.
        let mut all = vec![64512, 1000, 64513];
        remove_private_as(&mut all, RemovePrivateAsMode::All);
        assert_eq!(all, vec![1000]);

        let mut leading = vec![64512, 1000, 64513];
        remove_private_as(&mut leading, RemovePrivateAsMode::LeadingOnly);
        assert_eq!(leading, vec![1000, 64513]);
    }

    #[test]
    fn protocol_match_for_redistribution_filters() {
        let mut rm = RouteMap::default();
        rm.push_clause(permit_clause(
            10,
            vec![MatchCondition::Protocol(Protocol::Ospf)],
            vec![],
        ));
        let cfg = cfg_with(rm);
        let mut r = route("10.0.0.0/24");
        r.source_protocol = Protocol::Ospf;
        assert!(matches!(run_route_map(&cfg, "RM", &r), PolicyVerdict::Permit(_)));
        r.source_protocol = Protocol::Bgp;
        assert_eq!(run_route_map(&cfg, "RM", &r), PolicyVerdict::Deny);
    }
}
