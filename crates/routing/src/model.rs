//! The resolved network model: topology + configurations + inferred L3
//! adjacencies + established BGP sessions.
//!
//! This mirrors Batfish's pipeline: vendor-independent configurations are
//! bound to topology nodes by hostname, interface configurations are bound
//! to topology ports by shared link subnets (L3 adjacency inference), and
//! BGP sessions are established only when both endpoints agree (addresses
//! reachable on a connected subnet, reciprocal `remote-as`). Misconfigured
//! sessions are not errors — they surface as [`SessionDiagnostic`]s and,
//! downstream, as reachability violations.

use s2_net::config::DeviceConfig;
use s2_net::topology::{InterfaceId, NodeId, Topology};
use s2_net::{Ipv4Addr, NetError, Prefix};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A resolved, mutually agreed eBGP session endpoint on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpSession {
    /// Local topology interface the session runs over.
    pub local_if: InterfaceId,
    /// Local interface address (becomes NEXT_HOP on exports).
    pub local_addr: Ipv4Addr,
    /// The peer node.
    pub peer_node: NodeId,
    /// The peer's interface address (as configured in `neighbor`).
    pub peer_addr: Ipv4Addr,
    /// The peer's ASN (verified against the peer's BGP process).
    pub remote_as: u32,
    /// Index into this device's `bgp.neighbors` (for policies).
    pub neighbor_index: usize,
    /// Index of the reciprocal session in the peer's session table; lets
    /// the simulator deliver advertisements without any lookup.
    pub peer_session_index: u32,
}

/// An OSPF adjacency: both endpoints run OSPF on the connecting link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OspfAdj {
    /// Local interface.
    pub local_if: InterfaceId,
    /// Cost of sending out `local_if`.
    pub cost: u32,
    /// Peer node.
    pub peer_node: NodeId,
}

/// Why a configured BGP neighbor did not come up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionDiagnostic {
    /// No local interface subnet contains the configured peer address.
    PeerAddressUnreachable {
        /// The node with the dangling neighbor statement.
        node: NodeId,
        /// The configured peer address.
        peer: Ipv4Addr,
    },
    /// The interface's link peer does not own the configured address.
    PeerAddressMismatch {
        /// The node with the neighbor statement.
        node: NodeId,
        /// The configured peer address.
        peer: Ipv4Addr,
        /// The node actually on the other end of the link.
        actual_node: NodeId,
    },
    /// The peer exists but its ASN differs from the configured `remote-as`.
    AsnMismatch {
        /// The node with the neighbor statement.
        node: NodeId,
        /// Configured remote AS.
        configured: u32,
        /// The peer's actual AS.
        actual: u32,
    },
    /// The peer has no reciprocal neighbor statement for this node.
    NotReciprocal {
        /// The node with the one-sided neighbor statement.
        node: NodeId,
        /// The configured peer address.
        peer: Ipv4Addr,
    },
}

/// The fully resolved model every verifier component consumes.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// The physical topology.
    pub topology: Topology,
    /// Configuration of each node, indexed by `NodeId`.
    pub configs: Vec<Arc<DeviceConfig>>,
    /// `iface_binding[node][interface] = index into configs[node].interfaces`
    /// for ports bound by L3 adjacency inference.
    pub iface_binding: Vec<Vec<Option<usize>>>,
    /// Established BGP sessions per node, in neighbor-statement order.
    pub bgp_sessions: Vec<Vec<BgpSession>>,
    /// OSPF adjacencies per node.
    pub ospf_adj: Vec<Vec<OspfAdj>>,
    /// Sessions that failed to establish, with reasons.
    pub session_diagnostics: Vec<SessionDiagnostic>,
}

impl NetworkModel {
    /// Builds the model. `configs` are matched to topology nodes by
    /// hostname; every node must have exactly one configuration.
    pub fn build(topology: Topology, configs: Vec<DeviceConfig>) -> Result<Self, NetError> {
        // Bind configurations to nodes by hostname.
        let mut by_host: HashMap<&str, &DeviceConfig> = HashMap::new();
        for c in &configs {
            if by_host.insert(c.hostname.as_str(), c).is_some() {
                return Err(NetError::Inconsistent(format!(
                    "duplicate configuration for host {}",
                    c.hostname
                )));
            }
        }
        let mut bound: Vec<Arc<DeviceConfig>> = Vec::with_capacity(topology.node_count());
        for node in topology.nodes() {
            let name = topology.name(node);
            let cfg = by_host.get(name).ok_or_else(|| {
                NetError::Inconsistent(format!("no configuration for host {name}"))
            })?;
            (*cfg).validate()?;
            bound.push(Arc::new((*cfg).clone()));
        }

        // L3 adjacency inference: bind topology ports to interface configs
        // by shared link subnet.
        let mut iface_binding: Vec<Vec<Option<usize>>> = topology
            .nodes()
            .map(|n| vec![None; topology.interface_count(n) as usize])
            .collect();
        // Per-node subnet → interface-config index (non-host subnets only).
        let subnet_maps: Vec<BTreeMap<Prefix, usize>> = bound
            .iter()
            .map(|cfg| {
                cfg.interfaces
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| i.prefix.len() < 32)
                    .map(|(idx, i)| (i.prefix, idx))
                    .collect()
            })
            .collect();
        for link in topology.links() {
            let (na, ia) = link.a;
            let (nb, ib) = link.b;
            // The link's subnet is any subnet both endpoints configure with
            // distinct addresses.
            for (subnet, &cfg_a) in &subnet_maps[na.index()] {
                if let Some(&cfg_b) = subnet_maps[nb.index()].get(subnet) {
                    let addr_a = bound[na.index()].interfaces[cfg_a].addr;
                    let addr_b = bound[nb.index()].interfaces[cfg_b].addr;
                    if addr_a != addr_b
                        && iface_binding[na.index()][ia.index()].is_none()
                        && iface_binding[nb.index()][ib.index()].is_none()
                    {
                        iface_binding[na.index()][ia.index()] = Some(cfg_a);
                        iface_binding[nb.index()][ib.index()] = Some(cfg_b);
                        break;
                    }
                }
            }
        }

        let mut model = NetworkModel {
            topology,
            configs: bound,
            iface_binding,
            bgp_sessions: Vec::new(),
            ospf_adj: Vec::new(),
            session_diagnostics: Vec::new(),
        };
        model.resolve_bgp_sessions();
        model.resolve_ospf();
        Ok(model)
    }

    /// The interface config bound to a topology port, if any.
    pub fn iface_config(&self, node: NodeId, ifid: InterfaceId) -> Option<&s2_net::config::InterfaceConfig> {
        let idx = self.iface_binding[node.index()][ifid.index()]?;
        Some(&self.configs[node.index()].interfaces[idx])
    }

    /// Finds the topology port of `node` bound to the interface config
    /// whose subnet contains `addr` (excluding the node's own address).
    fn port_for_peer_addr(&self, node: NodeId, addr: Ipv4Addr) -> Option<InterfaceId> {
        for (ifid, _, _) in self.topology.neighbors(node) {
            if let Some(icfg) = self.iface_config(node, *ifid) {
                if icfg.prefix.contains_addr(addr) && icfg.addr != addr {
                    return Some(*ifid);
                }
            }
        }
        None
    }

    fn resolve_bgp_sessions(&mut self) {
        // First pass: find candidate sessions (local resolution + peer
        // address/ASN verification).
        #[derive(Clone)]
        struct Half {
            node: NodeId,
            local_if: InterfaceId,
            local_addr: Ipv4Addr,
            peer_node: NodeId,
            peer_addr: Ipv4Addr,
            remote_as: u32,
            neighbor_index: usize,
        }
        let mut halves: Vec<Half> = Vec::new();
        let mut diags = Vec::new();

        for node in self.topology.nodes() {
            let cfg = self.configs[node.index()].clone();
            let Some(bgp) = cfg.bgp.as_ref() else { continue };
            for (ni, n) in bgp.neighbors.iter().enumerate() {
                let Some(local_if) = self.port_for_peer_addr(node, n.peer) else {
                    diags.push(SessionDiagnostic::PeerAddressUnreachable {
                        node,
                        peer: n.peer,
                    });
                    continue;
                };
                let local_addr = self.iface_config(node, local_if).expect("bound port").addr;
                let (peer_node, peer_if) = self
                    .topology
                    .peer_of(node, local_if)
                    .expect("port belongs to a link");
                let peer_cfg = &self.configs[peer_node.index()];
                let peer_if_addr = self.iface_config(peer_node, peer_if).map(|i| i.addr);
                if peer_if_addr != Some(n.peer) {
                    diags.push(SessionDiagnostic::PeerAddressMismatch {
                        node,
                        peer: n.peer,
                        actual_node: peer_node,
                    });
                    continue;
                }
                let Some(peer_bgp) = peer_cfg.bgp.as_ref() else {
                    diags.push(SessionDiagnostic::NotReciprocal { node, peer: n.peer });
                    continue;
                };
                if peer_bgp.asn != n.remote_as {
                    diags.push(SessionDiagnostic::AsnMismatch {
                        node,
                        configured: n.remote_as,
                        actual: peer_bgp.asn,
                    });
                    continue;
                }
                // Reciprocity: the peer must have a neighbor statement for
                // our address with our ASN.
                let our_asn = bgp.asn;
                let reciprocal = peer_bgp
                    .neighbors
                    .iter()
                    .any(|pn| pn.peer == local_addr && pn.remote_as == our_asn);
                if !reciprocal {
                    diags.push(SessionDiagnostic::NotReciprocal { node, peer: n.peer });
                    continue;
                }
                halves.push(Half {
                    node,
                    local_if,
                    local_addr,
                    peer_node,
                    peer_addr: n.peer,
                    remote_as: n.remote_as,
                    neighbor_index: ni,
                });
            }
        }

        // Second pass: index the halves per node and link them pairwise.
        let mut sessions: Vec<Vec<BgpSession>> = self.topology.nodes().map(|_| Vec::new()).collect();
        for h in &halves {
            sessions[h.node.index()].push(BgpSession {
                local_if: h.local_if,
                local_addr: h.local_addr,
                peer_node: h.peer_node,
                peer_addr: h.peer_addr,
                remote_as: h.remote_as,
                neighbor_index: h.neighbor_index,
                peer_session_index: u32::MAX,
            });
        }
        // Fill in peer_session_index by matching (peer_node, addresses).
        let snapshot = sessions.clone();
        for node_sessions in sessions.iter_mut() {
            for s in node_sessions.iter_mut() {
                let peer_sessions = &snapshot[s.peer_node.index()];
                if let Some(idx) = peer_sessions
                    .iter()
                    .position(|ps| ps.peer_addr == s.local_addr && ps.local_addr == s.peer_addr)
                {
                    s.peer_session_index = idx as u32;
                }
            }
        }
        // Reciprocity guaranteed both halves exist; assert in debug builds.
        debug_assert!(sessions
            .iter()
            .flatten()
            .all(|s| s.peer_session_index != u32::MAX));

        self.bgp_sessions = sessions;
        self.session_diagnostics = diags;
    }

    fn resolve_ospf(&mut self) {
        let mut adj: Vec<Vec<OspfAdj>> = self.topology.nodes().map(|_| Vec::new()).collect();
        for node in self.topology.nodes() {
            let cfg = &self.configs[node.index()];
            let Some(ospf) = cfg.ospf.as_ref() else { continue };
            for (ifid, peer, peer_if) in self.topology.neighbors(node) {
                let Some(icfg) = self.iface_config(node, *ifid) else { continue };
                if !ospf.interfaces.contains(&icfg.name) {
                    continue;
                }
                // The peer must also run OSPF on the connecting interface.
                let peer_cfg = &self.configs[peer.index()];
                let Some(peer_ospf) = peer_cfg.ospf.as_ref() else { continue };
                let Some(peer_icfg) = self.iface_config(*peer, *peer_if) else { continue };
                if !peer_ospf.interfaces.contains(&peer_icfg.name) {
                    continue;
                }
                let cost = icfg.ospf_cost.unwrap_or(ospf.default_cost);
                adj[node.index()].push(OspfAdj {
                    local_if: *ifid,
                    cost,
                    peer_node: *peer,
                });
            }
        }
        self.ospf_adj = adj;
    }

    /// Total number of established (directed) BGP session endpoints.
    pub fn session_count(&self) -> usize {
        self.bgp_sessions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::{BgpNeighbor, BgpProcess, InterfaceConfig, Vendor};

    /// Builds a two-node back-to-back network with an eBGP session.
    fn two_node(asn_b_configured: u32) -> (Topology, Vec<DeviceConfig>) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b);

        let mut ca = DeviceConfig::new("a", Vendor::A);
        ca.interfaces.push(InterfaceConfig::new("eth0", Ipv4Addr::new(10, 0, 0, 0), 31));
        let mut bgp_a = BgpProcess::new(65001, Ipv4Addr::new(1, 0, 0, 1));
        bgp_a.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 1),
            remote_as: asn_b_configured,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        ca.bgp = Some(bgp_a);

        let mut cb = DeviceConfig::new("b", Vendor::B);
        cb.interfaces.push(InterfaceConfig::new("xe0", Ipv4Addr::new(10, 0, 0, 1), 31));
        let mut bgp_b = BgpProcess::new(65002, Ipv4Addr::new(1, 0, 0, 2));
        bgp_b.neighbors.push(BgpNeighbor {
            peer: Ipv4Addr::new(10, 0, 0, 0),
            remote_as: 65001,
            import_policy: None,
            export_policy: None,
            remove_private_as: false,
        });
        cb.bgp = Some(bgp_b);

        (topo, vec![ca, cb])
    }

    #[test]
    fn session_establishes_when_consistent() {
        let (topo, cfgs) = two_node(65002);
        let m = NetworkModel::build(topo, cfgs).unwrap();
        assert!(m.session_diagnostics.is_empty(), "{:?}", m.session_diagnostics);
        assert_eq!(m.session_count(), 2);
        let sa = &m.bgp_sessions[0][0];
        assert_eq!(sa.peer_node, NodeId(1));
        assert_eq!(sa.remote_as, 65002);
        assert_eq!(sa.peer_session_index, 0);
        // Interface binding resolved by shared subnet.
        assert_eq!(m.iface_config(NodeId(0), sa.local_if).unwrap().name, "eth0");
    }

    #[test]
    fn asn_mismatch_is_diagnosed_not_fatal() {
        let (topo, cfgs) = two_node(64999);
        let m = NetworkModel::build(topo, cfgs).unwrap();
        // a's half fails with AsnMismatch; b's half fails reciprocity
        // (a's statement is wrong, so from b's view... a targets b with a
        // wrong AS but b's check is about a's config of b; b sees a
        // reciprocal statement with wrong ASN -> NotReciprocal).
        assert_eq!(m.session_count(), 0);
        assert!(m
            .session_diagnostics
            .iter()
            .any(|d| matches!(d, SessionDiagnostic::AsnMismatch { configured: 64999, actual: 65002, .. })));
    }

    #[test]
    fn unreachable_peer_addr_is_diagnosed() {
        let (topo, mut cfgs) = two_node(65002);
        cfgs[0].bgp.as_mut().unwrap().neighbors[0].peer = Ipv4Addr::new(192, 168, 0, 1);
        let m = NetworkModel::build(topo, cfgs).unwrap();
        assert!(m
            .session_diagnostics
            .iter()
            .any(|d| matches!(d, SessionDiagnostic::PeerAddressUnreachable { .. })));
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn missing_config_is_fatal() {
        let (topo, mut cfgs) = two_node(65002);
        cfgs.pop();
        assert!(NetworkModel::build(topo, cfgs).is_err());
    }

    #[test]
    fn duplicate_hostname_is_fatal() {
        let (topo, mut cfgs) = two_node(65002);
        cfgs[1].hostname = "a".into();
        assert!(NetworkModel::build(topo, cfgs).is_err());
    }

    #[test]
    fn ospf_adjacency_requires_both_sides() {
        let (topo, mut cfgs) = two_node(65002);
        cfgs[0].interfaces[0].ospf_cost = Some(5);
        cfgs[0].ospf = Some(s2_net::config::OspfProcess {
            interfaces: vec!["eth0".into()],
            default_cost: 10,
        });
        // Only one side runs OSPF: no adjacency.
        let m = NetworkModel::build(topo.clone(), cfgs.clone()).unwrap();
        assert!(m.ospf_adj.iter().all(Vec::is_empty));

        cfgs[1].ospf = Some(s2_net::config::OspfProcess {
            interfaces: vec!["xe0".into()],
            default_cost: 10,
        });
        let m = NetworkModel::build(topo, cfgs).unwrap();
        assert_eq!(m.ospf_adj[0].len(), 1);
        assert_eq!(m.ospf_adj[0][0].cost, 5);
        assert_eq!(m.ospf_adj[1].len(), 1);
        assert_eq!(m.ospf_adj[1][0].cost, 10); // default cost
    }
}
