//! # s2-routing
//!
//! Control-plane substrate for the S2 verifier: the Batfish-role switch
//! models (BGP decision process, route maps, aggregation, OSPF) plus the
//! synchronous fix-point engine the monolithic baseline uses directly and
//! the distributed runtime re-drives over workers.
//!
//! Layered as:
//!
//! * [`route`] — route/attribute types and the final [`route::RibRoute`],
//! * [`policy_eval`] — route-map evaluation with vendor-specific
//!   `remove-private-as` semantics,
//! * [`bgp`] — best-path comparison and ECMP multipath selection,
//! * [`model`] — topology+config resolution: L3 adjacency inference, BGP
//!   session establishment (with misconfiguration diagnostics), OSPF
//!   adjacencies,
//! * [`ospf`] — round-based IGP computation,
//! * [`switch`] — the per-switch state machine (Adj-RIB-Ins, local RIB,
//!   export/import/decide),
//! * [`fixpoint`] — Algorithm-1 rounds to convergence,
//! * [`rib`] — the accumulated final RIBs.

#![deny(missing_docs)]

pub mod bgp;
pub mod fixpoint;
pub mod model;
pub mod ospf;
pub mod policy_eval;
pub mod rib;
pub mod route;
pub mod switch;

pub use fixpoint::{converge_bgp, converge_ospf, BgpStats, RoutingError, DEFAULT_MAX_ROUNDS};
pub use model::{BgpSession, NetworkModel, OspfAdj, SessionDiagnostic};
pub use rib::{RibSnapshot, RibStore};
pub use route::{BgpRoute, Origin, RibRoute, Via};
pub use switch::SwitchModel;
