//! The BGP decision process: best-path comparison and ECMP selection.

use crate::route::BgpRoute;
use s2_net::Ipv4Addr;
use std::cmp::Ordering;

/// A best-path candidate: a route plus the identity of the advertising
/// peer (used for the final deterministic tie-break).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The route after import processing.
    pub route: BgpRoute,
    /// The advertising peer's address; `None` for local origination.
    pub peer: Option<Ipv4Addr>,
    /// The session index on the receiving node; `u32::MAX` for local.
    pub session: u32,
}

/// Compares two candidates by the BGP decision process. `Ordering::Less`
/// means `a` is **preferred** over `b` (so sorting ascending puts the best
/// path first).
///
/// Steps (all-eBGP network, matching the paper's DCN):
/// 1. higher weight (local-only, Cisco semantics)
/// 2. higher LOCAL_PREF
/// 3. shorter AS path
/// 4. lower ORIGIN (IGP < INCOMPLETE)
/// 5. lower MED
/// 6. lower peer address (deterministic tie-break standing in for
///    router-id; `None`/local sorts first)
pub fn compare(a: &Candidate, b: &Candidate) -> Ordering {
    b.route
        .weight
        .cmp(&a.route.weight)
        .then_with(|| b.route.local_pref.cmp(&a.route.local_pref))
        .then_with(|| a.route.as_path.len().cmp(&b.route.as_path.len()))
        .then_with(|| a.route.origin.cmp(&b.route.origin))
        .then_with(|| a.route.med.cmp(&b.route.med))
        .then_with(|| a.peer.cmp(&b.peer))
}

/// Whether two candidates tie on every step *before* the deterministic
/// tie-break — i.e. they are equal-cost and eligible for ECMP.
pub fn equal_cost(a: &Candidate, b: &Candidate) -> bool {
    a.route.weight == b.route.weight
        && a.route.local_pref == b.route.local_pref
        && a.route.as_path.len() == b.route.as_path.len()
        && a.route.origin == b.route.origin
        && a.route.med == b.route.med
}

/// Selects the multipath set from `candidates`: the best route plus every
/// equal-cost alternative, capped at `max_ecmp`, in deterministic
/// (tie-break) order. Returns an empty vector iff `candidates` is empty.
pub fn select_multipath(mut candidates: Vec<Candidate>, max_ecmp: u8) -> Vec<Candidate> {
    if candidates.is_empty() {
        return candidates;
    }
    candidates.sort_by(compare);
    let best = candidates[0].clone();
    let cap = (max_ecmp as usize).max(1);
    candidates
        .into_iter()
        .filter(|c| equal_cost(&best, c))
        .take(cap)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Origin, DEFAULT_LOCAL_PREF, LOCAL_WEIGHT};
    use s2_net::policy::Protocol;
    use s2_net::Prefix;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cand(path_len: usize, peer_last_octet: u8) -> Candidate {
        let mut r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        r.weight = 0;
        r.as_path = vec![100; path_len];
        Candidate {
            route: r,
            peer: Some(Ipv4Addr::new(10, 0, 0, peer_last_octet)),
            session: peer_last_octet as u32,
        }
    }

    #[test]
    fn weight_beats_everything() {
        let mut a = cand(10, 1);
        a.route.weight = LOCAL_WEIGHT;
        let mut b = cand(1, 2);
        b.route.local_pref = 999;
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn local_pref_beats_path_length() {
        let mut a = cand(10, 1);
        a.route.local_pref = 200;
        let b = cand(1, 2);
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn shorter_path_wins() {
        let a = cand(1, 2);
        let b = cand(2, 1);
        assert_eq!(compare(&a, &b), Ordering::Less);
        assert_eq!(compare(&b, &a), Ordering::Greater);
    }

    #[test]
    fn origin_breaks_path_tie() {
        let a = cand(2, 1);
        let mut b = cand(2, 2);
        b.route.origin = Origin::Incomplete;
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn med_breaks_origin_tie() {
        let a = cand(2, 2);
        let mut b = cand(2, 1);
        b.route.med = 50;
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn peer_address_is_final_tiebreak() {
        let a = cand(2, 1);
        let b = cand(2, 2);
        assert_eq!(compare(&a, &b), Ordering::Less);
        assert!(equal_cost(&a, &b));
    }

    #[test]
    fn multipath_selects_equal_cost_up_to_cap() {
        let cands = vec![cand(2, 3), cand(1, 2), cand(1, 4), cand(1, 1), cand(2, 5)];
        let sel = select_multipath(cands.clone(), 8);
        assert_eq!(sel.len(), 3);
        // Deterministic order by peer address.
        let peers: Vec<u32> = sel.iter().map(|c| c.session).collect();
        assert_eq!(peers, vec![1, 2, 4]);

        let sel2 = select_multipath(cands, 2);
        assert_eq!(sel2.len(), 2);
        assert_eq!(sel2[0].session, 1);
    }

    #[test]
    fn multipath_cap_zero_still_installs_best() {
        let sel = select_multipath(vec![cand(1, 1), cand(1, 2)], 0);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn multipath_empty_input() {
        assert!(select_multipath(vec![], 4).is_empty());
    }

    #[test]
    fn defaults_are_bgp_defaults() {
        let r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        assert_eq!(r.local_pref, DEFAULT_LOCAL_PREF);
    }
}
