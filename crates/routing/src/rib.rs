//! The final RIB store: per-node routing tables accumulated across
//! protocols and prefix shards, merged by administrative distance.

use crate::route::RibRoute;
use s2_net::policy::Protocol;
use s2_net::topology::NodeId;
use s2_net::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates RIB routes per node; the winning route per prefix is decided
/// by administrative distance (ties keep the first inserted, which callers
/// exploit by inserting protocols in a fixed order).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RibStore {
    per_node: Vec<BTreeMap<Prefix, RibRoute>>,
}

impl RibStore {
    /// A store for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        RibStore {
            per_node: vec![BTreeMap::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Inserts a route, keeping the lower administrative distance on
    /// conflict. A node id beyond the store's size is ignored: remote
    /// RIB frames carry node ids chosen by the peer, and an
    /// out-of-range id must not be able to panic the worker.
    pub fn insert(&mut self, node: NodeId, route: RibRoute) {
        let Some(table) = self.per_node.get_mut(node.index()) else {
            return;
        };
        match table.get(&route.prefix) {
            Some(existing)
                if existing.protocol.admin_distance() <= route.protocol.admin_distance() => {}
            _ => {
                table.insert(route.prefix, route);
            }
        }
    }

    /// Inserts many routes for one node.
    pub fn insert_all(&mut self, node: NodeId, routes: impl IntoIterator<Item = RibRoute>) {
        for r in routes {
            self.insert(node, r);
        }
    }

    /// The winning routes of `node`, in prefix order.
    pub fn routes(&self, node: NodeId) -> impl Iterator<Item = &RibRoute> {
        self.per_node[node.index()].values()
    }

    /// Total number of installed routes across all nodes.
    pub fn total_routes(&self) -> usize {
        self.per_node.iter().map(BTreeMap::len).sum()
    }

    /// Freezes the store into a snapshot for equality comparison and FIB
    /// construction.
    pub fn snapshot(&self) -> RibSnapshot {
        RibSnapshot {
            per_node: self
                .per_node
                .iter()
                .map(|t| t.values().cloned().collect())
                .collect(),
        }
    }

    /// Merges another store into this one (used when gathering per-worker
    /// results; distinct nodes only, so no distance conflicts arise).
    pub fn merge(&mut self, other: RibStore) {
        assert_eq!(self.per_node.len(), other.per_node.len());
        for (node, table) in other.per_node.into_iter().enumerate() {
            for (_, r) in table {
                self.insert(NodeId(node as u32), r);
            }
        }
    }
}

/// An immutable, comparable snapshot of every node's final RIB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibSnapshot {
    /// `per_node[n]` = node n's routes in prefix order.
    pub per_node: Vec<Vec<RibRoute>>,
}

impl RibSnapshot {
    /// Routes of one node.
    pub fn node(&self, node: NodeId) -> &[RibRoute] {
        &self.per_node[node.index()]
    }

    /// Total route count.
    pub fn total_routes(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }

    /// Count of routes per protocol, for diagnostics.
    pub fn protocol_histogram(&self) -> BTreeMap<Protocol, usize> {
        let mut h = BTreeMap::new();
        for r in self.per_node.iter().flatten() {
            *h.entry(r.protocol).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(prefix: &str, protocol: Protocol) -> RibRoute {
        RibRoute {
            prefix: prefix.parse().unwrap(),
            protocol,
            egress: Vec::new(),
            is_local: false,
            as_path_len: 0,
        }
    }

    #[test]
    fn admin_distance_decides_conflicts() {
        let mut store = RibStore::new(1);
        store.insert(NodeId(0), route("10.0.0.0/24", Protocol::Ospf));
        store.insert(NodeId(0), route("10.0.0.0/24", Protocol::Bgp));
        let routes: Vec<_> = store.routes(NodeId(0)).collect();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].protocol, Protocol::Bgp);
        // Inserting a worse protocol afterwards does not displace it.
        store.insert(NodeId(0), route("10.0.0.0/24", Protocol::Aggregate));
        assert_eq!(store.routes(NodeId(0)).next().unwrap().protocol, Protocol::Bgp);
        // Connected beats everything.
        store.insert(NodeId(0), route("10.0.0.0/24", Protocol::Connected));
        assert_eq!(store.routes(NodeId(0)).next().unwrap().protocol, Protocol::Connected);
    }

    #[test]
    fn snapshot_equality_is_order_independent() {
        let mut s1 = RibStore::new(2);
        s1.insert(NodeId(0), route("10.0.0.0/24", Protocol::Bgp));
        s1.insert(NodeId(0), route("10.0.1.0/24", Protocol::Bgp));
        let mut s2 = RibStore::new(2);
        s2.insert(NodeId(0), route("10.0.1.0/24", Protocol::Bgp));
        s2.insert(NodeId(0), route("10.0.0.0/24", Protocol::Bgp));
        assert_eq!(s1.snapshot(), s2.snapshot());
    }

    #[test]
    fn merge_combines_per_worker_results() {
        let mut a = RibStore::new(2);
        a.insert(NodeId(0), route("10.0.0.0/24", Protocol::Bgp));
        let mut b = RibStore::new(2);
        b.insert(NodeId(1), route("10.0.1.0/24", Protocol::Bgp));
        a.merge(b);
        assert_eq!(a.total_routes(), 2);
        assert_eq!(a.snapshot().node(NodeId(1)).len(), 1);
    }

    #[test]
    fn histogram_counts_protocols() {
        let mut s = RibStore::new(1);
        s.insert(NodeId(0), route("10.0.0.0/24", Protocol::Bgp));
        s.insert(NodeId(0), route("10.0.1.0/24", Protocol::Connected));
        let h = s.snapshot().protocol_histogram();
        assert_eq!(h[&Protocol::Bgp], 1);
        assert_eq!(h[&Protocol::Connected], 1);
    }
}
