//! Route types: BGP route attributes, OSPF routes and final RIB entries.

use s2_net::policy::{Community, Protocol};
use s2_net::topology::InterfaceId;
use s2_net::{Ipv4Addr, Prefix};
use serde::{Deserialize, Serialize};

/// BGP ORIGIN attribute (we model IGP and INCOMPLETE; lower is preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Originated by a `network` statement.
    Igp = 0,
    /// Redistributed from another protocol.
    Incomplete = 1,
}

/// A BGP route with the attributes the decision process uses.
///
/// `weight` is the Cisco-style local-only attribute: locally originated
/// routes get [`LOCAL_WEIGHT`] so they always beat learned routes; it is
/// never advertised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop address (the advertising interface's address; unspecified
    /// for locally originated routes).
    pub next_hop: Ipv4Addr,
    /// AS path, nearest AS first.
    pub as_path: Vec<u32>,
    /// LOCAL_PREF (higher preferred). Default 100.
    pub local_pref: u32,
    /// Multi-exit discriminator (lower preferred). Default 0.
    pub med: u32,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// Communities, kept sorted and deduplicated.
    pub communities: Vec<Community>,
    /// Local-only weight (higher preferred, not advertised).
    pub weight: u32,
    /// The protocol this route was injected from (BGP for learned routes;
    /// Connected/Static/Ospf for redistributed ones; Aggregate for
    /// aggregates). Drives the prefix-dependency analysis.
    pub source_protocol: Protocol,
}

/// Weight assigned to locally originated routes.
pub const LOCAL_WEIGHT: u32 = 32768;

/// Default LOCAL_PREF.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

impl BgpRoute {
    /// A locally originated route (network statement / redistribution).
    pub fn local(prefix: Prefix, origin: Origin, source_protocol: Protocol) -> Self {
        BgpRoute {
            prefix,
            next_hop: Ipv4Addr::UNSPECIFIED,
            as_path: Vec::new(),
            local_pref: DEFAULT_LOCAL_PREF,
            med: 0,
            origin,
            communities: Vec::new(),
            weight: LOCAL_WEIGHT,
            source_protocol,
        }
    }

    /// Adds a community, keeping the list sorted and unique.
    pub fn add_community(&mut self, c: Community) {
        if let Err(pos) = self.communities.binary_search(&c) {
            self.communities.insert(pos, c);
        }
    }

    /// Removes a community if present.
    pub fn remove_community(&mut self, c: Community) {
        if let Ok(pos) = self.communities.binary_search(&c) {
            self.communities.remove(pos);
        }
    }

    /// Whether the route carries community `c`.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.binary_search(&c).is_ok()
    }

    /// Whether `asn` appears anywhere in the AS path (the eBGP loop check).
    pub fn as_path_contains(&self, asn: u32) -> bool {
        self.as_path.contains(&asn)
    }

    /// Approximate heap + inline size in bytes, used by the per-worker
    /// memory gauges to model the paper's route-memory bottleneck.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.as_path.capacity() * std::mem::size_of::<u32>()
            + self.communities.capacity() * std::mem::size_of::<Community>()
    }
}

/// How a selected route leaves the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Via {
    /// Locally originated (no egress; the node itself holds the prefix).
    Local,
    /// Via the BGP session with the given index into the node's session
    /// table (egress = that session's local interface).
    Session(u32),
    /// Via OSPF out of a specific interface.
    Interface(InterfaceId),
    /// Discard (null0 static routes, summary-only aggregates without
    /// contributors at this node).
    Discard,
}

/// A route installed in the final per-node RIB, ready for FIB construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Protocol that won the prefix at this node (admin distance).
    pub protocol: Protocol,
    /// ECMP egress set: the interfaces packets to this prefix leave on.
    /// Empty for local/discard routes.
    pub egress: Vec<InterfaceId>,
    /// Whether the node itself originates/holds this prefix.
    pub is_local: bool,
    /// AS-path length (diagnostics; 0 for non-BGP routes).
    pub as_path_len: u32,
}

impl RibRoute {
    /// Approximate in-memory size in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.egress.capacity() * std::mem::size_of::<InterfaceId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn local_route_defaults() {
        let r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        assert_eq!(r.weight, LOCAL_WEIGHT);
        assert_eq!(r.local_pref, DEFAULT_LOCAL_PREF);
        assert!(r.as_path.is_empty());
        assert_eq!(r.med, 0);
    }

    #[test]
    fn communities_stay_sorted_unique() {
        let mut r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        r.add_community(5);
        r.add_community(1);
        r.add_community(5);
        r.add_community(3);
        assert_eq!(r.communities, vec![1, 3, 5]);
        assert!(r.has_community(3));
        r.remove_community(3);
        assert!(!r.has_community(3));
        r.remove_community(99); // no-op
        assert_eq!(r.communities, vec![1, 5]);
    }

    #[test]
    fn loop_check_scans_path() {
        let mut r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        r.as_path = vec![65001, 65002];
        assert!(r.as_path_contains(65002));
        assert!(!r.as_path_contains(65003));
    }

    #[test]
    fn origin_ordering_prefers_igp() {
        assert!(Origin::Igp < Origin::Incomplete);
    }

    #[test]
    fn byte_accounting_grows_with_path() {
        let mut r = BgpRoute::local(p("10.0.0.0/24"), Origin::Igp, Protocol::Bgp);
        let base = r.approx_bytes();
        r.as_path = vec![1; 16];
        assert!(r.approx_bytes() > base);
    }
}
