//! Deterministic fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] describes *when* things go wrong — a worker crash
//! before its n-th command, a hang, the loss / duplication / corruption /
//! delay of the n-th cross-worker frame — and is threaded into
//! [`Cluster`](crate::Cluster) construction through
//! [`RuntimeConfig`](crate::RuntimeConfig). Every trigger is indexed by a
//! deterministic counter (commands processed per worker, frames attempted
//! cluster-wide), so a given plan reproduces the same failure on every
//! run. The chaos tests drive recovery with these plans and assert the
//! recovered result is bit-identical to an undisturbed run.

use parking_lot::Mutex;
use s2_net::topology::NodeId;
use s2_obs::{Clock, MonotonicClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker index (mirrors [`crate::sidecar::WorkerId`]).
type WorkerId = u32;

/// The phases of a daemon delta application, used to place
/// [`FaultPlan::crash_daemon`] triggers. Each committed delta walks the
/// phases in order; a crash trigger fires the first time the daemon
/// *enters* the named phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DaemonPhase {
    /// Parsing / resolving the delta against the current model.
    Validate,
    /// Staging the scenario overlay (checkpoint rollback + begin).
    Stage,
    /// Warm control-plane replay of the staged overlay.
    Replay,
    /// Patched data-plane verification of the staged overlay.
    Dpv,
    /// Atomic swap of the committed verdict state.
    Commit,
    /// Writing the on-disk warm checkpoint.
    Checkpoint,
}

/// A deterministic schedule of injected failures.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    kill: Option<(WorkerId, u64)>,
    hang: Option<(WorkerId, u64)>,
    drop_nth: Vec<u64>,
    duplicate_nth: Vec<u64>,
    corrupt_nth: Vec<u64>,
    delay_nth: Vec<(u64, u32)>,
    /// (src, dst, nth data frame on that link) — TCP backend only.
    sever: Vec<(WorkerId, WorkerId, u64)>,
    /// (worker, armed after the nth cluster-wide send, duration).
    partition: Option<(WorkerId, u64, Duration)>,
    /// (src, dst, per-frame delay in ms) — TCP backend only.
    throttle: Vec<(WorkerId, WorkerId, u64)>,
    /// Model-level failed links, as topology node pairs.
    fail_links: Vec<(NodeId, NodeId)>,
    /// Daemon crash points: abort the daemon on entering these phases.
    crash_daemon: Vec<DaemonPhase>,
    /// Admin connections to drop, by 0-based accepted-request index.
    drop_admin: Vec<u64>,
    /// Checkpoint writes to corrupt, by 0-based write index.
    corrupt_checkpoint: Vec<u64>,
}

impl FaultPlan {
    /// No faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Kills worker `worker` immediately before it processes its `nth`
    /// command (1-based; each controller barrier is one command). The
    /// thread simply exits — the crash model of a lost logical server.
    /// Fires once: the respawned worker is not re-killed.
    pub fn kill_worker(mut self, worker: WorkerId, nth_command: u64) -> Self {
        self.kill = Some((worker, nth_command));
        self
    }

    /// Hangs worker `worker` from its `nth` command on: it keeps draining
    /// commands but never replies again, forcing the controller's barrier
    /// timeout. Fires once.
    pub fn hang_worker(mut self, worker: WorkerId, nth_command: u64) -> Self {
        self.hang = Some((worker, nth_command));
        self
    }

    /// Silently drops the `nth` cross-worker frame (0-based attempt
    /// index, counted cluster-wide in send order).
    pub fn drop_message(mut self, nth: u64) -> Self {
        self.drop_nth.push(nth);
        self
    }

    /// Delivers the `nth` cross-worker frame twice with the same
    /// sequence number (the receiver must deduplicate).
    pub fn duplicate_message(mut self, nth: u64) -> Self {
        self.duplicate_nth.push(nth);
        self
    }

    /// Flips a byte of the `nth` cross-worker frame so the receiver's
    /// checksum rejects it.
    pub fn corrupt_message(mut self, nth: u64) -> Self {
        self.corrupt_nth.push(nth);
        self
    }

    /// Holds the `nth` cross-worker frame for `rounds` barrier rounds
    /// before delivering it.
    pub fn delay_message(mut self, nth: u64, rounds: u32) -> Self {
        self.delay_nth.push((nth, rounds));
        self
    }

    /// Severs the live TCP connection of link `src → dst` as it is about
    /// to carry its `nth` data frame (0-based, per link). The frame
    /// itself travels on the replacement connection; frames buffered in
    /// the dead one may be lost. TCP backend only — the channel backend
    /// has no connections to sever.
    pub fn sever_connection(mut self, src: WorkerId, dst: WorkerId, nth_frame: u64) -> Self {
        self.sever.push((src, dst, nth_frame));
        self
    }

    /// Cuts every link to and from `worker` for `window` once the
    /// cluster-wide send counter passes `after_nth` (the counter
    /// [`FaultState::next_send_index`] claims). TCP backend only.
    pub fn partition_worker(mut self, worker: WorkerId, after_nth: u64, window: Duration) -> Self {
        self.partition = Some((worker, after_nth, window));
        self
    }

    /// Slows link `src → dst` down to one data frame per `per_frame_ms`
    /// milliseconds, so its outbox fills and senders feel backpressure.
    /// TCP backend only.
    pub fn throttle_link(mut self, src: WorkerId, dst: WorkerId, per_frame_ms: u64) -> Self {
        self.throttle.push((src, dst, per_frame_ms));
        self
    }

    /// Fails the physical link between model nodes `a` and `b` for the
    /// whole run: both endpoint switches treat their interface on that
    /// link as down from construction on, so the simulated control plane
    /// converges around the failure. This is a **model-level** fault —
    /// the *simulated network* degrades and the verification result is
    /// expected to change — in contrast to [`FaultPlan::sever_connection`]
    /// and friends, which break the *runtime transport* between workers
    /// and must be invisible in the verification result.
    pub fn fail_link(mut self, a: NodeId, b: NodeId) -> Self {
        self.fail_links.push((a, b));
        self
    }

    /// The model-level failed links of the plan.
    pub fn failed_links(&self) -> &[(NodeId, NodeId)] {
        &self.fail_links
    }

    /// Crashes the daemon the first time it enters `phase` of a delta
    /// application (the process aborts as if `kill -9`'d; the chaos
    /// harness restarts it from the warm checkpoint). Fires once per
    /// registered phase.
    pub fn crash_daemon(mut self, phase: DaemonPhase) -> Self {
        self.crash_daemon.push(phase);
        self
    }

    /// Drops the admin connection serving the `nth` accepted request
    /// (0-based) before a reply is written, so the client sees an abrupt
    /// close mid-exchange.
    pub fn drop_admin_conn(mut self, nth: u64) -> Self {
        self.drop_admin.push(nth);
        self
    }

    /// Flips a byte of the `nth` on-disk checkpoint write (0-based), so
    /// the restart path must detect it by checksum and fall back to a
    /// cold start.
    pub fn corrupt_checkpoint(mut self, nth: u64) -> Self {
        self.corrupt_checkpoint.push(nth);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.kill.is_none()
            && self.hang.is_none()
            && self.drop_nth.is_empty()
            && self.duplicate_nth.is_empty()
            && self.corrupt_nth.is_empty()
            && self.delay_nth.is_empty()
            && self.sever.is_empty()
            && self.partition.is_none()
            && self.throttle.is_empty()
            && self.fail_links.is_empty()
            && self.crash_daemon.is_empty()
            && self.drop_admin.is_empty()
            && self.corrupt_checkpoint.is_empty()
    }
}

/// Runtime state of a plan: one-shot flags plus the frame counter.
/// Shared by every sidecar and worker of a cluster.
pub struct FaultState {
    plan: FaultPlan,
    kill_fired: AtomicBool,
    hang_fired: AtomicBool,
    send_index: AtomicU64,
    /// One-shot flags, parallel to `plan.sever`.
    sever_fired: Vec<AtomicBool>,
    /// One-shot flags, parallel to `plan.crash_daemon`.
    crash_fired: Vec<AtomicBool>,
    /// Accepted-admin-request counter (0-based, accept order).
    admin_index: AtomicU64,
    /// Checkpoint-write counter (0-based, write order).
    checkpoint_index: AtomicU64,
    /// Time source for the partition window. Production uses the
    /// process-wide monotonic clock; tests substitute a [`ManualClock`]
    /// so window expiry is deterministic.
    ///
    /// [`ManualClock`]: s2_obs::ManualClock
    clock: Arc<dyn Clock>,
    /// Absolute `clock` nanosecond at which the armed partition window
    /// closes (`None` until the trigger fires).
    partition_until_ns: Mutex<Option<u64>>,
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("send_index", &self.send_index)
            .field("partition_until_ns", &*self.partition_until_ns.lock())
            .finish_non_exhaustive()
    }
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState::new(FaultPlan::default())
    }
}

impl FaultState {
    /// Arms a plan against the process-wide monotonic clock.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState::with_clock(plan, Arc::new(MonotonicClock))
    }

    /// Arms a plan against an explicit clock (tests drive a
    /// [`ManualClock`](s2_obs::ManualClock) by hand).
    pub fn with_clock(plan: FaultPlan, clock: Arc<dyn Clock>) -> Self {
        let sever_fired = plan.sever.iter().map(|_| AtomicBool::new(false)).collect();
        let crash_fired = plan
            .crash_daemon
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        FaultState {
            plan,
            kill_fired: AtomicBool::new(false),
            hang_fired: AtomicBool::new(false),
            send_index: AtomicU64::new(0),
            sever_fired,
            crash_fired,
            admin_index: AtomicU64::new(0),
            checkpoint_index: AtomicU64::new(0),
            clock,
            partition_until_ns: Mutex::new(None),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `worker` must crash before processing command number
    /// `command` (1-based). Consumes the trigger.
    pub fn should_kill(&self, worker: WorkerId, command: u64) -> bool {
        match self.plan.kill {
            Some((w, n)) if w == worker && n == command => {
                !self.kill_fired.swap(true, Ordering::Relaxed)
            }
            _ => false,
        }
    }

    /// Whether `worker` must hang from command number `command` (1-based)
    /// on. Consumes the trigger.
    pub fn should_hang(&self, worker: WorkerId, command: u64) -> bool {
        match self.plan.hang {
            Some((w, n)) if w == worker && n == command => {
                !self.hang_fired.swap(true, Ordering::Relaxed)
            }
            _ => false,
        }
    }

    /// Claims the next cluster-wide frame index (0-based, in send order).
    /// Passing a scheduled partition trigger arms the partition window.
    pub fn next_send_index(&self) -> u64 {
        let idx = self.send_index.fetch_add(1, Ordering::Relaxed);
        if let Some((_, after_nth, window)) = self.plan.partition {
            if idx == after_nth {
                let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
                *self.partition_until_ns.lock() =
                    Some(self.clock.now_ns().saturating_add(window_ns));
            }
        }
        idx
    }

    /// Whether frame `idx` is scheduled to be dropped.
    pub fn drops(&self, idx: u64) -> bool {
        self.plan.drop_nth.contains(&idx)
    }

    /// Whether frame `idx` is scheduled to be duplicated.
    pub fn duplicates(&self, idx: u64) -> bool {
        self.plan.duplicate_nth.contains(&idx)
    }

    /// Whether frame `idx` is scheduled to be corrupted.
    pub fn corrupts(&self, idx: u64) -> bool {
        self.plan.corrupt_nth.contains(&idx)
    }

    /// The delay (in barrier rounds) scheduled for frame `idx`, if any.
    pub fn delay_of(&self, idx: u64) -> Option<u32> {
        self.plan
            .delay_nth
            .iter()
            .find(|(n, _)| *n == idx)
            .map(|(_, r)| *r)
    }

    /// Whether the connection of link `src → dst` must be severed before
    /// carrying its data frame `idx` (0-based, per link). Fires at the
    /// first frame at or after the planned index — the transport only
    /// asks when a live connection exists to sever, and connections are
    /// dialed lazily, so the planned frame itself may be the one that
    /// establishes the connection. Consumes the trigger.
    pub fn should_sever(&self, src: WorkerId, dst: WorkerId, idx: u64) -> bool {
        self.plan
            .sever
            .iter()
            .zip(&self.sever_fired)
            .any(|(&(s, d, n), fired)| {
                s == src && d == dst && idx >= n && !fired.swap(true, Ordering::Relaxed)
            })
    }

    /// Whether link `src → dst` is currently inside an armed partition
    /// window (either endpoint being the partitioned worker).
    pub fn partition_active(&self, src: WorkerId, dst: WorkerId) -> bool {
        let Some((w, _, _)) = self.plan.partition else {
            return false;
        };
        if w != src && w != dst {
            return false;
        }
        matches!(*self.partition_until_ns.lock(), Some(until) if self.clock.now_ns() < until)
    }

    /// Whether the daemon must crash on entering `phase`. Consumes the
    /// matching trigger (one-shot per registered phase).
    pub fn should_crash_daemon(&self, phase: DaemonPhase) -> bool {
        self.plan
            .crash_daemon
            .iter()
            .zip(&self.crash_fired)
            .any(|(&p, fired)| p == phase && !fired.swap(true, Ordering::Relaxed))
    }

    /// Claims the next admin-request index (0-based, accept order).
    pub fn next_admin_index(&self) -> u64 {
        self.admin_index.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether the admin connection serving request `idx` must be
    /// dropped before the reply.
    pub fn drops_admin_conn(&self, idx: u64) -> bool {
        self.plan.drop_admin.contains(&idx)
    }

    /// Claims the next checkpoint-write index (0-based, write order).
    pub fn next_checkpoint_index(&self) -> u64 {
        self.checkpoint_index.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether checkpoint write `idx` must be corrupted on disk.
    pub fn corrupts_checkpoint(&self, idx: u64) -> bool {
        self.plan.corrupt_checkpoint.contains(&idx)
    }

    /// The per-frame delay (ms) scheduled for link `src → dst`, if any.
    pub fn throttle_of(&self, src: WorkerId, dst: WorkerId) -> Option<u64> {
        self.plan
            .throttle
            .iter()
            .find(|&&(s, d, _)| s == src && d == dst)
            .map(|&(_, _, ms)| ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_trigger_fires_exactly_once() {
        let s = FaultState::new(FaultPlan::new().kill_worker(1, 3));
        assert!(!s.should_kill(1, 2));
        assert!(!s.should_kill(0, 3), "wrong worker");
        assert!(s.should_kill(1, 3));
        assert!(!s.should_kill(1, 3), "one-shot");
    }

    #[test]
    fn frame_triggers_index_deterministically() {
        let s = FaultState::new(
            FaultPlan::new()
                .drop_message(0)
                .corrupt_message(2)
                .duplicate_message(2)
                .delay_message(5, 3),
        );
        assert_eq!(s.next_send_index(), 0);
        assert_eq!(s.next_send_index(), 1);
        assert!(s.drops(0) && !s.drops(1));
        assert!(s.corrupts(2) && s.duplicates(2));
        assert_eq!(s.delay_of(5), Some(3));
        assert_eq!(s.delay_of(4), None);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().drop_message(1).is_empty());
        assert!(!FaultPlan::new().sever_connection(0, 1, 0).is_empty());
        assert!(!FaultPlan::new().throttle_link(0, 1, 5).is_empty());
        assert!(!FaultPlan::new()
            .partition_worker(0, 0, Duration::from_millis(1))
            .is_empty());
    }

    #[test]
    fn sever_trigger_fires_once_per_link_frame() {
        let s = FaultState::new(FaultPlan::new().sever_connection(0, 1, 2));
        assert!(!s.should_sever(0, 1, 1));
        assert!(!s.should_sever(1, 0, 2), "wrong direction");
        assert!(s.should_sever(0, 1, 3), "fires at or after the index");
        assert!(!s.should_sever(0, 1, 4), "one-shot");
    }

    #[test]
    fn partition_arms_on_send_index_and_expires() {
        let clock = Arc::new(s2_obs::ManualClock::new());
        let s = FaultState::with_clock(
            FaultPlan::new().partition_worker(1, 1, Duration::from_millis(40)),
            clock.clone(),
        );
        assert!(!s.partition_active(0, 1), "not armed yet");
        s.next_send_index(); // 0
        assert!(!s.partition_active(0, 1));
        s.next_send_index(); // 1: trigger
        assert!(s.partition_active(0, 1));
        assert!(s.partition_active(1, 0));
        assert!(!s.partition_active(0, 2), "uninvolved link unaffected");
        clock.advance(Duration::from_millis(39));
        assert!(s.partition_active(0, 1), "window still open");
        clock.advance(Duration::from_millis(2));
        assert!(!s.partition_active(0, 1), "window elapsed");
    }

    #[test]
    fn fail_link_is_a_model_level_trigger() {
        let plan = FaultPlan::new().fail_link(NodeId(1), NodeId(2));
        assert!(!plan.is_empty());
        assert_eq!(plan.failed_links(), &[(NodeId(1), NodeId(2))]);
        // No runtime trigger: FaultState carries it passively.
        let s = FaultState::new(plan);
        assert!(!s.should_kill(1, 1));
        assert_eq!(s.plan().failed_links().len(), 1);
    }

    #[test]
    fn daemon_crash_trigger_fires_once_per_phase() {
        let s = FaultState::new(
            FaultPlan::new()
                .crash_daemon(DaemonPhase::Commit)
                .crash_daemon(DaemonPhase::Replay),
        );
        assert!(!s.should_crash_daemon(DaemonPhase::Validate));
        assert!(s.should_crash_daemon(DaemonPhase::Replay));
        assert!(!s.should_crash_daemon(DaemonPhase::Replay), "one-shot");
        assert!(s.should_crash_daemon(DaemonPhase::Commit));
        assert!(!s.should_crash_daemon(DaemonPhase::Commit), "one-shot");
    }

    #[test]
    fn admin_and_checkpoint_triggers_index_deterministically() {
        let s = FaultState::new(
            FaultPlan::new()
                .drop_admin_conn(1)
                .corrupt_checkpoint(0)
                .corrupt_checkpoint(2),
        );
        assert!(!s.plan().is_empty());
        assert_eq!(s.next_admin_index(), 0);
        assert_eq!(s.next_admin_index(), 1);
        assert!(s.drops_admin_conn(1) && !s.drops_admin_conn(0));
        assert_eq!(s.next_checkpoint_index(), 0);
        assert!(s.corrupts_checkpoint(0));
        assert!(!s.corrupts_checkpoint(1));
        assert!(s.corrupts_checkpoint(2));
    }

    #[test]
    fn throttle_applies_per_directed_link() {
        let s = FaultState::new(FaultPlan::new().throttle_link(0, 1, 7));
        assert_eq!(s.throttle_of(0, 1), Some(7));
        assert_eq!(s.throttle_of(1, 0), None);
    }
}
