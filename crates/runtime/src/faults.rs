//! Deterministic fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] describes *when* things go wrong — a worker crash
//! before its n-th command, a hang, the loss / duplication / corruption /
//! delay of the n-th cross-worker frame — and is threaded into
//! [`Cluster`](crate::Cluster) construction through
//! [`RuntimeConfig`](crate::RuntimeConfig). Every trigger is indexed by a
//! deterministic counter (commands processed per worker, frames attempted
//! cluster-wide), so a given plan reproduces the same failure on every
//! run. The chaos tests drive recovery with these plans and assert the
//! recovered result is bit-identical to an undisturbed run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Worker index (mirrors [`crate::sidecar::WorkerId`]).
type WorkerId = u32;

/// A deterministic schedule of injected failures.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    kill: Option<(WorkerId, u64)>,
    hang: Option<(WorkerId, u64)>,
    drop_nth: Vec<u64>,
    duplicate_nth: Vec<u64>,
    corrupt_nth: Vec<u64>,
    delay_nth: Vec<(u64, u32)>,
}

impl FaultPlan {
    /// No faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Kills worker `worker` immediately before it processes its `nth`
    /// command (1-based; each controller barrier is one command). The
    /// thread simply exits — the crash model of a lost logical server.
    /// Fires once: the respawned worker is not re-killed.
    pub fn kill_worker(mut self, worker: WorkerId, nth_command: u64) -> Self {
        self.kill = Some((worker, nth_command));
        self
    }

    /// Hangs worker `worker` from its `nth` command on: it keeps draining
    /// commands but never replies again, forcing the controller's barrier
    /// timeout. Fires once.
    pub fn hang_worker(mut self, worker: WorkerId, nth_command: u64) -> Self {
        self.hang = Some((worker, nth_command));
        self
    }

    /// Silently drops the `nth` cross-worker frame (0-based attempt
    /// index, counted cluster-wide in send order).
    pub fn drop_message(mut self, nth: u64) -> Self {
        self.drop_nth.push(nth);
        self
    }

    /// Delivers the `nth` cross-worker frame twice with the same
    /// sequence number (the receiver must deduplicate).
    pub fn duplicate_message(mut self, nth: u64) -> Self {
        self.duplicate_nth.push(nth);
        self
    }

    /// Flips a byte of the `nth` cross-worker frame so the receiver's
    /// checksum rejects it.
    pub fn corrupt_message(mut self, nth: u64) -> Self {
        self.corrupt_nth.push(nth);
        self
    }

    /// Holds the `nth` cross-worker frame for `rounds` barrier rounds
    /// before delivering it.
    pub fn delay_message(mut self, nth: u64, rounds: u32) -> Self {
        self.delay_nth.push((nth, rounds));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.kill.is_none()
            && self.hang.is_none()
            && self.drop_nth.is_empty()
            && self.duplicate_nth.is_empty()
            && self.corrupt_nth.is_empty()
            && self.delay_nth.is_empty()
    }
}

/// Runtime state of a plan: one-shot flags plus the frame counter.
/// Shared by every sidecar and worker of a cluster.
#[derive(Debug, Default)]
pub struct FaultState {
    plan: FaultPlan,
    kill_fired: AtomicBool,
    hang_fired: AtomicBool,
    send_index: AtomicU64,
}

impl FaultState {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ..Default::default()
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `worker` must crash before processing command number
    /// `command` (1-based). Consumes the trigger.
    pub fn should_kill(&self, worker: WorkerId, command: u64) -> bool {
        match self.plan.kill {
            Some((w, n)) if w == worker && n == command => {
                !self.kill_fired.swap(true, Ordering::Relaxed)
            }
            _ => false,
        }
    }

    /// Whether `worker` must hang from command number `command` (1-based)
    /// on. Consumes the trigger.
    pub fn should_hang(&self, worker: WorkerId, command: u64) -> bool {
        match self.plan.hang {
            Some((w, n)) if w == worker && n == command => {
                !self.hang_fired.swap(true, Ordering::Relaxed)
            }
            _ => false,
        }
    }

    /// Claims the next cluster-wide frame index (0-based, in send order).
    pub fn next_send_index(&self) -> u64 {
        self.send_index.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether frame `idx` is scheduled to be dropped.
    pub fn drops(&self, idx: u64) -> bool {
        self.plan.drop_nth.contains(&idx)
    }

    /// Whether frame `idx` is scheduled to be duplicated.
    pub fn duplicates(&self, idx: u64) -> bool {
        self.plan.duplicate_nth.contains(&idx)
    }

    /// Whether frame `idx` is scheduled to be corrupted.
    pub fn corrupts(&self, idx: u64) -> bool {
        self.plan.corrupt_nth.contains(&idx)
    }

    /// The delay (in barrier rounds) scheduled for frame `idx`, if any.
    pub fn delay_of(&self, idx: u64) -> Option<u32> {
        self.plan
            .delay_nth
            .iter()
            .find(|(n, _)| *n == idx)
            .map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_trigger_fires_exactly_once() {
        let s = FaultState::new(FaultPlan::new().kill_worker(1, 3));
        assert!(!s.should_kill(1, 2));
        assert!(!s.should_kill(0, 3), "wrong worker");
        assert!(s.should_kill(1, 3));
        assert!(!s.should_kill(1, 3), "one-shot");
    }

    #[test]
    fn frame_triggers_index_deterministically() {
        let s = FaultState::new(
            FaultPlan::new()
                .drop_message(0)
                .corrupt_message(2)
                .duplicate_message(2)
                .delay_message(5, 3),
        );
        assert_eq!(s.next_send_index(), 0);
        assert_eq!(s.next_send_index(), 1);
        assert!(s.drops(0) && !s.drops(1));
        assert!(s.corrupts(2) && s.duplicates(2));
        assert_eq!(s.delay_of(5), Some(3));
        assert_eq!(s.delay_of(4), None);
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().drop_message(1).is_empty());
    }
}
