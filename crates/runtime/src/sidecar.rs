//! Sidecars: the message routers between workers (§3.2).
//!
//! Each worker owns a [`Sidecar`] holding its inbox receiver plus the
//! shared [`SidecarNet`] — the node→worker map and the senders to every
//! other sidecar. A node sending a route or packet to a remote node hands
//! the encoded message to its sidecar, which looks up the owning worker
//! and forwards it; the receiving sidecar delivers it to the right local
//! node. Per-link traffic statistics are kept so experiments can report
//! communication volume.
//!
//! ## Hardening
//!
//! Every delivery is wrapped in a checksummed [`wire`] frame carrying the
//! sending worker, the controller *epoch*, and a per-link sequence
//! number. The receiving sidecar validates each frame and treats failures
//! as per-message events, never fatal to the worker:
//!
//! * checksum / length / decode failures → counted in
//!   [`TrafficStats::wire_errors`], frame skipped;
//! * stale epoch (a zombie worker replaced during recovery) → counted in
//!   [`TrafficStats::stale_drops`], frame skipped;
//! * replayed sequence number (duplicated frame) → counted in
//!   [`TrafficStats::dup_skips`], frame skipped;
//! * sequence gap (frames lost in transit) → counted in
//!   [`TrafficStats::seq_gaps`]; the controller uses the disturbance
//!   counters to keep fix-point rounds going until the loss is healed.
//!
//! The net also hosts the [`FaultState`] hooks (drop / duplicate /
//! corrupt / delay of the n-th frame) used by the chaos tests, and the
//! sender side of worker recovery: [`SidecarNet::replace_inbox`] swaps a
//! dead worker's inbox for a fresh channel so a respawned worker starts
//! from a clean slate.

use crate::faults::FaultState;
use crate::tcp::TcpTransport;
use crate::transport::{ChannelTransport, Inbox, Transport, TransportKind};
use crate::wire::{self, Message};
use bytes::Bytes;
use parking_lot::Mutex;
use s2_net::topology::NodeId;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Worker index.
pub type WorkerId = u32;

/// Cumulative cross-worker traffic counters (shared, lock-free).
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Messages forwarded between distinct workers.
    pub messages: AtomicU64,
    /// Bytes forwarded between distinct workers (message payload, before
    /// framing).
    pub bytes: AtomicU64,
    /// Frames rejected by the receiver (checksum, length, decode).
    pub wire_errors: AtomicU64,
    /// Frames skipped because their sequence number was already seen.
    pub dup_skips: AtomicU64,
    /// Sequence numbers skipped over (frames lost in transit).
    pub seq_gaps: AtomicU64,
    /// Frames dropped for carrying a stale controller epoch.
    pub stale_drops: AtomicU64,
    /// Frames dropped by fault injection.
    pub injected_drops: AtomicU64,
    /// Frames duplicated by fault injection.
    pub injected_dups: AtomicU64,
    /// Frames corrupted by fault injection.
    pub injected_corruptions: AtomicU64,
    /// Frames delayed by fault injection.
    pub injected_delays: AtomicU64,
    /// TCP connections re-established after a failure (frames buffered in
    /// the dead connection may be lost, so reconnects count as losses).
    pub reconnects: AtomicU64,
    /// Frames dropped because a backpressured `send` hit its deadline.
    pub send_drops: AtomicU64,
    /// `send` calls that had to block on a full outbox.
    pub backpressure_stalls: AtomicU64,
    /// Keepalive probes written on idle connections.
    pub heartbeats: AtomicU64,
    /// Messages or envelopes a peer sent that violated the protocol
    /// (unknown kind, malformed handshake, non-local target…); each one
    /// is skipped, never fatal.
    pub protocol_violations: AtomicU64,
    /// Per-switch scratch-buffer reuses in the forwarding hot loop —
    /// each one is a `StepOutput` (three Vecs) that was *not* freshly
    /// allocated. An allocation-pressure metric, not a wire event.
    pub scratch_reuses: AtomicU64,
}

impl TrafficStats {
    /// Snapshot of (messages, bytes).
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }

    /// Events that can leave a receiver missing traffic this round:
    /// injected drops and delays plus every rejected frame. The
    /// controller samples this around each fix-point round — a non-zero
    /// delta means the round cannot prove convergence and (for BGP)
    /// triggers a resync of the incremental-export caches.
    pub fn disturbances(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
            + self.injected_delays.load(Ordering::Relaxed)
            + self.wire_errors.load(Ordering::Relaxed)
            + self.reconnects.load(Ordering::Relaxed)
            + self.send_drops.load(Ordering::Relaxed)
            + self.protocol_violations.load(Ordering::Relaxed)
    }

    /// Frames lost to the receiver (injected drops, rejected frames,
    /// reconnects with possibly-buffered frames, deadline-dropped sends,
    /// protocol-violating messages that were skipped) — the subset of
    /// disturbances that needs active healing.
    pub fn losses(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
            + self.wire_errors.load(Ordering::Relaxed)
            + self.reconnects.load(Ordering::Relaxed)
            + self.send_drops.load(Ordering::Relaxed)
            + self.protocol_violations.load(Ordering::Relaxed)
    }

    /// A plain-value copy of every counter (for reports and for shipping
    /// worker-side statistics to a remote controller).
    pub fn full_snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            dup_skips: self.dup_skips.load(Ordering::Relaxed),
            seq_gaps: self.seq_gaps.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            injected_dups: self.injected_dups.load(Ordering::Relaxed),
            injected_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            send_drops: self.send_drops.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            protocol_violations: self.protocol_violations.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of [`TrafficStats`] — what run statistics and
/// remote workers report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// See [`TrafficStats::messages`].
    pub messages: u64,
    /// See [`TrafficStats::bytes`].
    pub bytes: u64,
    /// See [`TrafficStats::wire_errors`].
    pub wire_errors: u64,
    /// See [`TrafficStats::dup_skips`].
    pub dup_skips: u64,
    /// See [`TrafficStats::seq_gaps`].
    pub seq_gaps: u64,
    /// See [`TrafficStats::stale_drops`].
    pub stale_drops: u64,
    /// See [`TrafficStats::injected_drops`].
    pub injected_drops: u64,
    /// See [`TrafficStats::injected_dups`].
    pub injected_dups: u64,
    /// See [`TrafficStats::injected_corruptions`].
    pub injected_corruptions: u64,
    /// See [`TrafficStats::injected_delays`].
    pub injected_delays: u64,
    /// See [`TrafficStats::reconnects`].
    pub reconnects: u64,
    /// See [`TrafficStats::send_drops`].
    pub send_drops: u64,
    /// See [`TrafficStats::backpressure_stalls`].
    pub backpressure_stalls: u64,
    /// See [`TrafficStats::heartbeats`].
    pub heartbeats: u64,
    /// See [`TrafficStats::protocol_violations`].
    pub protocol_violations: u64,
    /// See [`TrafficStats::scratch_reuses`].
    pub scratch_reuses: u64,
}

impl TrafficSnapshot {
    /// Field-wise sum (aggregating per-process snapshots of a
    /// multi-process cluster).
    pub fn merge(&mut self, other: &TrafficSnapshot) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.wire_errors += other.wire_errors;
        self.dup_skips += other.dup_skips;
        self.seq_gaps += other.seq_gaps;
        self.stale_drops += other.stale_drops;
        self.injected_drops += other.injected_drops;
        self.injected_dups += other.injected_dups;
        self.injected_corruptions += other.injected_corruptions;
        self.injected_delays += other.injected_delays;
        self.reconnects += other.reconnects;
        self.send_drops += other.send_drops;
        self.backpressure_stalls += other.backpressure_stalls;
        self.heartbeats += other.heartbeats;
        self.protocol_violations += other.protocol_violations;
        self.scratch_reuses += other.scratch_reuses;
    }

    /// Mirror of [`TrafficStats::disturbances`] over plain values.
    pub fn disturbances(&self) -> u64 {
        self.injected_drops
            + self.injected_delays
            + self.wire_errors
            + self.reconnects
            + self.send_drops
            + self.protocol_violations
    }

    /// Mirror of [`TrafficStats::losses`] over plain values.
    pub fn losses(&self) -> u64 {
        self.injected_drops
            + self.wire_errors
            + self.reconnects
            + self.send_drops
            + self.protocol_violations
    }
}

/// A frame held back by an injected delay.
#[derive(Debug)]
struct HeldMessage {
    rounds_left: u32,
    src: WorkerId,
    dst: WorkerId,
    payload: Bytes,
}

/// The shared fabric connecting all sidecars.
#[derive(Debug, Clone)]
pub struct SidecarNet {
    node_owner: Arc<Vec<WorkerId>>,
    /// The pluggable data fabric frames travel on.
    transport: Arc<dyn Transport>,
    stats: Arc<TrafficStats>,
    /// Current controller epoch; bumped on every recovery so frames from
    /// replaced (zombie) workers identify themselves as stale.
    epoch: Arc<AtomicU32>,
    /// Per-(sender, receiver) sequence counters.
    seq: Arc<Vec<Vec<AtomicU64>>>,
    faults: Arc<FaultState>,
    held: Arc<Mutex<Vec<HeldMessage>>>,
}

impl SidecarNet {
    /// Builds the fabric for `num_workers` workers given the node→worker
    /// assignment, returning the net plus each worker's inbox (channel
    /// backend).
    pub fn build(node_owner: Vec<WorkerId>, num_workers: u32) -> (SidecarNet, Vec<Inbox>) {
        Self::build_with_faults(node_owner, num_workers, Arc::new(FaultState::default()))
    }

    /// [`SidecarNet::build`] with an armed fault plan (channel backend).
    pub fn build_with_faults(
        node_owner: Vec<WorkerId>,
        num_workers: u32,
        faults: Arc<FaultState>,
    ) -> (SidecarNet, Vec<Inbox>) {
        // Built directly (not through `build_with_transport`) so this
        // path is statically infallible: only socket binds can fail.
        let stats = Arc::new(TrafficStats::default());
        let (transport, inboxes) = ChannelTransport::build(num_workers);
        (
            Self::assemble(node_owner, num_workers, faults, transport, stats),
            inboxes,
        )
    }

    /// Builds the fabric on the requested transport backend. Only the TCP
    /// backend can fail (socket binds).
    pub fn build_with_transport(
        node_owner: Vec<WorkerId>,
        num_workers: u32,
        faults: Arc<FaultState>,
        kind: TransportKind,
    ) -> io::Result<(SidecarNet, Vec<Inbox>)> {
        let stats = Arc::new(TrafficStats::default());
        let (transport, inboxes): (Arc<dyn Transport>, Vec<Inbox>) = match kind {
            TransportKind::Channel => {
                let (t, inboxes) = ChannelTransport::build(num_workers);
                (t, inboxes)
            }
            TransportKind::Tcp(cfg) => {
                let (t, inboxes) =
                    TcpTransport::mesh(num_workers, cfg, stats.clone(), faults.clone())?;
                (t, inboxes)
            }
        };
        Ok((
            Self::assemble(node_owner, num_workers, faults, transport, stats),
            inboxes,
        ))
    }

    /// Builds the fabric around an externally constructed transport (the
    /// multi-process worker endpoint, where the single-worker TCP
    /// transport is built from the controller's `Setup` message).
    pub fn with_transport(
        node_owner: Vec<WorkerId>,
        num_workers: u32,
        faults: Arc<FaultState>,
        transport: Arc<dyn Transport>,
        stats: Arc<TrafficStats>,
    ) -> SidecarNet {
        Self::assemble(node_owner, num_workers, faults, transport, stats)
    }

    fn assemble(
        node_owner: Vec<WorkerId>,
        num_workers: u32,
        faults: Arc<FaultState>,
        transport: Arc<dyn Transport>,
        stats: Arc<TrafficStats>,
    ) -> SidecarNet {
        let seq = (0..num_workers)
            .map(|_| (0..num_workers).map(|_| AtomicU64::new(0)).collect())
            .collect();
        SidecarNet {
            node_owner: Arc::new(node_owner),
            transport,
            stats,
            epoch: Arc::new(AtomicU32::new(0)),
            seq: Arc::new(seq),
            faults,
            held: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Frames accepted by the transport but not yet drained by their
    /// destination worker (always 0 on the synchronous channel backend).
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// Shuts the transport down (closes sockets, joins supervision
    /// threads; no-op for channels).
    pub fn shutdown_transport(&self) {
        self.transport.shutdown();
    }

    /// The worker hosting `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> WorkerId {
        // s2-lint: allow(r1-panic-freedom): wire-supplied node ids are range-checked against node_owner in Sidecar::drain before surfacing; all other callers pass locally-owned topology ids that node_owner covers by construction.
        self.node_owner[node.index()]
    }

    /// Whether `node` exists in the node→worker map (the range check
    /// [`drain`](Sidecar::drain) applies to peer-supplied node ids).
    #[inline]
    pub fn knows_node(&self, node: NodeId) -> bool {
        node.index() < self.node_owner.len()
    }

    /// Cross-worker traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The current controller epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Starts a new epoch (called by the controller during recovery);
    /// in-flight frames from the old epoch will be dropped as stale.
    pub fn bump_epoch(&self) -> u32 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Replaces worker `w`'s inbox with a fresh, empty one and returns it
    /// (for the respawned worker). Frames still queued in the old inbox
    /// are discarded.
    pub fn replace_inbox(&self, w: WorkerId) -> Inbox {
        self.transport.replace_inbox(w)
    }

    /// Messages currently held back by injected delays.
    pub fn held_count(&self) -> usize {
        self.held.lock().len()
    }

    /// Advances injected delays by one barrier round, delivering every
    /// message whose hold expired. Returns how many were released.
    pub fn tick_delayed(&self) -> usize {
        let due: Vec<HeldMessage> = {
            let mut held = self.held.lock();
            for h in held.iter_mut() {
                h.rounds_left = h.rounds_left.saturating_sub(1);
            }
            let (due, keep): (Vec<_>, Vec<_>) =
                held.drain(..).partition(|h| h.rounds_left == 0);
            *held = keep;
            due
        };
        let released = due.len();
        for h in due {
            // Framed at release time: sequence numbers reflect delivery
            // order, so a delayed message is late, not "from the past".
            self.deliver(h.src, h.dst, &h.payload, false);
        }
        released
    }

    /// Discards every held message (recovery: the resync logic re-sends
    /// fresher state than anything still in the delay queue).
    pub fn discard_held(&self) {
        self.held.lock().clear();
    }

    /// Frames `payload` and pushes it into `dst`'s inbox, optionally
    /// corrupted.
    fn deliver(&self, src: WorkerId, dst: WorkerId, payload: &Bytes, corrupt: bool) {
        // s2-lint: allow(r1-panic-freedom): src is this process's own worker id and dst comes from node_owner, validated against num_workers at setup (remote::serve) or built locally by the controller; seq is num_workers².
        let seq = self.seq[src as usize][dst as usize].fetch_add(1, Ordering::Relaxed);
        let framed = wire::frame(src, self.epoch(), seq, payload);
        let framed = if corrupt {
            let mut raw: Vec<u8> = framed.as_ref().to_vec();
            // Flip the last byte: always inside the message payload, so
            // the receiver's checksum (not the length check) catches it.
            if let Some(b) = raw.last_mut() {
                *b ^= 0xff;
            }
            Bytes::from(raw)
        } else {
            framed
        };
        // Failures are accounted inside the transport (send_drops /
        // backpressure) or mean shutdown; either way the frame is gone
        // and the disturbance machinery heals real losses.
        let _ = self.transport.send(src, dst, framed);
    }

    /// Routes an encoded message from worker `src` to the worker owning
    /// `target`. The counters only tick for genuinely remote deliveries;
    /// callers short-circuit local traffic before encoding (real-node
    /// fast path). Fault-plan hooks apply here, indexed by a cluster-wide
    /// attempt counter.
    pub fn send_to_node(&self, src: WorkerId, target: NodeId, payload: Bytes) {
        let dst = self.owner(target);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);

        let idx = self.faults.next_send_index();
        if self.faults.drops(idx) {
            self.stats.injected_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(rounds) = self.faults.delay_of(idx) {
            self.stats.injected_delays.fetch_add(1, Ordering::Relaxed);
            self.held.lock().push(HeldMessage {
                rounds_left: rounds.max(1),
                src,
                dst,
                payload,
            });
            return;
        }
        let corrupt = self.faults.corrupts(idx);
        if corrupt {
            self.stats
                .injected_corruptions
                .fetch_add(1, Ordering::Relaxed);
        }
        self.deliver(src, dst, &payload, corrupt);
        if self.faults.duplicates(idx) {
            self.stats.injected_dups.fetch_add(1, Ordering::Relaxed);
            // Replay the frame verbatim (fresh frame, same intent): the
            // receiver must drop it by sequence number.
            // s2-lint: allow(r1-panic-freedom): same bounds argument as `deliver` above — src/dst are setup-validated worker ids.
            let seq = self.seq[src as usize][dst as usize].load(Ordering::Relaxed) - 1;
            let framed = wire::frame(src, self.epoch(), seq, &payload);
            let _ = self.transport.send(src, dst, framed);
        }
    }
}

/// One worker's endpoint: its inbox plus the shared fabric.
#[derive(Debug)]
pub struct Sidecar {
    /// This worker's id.
    pub worker: WorkerId,
    net: SidecarNet,
    inbox: Inbox,
    /// The epoch this worker believes is current (updated by the
    /// controller's `FlushInbox` during recovery).
    epoch: u32,
    /// Highest sequence number accepted per sending worker.
    last_seq: BTreeMap<WorkerId, u64>,
}

impl Sidecar {
    /// Wraps a worker's endpoint.
    pub fn new(worker: WorkerId, net: SidecarNet, inbox: Inbox) -> Self {
        let epoch = net.epoch();
        Sidecar {
            worker,
            net,
            inbox,
            epoch,
            last_seq: BTreeMap::new(),
        }
    }

    /// The shared fabric.
    pub fn net(&self) -> &SidecarNet {
        &self.net
    }

    /// Whether `node` is hosted by this worker (a **real** node here, a
    /// shadow node everywhere else).
    #[inline]
    pub fn is_local(&self, node: NodeId) -> bool {
        self.net.owner(node) == self.worker
    }

    /// Sends `msg` toward the worker owning `target` (must be remote).
    pub fn send(&self, target: NodeId, msg: &Message) {
        debug_assert!(!self.is_local(target), "local traffic must not use the sidecar");
        self.net.send_to_node(self.worker, target, wire::encode(msg));
    }

    /// Discards everything queued in the inbox, adopts `epoch` as
    /// current, and resets sequence tracking — the receiver half of the
    /// controller's recovery protocol.
    pub fn flush(&mut self, epoch: u32) {
        while self.inbox.try_recv().is_some() {}
        self.epoch = epoch;
        self.last_seq.clear();
    }

    /// Drains and decodes every valid message currently queued in the
    /// inbox. Invalid frames (bad checksum/length/decode), stale-epoch
    /// frames, and sequence replays are counted in [`TrafficStats`] and
    /// skipped — a mis-transmitted message never takes the worker down.
    pub fn drain(&mut self) -> Vec<Message> {
        let stats = self.net.stats.clone();
        let mut out = Vec::new();
        loop {
            let bytes = match self.inbox.try_recv() {
                Some(bytes) => bytes,
                None => return out,
            };
            let frame = match wire::deframe(bytes) {
                Ok(f) => f,
                Err(_) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if frame.epoch != self.epoch {
                stats.stale_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match self.last_seq.get(&frame.src) {
                Some(&last) if frame.seq <= last => {
                    stats.dup_skips.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Some(&last) if frame.seq > last + 1 => {
                    stats
                        .seq_gaps
                        .fetch_add(frame.seq - last - 1, Ordering::Relaxed);
                }
                Some(_) => {}
                // First contact on this link (or after a flush): accept
                // whatever sequence the sender is at.
                None => {}
            }
            self.last_seq.insert(frame.src, frame.seq);
            match wire::decode(frame.payload) {
                // Peer-supplied node ids are range-checked here, at the
                // trust boundary, so downstream ownership lookups and
                // switch-table indexing cannot go out of bounds.
                Ok(msg) if self.targets_known_nodes(&msg) => out.push(msg),
                Ok(_) => {
                    stats.protocol_violations.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Every node id carried by `msg` exists in the node→worker map.
    fn targets_known_nodes(&self, msg: &Message) -> bool {
        match msg {
            Message::BgpAdvertisement { target_node, .. }
            | Message::OspfAdvertisement { target_node, .. } => self.net.knows_node(*target_node),
            Message::Packet { src, node, .. } => {
                self.net.knows_node(*src) && self.net.knows_node(*node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn two_worker_net() -> (SidecarNet, Vec<Sidecar>) {
        faulty_two_worker_net(FaultPlan::new())
    }

    fn faulty_two_worker_net(plan: FaultPlan) -> (SidecarNet, Vec<Sidecar>) {
        // Nodes 0,1 on worker 0; node 2 on worker 1.
        let (net, rxs) =
            SidecarNet::build_with_faults(vec![0, 0, 1], 2, Arc::new(FaultState::new(plan)));
        let sidecars = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Sidecar::new(i as u32, net.clone(), rx))
            .collect();
        (net, sidecars)
    }

    fn bgp_msg(session: u32) -> Message {
        Message::BgpAdvertisement {
            target_node: NodeId(2),
            target_session: session,
            routes: vec![],
        }
    }

    #[test]
    fn ownership_lookup() {
        let (net, sidecars) = two_worker_net();
        assert_eq!(net.owner(NodeId(0)), 0);
        assert_eq!(net.owner(NodeId(2)), 1);
        assert!(sidecars[0].is_local(NodeId(1)));
        assert!(!sidecars[0].is_local(NodeId(2)));
    }

    #[test]
    fn messages_route_to_owning_worker() {
        let (_, mut sidecars) = two_worker_net();
        let msg = bgp_msg(0);
        sidecars[0].send(NodeId(2), &msg);
        let got = sidecars[1].drain();
        assert_eq!(got, vec![msg]);
        assert!(sidecars[0].drain().is_empty());
    }

    #[test]
    fn traffic_counters_tick() {
        let (net, mut sidecars) = two_worker_net();
        let msg = Message::OspfAdvertisement {
            target_node: NodeId(2),
            via_iface: s2_net::topology::InterfaceId(0),
            entries: vec![],
        };
        sidecars[0].send(NodeId(2), &msg);
        sidecars[0].send(NodeId(2), &msg);
        let (m, b) = net.stats().snapshot();
        assert_eq!(m, 2);
        assert!(b > 0);
        assert_eq!(sidecars[1].drain().len(), 2);
        assert_eq!(net.stats().wire_errors.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drain_preserves_order_per_sender() {
        let (_, mut sidecars) = two_worker_net();
        for session in 0..5 {
            sidecars[0].send(NodeId(2), &bgp_msg(session));
        }
        let got = sidecars[1].drain();
        let sessions: Vec<u32> = got
            .iter()
            .map(|m| match m {
                Message::BgpAdvertisement { target_session, .. } => *target_session,
                _ => panic!("unexpected message"),
            })
            .collect();
        assert_eq!(sessions, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn corrupted_frame_is_counted_and_skipped() {
        let (net, mut sidecars) = faulty_two_worker_net(FaultPlan::new().corrupt_message(0));
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        sidecars[0].send(NodeId(2), &bgp_msg(1));
        let got = sidecars[1].drain();
        assert_eq!(got, vec![bgp_msg(1)], "corrupted frame skipped");
        assert_eq!(net.stats().wire_errors.load(Ordering::Relaxed), 1);
        assert!(net.stats().disturbances() >= 1);
    }

    #[test]
    fn duplicated_frame_is_deduped_by_sequence() {
        let (net, mut sidecars) = faulty_two_worker_net(FaultPlan::new().duplicate_message(0));
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        assert_eq!(sidecars[1].drain(), vec![bgp_msg(0)]);
        assert_eq!(net.stats().dup_skips.load(Ordering::Relaxed), 1);
        assert_eq!(net.stats().injected_dups.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dropped_frame_counts_and_later_frames_reveal_gap() {
        let (net, mut sidecars) = faulty_two_worker_net(FaultPlan::new().drop_message(0));
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        sidecars[0].send(NodeId(2), &bgp_msg(1));
        assert_eq!(sidecars[1].drain(), vec![bgp_msg(1)]);
        assert_eq!(net.stats().injected_drops.load(Ordering::Relaxed), 1);
        // Dropping happens before framing, so no gap: the drop is counted
        // at the sender instead.
        assert!(net.stats().losses() >= 1);
    }

    #[test]
    fn delayed_frame_arrives_after_ticks() {
        let (net, mut sidecars) = faulty_two_worker_net(FaultPlan::new().delay_message(0, 2));
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        assert!(sidecars[1].drain().is_empty());
        assert_eq!(net.held_count(), 1);
        assert_eq!(net.tick_delayed(), 0);
        assert_eq!(net.tick_delayed(), 1);
        assert_eq!(sidecars[1].drain(), vec![bgp_msg(0)]);
        assert_eq!(net.held_count(), 0);
    }

    #[test]
    fn stale_epoch_frames_are_dropped_after_flush() {
        let (net, mut sidecars) = two_worker_net();
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        // Recovery: epoch bumps while the frame is still in flight…
        let e = net.bump_epoch();
        sidecars[0].send(NodeId(2), &bgp_msg(1));
        // …the receiver flushes to the new epoch, discarding the queue.
        sidecars[1].flush(e);
        sidecars[0].send(NodeId(2), &bgp_msg(2));
        assert_eq!(sidecars[1].drain(), vec![bgp_msg(2)]);
        // Nothing stale survived; only the flushed-away frames are gone.
        assert_eq!(net.stats().stale_drops.load(Ordering::Relaxed), 0);

        // A zombie still sending with the old epoch is filtered out.
        let (net2, mut sidecars2) = two_worker_net();
        sidecars2[0].send(NodeId(2), &bgp_msg(0));
        sidecars2[1].flush(net2.epoch() + 1); // receiver is ahead
        sidecars2[0].send(NodeId(2), &bgp_msg(1));
        assert!(sidecars2[1].drain().is_empty());
        assert_eq!(net2.stats().stale_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replace_inbox_starts_clean() {
        let (net, sidecars) = two_worker_net();
        sidecars[0].send(NodeId(2), &bgp_msg(0));
        // Worker 1 "dies"; its queued frame dies with the old channel.
        let rx = net.replace_inbox(1);
        let mut fresh = Sidecar::new(1, net.clone(), rx);
        assert!(fresh.drain().is_empty());
        sidecars[0].send(NodeId(2), &bgp_msg(1));
        assert_eq!(fresh.drain(), vec![bgp_msg(1)]);
    }
}
