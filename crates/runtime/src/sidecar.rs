//! Sidecars: the message routers between workers (§3.2).
//!
//! Each worker owns a [`Sidecar`] holding its inbox receiver plus the
//! shared [`SidecarNet`] — the node→worker map and the senders to every
//! other sidecar. A node sending a route or packet to a remote node hands
//! the encoded message to its sidecar, which looks up the owning worker
//! and forwards it; the receiving sidecar delivers it to the right local
//! node. Per-link traffic statistics are kept so experiments can report
//! communication volume.

use crate::wire::{self, Message, WireError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use bytes::Bytes;
use s2_net::topology::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Worker index.
pub type WorkerId = u32;

/// Cumulative cross-worker traffic counters (shared, lock-free).
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Messages forwarded between distinct workers.
    pub messages: AtomicU64,
    /// Bytes forwarded between distinct workers.
    pub bytes: AtomicU64,
}

impl TrafficStats {
    /// Snapshot of (messages, bytes).
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// The shared fabric connecting all sidecars.
#[derive(Debug, Clone)]
pub struct SidecarNet {
    node_owner: Arc<Vec<WorkerId>>,
    senders: Arc<Vec<Sender<Bytes>>>,
    stats: Arc<TrafficStats>,
}

impl SidecarNet {
    /// Builds the fabric for `num_workers` workers given the node→worker
    /// assignment, returning the net plus each worker's inbox receiver.
    pub fn build(node_owner: Vec<WorkerId>, num_workers: u32) -> (SidecarNet, Vec<Receiver<Bytes>>) {
        let mut senders = Vec::with_capacity(num_workers as usize);
        let mut receivers = Vec::with_capacity(num_workers as usize);
        for _ in 0..num_workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            SidecarNet {
                node_owner: Arc::new(node_owner),
                senders: Arc::new(senders),
                stats: Arc::new(TrafficStats::default()),
            },
            receivers,
        )
    }

    /// The worker hosting `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> WorkerId {
        self.node_owner[node.index()]
    }

    /// Cross-worker traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Routes an encoded message to the worker owning `target`. The
    /// counters only tick for genuinely remote deliveries; callers short-
    /// circuit local traffic before encoding (real-node fast path).
    pub fn send_to_node(&self, target: NodeId, payload: Bytes) {
        let worker = self.owner(target);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        // A closed inbox means the cluster is shutting down; dropping the
        // message is then correct.
        let _ = self.senders[worker as usize].send(payload);
    }
}

/// One worker's endpoint: its inbox plus the shared fabric.
#[derive(Debug)]
pub struct Sidecar {
    /// This worker's id.
    pub worker: WorkerId,
    net: SidecarNet,
    inbox: Receiver<Bytes>,
}

impl Sidecar {
    /// Wraps a worker's endpoint.
    pub fn new(worker: WorkerId, net: SidecarNet, inbox: Receiver<Bytes>) -> Self {
        Sidecar { worker, net, inbox }
    }

    /// The shared fabric.
    pub fn net(&self) -> &SidecarNet {
        &self.net
    }

    /// Whether `node` is hosted by this worker (a **real** node here, a
    /// shadow node everywhere else).
    #[inline]
    pub fn is_local(&self, node: NodeId) -> bool {
        self.net.owner(node) == self.worker
    }

    /// Sends `msg` toward the worker owning `target` (must be remote).
    pub fn send(&self, target: NodeId, msg: &Message) {
        debug_assert!(!self.is_local(target), "local traffic must not use the sidecar");
        self.net.send_to_node(target, wire::encode(msg));
    }

    /// Drains and decodes every message currently queued in the inbox.
    pub fn drain(&self) -> Result<Vec<Message>, WireError> {
        let mut out = Vec::new();
        loop {
            match self.inbox.try_recv() {
                Ok(bytes) => out.push(wire::decode(bytes)?),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Ok(out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_worker_net() -> (SidecarNet, Vec<Sidecar>) {
        // Nodes 0,1 on worker 0; node 2 on worker 1.
        let (net, rxs) = SidecarNet::build(vec![0, 0, 1], 2);
        let sidecars = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Sidecar::new(i as u32, net.clone(), rx))
            .collect();
        (net, sidecars)
    }

    #[test]
    fn ownership_lookup() {
        let (net, sidecars) = two_worker_net();
        assert_eq!(net.owner(NodeId(0)), 0);
        assert_eq!(net.owner(NodeId(2)), 1);
        assert!(sidecars[0].is_local(NodeId(1)));
        assert!(!sidecars[0].is_local(NodeId(2)));
    }

    #[test]
    fn messages_route_to_owning_worker() {
        let (_, sidecars) = two_worker_net();
        let msg = Message::BgpAdvertisement {
            target_node: NodeId(2),
            target_session: 0,
            routes: vec![],
        };
        sidecars[0].send(NodeId(2), &msg);
        let got = sidecars[1].drain().unwrap();
        assert_eq!(got, vec![msg]);
        assert!(sidecars[0].drain().unwrap().is_empty());
    }

    #[test]
    fn traffic_counters_tick() {
        let (net, sidecars) = two_worker_net();
        let msg = Message::OspfAdvertisement {
            target_node: NodeId(2),
            via_iface: s2_net::topology::InterfaceId(0),
            entries: vec![],
        };
        sidecars[0].send(NodeId(2), &msg);
        sidecars[0].send(NodeId(2), &msg);
        let (m, b) = net.stats().snapshot();
        assert_eq!(m, 2);
        assert!(b > 0);
    }

    #[test]
    fn drain_preserves_order_per_sender() {
        let (_, sidecars) = two_worker_net();
        for session in 0..5 {
            sidecars[0].send(
                NodeId(2),
                &Message::BgpAdvertisement {
                    target_node: NodeId(2),
                    target_session: session,
                    routes: vec![],
                },
            );
        }
        let got = sidecars[1].drain().unwrap();
        let sessions: Vec<u32> = got
            .iter()
            .map(|m| match m {
                Message::BgpAdvertisement { target_session, .. } => *target_session,
                _ => panic!("unexpected message"),
            })
            .collect();
        assert_eq!(sessions, vec![0, 1, 2, 3, 4]);
    }
}
