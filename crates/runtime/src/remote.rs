//! Multi-process mode: the control-channel protocol between a controller
//! process and `s2 worker` processes.
//!
//! The data fabric (routes, packets) between workers is the [`crate::tcp`]
//! transport; this module adds the *control* dimension: every
//! [`Command`]/[`Reply`] that the in-process cluster moves over crossbeam
//! channels is serialized into the same `kind:u8 len:u32 payload` stream
//! envelope the data sockets use, over one TCP connection per worker.
//!
//! Handshake:
//!
//! 1. the worker process binds its data listener, connects to the
//!    controller's `--listen` address, and sends `Register{data_addr}`,
//! 2. the controller accepts all `num_workers` registrations, assigns
//!    worker ids in accept order, and answers each with
//!    `Setup{worker_id, num_workers, node_owner, peers, memory_budget}`,
//! 3. the worker builds its [`crate::tcp::TcpTransport`] endpoint from
//!    `peers` and enters a command loop; the controller wraps each
//!    connection in a proxy thread ([`spawn_proxy`]) so the barrier logic
//!    upstream is byte-for-byte the single-process code path.
//!
//! The command loop is strict request/reply: one `Reply` per `Command`,
//! except `Shutdown` which has no reply. A decode failure or socket error
//! on either side tears the control connection down; the controller then
//! observes a closed proxy channel, which surfaces as the same
//! `WorkerLost` error a crashed in-process worker produces.
//!
//! All codecs here are defensive in the [`crate::wire`] style: every read
//! is bounds-checked, every tag validated, and a malformed peer yields a
//! [`WireError`] — never a panic.

use crate::faults::FaultState;
use crate::memstats::MemReport;
use crate::sidecar::{Sidecar, SidecarNet, TrafficSnapshot, TrafficStats};
use crate::tcp::{
    read_envelope, write_envelope, TcpConfig, TcpTransport, K_COMMAND, K_REGISTER, K_REPLY,
    K_SETUP,
};
use crate::wire::WireError;
use crate::worker::{Command, Reply, Worker};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use s2_dataplane::FinalKind;
use s2_net::policy::Protocol;
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::{NetworkModel, RibRoute, RibSnapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Upper bound on a control-channel envelope. `DpSetup` ships the full
/// converged RIB snapshot, so this is far larger than the data-plane
/// frame cap — but still bounded, so a corrupt length prefix cannot ask
/// the receiver to allocate without limit.
pub const MAX_CONTROL_FRAME: usize = 256 << 20;

// ---- primitive codecs ----

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn put_prefix(buf: &mut BytesMut, p: &Prefix) {
    buf.put_u32(p.addr().0);
    buf.put_u8(p.len());
}

fn get_prefix(buf: &mut impl Buf) -> Result<Prefix, WireError> {
    need(buf, 5)?;
    let addr = buf.get_u32();
    let len = buf.get_u8();
    if len > 32 {
        return Err(WireError::BadValue("prefix length"));
    }
    Ok(Prefix::new(Ipv4Addr(addr), len))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    need(buf, n)?;
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadValue("utf-8 string"))
}

fn put_addr(buf: &mut BytesMut, addr: &SocketAddr) {
    put_str(buf, &addr.to_string());
}

fn get_addr(buf: &mut Bytes) -> Result<SocketAddr, WireError> {
    get_str(buf)?
        .parse()
        .map_err(|_| WireError::BadValue("socket address"))
}

fn put_opt_u64(buf: &mut BytesMut, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            buf.put_u64(v);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_u64(buf: &mut impl Buf) -> Result<Option<u64>, WireError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            need(buf, 8)?;
            Ok(Some(buf.get_u64()))
        }
        _ => Err(WireError::BadValue("option discriminant")),
    }
}

fn put_protocol(buf: &mut BytesMut, p: Protocol) {
    buf.put_u8(match p {
        Protocol::Connected => 0,
        Protocol::Static => 1,
        Protocol::Ospf => 2,
        Protocol::Bgp => 3,
        Protocol::Aggregate => 4,
    });
}

fn get_protocol(buf: &mut impl Buf) -> Result<Protocol, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => Protocol::Connected,
        1 => Protocol::Static,
        2 => Protocol::Ospf,
        3 => Protocol::Bgp,
        4 => Protocol::Aggregate,
        _ => return Err(WireError::BadValue("protocol")),
    })
}

fn put_rib_route(buf: &mut BytesMut, r: &RibRoute) {
    put_prefix(buf, &r.prefix);
    put_protocol(buf, r.protocol);
    buf.put_u16(r.egress.len() as u16);
    for e in &r.egress {
        buf.put_u16(e.0);
    }
    buf.put_u8(u8::from(r.is_local));
    buf.put_u32(r.as_path_len);
}

fn get_rib_route(buf: &mut impl Buf) -> Result<RibRoute, WireError> {
    let prefix = get_prefix(buf)?;
    let protocol = get_protocol(buf)?;
    need(buf, 2)?;
    let n = buf.get_u16() as usize;
    need(buf, n * 2)?;
    let egress = (0..n).map(|_| InterfaceId(buf.get_u16())).collect();
    need(buf, 5)?;
    let is_local = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(WireError::BadValue("bool")),
    };
    let as_path_len = buf.get_u32();
    Ok(RibRoute {
        prefix,
        protocol,
        egress,
        is_local,
        as_path_len,
    })
}

fn put_traffic(buf: &mut BytesMut, t: &TrafficSnapshot) {
    for v in [
        t.messages,
        t.bytes,
        t.wire_errors,
        t.dup_skips,
        t.seq_gaps,
        t.stale_drops,
        t.injected_drops,
        t.injected_dups,
        t.injected_corruptions,
        t.injected_delays,
        t.reconnects,
        t.send_drops,
        t.backpressure_stalls,
        t.heartbeats,
        t.protocol_violations,
        t.scratch_reuses,
    ] {
        buf.put_u64(v);
    }
}

fn put_cache_stats(buf: &mut BytesMut, c: &crate::memstats::CacheStats) {
    for v in [
        c.unique_lookups,
        c.unique_hits,
        c.unique_probe_misses,
        c.unique_resizes,
        c.bin_lookups,
        c.bin_hits,
        c.not_lookups,
        c.not_hits,
        c.memo_lookups,
        c.memo_hits,
        c.generation_clears,
    ] {
        buf.put_u64(v);
    }
}

fn get_cache_stats(buf: &mut impl Buf) -> Result<crate::memstats::CacheStats, WireError> {
    need(buf, 11 * 8)?;
    Ok(crate::memstats::CacheStats {
        unique_lookups: buf.get_u64(),
        unique_hits: buf.get_u64(),
        unique_probe_misses: buf.get_u64(),
        unique_resizes: buf.get_u64(),
        bin_lookups: buf.get_u64(),
        bin_hits: buf.get_u64(),
        not_lookups: buf.get_u64(),
        not_hits: buf.get_u64(),
        memo_lookups: buf.get_u64(),
        memo_hits: buf.get_u64(),
        generation_clears: buf.get_u64(),
    })
}

fn get_traffic(buf: &mut impl Buf) -> Result<TrafficSnapshot, WireError> {
    need(buf, 16 * 8)?;
    Ok(TrafficSnapshot {
        messages: buf.get_u64(),
        bytes: buf.get_u64(),
        wire_errors: buf.get_u64(),
        dup_skips: buf.get_u64(),
        seq_gaps: buf.get_u64(),
        stale_drops: buf.get_u64(),
        injected_drops: buf.get_u64(),
        injected_dups: buf.get_u64(),
        injected_corruptions: buf.get_u64(),
        injected_delays: buf.get_u64(),
        reconnects: buf.get_u64(),
        send_drops: buf.get_u64(),
        backpressure_stalls: buf.get_u64(),
        heartbeats: buf.get_u64(),
        protocol_violations: buf.get_u64(),
        scratch_reuses: buf.get_u64(),
    })
}

fn get_node(buf: &mut impl Buf) -> Result<NodeId, WireError> {
    need(buf, 4)?;
    Ok(NodeId(buf.get_u32()))
}

/// `with_capacity` guard: trust the declared element count only up to a
/// sanity bound so a corrupt count cannot pre-allocate gigabytes.
// s2-lint: sanitizer(alloc-bound): the returned count is min-capped at 64 Ki elements, so allocations sized by it are bounded regardless of the peer's declared length.
fn cap(n: usize) -> usize {
    n.min(1 << 16)
}

// ---- handshake messages ----

/// The worker's first message on the control channel: where its data
/// listener can be reached by peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Address of the worker's bound data listener.
    pub data_addr: SocketAddr,
}

/// Encodes a [`Register`].
pub fn encode_register(r: &Register) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    put_addr(&mut buf, &r.data_addr);
    buf.freeze()
}

/// Decodes a [`Register`].
pub fn decode_register(mut buf: Bytes) -> Result<Register, WireError> {
    let data_addr = get_addr(&mut buf)?;
    Ok(Register { data_addr })
}

/// The controller's answer to a [`Register`]: everything the worker
/// process needs to become a cluster member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Setup {
    /// The id assigned to this worker.
    pub worker_id: u32,
    /// Cluster size.
    pub num_workers: u32,
    /// Node index → owning worker.
    pub node_owner: Vec<u32>,
    /// Every worker's data address, indexed by worker id.
    pub peers: Vec<SocketAddr>,
    /// Per-worker memory budget in bytes, if any.
    pub memory_budget: Option<usize>,
    /// Intra-worker evaluation threads (see `RuntimeConfig`); 0 and 1
    /// both mean sequential.
    pub intra_worker_threads: u32,
}

/// Encodes a [`Setup`].
pub fn encode_setup(s: &Setup) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 4 * s.node_owner.len());
    buf.put_u32(s.worker_id);
    buf.put_u32(s.num_workers);
    buf.put_u32(s.node_owner.len() as u32);
    for &w in &s.node_owner {
        buf.put_u32(w);
    }
    buf.put_u32(s.peers.len() as u32);
    for p in &s.peers {
        put_addr(&mut buf, p);
    }
    put_opt_u64(&mut buf, s.memory_budget.map(|b| b as u64));
    buf.put_u32(s.intra_worker_threads);
    buf.freeze()
}

/// Decodes a [`Setup`].
pub fn decode_setup(mut buf: Bytes) -> Result<Setup, WireError> {
    need(&buf, 12)?;
    let worker_id = buf.get_u32();
    let num_workers = buf.get_u32();
    let n = buf.get_u32() as usize;
    need(&buf, n * 4)?;
    let node_owner = (0..n).map(|_| buf.get_u32()).collect();
    need(&buf, 4)?;
    let m = buf.get_u32() as usize;
    let mut peers = Vec::with_capacity(cap(m));
    for _ in 0..m {
        peers.push(get_addr(&mut buf)?);
    }
    let memory_budget = get_opt_u64(&mut buf)?.map(|b| b as usize);
    need(&buf, 4)?;
    let intra_worker_threads = buf.get_u32();
    Ok(Setup {
        worker_id,
        num_workers,
        node_owner,
        peers,
        memory_budget,
        intra_worker_threads,
    })
}

// ---- Command codec ----

/// Encodes a [`Command`] for the control channel.
pub fn encode_command(cmd: &Command) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match cmd {
        Command::OspfExport => buf.put_u8(1),
        Command::OspfApply => buf.put_u8(2),
        Command::BgpBegin { shard } => {
            buf.put_u8(3);
            match shard {
                None => buf.put_u8(0),
                Some(set) => {
                    buf.put_u8(1);
                    buf.put_u32(set.len() as u32);
                    // BTreeSet iterates in prefix order, so the wire
                    // bytes are a pure function of the shard contents
                    // (R2: re-runs and replicas must produce identical
                    // frames).
                    for p in set.iter() {
                        put_prefix(&mut buf, p);
                    }
                }
            }
        }
        Command::BgpExport => buf.put_u8(4),
        Command::BgpApply => buf.put_u8(5),
        Command::CollectBaseRib => buf.put_u8(6),
        Command::CollectBgpRib => buf.put_u8(7),
        Command::DpSetup {
            rib,
            meta_bits,
            waypoints,
            max_hops,
        } => {
            buf.put_u8(8);
            buf.put_u32(rib.per_node.len() as u32);
            for routes in &rib.per_node {
                buf.put_u32(routes.len() as u32);
                for r in routes {
                    put_rib_route(&mut buf, r);
                }
            }
            buf.put_u16(*meta_bits);
            buf.put_u32(waypoints.len() as u32);
            for (node, bit) in waypoints.iter() {
                buf.put_u32(node.0);
                buf.put_u16(*bit);
            }
            buf.put_u16(*max_hops);
        }
        Command::Inject { injections } => {
            buf.put_u8(9);
            buf.put_u32(injections.len() as u32);
            for (node, prefix) in injections.iter() {
                buf.put_u32(node.0);
                put_prefix(&mut buf, prefix);
            }
        }
        Command::ForwardRound => buf.put_u8(10),
        Command::CheckArrivals {
            sources,
            expected,
            transits,
        } => {
            buf.put_u8(11);
            buf.put_u32(sources.len() as u32);
            for s in sources.iter() {
                buf.put_u32(s.0);
            }
            buf.put_u32(expected.len() as u32);
            for (dst, prefixes) in expected.iter() {
                buf.put_u32(dst.0);
                buf.put_u32(prefixes.len() as u32);
                for p in prefixes {
                    put_prefix(&mut buf, p);
                }
            }
            buf.put_u32(transits.len() as u32);
            for (node, bit) in transits.iter() {
                buf.put_u32(node.0);
                buf.put_u16(*bit);
            }
        }
        Command::CollectFinals => buf.put_u8(12),
        Command::CollectPrefixes => buf.put_u8(13),
        Command::CollectObservedDeps => buf.put_u8(14),
        Command::MemReport => buf.put_u8(15),
        Command::Ping(nonce) => {
            buf.put_u8(16);
            buf.put_u64(*nonce);
        }
        Command::FlushInbox { epoch } => {
            buf.put_u8(17);
            buf.put_u32(*epoch);
        }
        Command::BgpResync => buf.put_u8(18),
        Command::NetStats => buf.put_u8(19),
        Command::Shutdown => buf.put_u8(20),
        Command::Metrics => buf.put_u8(21),
        Command::ScenarioCheckpoint => buf.put_u8(22),
        Command::ScenarioBegin { failed, restore } => {
            buf.put_u8(23);
            put_ports(&mut buf, failed);
            buf.put_u8(u8::from(*restore));
        }
        Command::ScenarioRollback => buf.put_u8(24),
        Command::DpPatch {
            rib,
            changed,
            failed_ports,
        } => {
            buf.put_u8(25);
            buf.put_u32(rib.per_node.len() as u32);
            for routes in &rib.per_node {
                buf.put_u32(routes.len() as u32);
                for r in routes {
                    put_rib_route(&mut buf, r);
                }
            }
            buf.put_u32(changed.len() as u32);
            for n in changed.iter() {
                buf.put_u32(n.0);
            }
            put_ports(&mut buf, failed_ports);
        }
        Command::DpScope { scopes } => {
            buf.put_u8(26);
            put_node_prefixes(&mut buf, scopes);
        }
        Command::DpCompile => buf.put_u8(27),
        Command::CtxWrap {
            epoch,
            parent,
            inner,
        } => {
            buf.put_u8(28);
            buf.put_u64(*epoch);
            buf.put_u64(*parent);
            let inner_bytes = encode_command(inner);
            buf.put_u32(inner_bytes.len() as u32);
            buf.put_slice(&inner_bytes);
        }
        Command::TraceDrain => buf.put_u8(29),
    }
    buf.freeze()
}

/// `(node, prefixes)` list codec, shared by `DpScope` and `ChangedDst`.
fn put_node_prefixes(buf: &mut BytesMut, entries: &[(NodeId, Vec<Prefix>)]) {
    buf.put_u32(entries.len() as u32);
    for (node, prefixes) in entries {
        buf.put_u32(node.0);
        buf.put_u32(prefixes.len() as u32);
        for p in prefixes {
            put_prefix(buf, p);
        }
    }
}

fn get_node_prefixes(buf: &mut Bytes) -> Result<Vec<(NodeId, Vec<Prefix>)>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    let mut entries = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let node = get_node(buf)?;
        need(buf, 4)?;
        let np = buf.get_u32() as usize;
        let mut prefixes = Vec::with_capacity(cap(np));
        for _ in 0..np {
            prefixes.push(get_prefix(buf)?);
        }
        entries.push((node, prefixes));
    }
    Ok(entries)
}

fn put_ports(buf: &mut BytesMut, ports: &[(NodeId, InterfaceId)]) {
    buf.put_u32(ports.len() as u32);
    for (node, iface) in ports {
        buf.put_u32(node.0);
        buf.put_u16(iface.0);
    }
}

fn get_ports(buf: &mut Bytes) -> Result<Vec<(NodeId, InterfaceId)>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    need(buf, n * 6)?;
    Ok((0..n)
        .map(|_| (NodeId(buf.get_u32()), InterfaceId(buf.get_u16())))
        .collect())
}

/// Decodes a [`Command`] from the control channel.
pub fn decode_command(mut buf: Bytes) -> Result<Command, WireError> {
    need(&buf, 1)?;
    Ok(match buf.get_u8() {
        1 => Command::OspfExport,
        2 => Command::OspfApply,
        3 => {
            need(&buf, 1)?;
            let shard = match buf.get_u8() {
                0 => None,
                1 => {
                    need(&buf, 4)?;
                    let n = buf.get_u32() as usize;
                    let mut set = BTreeSet::new();
                    for _ in 0..n {
                        set.insert(get_prefix(&mut buf)?);
                    }
                    Some(Arc::new(set))
                }
                _ => return Err(WireError::BadValue("option discriminant")),
            };
            Command::BgpBegin { shard }
        }
        4 => Command::BgpExport,
        5 => Command::BgpApply,
        6 => Command::CollectBaseRib,
        7 => Command::CollectBgpRib,
        8 => {
            need(&buf, 4)?;
            let nodes = buf.get_u32() as usize;
            let mut per_node = Vec::with_capacity(cap(nodes));
            for _ in 0..nodes {
                need(&buf, 4)?;
                let m = buf.get_u32() as usize;
                let mut routes = Vec::with_capacity(cap(m));
                for _ in 0..m {
                    routes.push(get_rib_route(&mut buf)?);
                }
                per_node.push(routes);
            }
            need(&buf, 6)?;
            let meta_bits = buf.get_u16();
            let w = buf.get_u32() as usize;
            let mut waypoints = BTreeMap::new();
            for _ in 0..w {
                need(&buf, 6)?;
                let node = NodeId(buf.get_u32());
                let bit = buf.get_u16();
                waypoints.insert(node, bit);
            }
            need(&buf, 2)?;
            let max_hops = buf.get_u16();
            Command::DpSetup {
                rib: Arc::new(RibSnapshot { per_node }),
                meta_bits,
                waypoints: Arc::new(waypoints),
                max_hops,
            }
        }
        9 => {
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut injections = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let node = get_node(&mut buf)?;
                let prefix = get_prefix(&mut buf)?;
                injections.push((node, prefix));
            }
            Command::Inject {
                injections: Arc::new(injections),
            }
        }
        10 => Command::ForwardRound,
        11 => {
            need(&buf, 4)?;
            let ns = buf.get_u32() as usize;
            need(&buf, ns * 4)?;
            let sources = (0..ns).map(|_| NodeId(buf.get_u32())).collect();
            need(&buf, 4)?;
            let ne = buf.get_u32() as usize;
            let mut expected = Vec::with_capacity(cap(ne));
            for _ in 0..ne {
                let dst = get_node(&mut buf)?;
                need(&buf, 4)?;
                let np = buf.get_u32() as usize;
                let mut prefixes = Vec::with_capacity(cap(np));
                for _ in 0..np {
                    prefixes.push(get_prefix(&mut buf)?);
                }
                expected.push((dst, prefixes));
            }
            need(&buf, 4)?;
            let nt = buf.get_u32() as usize;
            need(&buf, nt * 6)?;
            let transits = (0..nt)
                .map(|_| (NodeId(buf.get_u32()), buf.get_u16()))
                .collect();
            Command::CheckArrivals {
                sources: Arc::new(sources),
                expected: Arc::new(expected),
                transits: Arc::new(transits),
            }
        }
        12 => Command::CollectFinals,
        13 => Command::CollectPrefixes,
        14 => Command::CollectObservedDeps,
        15 => Command::MemReport,
        16 => {
            need(&buf, 8)?;
            Command::Ping(buf.get_u64())
        }
        17 => {
            need(&buf, 4)?;
            Command::FlushInbox {
                epoch: buf.get_u32(),
            }
        }
        18 => Command::BgpResync,
        19 => Command::NetStats,
        20 => Command::Shutdown,
        21 => Command::Metrics,
        22 => Command::ScenarioCheckpoint,
        23 => {
            let failed = Arc::new(get_ports(&mut buf)?);
            need(&buf, 1)?;
            Command::ScenarioBegin {
                failed,
                restore: buf.get_u8() != 0,
            }
        }
        24 => Command::ScenarioRollback,
        25 => {
            need(&buf, 4)?;
            let nodes = buf.get_u32() as usize;
            let mut per_node = Vec::with_capacity(cap(nodes));
            for _ in 0..nodes {
                need(&buf, 4)?;
                let m = buf.get_u32() as usize;
                let mut routes = Vec::with_capacity(cap(m));
                for _ in 0..m {
                    routes.push(get_rib_route(&mut buf)?);
                }
                per_node.push(routes);
            }
            need(&buf, 4)?;
            let nc = buf.get_u32() as usize;
            need(&buf, nc * 4)?;
            let changed = (0..nc).map(|_| NodeId(buf.get_u32())).collect();
            Command::DpPatch {
                rib: Arc::new(RibSnapshot { per_node }),
                changed: Arc::new(changed),
                failed_ports: Arc::new(get_ports(&mut buf)?),
            }
        }
        26 => Command::DpScope {
            scopes: Arc::new(get_node_prefixes(&mut buf)?),
        },
        27 => Command::DpCompile,
        28 => {
            need(&buf, 20)?;
            let epoch = buf.get_u64();
            let parent = buf.get_u64();
            let n = buf.get_u32() as usize;
            need(&buf, n)?;
            let inner_bytes = buf.copy_to_bytes(n);
            // Reject nesting *before* recursing: a hostile stream of
            // stacked wrap tags must not be able to wind the decoder's
            // stack (R1 — peer input never panics).
            if inner_bytes.first() == Some(&28) {
                return Err(WireError::BadValue("nested trace-context wrap"));
            }
            Command::CtxWrap {
                epoch,
                parent,
                inner: Box::new(decode_command(inner_bytes)?),
            }
        }
        29 => Command::TraceDrain,
        t => return Err(WireError::BadTag(t)),
    })
}

// ---- Reply codec ----

fn put_prefix_pairs(buf: &mut BytesMut, pairs: &[(Prefix, Prefix)]) {
    buf.put_u32(pairs.len() as u32);
    for (a, b) in pairs {
        put_prefix(buf, a);
        put_prefix(buf, b);
    }
}

fn get_prefix_pairs(buf: &mut Bytes) -> Result<Vec<(Prefix, Prefix)>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    let mut pairs = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let a = get_prefix(buf)?;
        let b = get_prefix(buf)?;
        pairs.push((a, b));
    }
    Ok(pairs)
}

/// Encodes a [`Reply`] for the control channel.
pub fn encode_reply(reply: &Reply) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match reply {
        Reply::Ok => buf.put_u8(1),
        Reply::Changed(changed) => {
            buf.put_u8(2);
            buf.put_u8(u8::from(*changed));
        }
        Reply::Rib(per_node) => {
            buf.put_u8(3);
            buf.put_u32(per_node.len() as u32);
            for (node, routes) in per_node {
                buf.put_u32(node.0);
                buf.put_u32(routes.len() as u32);
                for r in routes {
                    put_rib_route(&mut buf, r);
                }
            }
        }
        Reply::Forwarded {
            processed,
            sent_remote,
        } => {
            buf.put_u8(4);
            buf.put_u64(*processed as u64);
            buf.put_u64(*sent_remote as u64);
        }
        Reply::Arrivals {
            reachable,
            unreachable,
            waypoint_violations,
        } => {
            buf.put_u8(5);
            buf.put_u32(reachable.len() as u32);
            for (s, d) in reachable {
                buf.put_u32(s.0);
                buf.put_u32(d.0);
            }
            buf.put_u32(unreachable.len() as u32);
            for (s, d) in unreachable {
                buf.put_u32(s.0);
                buf.put_u32(d.0);
            }
            buf.put_u32(waypoint_violations.len() as u32);
            for (s, d, t) in waypoint_violations {
                buf.put_u32(s.0);
                buf.put_u32(d.0);
                buf.put_u32(t.0);
            }
        }
        Reply::Finals {
            loops,
            blackholes,
            splices,
            sets,
        } => {
            buf.put_u8(6);
            buf.put_u64(*loops as u64);
            buf.put_u64(*blackholes as u64);
            buf.put_u64(*splices);
            buf.put_u32(sets.len() as u32);
            for (node, kind, bytes) in sets {
                buf.put_u32(node.0);
                buf.put_u8(match kind {
                    FinalKind::Arrive => 0,
                    FinalKind::Exit => 1,
                    FinalKind::Blackhole => 2,
                    FinalKind::Loop => 3,
                });
                buf.put_u32(bytes.len() as u32);
                buf.put_slice(bytes);
            }
        }
        Reply::Prefixes {
            all,
            aggregates,
            deps,
        } => {
            buf.put_u8(7);
            buf.put_u32(all.len() as u32);
            for p in all {
                put_prefix(&mut buf, p);
            }
            buf.put_u32(aggregates.len() as u32);
            for p in aggregates {
                put_prefix(&mut buf, p);
            }
            put_prefix_pairs(&mut buf, deps);
        }
        Reply::Deps(deps) => {
            buf.put_u8(8);
            put_prefix_pairs(&mut buf, deps);
        }
        Reply::Mem(report) => {
            buf.put_u8(9);
            buf.put_u64(report.route_bytes as u64);
            buf.put_u64(report.bdd_bytes as u64);
            buf.put_u64(report.peak_bytes as u64);
            buf.put_u64(report.bdd_peak_nodes as u64);
            put_cache_stats(&mut buf, &report.bdd_cache);
        }
        Reply::OutOfMemory { budget, observed } => {
            buf.put_u8(10);
            buf.put_u64(*budget as u64);
            buf.put_u64(*observed as u64);
        }
        Reply::Pong(nonce) => {
            buf.put_u8(11);
            buf.put_u64(*nonce);
        }
        Reply::Net { traffic, in_flight } => {
            buf.put_u8(12);
            put_traffic(&mut buf, traffic);
            buf.put_u64(*in_flight);
        }
        Reply::Violation(what) => {
            buf.put_u8(13);
            put_str(&mut buf, what);
        }
        // The metrics snapshot crosses as its canonical JSON encoding:
        // deterministic (BTreeMap order) and schema-tagged, so the
        // controller-side decode is exact.
        Reply::Metrics(snapshot) => {
            buf.put_u8(14);
            put_str(&mut buf, &snapshot.to_json());
        }
        Reply::ChangedDst(entries) => {
            buf.put_u8(15);
            put_node_prefixes(&mut buf, entries);
        }
        Reply::TraceEvents {
            now_ns,
            names,
            events,
        } => {
            buf.put_u8(16);
            buf.put_u64(*now_ns);
            buf.put_u32(names.len() as u32);
            for n in names {
                put_str(&mut buf, n);
            }
            buf.put_u32(events.len() as u32);
            // Field-by-field (not `Event::pack`): the packed form is an
            // obs-feature implementation detail of the flight-recorder
            // ring, while this wire layout must hold with obs off too.
            for e in events {
                buf.put_u16(e.name);
                buf.put_u8(e.kind);
                buf.put_u16(e.lane);
                buf.put_u16(e.depth);
                buf.put_u64(e.ts_ns);
                buf.put_u64(e.dur_ns);
                buf.put_u64(e.arg);
                buf.put_u64(e.span);
                buf.put_u64(e.parent);
            }
        }
    }
    buf.freeze()
}

/// Decodes a [`Reply`] from the control channel.
pub fn decode_reply(mut buf: Bytes) -> Result<Reply, WireError> {
    need(&buf, 1)?;
    Ok(match buf.get_u8() {
        1 => Reply::Ok,
        2 => {
            need(&buf, 1)?;
            match buf.get_u8() {
                0 => Reply::Changed(false),
                1 => Reply::Changed(true),
                _ => return Err(WireError::BadValue("bool")),
            }
        }
        3 => {
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut per_node = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let node = get_node(&mut buf)?;
                need(&buf, 4)?;
                let m = buf.get_u32() as usize;
                let mut routes = Vec::with_capacity(cap(m));
                for _ in 0..m {
                    routes.push(get_rib_route(&mut buf)?);
                }
                per_node.push((node, routes));
            }
            Reply::Rib(per_node)
        }
        4 => {
            need(&buf, 16)?;
            Reply::Forwarded {
                processed: buf.get_u64() as usize,
                sent_remote: buf.get_u64() as usize,
            }
        }
        5 => {
            need(&buf, 4)?;
            let nr = buf.get_u32() as usize;
            need(&buf, nr * 8)?;
            let reachable = (0..nr)
                .map(|_| (NodeId(buf.get_u32()), NodeId(buf.get_u32())))
                .collect();
            need(&buf, 4)?;
            let nu = buf.get_u32() as usize;
            need(&buf, nu * 8)?;
            let unreachable = (0..nu)
                .map(|_| (NodeId(buf.get_u32()), NodeId(buf.get_u32())))
                .collect();
            need(&buf, 4)?;
            let nw = buf.get_u32() as usize;
            need(&buf, nw * 12)?;
            let waypoint_violations = (0..nw)
                .map(|_| {
                    (
                        NodeId(buf.get_u32()),
                        NodeId(buf.get_u32()),
                        NodeId(buf.get_u32()),
                    )
                })
                .collect();
            Reply::Arrivals {
                reachable,
                unreachable,
                waypoint_violations,
            }
        }
        6 => {
            need(&buf, 28)?;
            let loops = buf.get_u64() as usize;
            let blackholes = buf.get_u64() as usize;
            let splices = buf.get_u64();
            let n = buf.get_u32() as usize;
            let mut sets = Vec::with_capacity(cap(n));
            for _ in 0..n {
                need(&buf, 9)?;
                let node = NodeId(buf.get_u32());
                let kind = match buf.get_u8() {
                    0 => FinalKind::Arrive,
                    1 => FinalKind::Exit,
                    2 => FinalKind::Blackhole,
                    3 => FinalKind::Loop,
                    _ => return Err(WireError::BadValue("final kind")),
                };
                let blen = buf.get_u32() as usize;
                need(&buf, blen)?;
                sets.push((node, kind, buf.copy_to_bytes(blen)));
            }
            Reply::Finals {
                loops,
                blackholes,
                splices,
                sets,
            }
        }
        7 => {
            need(&buf, 4)?;
            let na = buf.get_u32() as usize;
            let mut all = Vec::with_capacity(cap(na));
            for _ in 0..na {
                all.push(get_prefix(&mut buf)?);
            }
            need(&buf, 4)?;
            let ng = buf.get_u32() as usize;
            let mut aggregates = Vec::with_capacity(cap(ng));
            for _ in 0..ng {
                aggregates.push(get_prefix(&mut buf)?);
            }
            let deps = get_prefix_pairs(&mut buf)?;
            Reply::Prefixes {
                all,
                aggregates,
                deps,
            }
        }
        8 => Reply::Deps(get_prefix_pairs(&mut buf)?),
        9 => {
            need(&buf, 32)?;
            Reply::Mem(MemReport {
                route_bytes: buf.get_u64() as usize,
                bdd_bytes: buf.get_u64() as usize,
                peak_bytes: buf.get_u64() as usize,
                bdd_peak_nodes: buf.get_u64() as usize,
                bdd_cache: get_cache_stats(&mut buf)?,
            })
        }
        10 => {
            need(&buf, 16)?;
            Reply::OutOfMemory {
                budget: buf.get_u64() as usize,
                observed: buf.get_u64() as usize,
            }
        }
        11 => {
            need(&buf, 8)?;
            Reply::Pong(buf.get_u64())
        }
        12 => {
            let traffic = get_traffic(&mut buf)?;
            need(&buf, 8)?;
            Reply::Net {
                traffic,
                in_flight: buf.get_u64(),
            }
        }
        13 => Reply::Violation(get_str(&mut buf)?),
        14 => {
            let json = get_str(&mut buf)?;
            let snapshot = s2_obs::MetricsSnapshot::from_json(&json)
                .map_err(|_| WireError::BadValue("metrics snapshot"))?;
            Reply::Metrics(snapshot)
        }
        15 => Reply::ChangedDst(get_node_prefixes(&mut buf)?),
        16 => {
            need(&buf, 12)?;
            let now_ns = buf.get_u64();
            let nn = buf.get_u32() as usize;
            let mut names = Vec::with_capacity(cap(nn));
            for _ in 0..nn {
                names.push(get_str(&mut buf)?);
            }
            need(&buf, 4)?;
            let ne = buf.get_u32() as usize;
            need(&buf, ne.saturating_mul(47))?;
            let mut events = Vec::with_capacity(cap(ne));
            for _ in 0..ne {
                let e = s2_obs::trace::Event {
                    name: buf.get_u16(),
                    kind: buf.get_u8(),
                    lane: buf.get_u16(),
                    depth: buf.get_u16(),
                    ts_ns: buf.get_u64(),
                    dur_ns: buf.get_u64(),
                    arg: buf.get_u64(),
                    span: buf.get_u64(),
                    parent: buf.get_u64(),
                };
                if usize::from(e.name) >= names.len() {
                    return Err(WireError::BadValue("trace event name index"));
                }
                events.push(e);
            }
            Reply::TraceEvents {
                now_ns,
                names,
                events,
            }
        }
        t => return Err(WireError::BadTag(t)),
    })
}

// ---- controller side ----

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Accepts `num_workers` worker-process registrations on `listener`,
/// assigns worker ids in accept order, and sends each its [`Setup`].
/// Returns the control streams indexed by assigned worker id.
pub fn accept_fleet(
    listener: &TcpListener,
    num_workers: u32,
    node_owner: &[u32],
    memory_budget: Option<usize>,
    intra_worker_threads: u32,
) -> io::Result<Vec<TcpStream>> {
    let mut fleet: Vec<(TcpStream, SocketAddr)> = Vec::with_capacity(num_workers as usize);
    for _ in 0..num_workers {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let (kind, payload) = read_envelope(&mut stream, MAX_CONTROL_FRAME)?;
        if kind != K_REGISTER {
            return Err(bad_data("expected worker registration"));
        }
        let reg = decode_register(Bytes::from(payload))
            .map_err(|e| bad_data(&format!("bad registration: {e}")))?;
        fleet.push((stream, reg.data_addr));
    }
    let peers: Vec<SocketAddr> = fleet.iter().map(|(_, addr)| *addr).collect();
    let mut streams = Vec::with_capacity(fleet.len());
    for (w, (mut stream, _)) in fleet.into_iter().enumerate() {
        let setup = Setup {
            worker_id: w as u32,
            num_workers,
            node_owner: node_owner.to_vec(),
            peers: peers.clone(),
            memory_budget,
            intra_worker_threads,
        };
        write_envelope(&mut stream, K_SETUP, &encode_setup(&setup))?;
        streams.push(stream);
    }
    Ok(streams)
}

/// Wraps one worker's control stream in a proxy thread that translates
/// the controller's channel protocol to the socket protocol: each
/// [`Command`] received on the returned sender is written as a
/// `K_COMMAND` envelope, and (except for `Shutdown`) exactly one
/// `K_REPLY` envelope is read back and forwarded to the returned
/// receiver. Any socket or decode error ends the thread, closing both
/// channels — which the controller's barrier observes as the same
/// `WorkerLost` a crashed in-process worker produces.
pub fn spawn_proxy(
    w: u32,
    mut stream: TcpStream,
) -> io::Result<(Sender<Command>, Receiver<Reply>, JoinHandle<()>)> {
    let (cmd_tx, cmd_rx) = unbounded::<Command>();
    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let handle = thread::Builder::new()
        .name(format!("s2-proxy-{w}"))
        .spawn(move || {
            while let Ok(cmd) = cmd_rx.recv() {
                let is_shutdown = matches!(cmd, Command::Shutdown);
                // When tracing, carry the controller's published context
                // on every command so worker-process spans stitch under
                // the controller span that dispatched them. `Shutdown`
                // stays bare: its no-reply fast path must not depend on
                // the remote end unwrapping anything.
                let cmd = if s2_obs::trace::enabled()
                    && !is_shutdown
                    && !matches!(cmd, Command::CtxWrap { .. })
                {
                    let (epoch, parent) = s2_obs::trace::published_ctx();
                    Command::CtxWrap {
                        epoch,
                        parent,
                        inner: Box::new(cmd),
                    }
                } else {
                    cmd
                };
                if write_envelope(&mut stream, K_COMMAND, &encode_command(&cmd)).is_err() {
                    return;
                }
                if is_shutdown {
                    return;
                }
                let reply = match read_envelope(&mut stream, MAX_CONTROL_FRAME) {
                    Ok((K_REPLY, payload)) => match decode_reply(Bytes::from(payload)) {
                        Ok(r) => r,
                        Err(_) => return,
                    },
                    _ => return,
                };
                if reply_tx.send(reply).is_err() {
                    return;
                }
            }
        })?;
    Ok((cmd_tx, reply_rx, handle))
}

// ---- worker side ----

/// Drains this process's buffered trace events into a [`Reply`] batch:
/// the process-local interned name ids are remapped onto a dense table
/// shipped alongside (they mean nothing to the controller), and the
/// current clock goes with them as the rebasing anchor. Deterministic
/// remap order (sorted distinct ids — R2) so identical drains encode
/// identically.
fn drain_trace_events() -> Reply {
    let events = s2_obs::trace::take_events();
    let mut ids: Vec<u16> = events.iter().map(|e| e.name).collect();
    ids.sort_unstable();
    ids.dedup();
    let index: BTreeMap<u16, u16> = ids
        .iter()
        .enumerate()
        .map(|(dense, &id)| (id, dense as u16))
        .collect();
    Reply::TraceEvents {
        now_ns: s2_obs::time::now_ns(),
        names: ids
            .iter()
            .map(|&id| s2_obs::trace::name_of(id).to_string())
            .collect(),
        events: events
            .into_iter()
            .map(|mut e| {
                e.name = index[&e.name];
                e
            })
            .collect(),
    }
}

/// Runs one worker process to completion: registers with the controller
/// at `connect`, receives its [`Setup`], joins the TCP data fabric, and
/// serves commands until `Shutdown` or the control connection closes.
///
/// `bind` is the local address for the data listener (use
/// `"127.0.0.1:0"` for an ephemeral local port; bind a routable address
/// when workers run on different hosts).
pub fn serve(model: Arc<NetworkModel>, connect: &str, bind: &str) -> io::Result<()> {
    let data_listener = TcpListener::bind(bind)?;
    let data_addr = data_listener.local_addr()?;
    let mut ctrl = TcpStream::connect(connect)?;
    ctrl.set_nodelay(true)?;
    write_envelope(
        &mut ctrl,
        K_REGISTER,
        &encode_register(&Register { data_addr }),
    )?;
    let (kind, payload) = read_envelope(&mut ctrl, MAX_CONTROL_FRAME)?;
    if kind != K_SETUP {
        return Err(bad_data("expected setup from controller"));
    }
    let setup = decode_setup(Bytes::from(payload))
        .map_err(|e| bad_data(&format!("bad setup: {e}")))?;
    if setup.worker_id >= setup.num_workers
        || setup.peers.len() != setup.num_workers as usize
        || setup
            .node_owner
            .iter()
            .any(|&owner| owner >= setup.num_workers)
    {
        return Err(bad_data("inconsistent setup"));
    }

    // Join the data fabric. Remote workers run without fault injection:
    // chaos plans live in the controller process (and the in-process
    // harness); real networks supply the faults out here.
    let stats = Arc::new(TrafficStats::default());
    let faults = Arc::new(FaultState::default());
    let (transport, inbox) = TcpTransport::single(
        setup.worker_id,
        setup.num_workers,
        data_listener,
        setup.peers.clone(),
        TcpConfig::default(),
        stats.clone(),
        faults.clone(),
    )?;
    let net = SidecarNet::with_transport(
        setup.node_owner.clone(),
        setup.num_workers,
        faults.clone(),
        transport,
        stats,
    );
    let sidecar = Sidecar::new(setup.worker_id, net.clone(), inbox);
    let local_nodes: Vec<NodeId> = setup
        .node_owner
        .iter()
        .enumerate()
        .filter(|&(_, &owner)| owner == setup.worker_id)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    let worker = Worker::with_faults(
        sidecar,
        model,
        local_nodes,
        setup.memory_budget,
        faults,
        setup.intra_worker_threads as usize,
    );

    // Claim this process's span-id space and trace lane so ids and
    // lanes from different fleet processes never collide when the
    // controller stitches the drained events into one trace.
    let lane = (setup.worker_id as u16).saturating_add(1);
    s2_obs::trace::set_id_space(lane);

    // The worker keeps its thread-based shape; this loop is the channel
    // half of the proxy pair on the controller side.
    let (cmd_tx, cmd_rx) = unbounded::<Command>();
    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let worker_thread = thread::Builder::new()
        .name(format!("s2-worker-{}", setup.worker_id))
        .spawn(move || {
            s2_obs::trace::set_lane(lane);
            worker.run(cmd_rx, reply_tx)
        })?;

    // Any error — controller gone, unknown kind, malformed payload, dead
    // worker thread — breaks the loop and tears the process down cleanly.
    while let Ok((kind, payload)) = read_envelope(&mut ctrl, MAX_CONTROL_FRAME) {
        if kind != K_COMMAND {
            break;
        }
        let cmd = match decode_command(Bytes::from(payload)) {
            Ok(cmd) => cmd,
            Err(_) => break,
        };
        // Unwrap the controller's trace context before dispatching. A
        // wrap arriving at all means the controller is tracing, so
        // mirror that here; the epoch follows the controller's so
        // contexts captured before a recovery stop being adopted.
        let cmd = match cmd {
            Command::CtxWrap {
                epoch,
                parent,
                inner,
            } => {
                s2_obs::trace::set_enabled(true);
                s2_obs::trace::sync_epoch(epoch);
                s2_obs::trace::adopt(epoch, parent);
                s2_obs::trace::publish_ctx();
                *inner
            }
            other => other,
        };
        // Trace drains are answered here, not by the worker thread: the
        // event sink is process-global, and pairing the reply in-loop
        // keeps the strict one-reply-per-command protocol intact.
        if matches!(cmd, Command::TraceDrain) {
            let reply = drain_trace_events();
            if write_envelope(&mut ctrl, K_REPLY, &encode_reply(&reply)).is_err() {
                break;
            }
            continue;
        }
        let is_shutdown = matches!(cmd, Command::Shutdown);
        if cmd_tx.send(cmd).is_err() {
            break; // worker thread died
        }
        if is_shutdown {
            break;
        }
        let reply = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => break,
        };
        // A remote process's registry counters (BDD churn, DPV verdict
        // work, pool claims) are invisible to the controller's own
        // global registry, so fold them into the metrics reply here.
        // In-process fleets never take this path — there the controller
        // folds the shared registry exactly once itself.
        let reply = match reply {
            Reply::Metrics(mut snapshot) => {
                snapshot.merge(&s2_obs::Registry::global().snapshot());
                Reply::Metrics(snapshot)
            }
            other => other,
        };
        if write_envelope(&mut ctrl, K_REPLY, &encode_reply(&reply)).is_err() {
            break;
        }
    }
    drop(cmd_tx);
    let _ = worker_thread.join();
    net.shutdown_transport();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_routing::RibRoute;

    fn sample_rib_route() -> RibRoute {
        RibRoute {
            prefix: "10.0.0.0/8".parse().unwrap(),
            protocol: Protocol::Bgp,
            egress: vec![InterfaceId(1), InterfaceId(4)],
            is_local: false,
            as_path_len: 3,
        }
    }

    #[test]
    fn handshake_roundtrip() {
        let reg = Register {
            data_addr: "127.0.0.1:4821".parse().unwrap(),
        };
        assert_eq!(decode_register(encode_register(&reg)).unwrap(), reg);

        let setup = Setup {
            worker_id: 2,
            num_workers: 3,
            node_owner: vec![0, 1, 2, 2, 0],
            peers: vec![
                "127.0.0.1:1001".parse().unwrap(),
                "127.0.0.1:1002".parse().unwrap(),
                "127.0.0.1:1003".parse().unwrap(),
            ],
            memory_budget: Some(64 << 20),
            intra_worker_threads: 4,
        };
        assert_eq!(decode_setup(encode_setup(&setup)).unwrap(), setup);
    }

    #[test]
    fn simple_commands_roundtrip() {
        for cmd in [
            Command::OspfExport,
            Command::OspfApply,
            Command::BgpExport,
            Command::BgpApply,
            Command::CollectBaseRib,
            Command::CollectBgpRib,
            Command::ForwardRound,
            Command::CollectFinals,
            Command::CollectPrefixes,
            Command::CollectObservedDeps,
            Command::MemReport,
            Command::Ping(0xdead_beef),
            Command::FlushInbox { epoch: 7 },
            Command::BgpResync,
            Command::NetStats,
            Command::Metrics,
            Command::ScenarioCheckpoint,
            Command::ScenarioRollback,
            Command::DpCompile,
            Command::TraceDrain,
            Command::Shutdown,
        ] {
            let encoded = encode_command(&cmd);
            let decoded = decode_command(encoded).unwrap();
            assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));
        }
    }

    #[test]
    fn payload_commands_roundtrip() {
        let shard: BTreeSet<Prefix> = ["10.0.0.0/8".parse().unwrap(), "192.168.1.0/24".parse().unwrap()]
            .into_iter()
            .collect();
        let cmd = Command::BgpBegin {
            shard: Some(Arc::new(shard.clone())),
        };
        match decode_command(encode_command(&cmd)).unwrap() {
            Command::BgpBegin { shard: Some(s) } => assert_eq!(*s, shard),
            other => panic!("wrong decode: {other:?}"),
        }

        let rib = RibSnapshot {
            per_node: vec![vec![sample_rib_route()], vec![]],
        };
        let waypoints: BTreeMap<NodeId, u16> = [(NodeId(1), 2u16)].into_iter().collect();
        let cmd = Command::DpSetup {
            rib: Arc::new(rib.clone()),
            meta_bits: 3,
            waypoints: Arc::new(waypoints.clone()),
            max_hops: 64,
        };
        match decode_command(encode_command(&cmd)).unwrap() {
            Command::DpSetup {
                rib: r,
                meta_bits,
                waypoints: w,
                max_hops,
            } => {
                assert_eq!(r.per_node, rib.per_node);
                assert_eq!(meta_bits, 3);
                assert_eq!(*w, waypoints);
                assert_eq!(max_hops, 64);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let cmd = Command::CheckArrivals {
            sources: Arc::new(vec![NodeId(0), NodeId(3)]),
            expected: Arc::new(vec![(NodeId(3), vec!["10.0.0.0/8".parse().unwrap()])]),
            transits: Arc::new(vec![(NodeId(1), 0u16)]),
        };
        let decoded = decode_command(encode_command(&cmd)).unwrap();
        assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));

        let cmd = Command::ScenarioBegin {
            failed: Arc::new(vec![(NodeId(4), InterfaceId(1)), (NodeId(9), InterfaceId(0))]),
            restore: false,
        };
        let decoded = decode_command(encode_command(&cmd)).unwrap();
        assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));

        let cmd = Command::DpPatch {
            rib: Arc::new(RibSnapshot {
                per_node: vec![vec![], vec![sample_rib_route()]],
            }),
            changed: Arc::new(vec![NodeId(1)]),
            failed_ports: Arc::new(vec![(NodeId(1), InterfaceId(4))]),
        };
        let decoded = decode_command(encode_command(&cmd)).unwrap();
        assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));

        let cmd = Command::DpScope {
            scopes: Arc::new(vec![
                (NodeId(0), vec!["10.0.0.0/24".parse().unwrap()]),
                (NodeId(7), vec![]),
            ]),
        };
        let decoded = decode_command(encode_command(&cmd)).unwrap();
        assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));

        let cmd = Command::CtxWrap {
            epoch: 3,
            parent: (2u64 << 48) | 77,
            inner: Box::new(Command::Ping(0xfeed)),
        };
        let decoded = decode_command(encode_command(&cmd)).unwrap();
        assert_eq!(format!("{cmd:?}"), format!("{decoded:?}"));
    }

    /// A wrap inside a wrap never decodes — checked on the raw tag
    /// before recursing, so stacked wrap bytes cannot wind the stack.
    #[test]
    fn nested_ctx_wrap_is_rejected() {
        let inner = Command::CtxWrap {
            epoch: 1,
            parent: 2,
            inner: Box::new(Command::Ping(9)),
        };
        let mut raw = BytesMut::new();
        raw.put_u8(28);
        raw.put_u64(1);
        raw.put_u64(2);
        let inner_bytes = encode_command(&inner);
        raw.put_u32(inner_bytes.len() as u32);
        raw.put_slice(&inner_bytes);
        assert!(decode_command(raw.freeze()).is_err());

        // Depth-1 wrapping of every simple command stays fine.
        let ok = Command::CtxWrap {
            epoch: 1,
            parent: 2,
            inner: Box::new(Command::DpCompile),
        };
        assert!(decode_command(encode_command(&ok)).is_ok());
    }

    #[test]
    fn replies_roundtrip() {
        let replies = vec![
            Reply::Ok,
            Reply::Changed(true),
            Reply::Rib(vec![(NodeId(4), vec![sample_rib_route()])]),
            Reply::Forwarded {
                processed: 10,
                sent_remote: 2,
            },
            Reply::Arrivals {
                reachable: vec![(NodeId(0), NodeId(1))],
                unreachable: vec![(NodeId(2), NodeId(3))],
                waypoint_violations: vec![(NodeId(0), NodeId(1), NodeId(5))],
            },
            Reply::Finals {
                loops: 1,
                blackholes: 2,
                splices: 7,
                sets: vec![(NodeId(9), FinalKind::Loop, Bytes::from_static(b"bddbits"))],
            },
            Reply::Prefixes {
                all: vec!["10.0.0.0/8".parse().unwrap()],
                aggregates: vec![],
                deps: vec![(
                    "10.0.0.0/8".parse().unwrap(),
                    "10.1.0.0/16".parse().unwrap(),
                )],
            },
            Reply::Deps(vec![]),
            Reply::Mem(MemReport {
                route_bytes: 1,
                bdd_bytes: 2,
                peak_bytes: 3,
                bdd_peak_nodes: 4,
                bdd_cache: crate::memstats::CacheStats {
                    unique_lookups: 5,
                    bin_hits: 6,
                    ..Default::default()
                },
            }),
            Reply::OutOfMemory {
                budget: 100,
                observed: 150,
            },
            Reply::Pong(42),
            Reply::Net {
                traffic: TrafficSnapshot {
                    messages: 5,
                    reconnects: 1,
                    ..TrafficSnapshot::default()
                },
                in_flight: 3,
            },
            Reply::Violation("bad phase".to_string()),
            Reply::Metrics({
                let mut m = s2_obs::MetricsSnapshot::default();
                m.counter("bdd.unique.hits", 42);
                m.gauge_max("mem.peak_bytes", 1 << 20);
                m
            }),
            Reply::ChangedDst(vec![
                (NodeId(2), vec!["10.0.0.0/24".parse().unwrap()]),
                (NodeId(5), vec![]),
            ]),
            Reply::TraceEvents {
                now_ns: 123_456_789,
                names: vec!["dpv.verdict".to_string(), "cp.round".to_string()],
                events: vec![
                    s2_obs::trace::Event {
                        name: 1,
                        kind: 0,
                        lane: 3,
                        depth: 2,
                        ts_ns: 1_000,
                        dur_ns: 500,
                        arg: 42,
                        span: (3u64 << 48) | 7,
                        parent: 11,
                    },
                    s2_obs::trace::Event {
                        name: 0,
                        kind: 1,
                        lane: 3,
                        depth: 0,
                        ts_ns: 2_000,
                        dur_ns: 0,
                        arg: 0,
                        span: 0,
                        parent: (3u64 << 48) | 7,
                    },
                ],
            },
            Reply::TraceEvents {
                now_ns: 0,
                names: vec![],
                events: vec![],
            },
        ];
        for reply in replies {
            let decoded = decode_reply(encode_reply(&reply)).unwrap();
            assert_eq!(format!("{reply:?}"), format!("{decoded:?}"));
        }
    }

    proptest::proptest! {
        /// Adversarial control-channel payloads must never panic either
        /// decoder — a malformed peer degrades to a closed connection,
        /// not a crashed process.
        #[test]
        fn prop_arbitrary_control_bytes_never_panic(
            raw in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512),
        ) {
            let bytes = Bytes::from(raw);
            let _ = decode_command(bytes.clone());
            let _ = decode_reply(bytes.clone());
            let _ = decode_register(bytes.clone());
            let _ = decode_setup(bytes);
        }
    }

    #[test]
    fn truncated_and_garbage_control_payloads_error() {
        // Garbage tags.
        assert!(decode_command(Bytes::from_static(&[99])).is_err());
        assert!(decode_reply(Bytes::from_static(&[99])).is_err());
        assert!(decode_command(Bytes::new()).is_err());
        assert!(decode_reply(Bytes::new()).is_err());
        // Every prefix of a valid encoding must error, never panic.
        let cmd = Command::CheckArrivals {
            sources: Arc::new(vec![NodeId(0)]),
            expected: Arc::new(vec![(NodeId(1), vec!["10.0.0.0/8".parse().unwrap()])]),
            transits: Arc::new(vec![(NodeId(2), 1u16)]),
        };
        let bytes = encode_command(&cmd);
        for cut in 0..bytes.len() {
            assert!(decode_command(bytes.slice(..cut)).is_err());
        }
        let reply = Reply::Rib(vec![(NodeId(4), vec![sample_rib_route()])]);
        let bytes = encode_reply(&reply);
        for cut in 0..bytes.len() {
            assert!(decode_reply(bytes.slice(..cut)).is_err());
        }
        let cmd = Command::DpScope {
            scopes: Arc::new(vec![(NodeId(3), vec!["10.1.0.0/16".parse().unwrap()])]),
        };
        let bytes = encode_command(&cmd);
        for cut in 0..bytes.len() {
            assert!(decode_command(bytes.slice(..cut)).is_err());
        }
        let reply = Reply::ChangedDst(vec![(NodeId(3), vec!["10.1.0.0/16".parse().unwrap()])]);
        let bytes = encode_reply(&reply);
        for cut in 0..bytes.len() {
            assert!(decode_reply(bytes.slice(..cut)).is_err());
        }
        let cmd = Command::CtxWrap {
            epoch: 5,
            parent: 6,
            inner: Box::new(Command::Metrics),
        };
        let bytes = encode_command(&cmd);
        for cut in 0..bytes.len() {
            assert!(decode_command(bytes.slice(..cut)).is_err());
        }
        let reply = Reply::TraceEvents {
            now_ns: 7,
            names: vec!["a".to_string()],
            events: vec![s2_obs::trace::Event {
                name: 0,
                kind: 0,
                lane: 1,
                depth: 0,
                ts_ns: 1,
                dur_ns: 2,
                arg: 3,
                span: 4,
                parent: 0,
            }],
        };
        let bytes = encode_reply(&reply);
        for cut in 0..bytes.len() {
            assert!(decode_reply(bytes.slice(..cut)).is_err());
        }
        // An event naming past the shipped table is rejected, not
        // deferred to a panic at stitch time.
        let reply = Reply::TraceEvents {
            now_ns: 7,
            names: vec![],
            events: vec![s2_obs::trace::Event {
                name: 3,
                kind: 0,
                lane: 1,
                depth: 0,
                ts_ns: 1,
                dur_ns: 2,
                arg: 3,
                span: 4,
                parent: 0,
            }],
        };
        assert!(decode_reply(encode_reply(&reply)).is_err());
    }
}
