//! # s2-runtime
//!
//! The distributed execution substrate of S2 (§3.2): a controller, worker
//! threads (the "logical servers"), and sidecar message routers.
//!
//! ## Fidelity notes
//!
//! The paper runs workers as separate JVM processes connected by gRPC.
//! Here each worker is an OS thread that owns its mutable state
//! exclusively; the *only* way control-plane routes or symbolic packets
//! move between workers is through the [`sidecar`] as length-delimited
//! binary messages ([`wire`]) — the same share-nothing discipline, with
//! the transport swapped for in-process channels. In particular:
//!
//! * a worker holds [`SwitchModel`]s only for its **real** nodes; remote
//!   nodes exist only as entries in the sidecar's node→worker map (the
//!   shadow-node role),
//! * symbolic packets crossing workers are serialized from the sender's
//!   BDD manager and *re-encoded* into the receiver's private manager,
//!   exactly the design §4.3 adopts,
//! * per-worker memory is tracked by [`memstats::MemGauge`]s (routes +
//!   BDD nodes), standing in for the JVM `-Xmx` accounting of the paper's
//!   testbed (see DESIGN.md, substitution #6).
//!
//! ## Fault tolerance
//!
//! The runtime survives worker crashes and hangs (shard-granular
//! checkpoint + recovery, see [`Cluster::recover`]), degrades adaptively
//! when a shard exceeds its memory budget (component-aware bisection),
//! and hardens the wire against frame loss, duplication, reordering and
//! corruption (checksummed frames with per-link sequence numbers, see
//! [`wire`]). All failure modes can be injected deterministically through
//! a [`FaultPlan`] for chaos testing.
//!
//! ## Transport
//!
//! The data fabric between sidecars is pluggable ([`transport`]): the
//! default backend keeps the seed's in-process channels, while the
//! [`tcp`] backend speaks length-prefixed framed TCP with per-peer
//! connection supervision (heartbeats, reconnect with backoff + jitter,
//! bounded outboxes with credit-based flow control) and powers the
//! multi-process mode ([`remote`]): a controller process plus `s2 worker`
//! processes connected over sockets.
//!
//! [`SwitchModel`]: s2_routing::SwitchModel

#![deny(missing_docs)]

pub mod admin;
pub mod controller;
pub mod credit;
pub mod faults;
pub mod memstats;
pub mod metrics;
pub mod pool;
pub mod remote;
pub mod sidecar;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use admin::{
    AdminRequest, AdminResponse, CheckpointError, DeltaSpec, VerdictSummary, WarmCheckpoint,
    WorkerMetrics,
};
pub use controller::{
    Cluster, ClusterOptions, CpRunStats, DpvRunStats, DpvScopedStats, FleetScrape, RuntimeConfig,
    RuntimeError,
};
pub use faults::{DaemonPhase, FaultPlan, FaultState};
pub use memstats::{CacheStats, MemGauge, MemReport};
pub use metrics::RunMetrics;
pub use pool::EvalPool;
pub use sidecar::{Sidecar, SidecarNet, TrafficSnapshot, TrafficStats};
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{ChannelTransport, Inbox, Transport, TransportError, TransportKind};
pub use wire::{Message, WireError};
