//! Bridges between the runtime's bespoke stat structs and the unified
//! [`s2_obs`] metrics registry.
//!
//! The runtime predates the observability layer and carries several
//! hand-rolled counter structs: [`MemReport`] (per-worker memory and
//! BDD cache stats) and [`TrafficSnapshot`] (sidecar wire traffic).
//! Rather than migrating every producer at once, this module converts
//! those structs into [`MetricsSnapshot`]s under the unified
//! `<subsystem>.<thing>[.<aspect>]` naming scheme, and converts back
//! where legacy consumers (report fields, tests) still want the struct
//! form. Conversions are exact: counter merge is summation, matching
//! `CacheStats::merge` and `TrafficStats::merge`, so aggregating
//! per-worker snapshots and converting back yields byte-identical
//! legacy stats.

use crate::memstats::MemReport;
use crate::sidecar::TrafficSnapshot;
use s2_bdd::CacheStats;
use s2_obs::MetricsSnapshot;

/// Per-run metrics collected over the control protocol: one snapshot
/// per worker plus the controller-side aggregate (worker snapshots
/// merged, then cluster-wide traffic and the process-global registry
/// folded in once).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// One snapshot per worker, in worker-index order.
    pub per_worker: Vec<MetricsSnapshot>,
    /// Merge of all worker snapshots plus controller-only sources.
    pub aggregate: MetricsSnapshot,
}

impl RunMetrics {
    /// Canonical JSON document for `--metrics-out`: the aggregate plus
    /// one snapshot per worker. Deterministic — snapshots serialize
    /// their maps in key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"s2-metrics-report/v1\",\"aggregate\":");
        out.push_str(&self.aggregate.to_json());
        out.push_str(",\"per_worker\":[");
        for (i, m) in self.per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Convert a worker's [`MemReport`] into registry form: the BDD cache
/// counters become `bdd.*` counters, the byte/node watermarks become
/// `mem.*` / `bdd.*` gauges.
pub fn mem_metrics(mem: &MemReport) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    let c = &mem.bdd_cache;
    s.counter("bdd.unique.lookups", c.unique_lookups);
    s.counter("bdd.unique.hits", c.unique_hits);
    s.counter("bdd.unique.probe_misses", c.unique_probe_misses);
    s.counter("bdd.unique.resizes", c.unique_resizes);
    s.counter("bdd.bin.lookups", c.bin_lookups);
    s.counter("bdd.bin.hits", c.bin_hits);
    s.counter("bdd.not.lookups", c.not_lookups);
    s.counter("bdd.not.hits", c.not_hits);
    s.counter("bdd.memo.lookups", c.memo_lookups);
    s.counter("bdd.memo.hits", c.memo_hits);
    s.counter("bdd.generation_clears", c.generation_clears);
    s.gauge_max("mem.route_bytes", mem.route_bytes as u64);
    s.gauge_max("mem.bdd_bytes", mem.bdd_bytes as u64);
    s.gauge_max("mem.peak_bytes", mem.peak_bytes as u64);
    s.gauge_max("bdd.peak_nodes", mem.bdd_peak_nodes as u64);
    s
}

/// Inverse of the `bdd.*` half of [`mem_metrics`]: rebuild a
/// [`CacheStats`] from a (possibly merged) snapshot. Exact because
/// counter merge and [`CacheStats::merge`] are both summation.
pub fn cache_stats_of(s: &MetricsSnapshot) -> CacheStats {
    CacheStats {
        unique_lookups: s.counter_value("bdd.unique.lookups"),
        unique_hits: s.counter_value("bdd.unique.hits"),
        unique_probe_misses: s.counter_value("bdd.unique.probe_misses"),
        unique_resizes: s.counter_value("bdd.unique.resizes"),
        bin_lookups: s.counter_value("bdd.bin.lookups"),
        bin_hits: s.counter_value("bdd.bin.hits"),
        not_lookups: s.counter_value("bdd.not.lookups"),
        not_hits: s.counter_value("bdd.not.hits"),
        memo_lookups: s.counter_value("bdd.memo.lookups"),
        memo_hits: s.counter_value("bdd.memo.hits"),
        generation_clears: s.counter_value("bdd.generation_clears"),
    }
}

/// Convert a cluster-wide [`TrafficSnapshot`] into `net.*` / `tcp.*` /
/// `dp.*` counters. Called once at the controller (the snapshot
/// already merges local and remote sidecars), never per worker, so
/// traffic is not double-counted.
pub fn traffic_metrics(t: &TrafficSnapshot) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::default();
    s.counter("net.messages", t.messages);
    s.counter("net.bytes", t.bytes);
    s.counter("net.wire_errors", t.wire_errors);
    s.counter("net.dup_skips", t.dup_skips);
    s.counter("net.seq_gaps", t.seq_gaps);
    s.counter("net.stale_drops", t.stale_drops);
    s.counter("net.injected_drops", t.injected_drops);
    s.counter("net.injected_dups", t.injected_dups);
    s.counter("net.injected_corruptions", t.injected_corruptions);
    s.counter("net.injected_delays", t.injected_delays);
    s.counter("tcp.reconnects", t.reconnects);
    s.counter("net.send_drops", t.send_drops);
    s.counter("tcp.backpressure_stalls", t.backpressure_stalls);
    s.counter("tcp.heartbeats", t.heartbeats);
    s.counter("net.protocol_violations", t.protocol_violations);
    s.counter("dp.scratch_reuses", t.scratch_reuses);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mem(seed: u64) -> MemReport {
        let c = CacheStats {
            unique_lookups: seed + 1,
            unique_hits: seed + 2,
            unique_probe_misses: seed + 3,
            unique_resizes: seed + 4,
            bin_lookups: seed + 5,
            bin_hits: seed + 6,
            not_lookups: seed + 7,
            not_hits: seed + 8,
            memo_lookups: seed + 9,
            memo_hits: seed + 10,
            generation_clears: seed + 11,
        };
        MemReport {
            route_bytes: (seed as usize) * 3 + 1,
            bdd_bytes: (seed as usize) * 5 + 2,
            peak_bytes: (seed as usize) * 7 + 3,
            bdd_peak_nodes: (seed as usize) * 11 + 4,
            bdd_cache: c,
        }
    }

    #[test]
    fn cache_stats_roundtrip_through_snapshot() {
        let mem = sample_mem(100);
        assert_eq!(cache_stats_of(&mem_metrics(&mem)), mem.bdd_cache);
    }

    #[test]
    fn merged_snapshots_match_cache_stats_merge() {
        let a = sample_mem(10);
        let b = sample_mem(2000);
        let mut merged_legacy = a.bdd_cache;
        merged_legacy.merge(&b.bdd_cache);
        let mut snap = mem_metrics(&a);
        snap.merge(&mem_metrics(&b));
        assert_eq!(cache_stats_of(&snap), merged_legacy);
        // Gauges take the max across workers.
        assert_eq!(
            snap.gauge_value("mem.peak_bytes"),
            a.peak_bytes.max(b.peak_bytes) as u64
        );
    }

    #[test]
    fn run_metrics_json_is_schema_tagged_and_parseable() {
        let run = RunMetrics {
            per_worker: vec![mem_metrics(&sample_mem(1)), mem_metrics(&sample_mem(2))],
            aggregate: {
                let mut a = mem_metrics(&sample_mem(1));
                a.merge(&mem_metrics(&sample_mem(2)));
                a
            },
        };
        let json = run.to_json();
        let parsed = s2_obs::parse_json(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("s2-metrics-report/v1")
        );
        match parsed.get("per_worker") {
            Some(s2_obs::Json::Arr(workers)) => assert_eq!(workers.len(), 2),
            other => panic!("per_worker must be an array, got {other:?}"),
        }
        assert!(parsed.get("aggregate").is_some());
    }

    #[test]
    fn traffic_snapshot_bridges_every_field() {
        let t = TrafficSnapshot {
            messages: 1,
            bytes: 2,
            wire_errors: 3,
            dup_skips: 4,
            seq_gaps: 5,
            stale_drops: 6,
            injected_drops: 7,
            injected_dups: 8,
            injected_corruptions: 9,
            injected_delays: 10,
            reconnects: 11,
            send_drops: 12,
            backpressure_stalls: 13,
            heartbeats: 14,
            protocol_violations: 15,
            scratch_reuses: 16,
        };
        let s = traffic_metrics(&t);
        assert_eq!(s.counter_value("net.messages"), 1);
        assert_eq!(s.counter_value("tcp.reconnects"), 11);
        assert_eq!(s.counter_value("tcp.backpressure_stalls"), 13);
        assert_eq!(s.counter_value("dp.scratch_reuses"), 16);
        // Sum of all counters equals the sum of all fields: nothing
        // dropped in translation.
        let total: u64 = (1..=16).sum();
        let json = s.to_json();
        let parsed = s2_obs::parse_json(&json).unwrap();
        let counters = parsed.get("counters").unwrap();
        let mut sum = 0u64;
        if let s2_obs::Json::Obj(fields) = counters {
            assert_eq!(fields.len(), 16);
            for (_, v) in fields {
                sum += v.as_num().unwrap() as u64;
            }
        } else {
            panic!("counters must be an object");
        }
        assert_eq!(sum, total);
    }
}
