//! The framed-TCP transport backend with per-peer connection supervision.
//!
//! Every worker binds one loopback/LAN listener. For each (sender,
//! receiver) pair a *link* exists on the sending side: a bounded outbox
//! plus a writer thread that owns the connection lifecycle — dialing with
//! exponential backoff and deterministic jitter, heartbeating when idle,
//! requeueing the in-hand frame and redialing on any write error. The
//! accepting side runs one reader thread per established connection that
//! pushes data frames into the worker's [`TcpInbox`], plus a flusher
//! thread that returns *credits* over the same connection.
//!
//! ## Credit-based flow control
//!
//! A link may have at most [`TcpConfig::credit_window`] frames
//! outstanding: each data frame consumes one credit, and the credit is
//! returned only when the receiving **worker** pops the frame from its
//! inbox — not when the receiving socket reads it. A slow worker
//! therefore backpressures its senders: their outboxes (bounded at
//! [`TcpConfig::outbox_capacity`]) fill, their `send` calls block, and
//! after [`TcpConfig::send_deadline`] the frame is dropped and counted in
//! [`TrafficStats::send_drops`] — a loss the controller's resync
//! machinery heals, instead of unbounded memory growth.
//!
//! ## Supervision and convergence
//!
//! Delivery is asynchronous, so the controller folds
//! [`TcpTransport::in_flight`] — queued outbox frames, the frame in the
//! writer's hand, plus consumed credits, i.e. everything sent but not
//! yet drained by the destination worker — into its convergence checks. On reconnect the credit window
//! resets and [`TrafficStats::reconnects`] ticks; reconnects count as
//! losses, so frames that died in a severed connection's kernel buffers
//! always trigger a BGP resync and can never fake a converged round.

use crate::faults::FaultState;
use crate::sidecar::{TrafficStats, WorkerId};
use crate::credit::CreditLedger;
use crate::transport::{Inbox, Transport, TransportError};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use s2_obs::{Deadline, Stopwatch};
use std::time::Duration;

/// Stream envelope kinds (`kind:u8 len:u32 payload`, length big-endian).
pub(crate) const K_HELLO: u8 = 0;
pub(crate) const K_DATA: u8 = 1;
pub(crate) const K_CREDIT: u8 = 2;
pub(crate) const K_HEARTBEAT: u8 = 3;
pub(crate) const K_COMMAND: u8 = 4;
pub(crate) const K_REPLY: u8 = 5;
pub(crate) const K_REGISTER: u8 = 6;
pub(crate) const K_SETUP: u8 = 7;

/// Tuning knobs of the TCP backend.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum frames a link may have outstanding (sent but not yet
    /// drained by the receiving worker).
    pub credit_window: u32,
    /// Maximum frames queued in a link's outbox before `send` blocks.
    pub outbox_capacity: usize,
    /// How long a blocked `send` waits for outbox space before dropping
    /// the frame (counted in [`TrafficStats::send_drops`]).
    pub send_deadline: Duration,
    /// Per-attempt dial timeout.
    pub connect_timeout: Duration,
    /// First reconnect backoff; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Idle interval after which a connected peer is probed with a
    /// heartbeat envelope (both directions).
    pub heartbeat_interval: Duration,
    /// A connection that stays silent this long (no data, credits, or
    /// heartbeats) is declared dead and torn down for reconnect.
    pub peer_silence_timeout: Duration,
    /// Hard cap on a single envelope payload; larger announcements are
    /// rejected as a protocol violation (adversarial-peer defence).
    pub max_frame_len: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            credit_window: 256,
            outbox_capacity: 1024,
            send_deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(200),
            peer_silence_timeout: Duration::from_secs(2),
            max_frame_len: 64 << 20,
        }
    }
}

/// Writes one `kind len payload` envelope.
pub(crate) fn write_envelope(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let [l0, l1, l2, l3] = (payload.len() as u32).to_be_bytes();
    let head = [kind, l0, l1, l2, l3];
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one envelope, rejecting payloads above `max_len`.
pub(crate) fn read_envelope(r: &mut impl Read, max_len: usize) -> io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let [kind, l0, l1, l2, l3] = head;
    let len = u32::from_be_bytes([l0, l1, l2, l3]) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("envelope of {} bytes exceeds the {} byte cap", len, max_len),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

/// Recovers a poisoned std mutex guard: supervision state stays usable
/// even if some thread panicked while holding the lock.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-connection credit accumulator on the accepting side. Popping a
/// frame from the inbox grants a credit here; the connection's flusher
/// thread batches pending credits into `Credit` envelopes back to the
/// sender.
#[derive(Debug, Default)]
pub(crate) struct CreditHandle {
    state: Mutex<CreditState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct CreditState {
    pending: u32,
    closed: bool,
}

impl CreditHandle {
    fn grant(&self, n: u32) {
        let mut st = lock_unpoisoned(&self.state);
        st.pending += n;
        self.cond.notify_all();
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.cond.notify_all();
    }

    /// Waits for credits to flush (or a heartbeat to become due).
    /// Returns `None` when the connection is closed, `Some(0)` for a
    /// heartbeat, `Some(n)` for `n` credits.
    fn next_flush(&self, heartbeat: Duration) -> Option<u32> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if st.pending > 0 {
                let n = st.pending;
                st.pending = 0;
                return Some(n);
            }
            if st.closed {
                return None;
            }
            let (g, timeout) = self
                .cond
                .wait_timeout(st, heartbeat)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if timeout.timed_out() && st.pending == 0 && !st.closed {
                return Some(0);
            }
        }
    }
}

/// A queued frame paired with the credit to return when it is popped.
type CreditedFrame = (Option<Arc<CreditHandle>>, Bytes);

/// A worker's shared receive queue, fed by the acceptor threads. Popping
/// a frame returns its credit to the sending link.
#[derive(Debug, Clone, Default)]
pub struct TcpInbox {
    q: Arc<Mutex<VecDeque<CreditedFrame>>>,
}

impl TcpInbox {
    /// Pops the next frame, granting its link credit back.
    pub fn pop(&self) -> Option<Bytes> {
        let popped = lock_unpoisoned(&self.q).pop_front();
        popped.map(|(credit, frame)| {
            if let Some(c) = credit {
                c.grant(1);
            }
            frame
        })
    }

    fn push(&self, credit: Option<Arc<CreditHandle>>, frame: Bytes) {
        lock_unpoisoned(&self.q).push_back((credit, frame));
    }

    /// Discards everything queued, still granting credits so senders'
    /// windows (and `in_flight`) do not leak (worker respawn).
    fn clear(&self) {
        let drained: Vec<_> = lock_unpoisoned(&self.q).drain(..).collect();
        for (credit, _) in drained {
            if let Some(c) = credit {
                c.grant(1);
            }
        }
    }
}

/// Sending-side state of one (src, dst) link. The race-prone credit /
/// generation bookkeeping lives in [`CreditLedger`], a pure state
/// machine shared with the loom model check (`tests/loom.rs`).
#[derive(Debug)]
struct LinkState {
    outbox: VecDeque<Bytes>,
    /// Credit window, connection-generation fence, frame-in-hand marker.
    ledger: CreditLedger,
    /// Largest outbox depth ever observed (bounded-memory evidence).
    outbox_peak: usize,
    /// Data frames handed to the writer so far (per-link fault index).
    frames_attempted: u64,
    writer_spawned: bool,
    closed: bool,
}

#[derive(Debug)]
struct Link {
    src: WorkerId,
    dst: WorkerId,
    state: Mutex<LinkState>,
    cond: Condvar,
}

impl Link {
    fn new(src: WorkerId, dst: WorkerId, window: u32) -> Self {
        Link {
            src,
            dst,
            state: Mutex::new(LinkState {
                outbox: VecDeque::new(),
                ledger: CreditLedger::new(window),
                outbox_peak: 0,
                frames_attempted: 0,
                writer_spawned: false,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Outbox frames plus consumed credits: everything accepted from the
    /// sender but not yet drained by the destination worker.
    fn in_flight(&self) -> usize {
        let st = lock_unpoisoned(&self.state);
        st.outbox.len() + st.ledger.outstanding()
    }
}

type ThreadRegistry = Arc<Mutex<Vec<thread::JoinHandle<()>>>>;

/// The TCP backend. Built either as an in-process full mesh
/// ([`TcpTransport::mesh`], every worker in this process) or as a single
/// worker's endpoint ([`TcpTransport::single`], multi-process mode).
#[derive(Debug)]
pub struct TcpTransport {
    cfg: TcpConfig,
    num_workers: u32,
    /// Data-fabric address of every worker.
    addrs: Vec<SocketAddr>,
    /// `links[src * num_workers + dst]`; `None` for non-local senders.
    links: Vec<Option<Arc<Link>>>,
    /// Per-worker inboxes; `None` for workers hosted elsewhere.
    inboxes: Vec<Option<TcpInbox>>,
    stats: Arc<TrafficStats>,
    faults: Arc<FaultState>,
    closed: Arc<AtomicBool>,
    threads: ThreadRegistry,
}

impl TcpTransport {
    /// Builds an in-process mesh: one listener, inbox, and set of
    /// outgoing links per worker, all over loopback.
    pub fn mesh(
        num_workers: u32,
        cfg: TcpConfig,
        stats: Arc<TrafficStats>,
        faults: Arc<FaultState>,
    ) -> io::Result<(Arc<TcpTransport>, Vec<Inbox>)> {
        let mut listeners = Vec::with_capacity(num_workers as usize);
        for _ in 0..num_workers {
            listeners.push(TcpListener::bind("127.0.0.1:0")?);
        }
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<io::Result<_>>()?;
        let local: Vec<WorkerId> = (0..num_workers).collect();
        let t = Self::assemble(num_workers, cfg, stats, faults, &local, addrs, listeners)?;
        let inboxes = (0..num_workers).map(|w| Inbox::Tcp(t.inbox_of(w))).collect();
        Ok((t, inboxes))
    }

    /// Builds the endpoint of one worker in a multi-process cluster.
    /// `listener` is this worker's already-bound data listener (bound
    /// early so its address could be registered with the controller);
    /// `addrs[w]` must be every worker's data address.
    pub fn single(
        worker: WorkerId,
        num_workers: u32,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        cfg: TcpConfig,
        stats: Arc<TrafficStats>,
        faults: Arc<FaultState>,
    ) -> io::Result<(Arc<TcpTransport>, Inbox)> {
        let t = Self::assemble(num_workers, cfg, stats, faults, &[worker], addrs, vec![listener])?;
        let inbox = Inbox::Tcp(t.inbox_of(worker));
        Ok((t, inbox))
    }

    /// Common construction: links for every local sender, an acceptor per
    /// local worker (`listeners[i]` serves `local[i]`).
    fn assemble(
        num_workers: u32,
        cfg: TcpConfig,
        stats: Arc<TrafficStats>,
        faults: Arc<FaultState>,
        local: &[WorkerId],
        addrs: Vec<SocketAddr>,
        listeners: Vec<TcpListener>,
    ) -> io::Result<Arc<TcpTransport>> {
        let n = num_workers as usize;
        // `addrs` and `local` can come from a remote controller's Setup
        // message: validate the shape here, at the trust boundary, so no
        // later lookup can be out of range.
        if addrs.len() != n || local.iter().any(|&w| (w as usize) >= n) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "transport setup inconsistent: {} addrs / {} local workers for a {}-worker mesh",
                    addrs.len(),
                    local.len(),
                    n
                ),
            ));
        }
        let is_local = |w: WorkerId| local.contains(&w);
        let links: Vec<Option<Arc<Link>>> = (0..n * n)
            .map(|i| {
                let (src, dst) = ((i / n) as WorkerId, (i % n) as WorkerId);
                is_local(src).then(|| Arc::new(Link::new(src, dst, cfg.credit_window)))
            })
            .collect();
        let inboxes: Vec<Option<TcpInbox>> = (0..num_workers)
            .map(|w| is_local(w).then(TcpInbox::default))
            .collect();
        let t = Arc::new(TcpTransport {
            cfg,
            num_workers,
            addrs,
            links,
            inboxes,
            stats,
            faults,
            closed: Arc::new(AtomicBool::new(false)),
            threads: Arc::new(Mutex::new(Vec::new())),
        });
        for (listener, &w) in listeners.into_iter().zip(local) {
            listener.set_nonblocking(true)?;
            let inbox = t.inbox_of(w);
            let (cfg, stats) = (t.cfg.clone(), t.stats.clone());
            let (closed, registry) = (t.closed.clone(), t.threads.clone());
            let handle = thread::spawn(move || {
                accept_loop(listener, inbox, cfg, stats, closed, registry)
            });
            lock_unpoisoned(&t.threads).push(handle);
        }
        Ok(t)
    }

    fn link(&self, src: WorkerId, dst: WorkerId) -> Option<&Arc<Link>> {
        self.links
            .get(src as usize * self.num_workers as usize + dst as usize)?
            .as_ref()
    }

    /// The inbox of a local worker. Out-of-range or non-local ids yield
    /// a fresh detached inbox rather than a panic — callers treat it as
    /// an empty queue.
    fn inbox_of(&self, w: WorkerId) -> TcpInbox {
        self.inboxes
            .get(w as usize)
            .and_then(Clone::clone)
            .unwrap_or_default()
    }

    /// Largest outbox depth any link ever reached (bounded-memory
    /// evidence for the backpressure tests).
    pub fn outbox_peak(&self) -> usize {
        self.links
            .iter()
            .flatten()
            .map(|l| lock_unpoisoned(&l.state).outbox_peak)
            .max()
            .unwrap_or(0)
    }

    /// Ensures the link's writer thread runs (first send only).
    fn spawn_writer_if_needed(&self, link: &Arc<Link>, st: &mut LinkState) {
        if st.writer_spawned {
            return;
        }
        st.writer_spawned = true;
        let Some(addr) = self.addrs.get(link.dst as usize).copied() else {
            // Unreachable: `assemble` validated `addrs.len()` against the
            // mesh size and `link()` bounds every dst. Counted, not paniced.
            self.stats.protocol_violations.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let ctx = WriterCtx {
            link: link.clone(),
            addr,
            cfg: self.cfg.clone(),
            stats: self.stats.clone(),
            faults: self.faults.clone(),
        };
        let handle = thread::spawn(move || writer_loop(ctx));
        lock_unpoisoned(&self.threads).push(handle);
    }
}

impl Transport for TcpTransport {
    fn send(&self, src: WorkerId, dst: WorkerId, frame: Bytes) -> Result<(), TransportError> {
        if self.closed.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        let link = self.link(src, dst).ok_or(TransportError::Closed)?;
        let mut st = lock_unpoisoned(&link.state);
        let deadline = Deadline::after(self.cfg.send_deadline);
        let mut stalled = false;
        while st.outbox.len() >= self.cfg.outbox_capacity && !st.closed {
            if !stalled {
                stalled = true;
                self.stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
                s2_obs::event!("credit.stall", dst);
            }
            if deadline.expired() {
                self.stats.send_drops.fetch_add(1, Ordering::Relaxed);
                return Err(TransportError::Timeout);
            }
            let (g, _) = link
                .cond
                .wait_timeout(st, deadline.remaining())
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        if st.closed {
            return Err(TransportError::Closed);
        }
        st.outbox.push_back(frame);
        st.outbox_peak = st.outbox_peak.max(st.outbox.len());
        self.spawn_writer_if_needed(link, &mut st);
        link.cond.notify_all();
        Ok(())
    }

    fn replace_inbox(&self, w: WorkerId) -> Inbox {
        // The queue object is shared with the acceptor threads, so it is
        // drained (granting credits) rather than swapped; staleness of
        // frames sent to the dead worker is handled by the epoch filter
        // in `Sidecar::drain`.
        let inbox = self.inbox_of(w);
        inbox.clear();
        Inbox::Tcp(inbox)
    }

    fn in_flight(&self) -> usize {
        self.links
            .iter()
            .flatten()
            .map(|l| l.in_flight())
            .sum()
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        for link in self.links.iter().flatten() {
            lock_unpoisoned(&link.state).closed = true;
            link.cond.notify_all();
        }
        for inbox in self.inboxes.iter().flatten() {
            inbox.clear();
        }
        // Two passes: joining a writer closes its socket, which lets the
        // peer's reader/flusher threads (registered concurrently) exit.
        for _ in 0..2 {
            let handles: Vec<_> = lock_unpoisoned(&self.threads).drain(..).collect();
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a link's writer thread needs.
struct WriterCtx {
    link: Arc<Link>,
    addr: SocketAddr,
    cfg: TcpConfig,
    stats: Arc<TrafficStats>,
    faults: Arc<FaultState>,
}

/// What the writer decided to do after waiting on the link state.
enum Wake {
    /// A data frame to transmit: payload, per-link frame index, and
    /// whether a credit was already consumed for it (requeue paths must
    /// return it).
    Frame(Bytes, u64, bool),
    Heartbeat,
    Closed,
}

/// Deterministic backoff with jitter: `base * 2^attempt` capped at `max`,
/// plus a jitter derived from the link identity and attempt number (no
/// RNG, so chaos runs reproduce).
fn backoff(cfg: &TcpConfig, src: WorkerId, dst: WorkerId, attempt: u32) -> Duration {
    let base = cfg.backoff_base.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(10));
    let capped = exp.min(cfg.backoff_max);
    let jitter_ms =
        (u64::from(src) * 31 + u64::from(dst) * 17 + u64::from(attempt) * 7) % (base.as_millis().max(1) as u64);
    capped + Duration::from_millis(jitter_ms)
}

/// The sending half of one link: owns the connection, its reconnect
/// policy, and the fault hooks for sever / partition / throttle.
fn writer_loop(ctx: WriterCtx) {
    let link = &ctx.link;
    let mut conn: Option<TcpStream> = None;
    let mut had_conn = false;
    let mut last_write = Stopwatch::start();
    loop {
        let wake = {
            let mut st = lock_unpoisoned(&link.state);
            loop {
                if st.closed {
                    break Wake::Closed;
                }
                if st.ledger.take_conn_dead() {
                    conn = None;
                }
                // Out of credits with a live connection: wait for the
                // receiver to drain. With no connection, proceed — the
                // dial handshake resets the window.
                if let Some(frame) = (st.ledger.can_send(conn.is_some()))
                    .then(|| st.outbox.pop_front())
                    .flatten()
                {
                    let credit_spent = st.ledger.begin_send(conn.is_some());
                    let idx = st.frames_attempted;
                    st.frames_attempted += 1;
                    link.cond.notify_all(); // wake senders blocked on a full outbox
                    break Wake::Frame(frame, idx, credit_spent);
                }
                let (g, timeout) = link
                    .cond
                    .wait_timeout(st, ctx.cfg.heartbeat_interval)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                if timeout.timed_out()
                    && conn.is_some()
                    && last_write.elapsed() >= ctx.cfg.heartbeat_interval
                {
                    break Wake::Heartbeat;
                }
            }
        };
        match wake {
            Wake::Closed => {
                // Dropping the socket unblocks the peer's reader.
                return;
            }
            Wake::Heartbeat => {
                if let Some(stream) = conn.as_mut() {
                    if write_envelope(stream, K_HEARTBEAT, &[]).is_err() {
                        conn = None;
                    } else {
                        ctx.stats.heartbeats.fetch_add(1, Ordering::Relaxed);
                        last_write = Stopwatch::start();
                    }
                }
            }
            Wake::Frame(frame, idx, credit_spent) => {
                // Fault: sever the connection carrying this link's nth
                // data frame. The frame itself travels on the fresh
                // connection; anything buffered in the dead one is lost
                // and healed by the reconnect-loss accounting. Only a
                // live connection can be severed — connections are
                // dialed lazily, so the trigger waits (`idx >= n`) for
                // the first frame that finds one up.
                if conn.is_some() && ctx.faults.should_sever(link.src, link.dst, idx) {
                    conn = None;
                }
                // Fault: partition — the link is unusable until the
                // window elapses. Park the frame back and poll.
                if ctx.faults.partition_active(link.src, link.dst) {
                    conn = None;
                    requeue(link, frame, credit_spent);
                    thread::sleep(Duration::from_millis(2));
                    continue;
                }
                if conn.is_none() {
                    match dial(&ctx, had_conn) {
                        Some(stream) => {
                            had_conn = true;
                            conn = Some(stream);
                            // The fresh connection starts with a full
                            // window; spend this frame's credit now
                            // (skipped above while disconnected).
                            lock_unpoisoned(&link.state).ledger.debit_fresh_window();
                        }
                        None => {
                            // Shut down while dialing; frame dies with
                            // the link.
                            return;
                        }
                    }
                }
                // Fault: throttle — slow this link down per frame.
                if let Some(ms) = ctx.faults.throttle_of(link.src, link.dst) {
                    thread::sleep(Duration::from_millis(ms));
                }
                let mut wrote = false;
                if let Some(stream) = conn.as_mut() {
                    wrote = write_envelope(stream, K_DATA, &frame).is_ok();
                }
                if wrote {
                    last_write = Stopwatch::start();
                    // Delivered to the socket: the consumed credit now
                    // accounts for the frame until the receiver pops it.
                    lock_unpoisoned(&link.state).ledger.sent();
                } else {
                    // Requeue at the front: the frame is retried on the
                    // next connection in order.
                    conn = None;
                    requeue(link, frame, true);
                }
            }
        }
    }
}

/// Puts a frame back at the head of the outbox (connection loss or
/// partition), returning its credit if one was consumed.
fn requeue(link: &Arc<Link>, frame: Bytes, credit_spent: bool) {
    let mut st = lock_unpoisoned(&link.state);
    st.outbox.push_front(frame);
    st.frames_attempted = st.frames_attempted.saturating_sub(1);
    st.ledger.requeue(credit_spent);
}

/// Dials the peer with exponential backoff until it answers or the link
/// closes; returns `None` on closure. A successful dial performs the
/// `Hello` handshake, resets the credit window, and starts the credit
/// reader for the new connection.
///
/// When this is a *re*connect, [`TrafficStats::reconnects`] is bumped
/// strictly before the credit window resets: the controller samples
/// `in_flight` before `disturbances`, so at least one of the two always
/// exposes frames that died with the previous connection.
fn dial(ctx: &WriterCtx, reconnect: bool) -> Option<TcpStream> {
    let link = &ctx.link;
    let mut attempt: u32 = 0;
    loop {
        {
            let st = lock_unpoisoned(&link.state);
            if st.closed {
                return None;
            }
        }
        if ctx.faults.partition_active(link.src, link.dst) {
            thread::sleep(Duration::from_millis(2));
            continue;
        }
        match TcpStream::connect_timeout(&ctx.addr, ctx.cfg.connect_timeout) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                let hello = u32::to_be_bytes(link.src);
                if write_envelope(&mut stream, K_HELLO, &hello).is_err() {
                    attempt = attempt.saturating_add(1);
                    thread::sleep(backoff(&ctx.cfg, link.src, link.dst, attempt));
                    continue;
                }
                if reconnect {
                    ctx.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    s2_obs::event!("tcp.reconnect", link.dst);
                }
                let gen = lock_unpoisoned(&link.state).ledger.reconnect();
                if let Ok(read_half) = stream.try_clone() {
                    let (link, cfg) = (link.clone(), ctx.cfg.clone());
                    let stats = ctx.stats.clone();
                    thread::spawn(move || credit_reader(link, read_half, cfg, stats, gen));
                } else {
                    attempt = attempt.saturating_add(1);
                    thread::sleep(backoff(&ctx.cfg, link.src, link.dst, attempt));
                    continue;
                }
                return Some(stream);
            }
            Err(_) => {
                attempt = attempt.saturating_add(1);
                thread::sleep(backoff(&ctx.cfg, link.src, link.dst, attempt));
            }
        }
    }
}

/// Reads `Credit`/`Heartbeat` envelopes coming back from the receiver.
/// Exits (marking the connection dead for the writer) on any read error,
/// EOF, or peer silence beyond the timeout. The generation check stops a
/// stale reader from killing a newer connection.
fn credit_reader(
    link: Arc<Link>,
    mut stream: TcpStream,
    cfg: TcpConfig,
    stats: Arc<TrafficStats>,
    gen: u64,
) {
    let _ = stream.set_read_timeout(Some(cfg.peer_silence_timeout));
    loop {
        match read_envelope(&mut stream, cfg.max_frame_len) {
            Ok((K_CREDIT, payload)) if payload.len() == 4 => {
                let Ok(bytes) = <[u8; 4]>::try_from(payload.as_slice()) else {
                    continue; // unreachable: length checked by the guard
                };
                let n = u32::from_be_bytes(bytes);
                let mut st = lock_unpoisoned(&link.state);
                if !st.ledger.refill(n, gen) {
                    return; // stale generation: this reader is done
                }
                link.cond.notify_all();
            }
            Ok((K_HEARTBEAT, _)) => {}
            Ok(_) => {
                stats.protocol_violations.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let mut st = lock_unpoisoned(&link.state);
                if st.ledger.connection_lost(gen) {
                    link.cond.notify_all();
                }
                return;
            }
        }
    }
}

/// Accepts inbound data connections for one worker. Non-blocking polling
/// so shutdown is prompt; each accepted connection gets a reader thread
/// (data → inbox) and a flusher thread (credits/heartbeats → sender).
fn accept_loop(
    listener: TcpListener,
    inbox: TcpInbox,
    cfg: TcpConfig,
    stats: Arc<TrafficStats>,
    closed: Arc<AtomicBool>,
    registry: ThreadRegistry,
) {
    loop {
        if closed.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let (inbox, cfg, stats) = (inbox.clone(), cfg.clone(), stats.clone());
                let closed = closed.clone();
                let handle =
                    thread::spawn(move || serve_connection(stream, inbox, cfg, stats, closed));
                lock_unpoisoned(&registry).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One accepted connection: handshake, then data frames to the inbox and
/// credits back out.
fn serve_connection(
    mut stream: TcpStream,
    inbox: TcpInbox,
    cfg: TcpConfig,
    stats: Arc<TrafficStats>,
    closed: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(cfg.peer_silence_timeout));
    // First envelope must be a well-formed Hello.
    match read_envelope(&mut stream, cfg.max_frame_len) {
        Ok((K_HELLO, payload)) if payload.len() == 4 => {}
        Ok(_) => {
            stats.protocol_violations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(_) => return,
    }
    let credit = Arc::new(CreditHandle::default());
    let flusher = {
        let credit = credit.clone();
        let stats = stats.clone();
        let interval = cfg.heartbeat_interval;
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        thread::spawn(move || credit_flusher(write_half, credit, stats, interval))
    };
    loop {
        if closed.load(Ordering::Relaxed) {
            break;
        }
        match read_envelope(&mut stream, cfg.max_frame_len) {
            Ok((K_DATA, payload)) => {
                inbox.push(Some(credit.clone()), Bytes::from(payload));
            }
            Ok((K_HEARTBEAT, _)) => {}
            Ok(_) => {
                stats.protocol_violations.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => break,
        }
    }
    credit.close();
    let _ = flusher.join();
}

/// Batches granted credits into `Credit` envelopes; heartbeats when idle
/// so the sender's silence detector stays quiet.
fn credit_flusher(
    mut stream: TcpStream,
    credit: Arc<CreditHandle>,
    stats: Arc<TrafficStats>,
    interval: Duration,
) {
    while let Some(n) = credit.next_flush(interval) {
        let result = if n > 0 {
            write_envelope(&mut stream, K_CREDIT, &n.to_be_bytes())
        } else {
            stats.heartbeats.fetch_add(1, Ordering::Relaxed);
            write_envelope(&mut stream, K_HEARTBEAT, &[])
        };
        if result.is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn mesh(n: u32, cfg: TcpConfig) -> (Arc<TcpTransport>, Vec<Inbox>) {
        TcpTransport::mesh(
            n,
            cfg,
            Arc::new(TrafficStats::default()),
            Arc::new(FaultState::default()),
        )
        .expect("loopback mesh binds")
    }

    fn pop_within(inbox: &mut Inbox, timeout: Duration) -> Option<Bytes> {
        let deadline = Deadline::after(timeout);
        while !deadline.expired() {
            if let Some(b) = inbox.try_recv() {
                return Some(b);
            }
            thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn frames_cross_the_mesh_in_order() {
        let (t, mut inboxes) = mesh(2, TcpConfig::default());
        for i in 0..50u8 {
            t.send(0, 1, Bytes::from(vec![i])).unwrap();
        }
        for i in 0..50u8 {
            let got = pop_within(&mut inboxes[1], Duration::from_secs(5)).expect("frame arrives");
            assert_eq!(got.as_ref(), &[i]);
        }
        let deadline = Deadline::after(Duration::from_secs(5));
        while t.in_flight() > 0 && !deadline.expired() {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.in_flight(), 0, "credits all returned");
        t.shutdown();
    }

    #[test]
    fn credits_replenish_past_the_window() {
        let cfg = TcpConfig {
            credit_window: 4,
            outbox_capacity: 4,
            ..TcpConfig::default()
        };
        let (t, mut inboxes) = mesh(2, cfg);
        // 3 * window frames only fit if credits flow back as we pop.
        let total = 12u8;
        let sender = {
            let t = t.clone();
            thread::spawn(move || {
                for i in 0..total {
                    t.send(0, 1, Bytes::from(vec![i])).unwrap();
                }
            })
        };
        for i in 0..total {
            let got = pop_within(&mut inboxes[1], Duration::from_secs(5)).expect("frame arrives");
            assert_eq!(got.as_ref(), &[i]);
        }
        sender.join().unwrap();
        assert!(t.outbox_peak() <= 4, "outbox stayed bounded");
        t.shutdown();
    }

    #[test]
    fn in_flight_tracks_undrained_frames() {
        let (t, mut inboxes) = mesh(2, TcpConfig::default());
        t.send(0, 1, Bytes::from_static(b"x")).unwrap();
        // Until the frame is popped, at least one unit is in flight.
        let deadline = Deadline::after(Duration::from_secs(5));
        while !deadline.expired() {
            if t.in_flight() > 0 {
                break;
            }
        }
        assert!(t.in_flight() > 0);
        assert!(pop_within(&mut inboxes[1], Duration::from_secs(5)).is_some());
        let deadline = Deadline::after(Duration::from_secs(5));
        while t.in_flight() > 0 && !deadline.expired() {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.in_flight(), 0);
        t.shutdown();
    }

    #[test]
    fn sever_reconnects_and_keeps_delivering() {
        #[cfg(feature = "obs")]
        s2_obs::trace::set_enabled(true);
        let stats = Arc::new(TrafficStats::default());
        let faults = Arc::new(FaultState::new(FaultPlan::new().sever_connection(0, 1, 3)));
        let (t, mut inboxes) =
            TcpTransport::mesh(2, TcpConfig::default(), stats.clone(), faults).unwrap();
        for i in 0..8u8 {
            t.send(0, 1, Bytes::from(vec![i])).unwrap();
        }
        // The sever races frame delivery: the old connection's reader may
        // still be draining kernel-buffered frames while the fresh
        // connection delivers the requeued one, so arrival *order* across
        // the reconnect is not guaranteed — only exactly-once delivery
        // is. Assert the multiset, not the sequence.
        let mut got: Vec<u8> = (0..8u8)
            .map(|_| {
                pop_within(&mut inboxes[1], Duration::from_secs(10)).expect("survives sever")[0]
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<_>>(), "every frame exactly once");
        // The reconnect is counted inside `dial`, before the requeued
        // frame is written, so delivery of all 8 frames implies the
        // counter is already visible — but bound the check by a deadline
        // rather than assuming.
        let deadline = Deadline::after(Duration::from_secs(5));
        while stats.reconnects.load(Ordering::Relaxed) == 0 && !deadline.expired() {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(
            stats.reconnects.load(Ordering::Relaxed) >= 1,
            "sever forced a reconnect"
        );
        // The flight recorder retained the reconnect event (obs builds).
        #[cfg(feature = "obs")]
        assert!(
            s2_obs::recorder::recent()
                .iter()
                .any(|e| s2_obs::trace::name_of(e.name) == "tcp.reconnect"),
            "flight recorder saw the reconnect"
        );
        t.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_send_fails_after() {
        let (t, _inboxes) = mesh(2, TcpConfig::default());
        t.send(0, 1, Bytes::from_static(b"x")).unwrap();
        t.shutdown();
        t.shutdown();
        assert_eq!(
            t.send(0, 1, Bytes::from_static(b"y")),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn envelope_roundtrip_and_oversize_rejection() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, K_DATA, b"payload").unwrap();
        let (kind, payload) = read_envelope(&mut buf.as_slice(), 1024).unwrap();
        assert_eq!((kind, payload.as_slice()), (K_DATA, b"payload".as_slice()));
        // Oversize claim is rejected without allocating.
        let mut huge = vec![K_DATA];
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_envelope(&mut huge.as_slice(), 1024).is_err());
        // Truncation surfaces as an error, not a panic.
        assert!(read_envelope(&mut buf[..3].as_ref(), 1024).is_err());
    }
}
