//! Per-worker memory accounting.
//!
//! Real S2 workers are bounded by a JVM heap (`-Xmx`); our workers share
//! one address space, so per-worker peaks are tracked analytically: the
//! modelled bytes of BGP state (Adj-RIB-Ins + local RIBs) plus the BDD
//! manager's node table and caches. The gauges drive both the reported
//! peak-memory figures and the out-of-memory behaviour of budgeted runs.

pub use s2_bdd::CacheStats;

/// A watermark gauge: tracks a current value and its historical peak.
#[derive(Debug, Clone, Default)]
pub struct MemGauge {
    current: usize,
    peak: usize,
}

impl MemGauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        MemGauge::default()
    }

    /// Replaces the current reading (e.g. after a simulation round).
    pub fn set(&mut self, bytes: usize) {
        self.current = bytes;
        if bytes > self.peak {
            self.peak = bytes;
        }
    }

    /// Current reading in bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Historical peak in bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether the current reading exceeds `budget`.
    pub fn over_budget(&self, budget: Option<usize>) -> bool {
        budget.is_some_and(|b| self.current > b)
    }
}

/// A worker's memory report, collected by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemReport {
    /// Bytes attributed to control-plane route state.
    pub route_bytes: usize,
    /// Bytes attributed to the worker's BDD manager.
    pub bdd_bytes: usize,
    /// Peak of the combined gauge.
    pub peak_bytes: usize,
    /// High-water mark of the BDD manager's node table (0 when the
    /// worker has no manager, i.e. during the control plane).
    pub bdd_peak_nodes: usize,
    /// Unique-table and computed-cache counters of the worker's BDD
    /// manager (zeros when the worker has no manager).
    pub bdd_cache: CacheStats,
}

impl MemReport {
    /// Current total.
    pub fn total(&self) -> usize {
        self.route_bytes + self.bdd_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_monotone() {
        let mut g = MemGauge::new();
        g.set(100);
        g.set(50);
        assert_eq!(g.current(), 50);
        assert_eq!(g.peak(), 100);
        g.set(200);
        assert_eq!(g.peak(), 200);
    }

    #[test]
    fn budget_check() {
        let mut g = MemGauge::new();
        g.set(100);
        assert!(!g.over_budget(None));
        assert!(!g.over_budget(Some(100)));
        assert!(g.over_budget(Some(99)));
    }

    #[test]
    fn report_total() {
        let r = MemReport {
            route_bytes: 10,
            bdd_bytes: 5,
            peak_bytes: 20,
            ..Default::default()
        };
        assert_eq!(r.total(), 15);
    }
}
