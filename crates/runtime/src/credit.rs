//! Pure credit-accounting state machine for the TCP transport's
//! per-link backpressure window.
//!
//! [`CreditLedger`] holds the race-prone part of a link's sending state
//! — the remaining credit window, the connection generation fence, and
//! the frame-in-hand marker — with no I/O, no locking, and no clock, so
//! the exact transition rules the writer / credit-reader / dial threads
//! race over can be model-checked exhaustively. `tcp.rs` embeds one
//! ledger per link under the existing link mutex; the loom test
//! (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`) drives the
//! same type through every interleaving of those three roles and checks
//! the invariants the controller's convergence detection depends on:
//!
//! * `credits` never exceeds `window` (refills are clamped, so a
//!   duplicated or late credit cannot mint send capacity);
//! * a refill or connection-death notice carrying a stale generation is
//!   a no-op (a reader of a dead connection cannot affect a newer one);
//! * `outstanding()` — consumed credits plus the frame in the writer's
//!   hand — never undercounts: a frame accepted from the sender is
//!   visible in `outbox.len() + outstanding()` until the receiver
//!   drains it, which is what keeps "cluster quiescent" honest.

/// Credit window, generation fence, and in-hand marker for one link.
///
/// All methods are total and non-panicking; generation-fenced methods
/// return whether they applied so callers can count stale events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditLedger {
    window: u32,
    /// Remaining send credits; resets to the full window on (re)connect.
    credits: u32,
    /// Bumped per successful dial so a stale credit reader cannot kill
    /// or refill a newer connection.
    conn_gen: u64,
    /// Set by the credit reader when the current connection died.
    conn_dead: bool,
    /// A frame the writer popped but has not yet written or requeued —
    /// without this, a frame parked during a partition (popped with no
    /// credit spent) would vanish from `in_flight` and let the cluster
    /// declare convergence with a message still pending.
    in_hand: bool,
}

impl CreditLedger {
    /// A fresh ledger with a full window and generation 0 (no
    /// connection has been dialed yet).
    pub fn new(window: u32) -> Self {
        CreditLedger {
            window,
            credits: window,
            conn_gen: 0,
            conn_dead: false,
            in_hand: false,
        }
    }

    /// Whether the writer may pop a frame now: always while
    /// disconnected (the dial handshake will spend the credit), only
    /// with credits in hand while connected.
    pub fn can_send(&self, connected: bool) -> bool {
        !connected || self.credits > 0
    }

    /// The writer pops a frame: marks it in hand and, on a live
    /// connection, spends one credit. Returns whether a credit was
    /// spent (the caller threads this through requeue on failure).
    /// Callers must check [`can_send`](Self::can_send) first; a
    /// connected consume with an empty window is saturating, never
    /// underflowing.
    pub fn begin_send(&mut self, connected: bool) -> bool {
        if connected {
            self.credits = self.credits.saturating_sub(1);
        }
        self.in_hand = true;
        connected
    }

    /// The in-hand frame reached the socket; its consumed credit now
    /// accounts for it until the receiver pops it and grants the credit
    /// back.
    pub fn sent(&mut self) {
        self.in_hand = false;
    }

    /// The in-hand frame went back to the outbox (connection loss or
    /// partition); returns its credit if one was spent.
    pub fn requeue(&mut self, credit_spent: bool) {
        self.in_hand = false;
        if credit_spent {
            self.credits = (self.credits + 1).min(self.window);
        }
    }

    /// A successful dial: fences off every older reader by bumping the
    /// generation, clears the death flag, and resets the window.
    /// Returns the new generation for the connection's credit reader.
    pub fn reconnect(&mut self) -> u64 {
        self.conn_gen += 1;
        self.conn_dead = false;
        self.credits = self.window;
        self.conn_gen
    }

    /// Spends the lazily-dialed frame's credit out of the fresh window
    /// (the pop skipped it while disconnected). Deliberately an
    /// assignment, not a decrement: any refill that raced in between
    /// [`reconnect`](Self::reconnect) and this call is forfeited, which
    /// can only overstate `outstanding()` — the conservative direction
    /// for convergence detection.
    pub fn debit_fresh_window(&mut self) {
        self.credits = self.window.saturating_sub(1);
    }

    /// Credit grant from the receiver, clamped to the window. Applied
    /// only if `gen` matches the current connection; returns whether it
    /// applied (a stale reader's grant must not mint capacity on a
    /// newer connection).
    pub fn refill(&mut self, n: u32, gen: u64) -> bool {
        if self.conn_gen != gen {
            return false;
        }
        self.credits = self.credits.saturating_add(n).min(self.window);
        true
    }

    /// Death notice from a credit reader. Applied only if `gen` matches
    /// the current connection; returns whether it applied (a stale
    /// reader must not kill a newer connection).
    pub fn connection_lost(&mut self, gen: u64) -> bool {
        if self.conn_gen != gen {
            return false;
        }
        self.conn_dead = true;
        true
    }

    /// The writer acknowledges a death notice (and will drop its
    /// socket); clears the flag so one loss is observed exactly once.
    pub fn take_conn_dead(&mut self) -> bool {
        std::mem::take(&mut self.conn_dead)
    }

    /// Frames accounted by this ledger: the one in the writer's hand
    /// plus every consumed credit (sent but not yet drained by the
    /// receiver). The link's `in_flight` is `outbox.len() + outstanding()`.
    pub fn outstanding(&self) -> usize {
        self.in_hand as usize + (self.window - self.credits.min(self.window)) as usize
    }

    /// Core safety invariant, asserted by the loom model after every
    /// transition: the clamp discipline keeps the window bounded.
    pub fn invariant_holds(&self) -> bool {
        self.credits <= self.window
    }

    /// Remaining credits (model-check observability).
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Current connection generation (model-check observability).
    pub fn generation(&self) -> u64 {
        self.conn_gen
    }
}

#[cfg(test)]
mod tests {
    use super::CreditLedger;

    #[test]
    fn consume_refill_round_trip() {
        let mut l = CreditLedger::new(4);
        let gen = l.reconnect();
        assert!(l.can_send(true));
        assert!(l.begin_send(true));
        l.sent();
        assert_eq!(l.credits(), 3);
        assert_eq!(l.outstanding(), 1);
        assert!(l.refill(1, gen));
        assert_eq!(l.credits(), 4);
        assert_eq!(l.outstanding(), 0);
        assert!(l.invariant_holds());
    }

    #[test]
    fn refill_clamps_to_window() {
        let mut l = CreditLedger::new(2);
        let gen = l.reconnect();
        assert!(l.refill(100, gen));
        assert_eq!(l.credits(), 2);
        assert!(l.invariant_holds());
    }

    #[test]
    fn stale_generation_is_fenced() {
        let mut l = CreditLedger::new(4);
        let old = l.reconnect();
        assert!(l.begin_send(true));
        l.sent();
        let fresh = l.reconnect();
        assert_ne!(old, fresh);
        assert!(!l.refill(4, old), "stale refill must not apply");
        assert!(!l.connection_lost(old), "stale death must not apply");
        assert!(!l.take_conn_dead());
        assert_eq!(l.credits(), 4, "reconnect reset stands");
    }

    #[test]
    fn exhausted_window_blocks_connected_sends() {
        let mut l = CreditLedger::new(1);
        l.reconnect();
        assert!(l.begin_send(true));
        l.sent();
        assert!(!l.can_send(true), "window exhausted");
        assert!(l.can_send(false), "disconnected pops are always allowed");
    }

    #[test]
    fn requeue_returns_only_spent_credits() {
        let mut l = CreditLedger::new(2);
        l.reconnect();
        let spent = l.begin_send(true);
        l.requeue(spent);
        assert_eq!(l.credits(), 2);
        assert_eq!(l.outstanding(), 0);
        let spent = l.begin_send(false);
        assert!(!spent);
        l.requeue(spent);
        assert_eq!(l.credits(), 2, "no credit minted for an unspent pop");
    }

    #[test]
    fn debit_fresh_window_forfeits_raced_refills() {
        let mut l = CreditLedger::new(4);
        let gen = l.reconnect();
        assert!(l.refill(2, gen), "refill racing the lazy dial");
        l.debit_fresh_window();
        assert_eq!(l.credits(), 3);
        assert!(l.invariant_holds());
    }
}
