//! The controller: spawns the worker fleet and runs the two orchestrators
//! (§3.2) — the control-plane orchestrator (CPO) driving Algorithm 1 round
//! by round and shard by shard, and the data-plane orchestrator (DPO)
//! driving distributed symbolic forwarding to quiescence.

use crate::memstats::MemReport;
use crate::sidecar::{Sidecar, SidecarNet};
use crate::worker::{Command, Reply, Worker};
use crossbeam::channel::{unbounded, Receiver, Sender};
use s2_bdd::serialize as bdd_io;
use s2_dataplane::{FinalKind, PacketSpace};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_routing::{NetworkModel, RibSnapshot, RibStore};
use s2_shard::ShardPlan;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failures of a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The fix point was not reached within the round budget.
    NotConverged {
        /// Protocol that failed to converge.
        protocol: &'static str,
        /// Exhausted round budget.
        rounds: usize,
    },
    /// A worker exceeded its memory budget.
    OutOfMemory {
        /// The worker that overflowed.
        worker: u32,
        /// Its budget in bytes.
        budget: usize,
        /// Observed usage in bytes.
        observed: usize,
    },
    /// A worker thread died or disconnected.
    WorkerLost,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NotConverged { protocol, rounds } => {
                write!(f, "{protocol} did not converge within {rounds} rounds")
            }
            RuntimeError::OutOfMemory {
                worker,
                budget,
                observed,
            } => write!(
                f,
                "worker {worker} out of memory ({observed} bytes used, budget {budget})"
            ),
            RuntimeError::WorkerLost => write!(f, "a worker thread terminated unexpectedly"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Cluster-wide run options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Fix-point round budget per protocol per shard.
    pub max_rounds: usize,
    /// TTL for symbolic forwarding.
    pub max_hops: u16,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            max_rounds: s2_routing::DEFAULT_MAX_ROUNDS,
            max_hops: 0, // engine default
        }
    }
}

/// Control-plane statistics of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct CpRunStats {
    /// OSPF rounds.
    pub ospf_rounds: usize,
    /// Total BGP rounds across shards.
    pub bgp_rounds: usize,
    /// Shards executed.
    pub shards: usize,
    /// Per-worker peak memory (bytes, modelled).
    pub per_worker_peak: Vec<usize>,
    /// Cross-worker messages sent so far (cumulative for the cluster).
    pub messages: u64,
    /// Cross-worker bytes sent so far.
    pub bytes: u64,
    /// Wall-clock time of the control-plane phase.
    pub elapsed: Duration,
}

impl CpRunStats {
    /// The maximum per-worker peak — the paper's "per-worker peak memory
    /// usage" metric.
    pub fn max_worker_peak(&self) -> usize {
        self.per_worker_peak.iter().copied().max().unwrap_or(0)
    }
}

/// Data-plane statistics and property outcomes of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct DpvRunStats {
    /// `(src, dst)` pairs whose expected prefixes fully arrived.
    pub reachable_pairs: usize,
    /// Pairs with missing reachability.
    pub unreachable_pairs: Vec<(NodeId, NodeId)>,
    /// `(src, dst, transit)` waypoint violations.
    pub waypoint_violations: Vec<(NodeId, NodeId, NodeId)>,
    /// Loop finals observed.
    pub loops: usize,
    /// Blackhole finals observed.
    pub blackholes: usize,
    /// Sources with multipath-consistency violations.
    pub multipath_violations: Vec<NodeId>,
    /// Barrier rounds until quiescence.
    pub forward_rounds: usize,
    /// Packets processed across all workers.
    pub packets_processed: usize,
    /// Packets serialized across workers.
    pub remote_packets: usize,
    /// Per-worker peak memory after DPV.
    pub per_worker_peak: Vec<usize>,
    /// Time compiling predicates.
    pub pred_time: Duration,
    /// Time forwarding.
    pub fwd_time: Duration,
}

struct WorkerHandle {
    cmd: Sender<Command>,
    reply: Receiver<Reply>,
}

/// A running worker fleet plus the controller-side orchestration.
pub struct Cluster {
    model: Arc<NetworkModel>,
    net: SidecarNet,
    handles: Vec<WorkerHandle>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Cluster {
    /// Spawns `num_workers` workers hosting the nodes given by
    /// `node_owner` (node index → worker), each with an optional memory
    /// budget.
    pub fn new(
        model: Arc<NetworkModel>,
        node_owner: Vec<u32>,
        num_workers: u32,
        memory_budget: Option<usize>,
    ) -> Cluster {
        assert_eq!(node_owner.len(), model.topology.node_count());
        let (net, inboxes) = SidecarNet::build(node_owner.clone(), num_workers);
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for (w, inbox) in inboxes.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let (reply_tx, reply_rx) = unbounded();
            let local_nodes: Vec<NodeId> = node_owner
                .iter()
                .enumerate()
                .filter(|(_, &o)| o == w as u32)
                .map(|(i, _)| NodeId(i as u32))
                .collect();
            let sidecar = Sidecar::new(w as u32, net.clone(), inbox);
            let model = model.clone();
            let thread = std::thread::Builder::new()
                .name(format!("s2-worker-{w}"))
                .spawn(move || {
                    Worker::new(sidecar, model, local_nodes, memory_budget).run(cmd_rx, reply_tx);
                })
                .expect("spawn worker thread");
            handles.push(WorkerHandle {
                cmd: cmd_tx,
                reply: reply_rx,
            });
            threads.push(thread);
        }
        Cluster {
            model,
            net,
            handles,
            threads,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// Cross-worker traffic so far: `(messages, bytes)`.
    pub fn traffic(&self) -> (u64, u64) {
        self.net.stats().snapshot()
    }

    /// Broadcasts a command and gathers one reply per worker (a barrier).
    fn barrier(&self, make: impl Fn() -> Command) -> Result<Vec<Reply>, RuntimeError> {
        for h in &self.handles {
            h.cmd.send(make()).map_err(|_| RuntimeError::WorkerLost)?;
        }
        let mut replies = Vec::with_capacity(self.handles.len());
        for (w, h) in self.handles.iter().enumerate() {
            match h.reply.recv().map_err(|_| RuntimeError::WorkerLost)? {
                Reply::OutOfMemory { budget, observed } => {
                    // Drain the remaining replies so the fleet stays usable.
                    for other in self.handles.iter().skip(w + 1) {
                        let _ = other.reply.recv();
                    }
                    return Err(RuntimeError::OutOfMemory {
                        worker: w as u32,
                        budget,
                        observed,
                    });
                }
                r => replies.push(r),
            }
        }
        Ok(replies)
    }

    fn all_unchanged(replies: &[Reply]) -> bool {
        replies.iter().all(|r| matches!(r, Reply::Changed(false)))
    }

    /// Collects per-worker memory reports.
    pub fn mem_reports(&self) -> Result<Vec<MemReport>, RuntimeError> {
        let replies = self.barrier(|| Command::MemReport)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Mem(m) => m,
                other => unreachable!("expected Mem, got {other:?}"),
            })
            .collect())
    }

    /// Runs the IGP phase to convergence, returning the round count.
    pub fn run_ospf(&self, opts: &ClusterOptions) -> Result<usize, RuntimeError> {
        for round in 0..opts.max_rounds {
            self.barrier(|| Command::OspfExport)?;
            let replies = self.barrier(|| Command::OspfApply)?;
            if Self::all_unchanged(&replies) {
                return Ok(round + 1);
            }
        }
        Err(RuntimeError::NotConverged {
            protocol: "ospf",
            rounds: opts.max_rounds,
        })
    }

    /// Gathers every originated prefix (and the aggregate subset) from the
    /// workers — the §4.5 prefix-collection step, run after OSPF so
    /// redistribution targets are included.
    #[allow(clippy::type_complexity)]
    pub fn collect_prefixes(
        &self,
    ) -> Result<
        (
            std::collections::BTreeSet<Prefix>,
            std::collections::BTreeSet<Prefix>,
            Vec<(Prefix, Prefix)>,
        ),
        RuntimeError,
    > {
        let mut all = std::collections::BTreeSet::new();
        let mut aggregates = std::collections::BTreeSet::new();
        let mut deps = Vec::new();
        for reply in self.barrier(|| Command::CollectPrefixes)? {
            match reply {
                Reply::Prefixes {
                    all: a,
                    aggregates: g,
                    deps: d,
                } => {
                    all.extend(a);
                    aggregates.extend(g);
                    deps.extend(d);
                }
                other => unreachable!("expected Prefixes, got {other:?}"),
            }
        }
        deps.sort_unstable();
        deps.dedup();
        Ok((all, aggregates, deps))
    }

    /// Gathers the prefix dependencies every worker observed during route
    /// computation (the §7 soundness input).
    pub fn collect_observed_deps(&self) -> Result<Vec<(Prefix, Prefix)>, RuntimeError> {
        let mut deps = Vec::new();
        for reply in self.barrier(|| Command::CollectObservedDeps)? {
            match reply {
                Reply::Deps(d) => deps.extend(d),
                other => unreachable!("expected Deps, got {other:?}"),
            }
        }
        deps.sort_unstable();
        deps.dedup();
        Ok(deps)
    }

    /// Plans prefix shards from the workers' originated prefixes: builds
    /// the DPDG (coverage edges from aggregates, explicit edges from
    /// conditional advertisements), takes weakly connected components, and
    /// bins them.
    pub fn plan_shards(&self, num_shards: usize, seed: u64) -> Result<ShardPlan, RuntimeError> {
        let (all, aggregates, deps) = self.collect_prefixes()?;
        if num_shards <= 1 {
            return Ok(ShardPlan::single(all));
        }
        let graph = s2_shard::dpdg::Dpdg::build_with_deps(&all, &aggregates, &deps);
        Ok(s2_shard::assign::greedy_assign(
            graph.weakly_connected_components(),
            num_shards,
            seed,
        ))
    }

    /// The §7 extension: runs the control plane under `plan`, collects the
    /// dependencies observed during computation, and — if any crosses a
    /// shard boundary (an *unforeseen* dependency) — merges the affected
    /// shards and recomputes, until the plan is sound. Returns the final
    /// RIBs, stats of the last (sound) run, and the refined plan.
    pub fn run_control_plane_refined(
        &self,
        mut plan: ShardPlan,
        opts: &ClusterOptions,
    ) -> Result<(RibSnapshot, CpRunStats, ShardPlan), RuntimeError> {
        loop {
            let (rib, stats) = self.run_control_plane(&plan, opts)?;
            let observed = self.collect_observed_deps()?;
            let violations = plan.cross_shard_violations(&observed);
            if violations.is_empty() {
                return Ok((rib, stats, plan));
            }
            plan = plan.merged_for(&violations);
        }
    }

    /// Runs the full distributed control-plane simulation: OSPF to
    /// convergence, then one BGP fix point per shard, gathering the final
    /// RIBs (the CPO role).
    pub fn run_control_plane(
        &self,
        plan: &ShardPlan,
        opts: &ClusterOptions,
    ) -> Result<(RibSnapshot, CpRunStats), RuntimeError> {
        let start = Instant::now();
        let mut stats = CpRunStats::default();

        // IGP before EGP (§4.2).
        stats.ospf_rounds = self.run_ospf(opts)?;

        let mut store = RibStore::new(self.model.topology.node_count());
        for reply in self.barrier(|| Command::CollectBaseRib)? {
            match reply {
                Reply::Rib(entries) => {
                    for (node, routes) in entries {
                        store.insert_all(node, routes);
                    }
                }
                other => unreachable!("expected Rib, got {other:?}"),
            }
        }

        stats.shards = plan.shards.len();
        for shard in &plan.shards {
            let shard = Arc::new(shard.clone());
            self.barrier(|| Command::BgpBegin {
                shard: Some(shard.clone()),
            })?;
            let mut converged = false;
            for round in 0..opts.max_rounds {
                self.barrier(|| Command::BgpExport)?;
                let replies = self.barrier(|| Command::BgpApply)?;
                stats.bgp_rounds += 1;
                let _ = round;
                if Self::all_unchanged(&replies) {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(RuntimeError::NotConverged {
                    protocol: "bgp",
                    rounds: opts.max_rounds,
                });
            }
            // Flush the shard to the controller's persistent store.
            for reply in self.barrier(|| Command::CollectBgpRib)? {
                match reply {
                    Reply::Rib(entries) => {
                        for (node, routes) in entries {
                            store.insert_all(node, routes);
                        }
                    }
                    other => unreachable!("expected Rib, got {other:?}"),
                }
            }
        }

        stats.per_worker_peak = self.mem_reports()?.iter().map(|m| m.peak_bytes).collect();
        let (messages, bytes) = self.traffic();
        stats.messages = messages;
        stats.bytes = bytes;
        stats.elapsed = start.elapsed();
        Ok((store.snapshot(), stats))
    }

    /// Runs distributed data-plane verification (the DPO role): per-worker
    /// predicate compilation, distributed symbolic forwarding to
    /// quiescence, then property evaluation.
    ///
    /// `expected` lists, per destination node, the prefixes that must
    /// arrive from every source; `waypoints` maps transit nodes to
    /// metadata bits (callers allocate bits 0..n).
    #[allow(clippy::too_many_arguments)]
    pub fn run_dpv(
        &self,
        rib: Arc<RibSnapshot>,
        sources: Vec<NodeId>,
        expected: Vec<(NodeId, Vec<Prefix>)>,
        dst_space: Prefix,
        waypoints: BTreeMap<NodeId, u16>,
        opts: &ClusterOptions,
    ) -> Result<DpvRunStats, RuntimeError> {
        let mut stats = DpvRunStats::default();
        let meta_bits = waypoints.len() as u16;

        let t0 = Instant::now();
        let waypoints_arc = Arc::new(waypoints.clone());
        self.barrier(|| Command::DpSetup {
            rib: rib.clone(),
            meta_bits,
            waypoints: waypoints_arc.clone(),
            max_hops: opts.max_hops,
        })?;
        stats.pred_time = t0.elapsed();

        let t1 = Instant::now();
        let injections = Arc::new(
            sources
                .iter()
                .map(|&s| (s, dst_space))
                .collect::<Vec<_>>(),
        );
        self.barrier(|| Command::Inject {
            injections: injections.clone(),
        })?;
        loop {
            let replies = self.barrier(|| Command::ForwardRound)?;
            stats.forward_rounds += 1;
            let mut quiet = true;
            for r in replies {
                match r {
                    Reply::Forwarded {
                        processed,
                        sent_remote,
                    } => {
                        stats.packets_processed += processed;
                        stats.remote_packets += sent_remote;
                        if processed > 0 || sent_remote > 0 {
                            quiet = false;
                        }
                    }
                    other => unreachable!("expected Forwarded, got {other:?}"),
                }
            }
            if quiet {
                break;
            }
        }
        stats.fwd_time = t1.elapsed();

        // Property evaluation.
        let sources_arc = Arc::new(sources);
        let expected_arc = Arc::new(expected);
        let transits: Arc<Vec<(NodeId, u16)>> =
            Arc::new(waypoints.iter().map(|(&n, &b)| (n, b)).collect());
        for reply in self.barrier(|| Command::CheckArrivals {
            sources: sources_arc.clone(),
            expected: expected_arc.clone(),
            transits: transits.clone(),
        })? {
            match reply {
                Reply::Arrivals {
                    reachable,
                    unreachable,
                    waypoint_violations,
                } => {
                    stats.reachable_pairs += reachable.len();
                    stats.unreachable_pairs.extend(unreachable);
                    stats.waypoint_violations.extend(waypoint_violations);
                }
                other => unreachable!("expected Arrivals, got {other:?}"),
            }
        }

        // Multipath consistency: merge per-(src, kind) header sets in a
        // controller-side manager (sets arrive serialized, exactly like any
        // other cross-worker BDD).
        let space = PacketSpace::new(meta_bits);
        let mut manager = space.manager();
        let mut by_src: BTreeMap<NodeId, BTreeMap<FinalKind, s2_bdd::Bdd>> = BTreeMap::new();
        for reply in self.barrier(|| Command::CollectFinals)? {
            match reply {
                Reply::Finals {
                    loops,
                    blackholes,
                    sets,
                } => {
                    stats.loops += loops;
                    stats.blackholes += blackholes;
                    for (src, kind, bytes) in sets {
                        let set = bdd_io::from_bytes(&mut manager, &bytes)
                            .expect("workers produce valid BDD payloads");
                        let entry = by_src
                            .entry(src)
                            .or_default()
                            .entry(kind)
                            .or_insert(s2_bdd::Bdd::FALSE);
                        *entry = manager.or(*entry, set);
                    }
                }
                other => unreachable!("expected Finals, got {other:?}"),
            }
        }
        for (src, kinds) in by_src {
            let kinds: Vec<_> = kinds.into_iter().collect();
            let mut violated = false;
            for i in 0..kinds.len() {
                for j in (i + 1)..kinds.len() {
                    if manager.intersects(kinds[i].1, kinds[j].1) {
                        violated = true;
                    }
                }
            }
            if violated {
                stats.multipath_violations.push(src);
            }
        }

        stats.per_worker_peak = self.mem_reports()?.iter().map(|m| m.peak_bytes).collect();
        stats.unreachable_pairs.sort();
        stats.waypoint_violations.sort();
        Ok(stats)
    }

    /// Stops every worker and joins the threads.
    pub fn shutdown(self) {
        for h in &self.handles {
            let _ = h.cmd.send(Command::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;

    /// The 4-node line t0—m1—m2—t3 from the fixpoint tests: t0 announces
    /// two prefixes; everyone should learn them.
    fn line_model() -> NetworkModel {
        let mut topo = Topology::new();
        let names = ["t0", "m1", "m2", "t3"];
        let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
        topo.connect(ids[0], ids[1]);
        topo.connect(ids[1], ids[2]);
        topo.connect(ids[2], ids[3]);

        let mut cfgs: Vec<DeviceConfig> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut c = DeviceConfig::new(*n, Vendor::A);
                c.bgp = Some(BgpProcess::new(
                    65000 + i as u32,
                    Ipv4Addr::new(1, 1, 1, i as u8 + 1),
                ));
                c
            })
            .collect();
        let subnets = [
            (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
            (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
            (Ipv4Addr::new(172, 16, 0, 4), Ipv4Addr::new(172, 16, 0, 5)),
        ];
        for (li, (i, j)) in [(0usize, 1usize), (1, 2), (2, 3)].iter().copied().enumerate() {
            let (ai, aj) = subnets[li];
            cfgs[i].interfaces.push(InterfaceConfig::new(format!("e{li}a"), ai, 31));
            cfgs[j].interfaces.push(InterfaceConfig::new(format!("e{li}b"), aj, 31));
            let asn_i = 65000 + i as u32;
            let asn_j = 65000 + j as u32;
            cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: aj,
                remote_as: asn_j,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
            cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: ai,
                remote_as: asn_i,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
        }
        for p in ["10.0.0.0/24", "10.0.1.0/24"] {
            cfgs[0].bgp.as_mut().unwrap().networks.push(Network {
                prefix: p.parse().unwrap(),
            });
        }
        NetworkModel::build(topo, cfgs).unwrap()
    }

    fn run_cp(model: &Arc<NetworkModel>, owners: Vec<u32>, workers: u32) -> (RibSnapshot, CpRunStats) {
        let cluster = Cluster::new(model.clone(), owners, workers, None);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let out = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        out
    }

    #[test]
    fn distributed_equals_monolithic_ribs() {
        let model = Arc::new(line_model());
        // Monolithic reference.
        let mut switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        s2_routing::converge_ospf(&model, &mut switches, 64).unwrap();
        s2_routing::converge_bgp(&model, &mut switches, None, 64).unwrap();
        let mut ref_store = RibStore::new(4);
        for n in model.topology.nodes() {
            ref_store.insert_all(n, switches[n.index()].base_rib_routes());
            ref_store.insert_all(n, switches[n.index()].bgp_rib_routes());
        }
        let reference = ref_store.snapshot();

        for owners in [vec![0, 0, 0, 0], vec![0, 0, 1, 1], vec![0, 1, 2, 3], vec![1, 0, 1, 0]] {
            let workers = owners.iter().max().unwrap() + 1;
            let (rib, stats) = run_cp(&model, owners.clone(), workers);
            assert_eq!(rib, reference, "owners {owners:?}");
            assert!(stats.bgp_rounds >= 4);
            if workers > 1 {
                assert!(stats.messages > 0, "cross-worker traffic expected");
            }
        }
    }

    #[test]
    fn distributed_dpv_checks_reachability() {
        let model = Arc::new(line_model());
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, None);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let (rib, _) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();

        let sources = vec![NodeId(0), NodeId(3)];
        let expected = vec![(NodeId(0), vec!["10.0.0.0/24".parse().unwrap()])];
        let stats = cluster
            .run_dpv(
                Arc::new(rib),
                sources,
                expected,
                "10.0.0.0/8".parse().unwrap(),
                BTreeMap::new(),
                &ClusterOptions::default(),
            )
            .unwrap();
        cluster.shutdown();
        // t3 reaches t0's prefix.
        assert_eq!(stats.reachable_pairs, 1, "{:?}", stats.unreachable_pairs);
        assert!(stats.unreachable_pairs.is_empty());
        assert_eq!(stats.loops, 0);
        // Packets crossed the worker boundary.
        assert!(stats.remote_packets > 0);
        assert!(stats.forward_rounds >= 2);
    }

    #[test]
    fn per_worker_memory_is_reported() {
        let model = Arc::new(line_model());
        let (_, stats) = run_cp(&model, vec![0, 0, 1, 1], 2);
        assert_eq!(stats.per_worker_peak.len(), 2);
        assert!(stats.max_worker_peak() > 0);
    }

    #[test]
    fn memory_budget_aborts_with_oom() {
        let model = Arc::new(line_model());
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, Some(8));
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let err = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap_err();
        cluster.shutdown();
        assert!(matches!(err, RuntimeError::OutOfMemory { .. }));
    }

    #[test]
    fn sharded_distributed_run_matches_unsharded() {
        let model = Arc::new(line_model());
        let (reference, _) = run_cp(&model, vec![0, 1, 0, 1], 2);

        let cluster = Cluster::new(model.clone(), vec![0, 1, 0, 1], 2, None);
        let plan = ShardPlan {
            shards: vec![
                ["10.0.0.0/24".parse().unwrap()].into_iter().collect(),
                ["10.0.1.0/24".parse().unwrap()].into_iter().collect(),
            ],
        };
        let (rib, stats) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        assert_eq!(rib, reference);
        assert_eq!(stats.shards, 2);
    }
}
