//! The controller: spawns the worker fleet and runs the two orchestrators
//! (§3.2) — the control-plane orchestrator (CPO) driving Algorithm 1 round
//! by round and shard by shard, and the data-plane orchestrator (DPO)
//! driving distributed symbolic forwarding to quiescence.
//!
//! The controller is also the fault-tolerance authority. Its `RibStore`
//! doubles as a shard-granular checkpoint: OSPF results, the base RIB, and
//! every *completed* shard's BGP RIB (plus its observed dependencies) are
//! flushed to the controller, so losing a worker costs at most an OSPF
//! replay plus the one in-flight shard. Worker loss is detected two ways —
//! a disconnected channel (crash) or a barrier deadline (hang) — and
//! healed by [`Cluster::recover`]: quiesce the fleet with a nonce ping,
//! bump the fabric epoch so zombie frames are discarded, respawn the dead
//! workers on fresh inboxes, and flush everyone into the new epoch.
//! Workers that exceed their memory budget trigger adaptive degradation:
//! the offending shard is bisected along dependency-component boundaries
//! and retried, so the run completes (more slowly) instead of aborting.

use crate::faults::{FaultPlan, FaultState};
use crate::memstats::{CacheStats, MemReport};
use crate::metrics::{self, RunMetrics};
use crate::remote;
use crate::sidecar::{Sidecar, SidecarNet, TrafficSnapshot};
use crate::transport::{Inbox, TransportKind};
use crate::worker::{Command, Reply, Worker};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use s2_bdd::serialize as bdd_io;
use s2_dataplane::{FinalKind, PacketSpace};
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::Prefix;
use s2_routing::{NetworkModel, RibSnapshot, RibStore};
use s2_shard::ShardPlan;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use s2_obs::{Deadline, MetricsSnapshot, Stopwatch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Failures of a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The fix point was not reached within the round budget.
    NotConverged {
        /// Protocol that failed to converge.
        protocol: &'static str,
        /// Exhausted round budget.
        rounds: usize,
    },
    /// A worker exceeded its memory budget on a shard that adaptive
    /// degradation could not (or was not allowed to) split further.
    OutOfMemory {
        /// The worker that overflowed.
        worker: u32,
        /// Its budget in bytes.
        budget: usize,
        /// Observed usage in bytes.
        observed: usize,
    },
    /// A worker crashed (channel disconnect) or hung (barrier deadline)
    /// and the recovery budget was exhausted.
    WorkerLost {
        /// The worker that was lost.
        worker: u32,
        /// The barrier phase during which the loss was detected.
        during: &'static str,
    },
    /// A worker answered a barrier with the wrong reply variant — a
    /// controller/worker protocol bug, surfaced instead of panicking.
    ProtocolViolation {
        /// The reply the barrier expected.
        expected: &'static str,
        /// The reply (or payload state) actually received.
        got: String,
    },
    /// Cross-worker frames were rejected (checksum / length / decode) and
    /// the configuration demands that be fatal, or replays could not
    /// compensate for the losses.
    Wire {
        /// Rejected or lost frame count.
        errors: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NotConverged { protocol, rounds } => {
                write!(f, "{protocol} did not converge within {rounds} rounds")
            }
            RuntimeError::OutOfMemory {
                worker,
                budget,
                observed,
            } => write!(
                f,
                "worker {worker} out of memory ({observed} bytes used, budget {budget})"
            ),
            RuntimeError::WorkerLost { worker, during } => {
                write!(f, "worker {worker} lost during {during}")
            }
            RuntimeError::ProtocolViolation { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            RuntimeError::Wire { errors } => {
                write!(f, "{errors} cross-worker frames rejected or lost")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Fault-tolerance and transport configuration of a cluster.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Per-worker memory budget in bytes (`None` = unbounded).
    pub memory_budget: Option<usize>,
    /// How long a barrier waits for each worker before declaring it hung.
    pub barrier_timeout: Duration,
    /// How many worker-loss recoveries a single run may consume.
    pub max_recoveries: usize,
    /// How many OOM-triggered shard bisections a run may consume.
    pub max_oom_splits: usize,
    /// Whether any rejected cross-worker frame aborts the run with
    /// [`RuntimeError::Wire`] instead of being healed by resync/replay.
    pub fatal_wire_errors: bool,
    /// Deterministic fault-injection schedule (chaos testing).
    pub faults: FaultPlan,
    /// Data-fabric backend (in-process channels by default).
    pub transport: TransportKind,
    /// Threads each worker uses to evaluate independent switches within
    /// a round (1 = sequential; results are identical at any width).
    pub intra_worker_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            memory_budget: None,
            barrier_timeout: Duration::from_secs(60),
            max_recoveries: 8,
            max_oom_splits: 64,
            fatal_wire_errors: false,
            faults: FaultPlan::default(),
            transport: TransportKind::default(),
            intra_worker_threads: 1,
        }
    }
}

/// Cluster-wide run options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Fix-point round budget per protocol per shard.
    pub max_rounds: usize,
    /// TTL for symbolic forwarding.
    pub max_hops: u16,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            max_rounds: s2_routing::DEFAULT_MAX_ROUNDS,
            max_hops: 0, // engine default
        }
    }
}

/// Control-plane statistics of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct CpRunStats {
    /// OSPF rounds (of the last, successful attempt).
    pub ospf_rounds: usize,
    /// Total BGP rounds across shards, attempts included.
    pub bgp_rounds: usize,
    /// Shards executed (after any OOM bisection).
    pub shards: usize,
    /// Per-worker peak memory (bytes, modelled).
    pub per_worker_peak: Vec<usize>,
    /// Cross-worker messages sent so far (cumulative for the cluster).
    pub messages: u64,
    /// Cross-worker bytes sent so far.
    pub bytes: u64,
    /// Wall-clock time of the control-plane phase.
    pub elapsed: Duration,
    /// Worker-loss recoveries performed during the run.
    pub recoveries: usize,
    /// OOM-triggered shard bisections performed.
    pub oom_splits: usize,
    /// Shards that had to be re-run (after a recovery or a split).
    pub shard_retries: usize,
    /// BGP adj-out resyncs forced by lost or delayed frames.
    pub resyncs: usize,
    /// Cross-worker frames rejected at the receiver.
    pub wire_errors: u64,
    /// Full transport counters (reconnects, backpressure stalls, …),
    /// aggregated across processes in multi-process mode.
    pub traffic: TrafficSnapshot,
    /// Largest BDD node-table high-water mark across workers (zero
    /// during the control plane, which runs without a manager).
    pub bdd_peak_nodes: usize,
    /// BDD unique-table and computed-cache counters, merged across
    /// workers.
    pub bdd_cache: CacheStats,
}

impl CpRunStats {
    /// The maximum per-worker peak — the paper's "per-worker peak memory
    /// usage" metric.
    pub fn max_worker_peak(&self) -> usize {
        self.per_worker_peak.iter().copied().max().unwrap_or(0)
    }
}

/// Data-plane statistics and property outcomes of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct DpvRunStats {
    /// `(src, dst)` pairs whose expected prefixes fully arrived.
    pub reachable_pairs: usize,
    /// Pairs with missing reachability.
    pub unreachable_pairs: Vec<(NodeId, NodeId)>,
    /// `(src, dst, transit)` waypoint violations.
    pub waypoint_violations: Vec<(NodeId, NodeId, NodeId)>,
    /// Loop finals observed.
    pub loops: usize,
    /// Blackhole finals observed.
    pub blackholes: usize,
    /// Sources with multipath-consistency violations.
    pub multipath_violations: Vec<NodeId>,
    /// Barrier rounds until quiescence.
    pub forward_rounds: usize,
    /// Packets processed across all workers.
    pub packets_processed: usize,
    /// Packets serialized across workers.
    pub remote_packets: usize,
    /// Per-worker peak memory after DPV.
    pub per_worker_peak: Vec<usize>,
    /// Time compiling predicates.
    pub pred_time: Duration,
    /// Time forwarding.
    pub fwd_time: Duration,
    /// Worker-loss recoveries performed during DPV.
    pub recoveries: usize,
    /// Whole-phase replays (after a recovery or lost frames).
    pub replays: usize,
    /// Cross-worker frames rejected at the receiver.
    pub wire_errors: u64,
    /// Full transport counters (reconnects, backpressure stalls, …),
    /// aggregated across processes in multi-process mode.
    pub traffic: TrafficSnapshot,
    /// Largest BDD node-table high-water mark across workers.
    pub bdd_peak_nodes: usize,
    /// BDD unique-table and computed-cache counters, merged across
    /// workers.
    pub bdd_cache: CacheStats,
    /// Serialized per-(source, kind) final BDD sets exactly as they
    /// crossed the wire, sorted — the raw verdict material, kept so
    /// determinism tests can assert byte-identity across intra-worker
    /// thread widths.
    pub verdict_sets: Vec<(NodeId, FinalKind, Vec<u8>)>,
    /// Destination-scoping accounting of a scenario pass (`None` on
    /// full-space passes and on scenario passes run before a
    /// [`Cluster::scenario_checkpoint`] stored a baseline to scope
    /// against).
    pub scoped: Option<DpvScopedStats>,
}

/// How much packet space a destination-scoped scenario pass actually
/// re-verified, and how the full-space verdicts were reassembled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpvScopedStats {
    /// Distinct changed destination prefixes (after DPDG closure).
    pub changed_prefixes: usize,
    /// Fraction of `dst_space` addresses covered by the changed
    /// prefixes (interval-merged, so overlaps count once).
    pub changed_dst_fraction: f64,
    /// Sources whose scope is empty — provably unperturbed, skipped
    /// entirely (their baseline verdicts pass through the splice).
    pub skipped_sources: usize,
    /// Sources actually injected (over their scoped space only).
    pub injected_sources: usize,
    /// Worker-side `(old ∧ ¬changed) ∨ recomputed` splice operations.
    pub splice_ops: u64,
    /// The changed space covered (essentially) all of `dst_space`, so
    /// the pass fell back to a full-space drive with no splicing.
    pub fallback_full: bool,
}

/// A lenient fleet metrics collection (see [`Cluster::scrape_metrics`]):
/// what the telemetry plane's scrape endpoint serves from.
#[derive(Debug, Default)]
pub struct FleetScrape {
    /// The answered worker snapshots merged with the cluster traffic
    /// counters and the process-global registry (folded exactly once).
    pub aggregate: MetricsSnapshot,
    /// Per-worker snapshots, indexed by worker id; `None` when the
    /// worker did not answer (dead, hung, or past the scrape deadline).
    pub workers: Vec<(u32, Option<MetricsSnapshot>)>,
}

struct WorkerHandle {
    cmd: Sender<Command>,
    reply: Receiver<Reply>,
}

/// One sample of the transport state feeding a convergence decision.
#[derive(Debug, Clone, Copy, Default)]
struct NetProbe {
    in_flight: u64,
    disturbances: u64,
    losses: u64,
}

/// Mutable fleet state: live handles plus every thread ever spawned
/// (replaced workers move to `detached` and are joined at shutdown).
struct ClusterState {
    handles: Vec<WorkerHandle>,
    threads: Vec<Option<std::thread::JoinHandle<()>>>,
    detached: Vec<std::thread::JoinHandle<()>>,
}

/// Controller-side checkpoint of an in-progress control-plane run.
///
/// Everything needed to resume after a worker loss without recomputing
/// completed work: the persistent RIB store, which shards already ran
/// (and their observed dependencies), and which are still queued.
struct Checkpoint {
    store: RibStore,
    base_done: bool,
    queue: VecDeque<BTreeSet<Prefix>>,
    executed: Vec<BTreeSet<Prefix>>,
    observed_deps: Vec<(Prefix, Prefix)>,
    ospf_rounds: usize,
    bgp_rounds: usize,
    resyncs: usize,
    oom_splits: usize,
    shard_retries: usize,
    recoveries: usize,
}

impl Checkpoint {
    fn new(nodes: usize, plan: &ShardPlan, seed_deps: &[(Prefix, Prefix)]) -> Checkpoint {
        Checkpoint {
            store: RibStore::new(nodes),
            base_done: false,
            queue: plan.shards.iter().cloned().collect(),
            executed: Vec::new(),
            observed_deps: seed_deps.to_vec(),
            ospf_rounds: 0,
            bgp_rounds: 0,
            resyncs: 0,
            oom_splits: 0,
            shard_retries: 0,
            recoveries: 0,
        }
    }
}

/// A running worker fleet plus the controller-side orchestration.
pub struct Cluster {
    model: Arc<NetworkModel>,
    net: SidecarNet,
    node_owner: Vec<u32>,
    num_workers: u32,
    config: RuntimeConfig,
    faults: Arc<FaultState>,
    state: Mutex<ClusterState>,
    nonce: AtomicU64,
    /// Whether workers live in other processes (commands travel over the
    /// control sockets through per-worker proxy threads). Remote workers
    /// cannot be respawned, so recovery is unsupported.
    remote: bool,
    /// The warm baseline scenario passes scope against: the checkpointed
    /// RIB (the reverse-reachability forwarding graph) and the prefix
    /// dependency graph (changed-set closure). `None` until
    /// [`Cluster::scenario_checkpoint`] stores one; scenario passes then
    /// run full-space, unscoped.
    scenario_base: Mutex<Option<ScenarioBase>>,
    /// Whether every worker's live control-plane state is known to equal
    /// its scenario checkpoint: true right after `scenario_checkpoint`
    /// or a successful `scenario_rollback`, false as soon as anything
    /// mutates switch state (a scenario begin, a fix point, a recovery).
    /// When true, the next [`Cluster::scenario_begin`] skips the
    /// per-switch checkpoint restore — the dominant fixed cost of a
    /// warm delta on large fabrics.
    fleet_at_checkpoint: AtomicBool,
}

/// See [`Cluster::scenario_base`].
struct ScenarioBase {
    rib: Arc<RibSnapshot>,
    dpdg: s2_shard::dpdg::Dpdg,
}

impl Cluster {
    /// Spawns `num_workers` workers hosting the nodes given by
    /// `node_owner` (node index → worker), each with an optional memory
    /// budget. Uses the default [`RuntimeConfig`] otherwise.
    pub fn new(
        model: Arc<NetworkModel>,
        node_owner: Vec<u32>,
        num_workers: u32,
        memory_budget: Option<usize>,
    ) -> Cluster {
        Cluster::with_config(
            model,
            node_owner,
            num_workers,
            RuntimeConfig {
                memory_budget,
                ..RuntimeConfig::default()
            },
        )
    }

    /// [`Cluster::new`] with full fault-tolerance configuration.
    pub fn with_config(
        model: Arc<NetworkModel>,
        node_owner: Vec<u32>,
        num_workers: u32,
        config: RuntimeConfig,
    ) -> Cluster {
        assert_eq!(node_owner.len(), model.topology.node_count());
        let faults = Arc::new(FaultState::new(config.faults.clone()));
        let (net, inboxes) = SidecarNet::build_with_transport(
            node_owner.clone(),
            num_workers,
            faults.clone(),
            config.transport.clone(),
        )
        .expect("cluster transport failed to bind (loopback listeners)");
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for (w, inbox) in inboxes.into_iter().enumerate() {
            let (handle, thread) = Self::spawn_worker(
                &model,
                &node_owner,
                &net,
                &faults,
                config.memory_budget,
                config.intra_worker_threads,
                w as u32,
                inbox,
            );
            handles.push(handle);
            threads.push(Some(thread));
        }
        Cluster {
            model,
            net,
            node_owner,
            num_workers,
            config,
            faults,
            state: Mutex::new(ClusterState {
                handles,
                threads,
                detached: Vec::new(),
            }),
            nonce: AtomicU64::new(0),
            remote: false,
            scenario_base: Mutex::new(None),
            fleet_at_checkpoint: AtomicBool::new(false),
        }
    }

    /// Builds a cluster whose workers are separate processes: waits on
    /// `listener` until `num_workers` worker processes register, sends
    /// each its identity and the peer data-fabric addresses, and runs one
    /// proxy thread per worker translating commands and replies to
    /// control-socket envelopes. The orchestration code above notices no
    /// difference; worker loss is fatal (a remote process cannot be
    /// respawned from here).
    pub fn connect_remote(
        model: Arc<NetworkModel>,
        node_owner: Vec<u32>,
        num_workers: u32,
        listener: std::net::TcpListener,
        config: RuntimeConfig,
    ) -> std::io::Result<Cluster> {
        assert_eq!(node_owner.len(), model.topology.node_count());
        let faults = Arc::new(FaultState::new(FaultPlan::default()));
        // The controller does not participate in the data fabric; this
        // net only carries the epoch and a zeroed local stats block.
        let (net, _inboxes) = SidecarNet::build(node_owner.clone(), num_workers);
        let streams = remote::accept_fleet(
            &listener,
            num_workers,
            &node_owner,
            config.memory_budget,
            config.intra_worker_threads as u32,
        )?;
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for (w, stream) in streams.into_iter().enumerate() {
            let (cmd, reply, thread) = remote::spawn_proxy(w as u32, stream)?;
            handles.push(WorkerHandle { cmd, reply });
            threads.push(Some(thread));
        }
        Ok(Cluster {
            model,
            net,
            node_owner,
            num_workers,
            config,
            faults,
            state: Mutex::new(ClusterState {
                handles,
                threads,
                detached: Vec::new(),
            }),
            nonce: AtomicU64::new(0),
            remote: true,
            scenario_base: Mutex::new(None),
            fleet_at_checkpoint: AtomicBool::new(false),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_worker(
        model: &Arc<NetworkModel>,
        node_owner: &[u32],
        net: &SidecarNet,
        faults: &Arc<FaultState>,
        memory_budget: Option<usize>,
        intra_worker_threads: usize,
        w: u32,
        inbox: Inbox,
    ) -> (WorkerHandle, std::thread::JoinHandle<()>) {
        let (cmd_tx, cmd_rx) = unbounded();
        let (reply_tx, reply_rx) = unbounded();
        let local_nodes: Vec<NodeId> = node_owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == w)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let sidecar = Sidecar::new(w, net.clone(), inbox);
        let model = model.clone();
        let faults = faults.clone();
        let thread = std::thread::Builder::new()
            .name(format!("s2-worker-{w}"))
            .spawn(move || {
                // Lane 0 is the controller; worker `w` traces on lane
                // `w + 1` (see `s2_obs::trace::set_lane`).
                s2_obs::trace::set_lane((w as u16).saturating_add(1));
                Worker::with_faults(
                    sidecar,
                    model,
                    local_nodes,
                    memory_budget,
                    faults,
                    intra_worker_threads,
                )
                .run(cmd_rx, reply_tx);
            })
            .expect("spawn worker thread");
        (
            WorkerHandle {
                cmd: cmd_tx,
                reply: reply_rx,
            },
            thread,
        )
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers as usize
    }

    /// The fault-tolerance configuration this cluster runs under.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Cross-worker traffic so far: `(messages, bytes)`.
    pub fn traffic(&self) -> (u64, u64) {
        self.net.stats().snapshot()
    }

    /// The shared traffic counters (disturbance and error accounting).
    pub fn net_stats(&self) -> &crate::sidecar::TrafficStats {
        self.net.stats()
    }

    fn reply_kind(r: &Reply) -> &'static str {
        match r {
            Reply::Ok => "Ok",
            Reply::Changed(_) => "Changed",
            Reply::Rib(_) => "Rib",
            Reply::Prefixes { .. } => "Prefixes",
            Reply::Deps(_) => "Deps",
            Reply::Mem(_) => "Mem",
            Reply::Forwarded { .. } => "Forwarded",
            Reply::Arrivals { .. } => "Arrivals",
            Reply::Finals { .. } => "Finals",
            Reply::OutOfMemory { .. } => "OutOfMemory",
            Reply::Pong(_) => "Pong",
            Reply::Net { .. } => "Net",
            Reply::Metrics(_) => "Metrics",
            Reply::ChangedDst(_) => "ChangedDst",
            Reply::TraceEvents { .. } => "TraceEvents",
            Reply::Violation(_) => "Violation",
        }
    }

    fn violation(expected: &'static str, got: &Reply) -> RuntimeError {
        let got = match got {
            Reply::Violation(what) => format!("Violation({what})"),
            other => Self::reply_kind(other).to_string(),
        };
        RuntimeError::ProtocolViolation { expected, got }
    }

    /// Broadcasts a command and gathers one reply per worker (a barrier).
    ///
    /// Worker loss shows up here two ways: a closed channel (the worker
    /// crashed — send or recv fails immediately) or a blown deadline (the
    /// worker hangs). An `OutOfMemory` reply does *not* abort collection:
    /// the remaining replies are still gathered so the fleet stays in
    /// lockstep, then the first OOM is returned as the error.
    fn barrier(
        &self,
        during: &'static str,
        make: impl Fn() -> Command,
    ) -> Result<Vec<Reply>, RuntimeError> {
        let _span = s2_obs::span!("barrier");
        // Publish this thread's trace context (the barrier span, itself
        // under whatever orchestration span is open) so worker threads
        // — and, via the proxy's `CtxWrap`, worker processes — parent
        // the spans this command opens under it.
        s2_obs::trace::publish_ctx();
        let state = self.state.lock();
        for (w, h) in state.handles.iter().enumerate() {
            h.cmd.send(make()).map_err(|_| RuntimeError::WorkerLost {
                worker: w as u32,
                during,
            })?;
        }
        let deadline = Deadline::after(self.config.barrier_timeout);
        let mut replies = Vec::with_capacity(state.handles.len());
        let mut oom = None;
        for (w, h) in state.handles.iter().enumerate() {
            match h.reply.recv_timeout(deadline.remaining()) {
                Ok(Reply::OutOfMemory { budget, observed }) => {
                    if oom.is_none() {
                        oom = Some(RuntimeError::OutOfMemory {
                            worker: w as u32,
                            budget,
                            observed,
                        });
                    }
                }
                Ok(r) => replies.push(r),
                Err(_) => {
                    if deadline.expired() {
                        // A blown barrier deadline (hung worker) is a
                        // flight-recorder trigger: dump the recent trace
                        // so the hang comes with its lead-up.
                        s2_obs::recorder::dump(&format!("barrier-deadline:{during}"));
                    }
                    return Err(RuntimeError::WorkerLost {
                        worker: w as u32,
                        during,
                    });
                }
            }
        }
        match oom {
            Some(e) => Err(e),
            None => Ok(replies),
        }
    }

    fn all_unchanged(replies: &[Reply]) -> bool {
        replies.iter().all(|r| matches!(r, Reply::Changed(false)))
    }

    /// Samples the disturbance-relevant transport state. Locally this
    /// reads the shared counters; in multi-process mode it barriers a
    /// `NetStats` and sums the per-worker answers.
    ///
    /// `in_flight` is read strictly *before* the counters: a reconnect
    /// bumps its loss counters before resetting the credit window (see
    /// `tcp::dial`), so sampling in this order guarantees at least one of
    /// the two probes witnesses frames that died with a connection.
    fn probe_net(&self, during: &'static str) -> Result<NetProbe, RuntimeError> {
        if !self.remote {
            let in_flight = self.net.in_flight() as u64;
            let stats = self.net.stats();
            return Ok(NetProbe {
                in_flight,
                disturbances: stats.disturbances(),
                losses: stats.losses(),
            });
        }
        let mut probe = NetProbe::default();
        for r in self.barrier(during, || Command::NetStats)? {
            match r {
                Reply::Net { traffic, in_flight } => {
                    probe.in_flight += in_flight;
                    probe.disturbances += traffic.disturbances();
                    probe.losses += traffic.losses();
                }
                other => return Err(Self::violation("Net", &other)),
            }
        }
        Ok(probe)
    }

    /// The cluster-wide transport counters: local stats plus (in
    /// multi-process mode) every worker process's counters.
    fn traffic_snapshot(&self) -> Result<TrafficSnapshot, RuntimeError> {
        let mut snap = self.net.stats().full_snapshot();
        if self.remote {
            for r in self.barrier("net-stats", || Command::NetStats)? {
                match r {
                    Reply::Net { traffic, .. } => snap.merge(&traffic),
                    other => return Err(Self::violation("Net", &other)),
                }
            }
        }
        Ok(snap)
    }

    /// Parks the round loop briefly while the transport still has frames
    /// in flight, so asynchronous delivery does not burn the round budget
    /// at full speed (channel backend: in-flight is always zero).
    fn stall_for_in_flight(&self, probe: &NetProbe) {
        if probe.in_flight > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Errors out if wire errors occurred and the config makes them fatal.
    fn check_wire_fatal(&self) -> Result<(), RuntimeError> {
        if self.config.fatal_wire_errors {
            let errors = self.net.stats().wire_errors.load(Ordering::Relaxed);
            if errors > 0 {
                return Err(RuntimeError::Wire { errors });
            }
        }
        Ok(())
    }

    /// Collects per-worker memory reports.
    pub fn mem_reports(&self) -> Result<Vec<MemReport>, RuntimeError> {
        let mut out = Vec::new();
        for r in self.barrier("mem-report", || Command::MemReport)? {
            match r {
                Reply::Mem(m) => out.push(m),
                other => return Err(Self::violation("Mem", &other)),
            }
        }
        Ok(out)
    }

    /// Collects the run's unified metrics: one snapshot per worker (its
    /// memory gauge in registry form, barriered over the control
    /// protocol — so this works identically in multi-process mode) plus
    /// the aggregate, which merges the worker snapshots and folds in
    /// the cluster-wide traffic counters and the process-global
    /// registry exactly once.
    pub fn collect_metrics(&self) -> Result<RunMetrics, RuntimeError> {
        let mut per_worker = Vec::new();
        for r in self.barrier("metrics", || Command::Metrics)? {
            match r {
                Reply::Metrics(m) => per_worker.push(m),
                other => return Err(Self::violation("Metrics", &other)),
            }
        }
        let mut aggregate = MetricsSnapshot::default();
        for m in &per_worker {
            aggregate.merge(m);
        }
        aggregate.merge(&metrics::traffic_metrics(&self.traffic_snapshot()?));
        aggregate.merge(&s2_obs::Registry::global().snapshot());
        Ok(RunMetrics {
            per_worker,
            aggregate,
        })
    }

    /// Collects fleet metrics *leniently* for the telemetry plane's
    /// scrape endpoint: unlike [`Cluster::collect_metrics`], a dead or
    /// hung worker degrades its slot to `None` instead of failing the
    /// whole collection — a scrape must keep serving through partial
    /// outages, with liveness surfaced as per-worker gauges.
    ///
    /// Stale replies of an aborted barrier are drained per worker
    /// before polling so the answer pairs with *this* command; a hung
    /// worker costs at most the (capped) scrape deadline.
    pub fn scrape_metrics(&self) -> FleetScrape {
        let scrape_timeout = self.config.barrier_timeout.min(Duration::from_secs(1));
        let mut workers = Vec::new();
        {
            let state = self.state.lock();
            for (w, h) in state.handles.iter().enumerate() {
                while h.reply.try_recv().is_ok() {}
                let snap = if h.cmd.send(Command::Metrics).is_ok() {
                    match h.reply.recv_timeout(Deadline::after(scrape_timeout).remaining()) {
                        Ok(Reply::Metrics(m)) => Some(m),
                        _ => None,
                    }
                } else {
                    None
                };
                workers.push((w as u32, snap));
            }
        }
        let mut aggregate = MetricsSnapshot::default();
        for (_, m) in &workers {
            if let Some(m) = m {
                aggregate.merge(m);
            }
        }
        // Traffic counters ride along best-effort (remote mode barriers
        // them, which a lost worker fails); the process-global registry
        // is always available and folded exactly once.
        if let Ok(t) = self.traffic_snapshot() {
            aggregate.merge(&metrics::traffic_metrics(&t));
        }
        aggregate.merge(&s2_obs::Registry::global().snapshot());
        FleetScrape { aggregate, workers }
    }

    /// Pulls buffered trace events out of remote worker processes and
    /// splices them into this process's sink, so one Chrome export
    /// carries the whole fleet. Name ids are re-interned (they are
    /// process-local), and timestamps are rebased through the drain
    /// reply's clock anchor. In-process fleets are a cheap no-op:
    /// workers share this sink and answer empty batches. Best-effort
    /// like the scrape — a dead worker's events are simply lost.
    pub fn drain_remote_traces(&self) {
        if !s2_obs::trace::enabled() {
            return;
        }
        let drain_timeout = self.config.barrier_timeout.min(Duration::from_secs(1));
        let state = self.state.lock();
        for h in state.handles.iter() {
            while h.reply.try_recv().is_ok() {}
            if h.cmd.send(Command::TraceDrain).is_err() {
                continue;
            }
            let (now_ns, names, events) =
                match h.reply.recv_timeout(Deadline::after(drain_timeout).remaining()) {
                    Ok(Reply::TraceEvents {
                        now_ns,
                        names,
                        events,
                    }) => (now_ns, names, events),
                    _ => continue,
                };
            let local_now = s2_obs::time::now_ns();
            let ids: Vec<u16> = names
                .iter()
                .map(|n| s2_obs::trace::intern_owned(n))
                .collect();
            for mut e in events {
                // The codec validates name indices, but an in-process
                // worker's empty-table reply makes the lookup fallible
                // either way — skip rather than trust.
                let Some(&id) = ids.get(usize::from(e.name)) else {
                    continue;
                };
                e.name = id;
                // Rebase onto this process's clock: both anchors were
                // taken "now", so their difference is the clock skew
                // (plus one network hop, which is noise at trace scale).
                let rebased =
                    i128::from(e.ts_ns) + i128::from(local_now) - i128::from(now_ns);
                e.ts_ns = u64::try_from(rebased.max(0)).unwrap_or(u64::MAX);
                s2_obs::trace::record(e);
            }
        }
    }

    // ---- recovery ----

    /// Detects and replaces lost workers, restoring the fleet to an idle,
    /// consistent state.
    ///
    /// Protocol: (1) ping every worker with a fresh nonce and wait (with
    /// the barrier deadline) for the matching pong, discarding stale
    /// replies of the aborted barrier — workers that fail are dead or
    /// hung; (2) bump the fabric epoch, so any frame still in flight from
    /// before the failure (or later produced by a zombie) is discarded on
    /// receipt, and drop delayed frames held by the fault fabric; (3)
    /// respawn the dead workers with fresh command channels and a fresh
    /// sidecar inbox, detaching the old threads for joining at shutdown;
    /// (4) barrier a `FlushInbox` so every sidecar adopts the new epoch
    /// with an empty inbox and cleared staging queues.
    pub fn recover(&self) -> Result<(), RuntimeError> {
        if self.remote {
            // A remote worker process cannot be respawned from here; its
            // loss is final.
            return Err(RuntimeError::WorkerLost {
                worker: u32::MAX,
                during: "remote-recovery-unsupported",
            });
        }
        let _span = s2_obs::span!("recovery");
        // A replacement worker starts with fresh switches and no
        // checkpoint: the fleet can no longer be assumed to sit at one.
        self.fleet_at_checkpoint.store(false, Ordering::Release);
        let mut state = self.state.lock();
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed) + 1;
        let mut dead = Vec::new();
        for (w, h) in state.handles.iter().enumerate() {
            if h.cmd.send(Command::Ping(nonce)).is_err() {
                dead.push(w);
            }
        }
        let deadline = Deadline::after(self.config.barrier_timeout);
        for (w, h) in state.handles.iter().enumerate() {
            if dead.contains(&w) {
                continue;
            }
            loop {
                match h.reply.recv_timeout(deadline.remaining()) {
                    Ok(Reply::Pong(n)) if n == nonce => break,
                    Ok(_) => continue, // stale reply from the aborted barrier
                    Err(_) => {
                        dead.push(w);
                        break;
                    }
                }
            }
        }
        let epoch = self.net.bump_epoch();
        // An epoch bump means a worker was lost: capture the events
        // leading up to it before respawning rewrites the fleet.
        s2_obs::recorder::dump("recovery-epoch-bump");
        s2_obs::event!("recovery.epoch", epoch);
        self.net.discard_held();
        for &w in &dead {
            self.respawn(&mut state, w);
        }
        for (w, h) in state.handles.iter().enumerate() {
            h.cmd
                .send(Command::FlushInbox { epoch })
                .map_err(|_| RuntimeError::WorkerLost {
                    worker: w as u32,
                    during: "recovery",
                })?;
        }
        let deadline = Deadline::after(self.config.barrier_timeout);
        for (w, h) in state.handles.iter().enumerate() {
            loop {
                match h.reply.recv_timeout(deadline.remaining()) {
                    Ok(Reply::Ok) => break,
                    Ok(_) => continue, // stale reply, discard
                    Err(_) => {
                        return Err(RuntimeError::WorkerLost {
                            worker: w as u32,
                            during: "recovery",
                        })
                    }
                }
            }
        }
        Ok(())
    }

    fn respawn(&self, state: &mut ClusterState, w: usize) {
        let inbox = self.net.replace_inbox(w as u32);
        let (handle, thread) = Self::spawn_worker(
            &self.model,
            &self.node_owner,
            &self.net,
            &self.faults,
            self.config.memory_budget,
            self.config.intra_worker_threads,
            w as u32,
            inbox,
        );
        // Replacing the handle drops the old command sender, which lets a
        // hung predecessor's drain loop terminate; the old thread is kept
        // for joining at shutdown.
        state.handles[w] = handle;
        if let Some(old) = state.threads[w].take() {
            state.detached.push(old);
        }
        state.threads[w] = Some(thread);
    }

    /// Runs `recover`, spending additional recovery budget on failures
    /// *during* recovery (a worker can die while another is respawned).
    fn recover_with_budget(&self, attempts_left: &mut usize) -> Result<(), RuntimeError> {
        loop {
            match self.recover() {
                Ok(()) => return Ok(()),
                Err(_) if *attempts_left > 0 => *attempts_left -= 1,
                Err(e) => return Err(e),
            }
        }
    }

    // ---- control plane ----

    /// Runs the IGP phase to convergence, returning the round count.
    ///
    /// A round disturbed by injected drops/delays or rejected frames
    /// cannot prove convergence, so the fix point keeps iterating; OSPF
    /// re-exports its full table every round, which heals losses without
    /// any explicit resync.
    pub fn run_ospf(&self, opts: &ClusterOptions) -> Result<usize, RuntimeError> {
        let mut round = 0;
        let mut stalled_since: Option<Stopwatch> = None;
        while round < opts.max_rounds {
            let _round_span = s2_obs::span!("cp.round", round);
            let before = self.probe_net("ospf-probe")?;
            self.barrier("ospf-export", || Command::OspfExport)?;
            let replies = self.barrier("ospf-apply", || Command::OspfApply)?;
            let released = self.net.tick_delayed();
            self.check_wire_fatal()?;
            let probe = self.probe_net("ospf-probe")?;
            let quiet = Self::all_unchanged(&replies)
                && probe.disturbances == before.disturbances
                && released == 0
                && self.net.held_count() == 0;
            if quiet && probe.in_flight == 0 {
                return Ok(round + 1);
            }
            // A quiet round with frames still in flight is transport
            // delay (e.g. a partition window), not protocol iteration:
            // bound it by the barrier timeout, not the round budget.
            if quiet {
                let since = *stalled_since.get_or_insert_with(Stopwatch::start);
                if since.elapsed() > self.config.barrier_timeout {
                    break;
                }
            } else {
                stalled_since = None;
                round += 1;
            }
            self.stall_for_in_flight(&probe);
        }
        Err(RuntimeError::NotConverged {
            protocol: "ospf",
            rounds: opts.max_rounds,
        })
    }

    /// Gathers every originated prefix (and the aggregate subset) from the
    /// workers — the §4.5 prefix-collection step, run after OSPF so
    /// redistribution targets are included.
    #[allow(clippy::type_complexity)]
    pub fn collect_prefixes(
        &self,
    ) -> Result<(BTreeSet<Prefix>, BTreeSet<Prefix>, Vec<(Prefix, Prefix)>), RuntimeError> {
        let mut all = BTreeSet::new();
        let mut aggregates = BTreeSet::new();
        let mut deps = Vec::new();
        for reply in self.barrier("collect-prefixes", || Command::CollectPrefixes)? {
            match reply {
                Reply::Prefixes {
                    all: a,
                    aggregates: g,
                    deps: d,
                } => {
                    all.extend(a);
                    aggregates.extend(g);
                    deps.extend(d);
                }
                other => return Err(Self::violation("Prefixes", &other)),
            }
        }
        deps.sort_unstable();
        deps.dedup();
        Ok((all, aggregates, deps))
    }

    /// Gathers the prefix dependencies every worker observed during route
    /// computation (the §7 soundness input).
    pub fn collect_observed_deps(&self) -> Result<Vec<(Prefix, Prefix)>, RuntimeError> {
        let mut deps = Vec::new();
        for reply in self.barrier("collect-observed-deps", || Command::CollectObservedDeps)? {
            match reply {
                Reply::Deps(d) => deps.extend(d),
                other => return Err(Self::violation("Deps", &other)),
            }
        }
        deps.sort_unstable();
        deps.dedup();
        Ok(deps)
    }

    /// Plans prefix shards from the workers' originated prefixes: builds
    /// the DPDG (coverage edges from aggregates, explicit edges from
    /// conditional advertisements), takes weakly connected components, and
    /// bins them.
    pub fn plan_shards(&self, num_shards: usize, seed: u64) -> Result<ShardPlan, RuntimeError> {
        let (all, aggregates, deps) = self.collect_prefixes()?;
        if num_shards <= 1 {
            return Ok(ShardPlan::single(all));
        }
        let graph = s2_shard::dpdg::Dpdg::build_with_deps(&all, &aggregates, &deps);
        Ok(s2_shard::assign::greedy_assign(
            graph.weakly_connected_components(),
            num_shards,
            seed,
        ))
    }

    /// Barriers a RIB-collection command and folds the entries into
    /// `store` (idempotent per `(node, prefix)` — safe to repeat after a
    /// recovery replay).
    fn collect_rib(
        &self,
        during: &'static str,
        make: impl Fn() -> Command,
        store: &mut RibStore,
    ) -> Result<(), RuntimeError> {
        for reply in self.barrier(during, make)? {
            match reply {
                Reply::Rib(entries) => {
                    for (node, routes) in entries {
                        store.insert_all(node, routes);
                    }
                }
                other => return Err(Self::violation("Rib", &other)),
            }
        }
        Ok(())
    }

    /// One shard's BGP fix point, disturbance-aware: frames lost to
    /// injected drops or receiver rejection trigger a `BgpResync` (the
    /// incremental adj-out caches are cleared so the next export re-sends
    /// everything), and a disturbed round never counts as converged.
    /// Delayed frames released into inboxes likewise force a resync so
    /// a stale advertisement can never be the last word.
    fn run_bgp_fixpoint(
        &self,
        shard: &Arc<BTreeSet<Prefix>>,
        opts: &ClusterOptions,
        ck: &mut Checkpoint,
    ) -> Result<(), RuntimeError> {
        let _wave_span = s2_obs::span!("shard.wave", shard.len());
        self.barrier("bgp-begin", || Command::BgpBegin {
            shard: Some(shard.clone()),
        })?;
        let mut round = 0;
        let mut stalled_since: Option<Stopwatch> = None;
        while round < opts.max_rounds {
            let _round_span = s2_obs::span!("cp.round", round);
            let before = self.probe_net("bgp-probe")?;
            self.barrier("bgp-export", || Command::BgpExport)?;
            let replies = self.barrier("bgp-apply", || Command::BgpApply)?;
            let released = self.net.tick_delayed();
            self.check_wire_fatal()?;
            let probe = self.probe_net("bgp-probe")?;
            let lost = probe.losses != before.losses;
            let quiet = Self::all_unchanged(&replies)
                && !lost
                && probe.disturbances == before.disturbances
                && released == 0
                && self.net.held_count() == 0;
            if lost || released > 0 {
                self.barrier("bgp-resync", || Command::BgpResync)?;
                ck.resyncs += 1;
            }
            if quiet && probe.in_flight == 0 {
                ck.bgp_rounds += round + 1;
                return Ok(());
            }
            // A quiet round with frames still in flight is transport
            // delay (e.g. a partition window), not protocol iteration:
            // bound it by the barrier timeout, not the round budget.
            if quiet {
                let since = *stalled_since.get_or_insert_with(Stopwatch::start);
                if since.elapsed() > self.config.barrier_timeout {
                    break;
                }
            } else {
                stalled_since = None;
                round += 1;
            }
            self.stall_for_in_flight(&probe);
        }
        ck.bgp_rounds += round;
        Err(RuntimeError::NotConverged {
            protocol: "bgp",
            rounds: opts.max_rounds,
        })
    }

    /// Splits an over-budget shard into two halves along dependency
    /// boundaries: the shard's DPDG (static deps plus `extra` observed
    /// ones) is decomposed into weakly connected components and the
    /// components are binned greedily, so no dependency is ever severed.
    /// Returns `None` when the shard is a single component — splitting it
    /// would be unsound, so its OOM is final.
    #[allow(clippy::type_complexity)]
    fn bisect_shard(
        &self,
        shard: &BTreeSet<Prefix>,
        extra: &[(Prefix, Prefix)],
    ) -> Result<Option<(BTreeSet<Prefix>, BTreeSet<Prefix>)>, RuntimeError> {
        let (_, aggregates, mut deps) = self.collect_prefixes()?;
        deps.extend(extra.iter().copied());
        let prefixes: BTreeSet<Prefix> = shard.iter().copied().collect();
        let aggs: BTreeSet<Prefix> = aggregates
            .into_iter()
            .filter(|p| shard.contains(p))
            .collect();
        let deps: Vec<(Prefix, Prefix)> = deps
            .into_iter()
            .filter(|(a, b)| shard.contains(a) && shard.contains(b))
            .collect();
        let graph = s2_shard::dpdg::Dpdg::build_with_deps(&prefixes, &aggs, &deps);
        let mut comps = graph.weakly_connected_components();
        if comps.len() < 2 {
            return Ok(None);
        }
        for c in comps.iter_mut() {
            c.sort();
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        let mut left = BTreeSet::new();
        let mut right = BTreeSet::new();
        for c in comps {
            if left.len() <= right.len() {
                left.extend(c);
            } else {
                right.extend(c);
            }
        }
        Ok(Some((left, right)))
    }

    /// One attempt at completing the checkpointed control-plane run:
    /// (re-)converges OSPF, collects the base RIB once, then drains the
    /// shard queue, flushing each completed shard's RIB and observed deps
    /// to the checkpoint. OOM on a shard triggers component-aware
    /// bisection; worker loss aborts the attempt (the caller recovers and
    /// retries — only the in-flight shard is redone).
    fn cp_attempt(&self, ck: &mut Checkpoint, opts: &ClusterOptions) -> Result<(), RuntimeError> {
        ck.ospf_rounds = self.run_ospf(opts)?;
        if !ck.base_done {
            self.collect_rib("collect-base-rib", || Command::CollectBaseRib, &mut ck.store)?;
            ck.base_done = true;
        }
        while let Some(front) = ck.queue.front() {
            let shard = Arc::new(front.clone());
            match self.run_bgp_fixpoint(&shard, opts, ck) {
                Ok(()) => {}
                Err(RuntimeError::OutOfMemory {
                    worker,
                    budget,
                    observed,
                }) => {
                    // OOM degradation is a flight-recorder trigger: the
                    // trace shows which waves/rounds ran up the budget.
                    s2_obs::recorder::dump("oom-degradation");
                    let split = if shard.len() > 1 && ck.oom_splits < self.config.max_oom_splits {
                        self.bisect_shard(&shard, &ck.observed_deps)?
                    } else {
                        None
                    };
                    match split {
                        Some((a, b)) => {
                            ck.queue.pop_front();
                            ck.queue.push_front(b);
                            ck.queue.push_front(a);
                            ck.oom_splits += 1;
                            ck.shard_retries += 1;
                            continue;
                        }
                        None => {
                            return Err(RuntimeError::OutOfMemory {
                                worker,
                                budget,
                                observed,
                            })
                        }
                    }
                }
                Err(e) => return Err(e),
            }
            self.collect_rib("collect-shard-rib", || Command::CollectBgpRib, &mut ck.store)?;
            ck.observed_deps.extend(self.collect_observed_deps()?);
            let done = ck.queue.pop_front().expect("queue non-empty");
            ck.executed.push(done);
        }
        Ok(())
    }

    /// The checkpointed control-plane driver: retries `cp_attempt` across
    /// worker losses (within the recovery budget) and assembles the final
    /// snapshot, stats, executed plan, and observed dependencies.
    #[allow(clippy::type_complexity)]
    fn run_cp_full(
        &self,
        plan: &ShardPlan,
        opts: &ClusterOptions,
        seed_deps: &[(Prefix, Prefix)],
    ) -> Result<(RibSnapshot, CpRunStats, ShardPlan, Vec<(Prefix, Prefix)>), RuntimeError> {
        let start = Stopwatch::start();
        self.fleet_at_checkpoint.store(false, Ordering::Release);
        let mut ck = Checkpoint::new(self.model.topology.node_count(), plan, seed_deps);
        let mut attempts_left = self.config.max_recoveries;
        loop {
            match self.cp_attempt(&mut ck, opts) {
                Ok(()) => break,
                Err(RuntimeError::WorkerLost { .. }) if attempts_left > 0 => {
                    attempts_left -= 1;
                    ck.recoveries += 1;
                    if ck.base_done && !ck.queue.is_empty() {
                        ck.shard_retries += 1;
                    }
                    self.recover_with_budget(&mut attempts_left)?;
                }
                Err(e) => return Err(e),
            }
        }
        // The legacy stat fields are derived from the unified metrics
        // snapshots (one per worker, merged): counter merge is
        // summation and gauge merge is max, so the values are identical
        // to the old per-struct fold.
        let reports = self.mem_reports()?;
        let snaps: Vec<MetricsSnapshot> = reports.iter().map(metrics::mem_metrics).collect();
        let mut merged = MetricsSnapshot::default();
        for s in &snaps {
            merged.merge(s);
        }
        let mut stats = CpRunStats {
            ospf_rounds: ck.ospf_rounds,
            bgp_rounds: ck.bgp_rounds,
            shards: ck.executed.len(),
            per_worker_peak: snaps
                .iter()
                .map(|s| s.gauge_value("mem.peak_bytes") as usize)
                .collect(),
            bdd_peak_nodes: merged.gauge_value("bdd.peak_nodes") as usize,
            bdd_cache: metrics::cache_stats_of(&merged),
            recoveries: ck.recoveries,
            oom_splits: ck.oom_splits,
            shard_retries: ck.shard_retries,
            resyncs: ck.resyncs,
            ..CpRunStats::default()
        };
        let traffic = self.traffic_snapshot()?;
        stats.messages = traffic.messages;
        stats.bytes = traffic.bytes;
        stats.wire_errors = traffic.wire_errors;
        stats.traffic = traffic;
        stats.elapsed = start.elapsed();
        let executed = ShardPlan {
            shards: ck.executed,
        };
        let mut deps = ck.observed_deps;
        deps.sort_unstable();
        deps.dedup();
        Ok((ck.store.snapshot(), stats, executed, deps))
    }

    /// The §7 extension: runs the control plane under `plan`, collects the
    /// dependencies observed during computation, and — if any crosses a
    /// shard boundary (an *unforeseen* dependency) — merges the affected
    /// shards and recomputes, until the plan is sound. Returns the final
    /// RIBs, stats of the last (sound) run, and the refined plan (as
    /// actually executed, OOM bisections included).
    pub fn run_control_plane_refined(
        &self,
        mut plan: ShardPlan,
        opts: &ClusterOptions,
    ) -> Result<(RibSnapshot, CpRunStats, ShardPlan), RuntimeError> {
        // Observed deps accumulate across refinement rounds so OOM
        // bisection never re-splits a dependency the last round merged.
        let mut known_deps: Vec<(Prefix, Prefix)> = Vec::new();
        loop {
            let (rib, stats, executed, observed) = self.run_cp_full(&plan, opts, &known_deps)?;
            let violations = executed.cross_shard_violations(&observed);
            if violations.is_empty() {
                return Ok((rib, stats, executed));
            }
            known_deps = observed;
            plan = executed.merged_for(&violations);
        }
    }

    /// Runs the full distributed control-plane simulation: OSPF to
    /// convergence, then one BGP fix point per shard, gathering the final
    /// RIBs (the CPO role). Worker losses are recovered (the checkpoint
    /// limits rework to the in-flight shard) and over-budget shards are
    /// bisected, within the configured budgets.
    pub fn run_control_plane(
        &self,
        plan: &ShardPlan,
        opts: &ClusterOptions,
    ) -> Result<(RibSnapshot, CpRunStats), RuntimeError> {
        let (rib, stats, _, _) = self.run_cp_full(plan, opts, &[])?;
        Ok((rib, stats))
    }

    // ---- data plane ----

    /// Runs distributed data-plane verification (the DPO role): per-worker
    /// predicate compilation, distributed symbolic forwarding to
    /// quiescence, then property evaluation.
    ///
    /// `expected` lists, per destination node, the prefixes that must
    /// arrive from every source; `waypoints` maps transit nodes to
    /// metadata bits (callers allocate bits 0..n).
    ///
    /// Fault tolerance: worker loss triggers recovery and a replay of the
    /// whole phase (`DpSetup` resets all forwarding state, so replays are
    /// clean); frames lost in transit also force a replay, since dropped
    /// symbolic packets would silently under-approximate reachability.
    #[allow(clippy::too_many_arguments)]
    pub fn run_dpv(
        &self,
        rib: Arc<RibSnapshot>,
        sources: Vec<NodeId>,
        expected: Vec<(NodeId, Vec<Prefix>)>,
        dst_space: Prefix,
        waypoints: BTreeMap<NodeId, u16>,
        opts: &ClusterOptions,
    ) -> Result<DpvRunStats, RuntimeError> {
        let mut attempts_left = self.config.max_recoveries;
        let mut recoveries = 0usize;
        let mut replays = 0usize;
        loop {
            let losses0 = self.probe_net("dpv-probe")?.losses;
            match self.dpv_attempt(&rib, &sources, &expected, dst_space, &waypoints, opts) {
                Ok(mut stats) => {
                    let lost = self.probe_net("dpv-probe")?.losses - losses0;
                    if lost > 0 {
                        if attempts_left == 0 {
                            return Err(RuntimeError::Wire { errors: lost });
                        }
                        attempts_left -= 1;
                        replays += 1;
                        continue;
                    }
                    stats.recoveries = recoveries;
                    stats.replays = replays;
                    let traffic = self.traffic_snapshot()?;
                    stats.wire_errors = traffic.wire_errors;
                    stats.traffic = traffic;
                    return Ok(stats);
                }
                Err(RuntimeError::WorkerLost { .. }) if attempts_left > 0 => {
                    attempts_left -= 1;
                    recoveries += 1;
                    replays += 1;
                    self.recover_with_budget(&mut attempts_left)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn dpv_attempt(
        &self,
        rib: &Arc<RibSnapshot>,
        sources: &[NodeId],
        expected: &[(NodeId, Vec<Prefix>)],
        dst_space: Prefix,
        waypoints: &BTreeMap<NodeId, u16>,
        opts: &ClusterOptions,
    ) -> Result<DpvRunStats, RuntimeError> {
        let mut stats = DpvRunStats::default();
        let meta_bits = waypoints.len() as u16;

        let t0 = Stopwatch::start();
        let waypoints_arc = Arc::new(waypoints.clone());
        self.barrier("dp-setup", || Command::DpSetup {
            rib: rib.clone(),
            meta_bits,
            waypoints: waypoints_arc.clone(),
            max_hops: opts.max_hops,
        })?;
        stats.pred_time = t0.elapsed();
        self.dpv_drive(&mut stats, sources, None, expected, dst_space, waypoints)?;
        Ok(stats)
    }

    /// The forwarding-and-evaluation half of a DPV pass: injection,
    /// symbolic forwarding to quiescence, arrival checks, finals
    /// collection, and controller-side multipath evaluation. Assumes the
    /// workers' forwarding state was already prepared (by `DpSetup` for a
    /// baseline pass or `DpPatch` for a scenario pass).
    ///
    /// `inject` narrows which of `sources` are actually injected (a
    /// destination-scoped pass skips sources whose scope is empty;
    /// their verdicts come from the workers' splice baseline). Arrival
    /// checks and finals collection always cover every source.
    fn dpv_drive(
        &self,
        stats: &mut DpvRunStats,
        sources: &[NodeId],
        inject: Option<&[NodeId]>,
        expected: &[(NodeId, Vec<Prefix>)],
        dst_space: Prefix,
        waypoints: &BTreeMap<NodeId, u16>,
    ) -> Result<(), RuntimeError> {
        let meta_bits = waypoints.len() as u16;
        let t1 = Stopwatch::start();
        let inject = inject.unwrap_or(sources);
        let injections = Arc::new(inject.iter().map(|&s| (s, dst_space)).collect::<Vec<_>>());
        self.barrier("dp-inject", || Command::Inject {
            injections: injections.clone(),
        })?;
        loop {
            let _round_span = s2_obs::span!("dpv.round", stats.forward_rounds);
            let replies = self.barrier("dp-forward", || Command::ForwardRound)?;
            stats.forward_rounds += 1;
            let released = self.net.tick_delayed();
            self.check_wire_fatal()?;
            let probe = self.probe_net("dp-probe")?;
            let mut quiet = released == 0 && self.net.held_count() == 0 && probe.in_flight == 0;
            for r in replies {
                match r {
                    Reply::Forwarded {
                        processed,
                        sent_remote,
                    } => {
                        stats.packets_processed += processed;
                        stats.remote_packets += sent_remote;
                        if processed > 0 || sent_remote > 0 {
                            quiet = false;
                        }
                    }
                    other => return Err(Self::violation("Forwarded", &other)),
                }
            }
            if quiet {
                break;
            }
            self.stall_for_in_flight(&probe);
        }
        stats.fwd_time = t1.elapsed();

        // Property evaluation.
        let sources_arc = Arc::new(sources.to_vec());
        let expected_arc = Arc::new(expected.to_vec());
        let transits: Arc<Vec<(NodeId, u16)>> =
            Arc::new(waypoints.iter().map(|(&n, &b)| (n, b)).collect());
        for reply in self.barrier("dp-arrivals", || Command::CheckArrivals {
            sources: sources_arc.clone(),
            expected: expected_arc.clone(),
            transits: transits.clone(),
        })? {
            match reply {
                Reply::Arrivals {
                    reachable,
                    unreachable,
                    waypoint_violations,
                } => {
                    stats.reachable_pairs += reachable.len();
                    stats.unreachable_pairs.extend(unreachable);
                    stats.waypoint_violations.extend(waypoint_violations);
                }
                other => return Err(Self::violation("Arrivals", &other)),
            }
        }

        // Multipath consistency: merge per-(src, kind) header sets in a
        // controller-side manager (sets arrive serialized, exactly like any
        // other cross-worker BDD).
        let space = PacketSpace::new(meta_bits);
        let mut manager = space.manager();
        let mut by_src: BTreeMap<NodeId, BTreeMap<FinalKind, s2_bdd::Bdd>> = BTreeMap::new();
        for reply in self.barrier("dp-finals", || Command::CollectFinals)? {
            match reply {
                Reply::Finals {
                    loops,
                    blackholes,
                    splices,
                    sets,
                } => {
                    stats.loops += loops;
                    stats.blackholes += blackholes;
                    if let Some(scoped) = stats.scoped.as_mut() {
                        scoped.splice_ops += splices;
                    }
                    for (src, kind, bytes) in sets {
                        stats.verdict_sets.push((src, kind, bytes.to_vec()));
                        let set = match bdd_io::from_bytes(&mut manager, &bytes) {
                            Ok(set) => set,
                            Err(_) => {
                                return Err(RuntimeError::ProtocolViolation {
                                    expected: "valid BDD payload",
                                    got: "undecodable final set".to_string(),
                                })
                            }
                        };
                        let entry = by_src
                            .entry(src)
                            .or_default()
                            .entry(kind)
                            .or_insert(s2_bdd::Bdd::FALSE);
                        *entry = manager.or(*entry, set);
                    }
                }
                other => return Err(Self::violation("Finals", &other)),
            }
        }
        for (src, kinds) in by_src {
            let kinds: Vec<_> = kinds.into_iter().collect();
            let mut violated = false;
            for i in 0..kinds.len() {
                for j in (i + 1)..kinds.len() {
                    if manager.intersects(kinds[i].1, kinds[j].1) {
                        violated = true;
                    }
                }
            }
            if violated {
                stats.multipath_violations.push(src);
            }
        }

        // Same unified-snapshot derivation as `run_cp_full`.
        let reports = self.mem_reports()?;
        let snaps: Vec<MetricsSnapshot> = reports.iter().map(metrics::mem_metrics).collect();
        let mut merged = MetricsSnapshot::default();
        for s in &snaps {
            merged.merge(s);
        }
        stats.per_worker_peak = snaps
            .iter()
            .map(|s| s.gauge_value("mem.peak_bytes") as usize)
            .collect();
        stats.bdd_peak_nodes = merged.gauge_value("bdd.peak_nodes") as usize;
        stats.bdd_cache = metrics::cache_stats_of(&merged);
        stats.unreachable_pairs.sort();
        stats.waypoint_violations.sort();
        stats.verdict_sets.sort();
        Ok(())
    }

    // ---- resilience scenarios ----
    //
    // The runtime surface of the sweep engine (`s2::sweep`): a scenario
    // is checkpointed warm state + a set of failed interfaces + an
    // incremental re-convergence + a patched DPV pass, fenced from its
    // neighbours by an epoch bump so an aborted scenario can never leak
    // stale frames into the next one.

    /// Asserts every reply in a barrier result is `Reply::Ok`.
    fn expect_ok(replies: Vec<Reply>) -> Result<(), RuntimeError> {
        for r in &replies {
            match r {
                Reply::Ok => {}
                other => return Err(Self::violation("Ok", other)),
            }
        }
        Ok(())
    }

    /// Snapshots every worker's warm control-plane state (converged
    /// switches plus adj-out caches) so scenarios can be applied and
    /// rolled back without re-running the full fix point. Call once,
    /// after a successful `run_control_plane` and the baseline
    /// `run_dpv` — the workers also stash their full-space finals as
    /// the splice baseline of destination-scoped scenario passes.
    ///
    /// `rib` is the warm baseline RIB the DPV pass ran against; it
    /// becomes the reverse-reachability forwarding graph that decides
    /// which sources a changed destination set can perturb.
    pub fn scenario_checkpoint(&self, rib: Arc<RibSnapshot>) -> Result<(), RuntimeError> {
        let (prefixes, aggregates, deps) = self.collect_prefixes()?;
        let dpdg = s2_shard::dpdg::Dpdg::build_with_deps(&prefixes, &aggregates, &deps);
        Self::expect_ok(self.barrier("scenario-checkpoint", || Command::ScenarioCheckpoint)?)?;
        *self.scenario_base.lock() = Some(ScenarioBase { rib, dpdg });
        self.fleet_at_checkpoint.store(true, Ordering::Release);
        Ok(())
    }

    /// Restores the checkpoint on every worker and marks the given
    /// `(node, interface)` ports as failed in the routing model. Follow
    /// with [`Cluster::run_warm_fixpoint`] to re-converge incrementally.
    pub fn scenario_begin(&self, failed: &[(NodeId, InterfaceId)]) -> Result<(), RuntimeError> {
        let failed = Arc::new(failed.to_vec());
        // When the last state-changing barrier was the checkpoint itself
        // or a rollback, the live state already equals the checkpoint and
        // the per-switch restore clone is pure overhead. Either way the
        // fleet leaves this call perturbed (failed ports applied).
        let restore = !self.fleet_at_checkpoint.swap(false, Ordering::AcqRel);
        Self::expect_ok(self.barrier("scenario-begin", || Command::ScenarioBegin {
            failed: failed.clone(),
            restore,
        })?)
    }

    /// Restores the checkpoint and clears all scenario forwarding state
    /// (predicate overlays, failed-port masks, in-flight packets),
    /// returning the workers to the warm baseline. On a worker without
    /// a checkpoint (freshly respawned mid-sweep) only the overlays are
    /// cleared — its switches are already healthy.
    pub fn scenario_rollback(&self) -> Result<(), RuntimeError> {
        Self::expect_ok(self.barrier("scenario-rollback", || Command::ScenarioRollback)?)?;
        self.fleet_at_checkpoint.store(true, Ordering::Release);
        Ok(())
    }

    /// Fences the fabric between scenarios: bumps the epoch (frames in
    /// flight from the previous scenario are discarded on receipt),
    /// drops frames held by the fault fabric, and flushes every sidecar
    /// inbox into the new epoch. After a fence no message produced
    /// before it can be observed — an aborted scenario cannot poison
    /// its successor.
    pub fn fence(&self) -> Result<(), RuntimeError> {
        let epoch = self.net.bump_epoch();
        self.net.discard_held();
        Self::expect_ok(self.barrier("fence", || Command::FlushInbox { epoch })?)
    }

    /// Runs the BGP fix point *warm*: export/apply rounds from the
    /// workers' current state, without a `BgpBegin` reset — only the
    /// deltas induced by a scenario's failed interfaces propagate.
    /// Returns the rounds taken (0 when already quiescent).
    pub fn run_warm_fixpoint(&self, opts: &ClusterOptions) -> Result<usize, RuntimeError> {
        let _span = s2_obs::span!("scenario.warm_fixpoint");
        self.fleet_at_checkpoint.store(false, Ordering::Release);
        let mut round = 0;
        let mut stalled_since: Option<Stopwatch> = None;
        while round < opts.max_rounds {
            let before = self.probe_net("warm-probe")?;
            self.barrier("warm-export", || Command::BgpExport)?;
            let replies = self.barrier("warm-apply", || Command::BgpApply)?;
            let released = self.net.tick_delayed();
            self.check_wire_fatal()?;
            let probe = self.probe_net("warm-probe")?;
            let lost = probe.losses != before.losses;
            let quiet = Self::all_unchanged(&replies)
                && !lost
                && probe.disturbances == before.disturbances
                && released == 0
                && self.net.held_count() == 0;
            if lost || released > 0 {
                self.barrier("warm-resync", || Command::BgpResync)?;
            }
            if quiet && probe.in_flight == 0 {
                return Ok(round + 1);
            }
            if quiet {
                let since = *stalled_since.get_or_insert_with(Stopwatch::start);
                if since.elapsed() > self.config.barrier_timeout {
                    break;
                }
            } else {
                stalled_since = None;
                round += 1;
            }
            self.stall_for_in_flight(&probe);
        }
        Err(RuntimeError::NotConverged {
            protocol: "bgp-warm",
            rounds: opts.max_rounds,
        })
    }

    /// Collects the workers' *current* RIBs (base plus BGP) into a fresh
    /// snapshot — the scenario counterpart of the checkpointed collection
    /// inside `run_control_plane`, with failed interfaces filtered out by
    /// the switch models themselves.
    pub fn collect_full_rib(&self) -> Result<RibSnapshot, RuntimeError> {
        let mut store = RibStore::new(self.model.topology.node_count());
        self.collect_rib("collect-base-rib", || Command::CollectBaseRib, &mut store)?;
        self.collect_rib("collect-bgp-rib", || Command::CollectBgpRib, &mut store)?;
        Ok(store.snapshot())
    }

    /// A scenario DPV pass over warm forwarding state: patches only the
    /// `changed` nodes' predicates from `rib` (reusing the baseline
    /// packet space and BDD manager), masks `failed_ports` in the
    /// forwarding step, then re-verifies **only the changed packet
    /// space** — exactly like [`Cluster::run_dpv`] but without the
    /// full `DpSetup` recompile and without internal replay (the sweep
    /// layer owns retries, fencing, and rollback).
    ///
    /// Destination scoping: the patch barrier returns each node's
    /// changed destination prefixes (RIB diffs plus failed-port route
    /// prefixes), which are closed over the prefix dependency graph and
    /// pushed backwards along the baseline forwarding graph to find,
    /// per source, the destinations the scenario can perturb. Each
    /// source is injected only over that scope — sources with an empty
    /// scope are skipped entirely — and the workers splice
    /// `(old ∧ ¬changed) ∨ recomputed`, so the returned verdicts are
    /// byte-identical to a cold full-space pass. When the changed space
    /// covers all of `dst_space`, or when no baseline was stored by
    /// [`Cluster::scenario_checkpoint`], the pass falls back to a plain
    /// full-space drive.
    #[allow(clippy::too_many_arguments)]
    pub fn run_scenario_dpv(
        &self,
        rib: Arc<RibSnapshot>,
        changed: Vec<NodeId>,
        failed_ports: Vec<(NodeId, InterfaceId)>,
        sources: Vec<NodeId>,
        expected: Vec<(NodeId, Vec<Prefix>)>,
        dst_space: Prefix,
        waypoints: BTreeMap<NodeId, u16>,
    ) -> Result<DpvRunStats, RuntimeError> {
        let mut stats = DpvRunStats::default();
        let t0 = Stopwatch::start();
        let changed = Arc::new(changed);
        let failed_ports = Arc::new(failed_ports);
        let mut changed_dst: BTreeMap<NodeId, BTreeSet<Prefix>> = BTreeMap::new();
        for reply in self.barrier("dp-patch", || Command::DpPatch {
            rib: rib.clone(),
            changed: changed.clone(),
            failed_ports: failed_ports.clone(),
        })? {
            match reply {
                Reply::ChangedDst(entries) => {
                    for (n, ps) in entries {
                        changed_dst.entry(n).or_default().extend(ps);
                    }
                }
                other => return Err(Self::violation("ChangedDst", &other)),
            }
        }
        let scopes = {
            let base = self.scenario_base.lock();
            base.as_ref().map(|b| {
                // A dependent prefix can change whenever its dependee
                // does — close each node's diff before trusting it.
                for set in changed_dst.values_mut() {
                    s2_shard::impact::close_over_components(set, &b.dpdg);
                }
                scope_sources(&self.model, &b.rib, &changed_dst, &sources)
            })
        };
        stats.pred_time = t0.elapsed();
        let Some(scopes) = scopes else {
            // No checkpointed baseline to splice against: full-space
            // (the staged overlays must be compiled whole).
            Self::expect_ok(self.barrier("dp-compile", || Command::DpCompile)?)?;
            self.dpv_drive(&mut stats, &sources, None, &expected, dst_space, &waypoints)?;
            return Ok(stats);
        };
        let all_changed: BTreeSet<Prefix> = changed_dst.into_values().flatten().collect();
        let fraction = covered_fraction(&all_changed, dst_space);
        let metrics = s2_obs::Registry::global();
        metrics.counter("dpv.scoped.runs").inc();
        metrics
            .counter("dpv.scoped.changed_prefixes")
            .add(all_changed.len() as u64);
        metrics
            .counter("dpv.scoped.space_permille")
            .add((fraction * 1000.0) as u64);
        if fraction >= 1.0 {
            // The whole destination space is perturbed: scoping would
            // re-verify everything anyway, so skip the splice machinery
            // (`DpPatch` already cleared the workers' scopes).
            metrics.counter("dpv.scoped.fallback_full").inc();
            stats.scoped = Some(DpvScopedStats {
                changed_prefixes: all_changed.len(),
                changed_dst_fraction: fraction,
                fallback_full: true,
                ..DpvScopedStats::default()
            });
            Self::expect_ok(self.barrier("dp-compile", || Command::DpCompile)?)?;
            self.dpv_drive(&mut stats, &sources, None, &expected, dst_space, &waypoints)?;
            return Ok(stats);
        }
        let inject: Vec<NodeId> = sources
            .iter()
            .copied()
            .filter(|s| scopes.get(s).is_some_and(|ps| !ps.is_empty()))
            .collect();
        let skipped = sources.len() - inject.len();
        metrics
            .counter("dpv.scoped.skipped_sources")
            .add(skipped as u64);
        let scope_list: Arc<Vec<(NodeId, Vec<Prefix>)>> = Arc::new(
            sources
                .iter()
                .map(|&s| {
                    let ps = scopes
                        .get(&s)
                        .map(|ps| ps.iter().copied().collect())
                        .unwrap_or_default();
                    (s, ps)
                })
                .collect(),
        );
        Self::expect_ok(self.barrier("dp-scope", || Command::DpScope {
            scopes: scope_list.clone(),
        })?)?;
        stats.scoped = Some(DpvScopedStats {
            changed_prefixes: all_changed.len(),
            changed_dst_fraction: fraction,
            skipped_sources: skipped,
            injected_sources: inject.len(),
            splice_ops: 0,
            fallback_full: false,
        });
        let drive = Stopwatch::start();
        self.dpv_drive(&mut stats, &sources, Some(&inject), &expected, dst_space, &waypoints)?;
        metrics
            .counter("dpv.scoped.drive_us")
            .add(drive.elapsed().as_micros() as u64);
        if let Some(s) = stats.scoped.as_ref() {
            metrics.counter("dpv.scoped.splice_ops").add(s.splice_ops);
        }
        Ok(stats)
    }

    /// Stops every worker and joins every thread ever spawned, including
    /// the detached predecessors of respawned workers.
    pub fn shutdown(self) {
        let state = self.state.into_inner();
        for h in &state.handles {
            let _ = h.cmd.send(Command::Shutdown);
        }
        // Dropping the handles closes the command channels, which releases
        // hung workers' drain loops.
        drop(state.handles);
        for t in state.threads.into_iter().flatten() {
            let _ = t.join();
        }
        for t in state.detached {
            let _ = t.join();
        }
        // With every worker gone, stop the transport's supervision
        // threads and close its sockets (no-op for the channel backend).
        self.net.shutdown_transport();
    }
}

/// Per-source changed-destination scopes: changed prefix `p` lands in
/// `scope(s)` iff `s` can reach a node whose forwarding for `p` changed,
/// walking the *baseline* forwarding graph restricted to routes whose
/// prefix overlaps `p` — every hop a packet destined into `p` could
/// take before the first changed node. Outside its scope a source
/// provably forwards exactly as the baseline did: any path from `s` to
/// a destination not in `scope(s)` crosses only nodes whose behaviour
/// for that destination is unchanged, so the baseline verdict stands.
fn scope_sources(
    model: &NetworkModel,
    base: &RibSnapshot,
    changed_dst: &BTreeMap<NodeId, BTreeSet<Prefix>>,
    sources: &[NodeId],
) -> BTreeMap<NodeId, BTreeSet<Prefix>> {
    let nodes = base.per_node.len();
    // Invert: changed prefix → the nodes changed for it.
    let mut by_prefix: BTreeMap<Prefix, Vec<NodeId>> = BTreeMap::new();
    for (&n, ps) in changed_dst {
        for &p in ps {
            by_prefix.entry(p).or_default().push(n);
        }
    }
    let mut scopes: BTreeMap<NodeId, BTreeSet<Prefix>> =
        sources.iter().map(|&s| (s, BTreeSet::new())).collect();
    for (&p, seeds) in &by_prefix {
        // Reverse adjacency of the p-overlap forwarding graph.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        for m in 0..nodes {
            let from = NodeId(m as u32);
            for r in base.node(from) {
                if !r.prefix.overlaps(p) {
                    continue;
                }
                for &e in &r.egress {
                    if let Some((n, _)) = model.topology.peer_of(from, e) {
                        rev[n.index()].push(m as u32);
                    }
                }
            }
        }
        let mut reached = vec![false; nodes];
        let mut queue: Vec<u32> = Vec::new();
        for &s in seeds {
            if s.index() < nodes && !reached[s.index()] {
                reached[s.index()] = true;
                queue.push(s.0);
            }
        }
        while let Some(n) = queue.pop() {
            for &m in &rev[n as usize] {
                if !reached[m as usize] {
                    reached[m as usize] = true;
                    queue.push(m);
                }
            }
        }
        for (s, scope) in scopes.iter_mut() {
            if reached.get(s.index()).copied().unwrap_or(false) {
                scope.insert(p);
            }
        }
    }
    scopes
}

/// Fraction of `space`'s addresses covered by `prefixes`, interval-
/// merged so overlapping and nested prefixes count once.
fn covered_fraction(prefixes: &BTreeSet<Prefix>, space: Prefix) -> f64 {
    let lo = u64::from(space.first_addr().0);
    let hi = u64::from(space.last_addr().0);
    let size = hi - lo + 1;
    let mut ivals: Vec<(u64, u64)> = prefixes
        .iter()
        .filter(|p| p.overlaps(space))
        .map(|p| {
            (
                u64::from(p.first_addr().0).max(lo),
                u64::from(p.last_addr().0).min(hi),
            )
        })
        .collect();
    ivals.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in ivals {
        match cur {
            Some((ca, cb)) if a <= cb + 1 => cur = Some((ca, cb.max(b))),
            Some((ca, cb)) => {
                covered += cb - ca + 1;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((ca, cb)) = cur {
        covered += cb - ca + 1;
    }
    covered as f64 / size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::{BgpNeighbor, BgpProcess, DeviceConfig, InterfaceConfig, Network, Vendor};
    use s2_net::topology::Topology;
    use s2_net::Ipv4Addr;

    /// The 4-node line t0—m1—m2—t3 from the fixpoint tests: t0 announces
    /// two prefixes; everyone should learn them.
    fn line_model() -> NetworkModel {
        let mut topo = Topology::new();
        let names = ["t0", "m1", "m2", "t3"];
        let ids: Vec<NodeId> = names.iter().map(|n| topo.add_node(*n)).collect();
        topo.connect(ids[0], ids[1]);
        topo.connect(ids[1], ids[2]);
        topo.connect(ids[2], ids[3]);

        let mut cfgs: Vec<DeviceConfig> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mut c = DeviceConfig::new(*n, Vendor::A);
                c.bgp = Some(BgpProcess::new(
                    65000 + i as u32,
                    Ipv4Addr::new(1, 1, 1, i as u8 + 1),
                ));
                c
            })
            .collect();
        let subnets = [
            (Ipv4Addr::new(172, 16, 0, 0), Ipv4Addr::new(172, 16, 0, 1)),
            (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 3)),
            (Ipv4Addr::new(172, 16, 0, 4), Ipv4Addr::new(172, 16, 0, 5)),
        ];
        for (li, (i, j)) in [(0usize, 1usize), (1, 2), (2, 3)].iter().copied().enumerate() {
            let (ai, aj) = subnets[li];
            cfgs[i].interfaces.push(InterfaceConfig::new(format!("e{li}a"), ai, 31));
            cfgs[j].interfaces.push(InterfaceConfig::new(format!("e{li}b"), aj, 31));
            let asn_i = 65000 + i as u32;
            let asn_j = 65000 + j as u32;
            cfgs[i].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: aj,
                remote_as: asn_j,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
            cfgs[j].bgp.as_mut().unwrap().neighbors.push(BgpNeighbor {
                peer: ai,
                remote_as: asn_i,
                import_policy: None,
                export_policy: None,
                remove_private_as: false,
            });
        }
        for p in ["10.0.0.0/24", "10.0.1.0/24"] {
            cfgs[0].bgp.as_mut().unwrap().networks.push(Network {
                prefix: p.parse().unwrap(),
            });
        }
        NetworkModel::build(topo, cfgs).unwrap()
    }

    fn run_cp(model: &Arc<NetworkModel>, owners: Vec<u32>, workers: u32) -> (RibSnapshot, CpRunStats) {
        let cluster = Cluster::new(model.clone(), owners, workers, None);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let out = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        out
    }

    #[test]
    fn distributed_equals_monolithic_ribs() {
        let model = Arc::new(line_model());
        // Monolithic reference.
        let mut switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        s2_routing::converge_ospf(&model, &mut switches, 64).unwrap();
        s2_routing::converge_bgp(&model, &mut switches, None, 64).unwrap();
        let mut ref_store = RibStore::new(4);
        for n in model.topology.nodes() {
            ref_store.insert_all(n, switches[n.index()].base_rib_routes());
            ref_store.insert_all(n, switches[n.index()].bgp_rib_routes());
        }
        let reference = ref_store.snapshot();

        for owners in [vec![0, 0, 0, 0], vec![0, 0, 1, 1], vec![0, 1, 2, 3], vec![1, 0, 1, 0]] {
            let workers = owners.iter().max().unwrap() + 1;
            let (rib, stats) = run_cp(&model, owners.clone(), workers);
            assert_eq!(rib, reference, "owners {owners:?}");
            assert!(stats.bgp_rounds >= 4);
            if workers > 1 {
                assert!(stats.messages > 0, "cross-worker traffic expected");
            }
        }
    }

    #[test]
    fn distributed_dpv_checks_reachability() {
        let model = Arc::new(line_model());
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, None);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let (rib, _) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();

        let sources = vec![NodeId(0), NodeId(3)];
        let expected = vec![(NodeId(0), vec!["10.0.0.0/24".parse().unwrap()])];
        let stats = cluster
            .run_dpv(
                Arc::new(rib),
                sources,
                expected,
                "10.0.0.0/8".parse().unwrap(),
                BTreeMap::new(),
                &ClusterOptions::default(),
            )
            .unwrap();
        cluster.shutdown();
        // t3 reaches t0's prefix.
        assert_eq!(stats.reachable_pairs, 1, "{:?}", stats.unreachable_pairs);
        assert!(stats.unreachable_pairs.is_empty());
        assert_eq!(stats.loops, 0);
        // Packets crossed the worker boundary.
        assert!(stats.remote_packets > 0);
        assert!(stats.forward_rounds >= 2);
    }

    #[test]
    fn per_worker_memory_is_reported() {
        let model = Arc::new(line_model());
        let (_, stats) = run_cp(&model, vec![0, 0, 1, 1], 2);
        assert_eq!(stats.per_worker_peak.len(), 2);
        assert!(stats.max_worker_peak() > 0);
    }

    #[test]
    fn memory_budget_aborts_with_oom() {
        // A budget of 8 bytes cannot hold even a single-prefix shard, so
        // bisection bottoms out and the OOM is surfaced.
        let model = Arc::new(line_model());
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, Some(8));
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let err = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap_err();
        cluster.shutdown();
        assert!(matches!(err, RuntimeError::OutOfMemory { .. }));
    }

    #[test]
    fn sharded_distributed_run_matches_unsharded() {
        let model = Arc::new(line_model());
        let (reference, _) = run_cp(&model, vec![0, 1, 0, 1], 2);

        let cluster = Cluster::new(model.clone(), vec![0, 1, 0, 1], 2, None);
        let plan = ShardPlan {
            shards: vec![
                ["10.0.0.0/24".parse().unwrap()].into_iter().collect(),
                ["10.0.1.0/24".parse().unwrap()].into_iter().collect(),
            ],
        };
        let (rib, stats) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        assert_eq!(rib, reference);
        assert_eq!(stats.shards, 2);
    }

    #[test]
    fn killed_worker_is_recovered_and_result_is_identical() {
        let model = Arc::new(line_model());
        let (reference, _) = run_cp(&model, vec![0, 0, 1, 1], 2);

        let config = RuntimeConfig {
            barrier_timeout: Duration::from_secs(5),
            faults: FaultPlan::new().kill_worker(1, 6),
            ..RuntimeConfig::default()
        };
        let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let (rib, stats) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        assert_eq!(rib, reference, "recovered run must be bit-identical");
        assert!(stats.recoveries >= 1, "the kill must trigger a recovery");
    }

    /// A hung worker blows the barrier deadline; the controller must
    /// dump the flight recorder (trigger `barrier-deadline:<phase>`)
    /// before recovering, so the hang comes with its trace lead-up.
    #[cfg(feature = "obs")]
    #[test]
    fn hung_worker_dumps_flight_recorder_and_recovers() {
        let model = Arc::new(line_model());
        let (reference, _) = run_cp(&model, vec![0, 0, 1, 1], 2);

        let dump_path = std::env::temp_dir().join(format!(
            "s2-flight-hang-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&dump_path);
        s2_obs::trace::set_enabled(true);
        s2_obs::recorder::set_dump_path(Some(dump_path.clone()));

        let config = RuntimeConfig {
            barrier_timeout: Duration::from_millis(300),
            faults: FaultPlan::new().hang_worker(1, 6),
            ..RuntimeConfig::default()
        };
        let cluster = Cluster::with_config(model.clone(), vec![0, 0, 1, 1], 2, config);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let (rib, stats) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        assert_eq!(rib, reference, "recovered run must be bit-identical");
        assert!(stats.recoveries >= 1, "the hang must trigger a recovery");

        let dump = std::fs::read_to_string(&dump_path).expect("flight dump written");
        // One JSONL record per dump; later records (the recovery epoch
        // bump, dumps from other tests) may share the file.
        let record = dump
            .lines()
            .find(|l| l.contains("\"trigger\":\"barrier-deadline:"))
            .expect("dump must carry the barrier-deadline trigger");
        let doc = s2_obs::parse_json(record).expect("dump record is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(s2_obs::Json::as_str),
            Some("s2-flight-recorder/v1")
        );
        s2_obs::recorder::set_dump_path(None);
        let _ = std::fs::remove_file(&dump_path);
    }

    /// Both ports of the `a`—`b` link, for scenario fail sets.
    fn link_ports(model: &NetworkModel, a: NodeId, b: NodeId) -> Vec<(NodeId, InterfaceId)> {
        for l in model.topology.links() {
            if (l.a.0 == a && l.b.0 == b) || (l.a.0 == b && l.b.0 == a) {
                return vec![l.a, l.b];
            }
        }
        panic!("no {a:?}—{b:?} link");
    }

    /// The full scenario lifecycle over a warm cluster: checkpoint, fail
    /// the middle link of the line (partitioning t3 from t0), warm
    /// re-convergence, patched DPV showing the loss, then rollback — and
    /// a final pass proving the baseline verdicts are byte-identical,
    /// i.e. the scenario did not poison the warm state.
    #[test]
    fn scenario_cycle_detects_partition_and_rolls_back_clean() {
        let model = Arc::new(line_model());
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, None);
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let plan = ShardPlan::single(s2_shard::collect_prefixes(&switches));
        let (rib, _) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        let rib = Arc::new(rib);

        let sources = vec![NodeId(3)];
        let expected = vec![(NodeId(0), vec!["10.0.0.0/24".parse().unwrap()])];
        let dst: Prefix = "10.0.0.0/8".parse().unwrap();
        let baseline = cluster
            .run_dpv(
                rib.clone(),
                sources.clone(),
                expected.clone(),
                dst,
                BTreeMap::new(),
                &ClusterOptions::default(),
            )
            .unwrap();
        assert_eq!(baseline.reachable_pairs, 1);
        cluster.scenario_checkpoint(rib.clone()).unwrap();

        // Fail m1—m2: the only t0↔t3 path. Warm rounds must propagate the
        // withdrawal, and the patched DPV must see the partition.
        let failed = link_ports(&model, NodeId(1), NodeId(2));
        cluster.scenario_begin(&failed).unwrap();
        let rounds = cluster
            .run_warm_fixpoint(&ClusterOptions::default())
            .unwrap();
        assert!(rounds >= 1);
        let scen_rib = Arc::new(cluster.collect_full_rib().unwrap());
        assert_ne!(*scen_rib, *rib, "failure must change the RIBs");
        let all_nodes: Vec<NodeId> = model.topology.nodes().collect();
        let scen = cluster
            .run_scenario_dpv(
                scen_rib,
                all_nodes,
                failed.clone(),
                sources.clone(),
                expected.clone(),
                dst,
                BTreeMap::new(),
            )
            .unwrap();
        assert_eq!(scen.reachable_pairs, 0, "partitioned line must lose t3→t0");
        assert_eq!(scen.unreachable_pairs, vec![(NodeId(3), NodeId(0))]);

        // Fence + rollback, then a patch-free pass over the baseline RIB:
        // verdicts must be byte-identical to the warm baseline.
        cluster.fence().unwrap();
        cluster.scenario_rollback().unwrap();
        let again = cluster
            .run_scenario_dpv(
                rib.clone(),
                Vec::new(),
                Vec::new(),
                sources,
                expected,
                dst,
                BTreeMap::new(),
            )
            .unwrap();
        cluster.shutdown();
        assert_eq!(again.reachable_pairs, 1);
        assert_eq!(again.verdict_sets, baseline.verdict_sets);
    }

    #[test]
    fn oom_on_splittable_shard_degrades_by_bisection() {
        // Find a budget that fits each single-prefix shard but not the
        // two-prefix shard, then check the full shard completes via
        // bisection instead of erroring.
        let model = Arc::new(line_model());
        let switches: Vec<_> = model
            .topology
            .nodes()
            .map(|n| s2_routing::SwitchModel::new(&model, n))
            .collect();
        let all = s2_shard::collect_prefixes(&switches);
        let (reference, full_stats) = run_cp(&model, vec![0, 0, 1, 1], 2);

        // Peak with singleton shards — the per-shard high-water mark.
        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, None);
        let split_plan = ShardPlan {
            shards: all.iter().map(|p| [*p].into_iter().collect()).collect(),
        };
        let (_, split_stats) = cluster
            .run_control_plane(&split_plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        let split_peak = split_stats.max_worker_peak();
        let full_peak = full_stats.max_worker_peak();
        assert!(split_peak < full_peak, "splitting must reduce peak memory");
        let budget = (split_peak + full_peak) / 2;

        let cluster = Cluster::new(model.clone(), vec![0, 0, 1, 1], 2, Some(budget));
        let plan = ShardPlan::single(all);
        let (rib, stats) = cluster
            .run_control_plane(&plan, &ClusterOptions::default())
            .unwrap();
        cluster.shutdown();
        assert_eq!(rib, reference, "degraded run must be bit-identical");
        assert!(stats.oom_splits >= 1, "the budget must force a bisection");
        assert!(stats.shards >= 2, "the shard must have been split");
    }
}
