//! Admin protocol and warm-checkpoint codec for the incremental daemon.
//!
//! The daemon (`s2 daemon`, crates/s2/src/daemon.rs) listens on a TCP
//! admin socket and speaks two dialects over the same port:
//!
//! * **binary** — the `kind:u8 len:u32 payload` envelope of
//!   [`crate::tcp`], kinds [`K_ADMIN_REQUEST`]/[`K_ADMIN_RESPONSE`]. Used
//!   by `s2 admin` and CI.
//! * **text** — any first byte ≥ 0x20 starts a newline-terminated command
//!   (`status`, `link-down a b`, …) answered with one line of JSON, so
//!   `echo status | nc` works. [`parse_text_command`] and
//!   [`render_text_response`] implement it; the daemon only does the
//!   peek-and-dispatch.
//!
//! The module also owns the on-disk **warm checkpoint**: the converged
//! RIB snapshot plus the verdict summary, serialized with the same
//! hand-rolled bounds-checked codecs as [`crate::remote`] (the vendored
//! serde is a no-op stub, so nothing here can derive its way to disk),
//! wrapped in a `magic + fnv64 checksum + length` header and written via
//! write-temp-then-rename. A flipped byte or truncated file is detected
//! by checksum and surfaces as [`CheckpointError::Corrupt`] — the daemon
//! then falls back to a cold start rather than loading garbage.
//!
//! All decode paths are defensive in the [`crate::wire`] style: every
//! read bounds-checked, every tag validated, a malformed peer or file
//! yields an error — never a panic.

use crate::faults::FaultState;
use crate::tcp::{read_envelope, write_envelope};
use crate::wire::WireError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use s2_dataplane::FinalKind;
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::{RibRoute, RibSnapshot};
use s2_net::policy::Protocol;
use std::io::{self, Read, Write};
use std::path::Path;

/// Envelope kind of an admin request (client → daemon).
pub const K_ADMIN_REQUEST: u8 = 0x10;
/// Envelope kind of an admin response (daemon → client).
pub const K_ADMIN_RESPONSE: u8 = 0x11;

/// Upper bound on an admin envelope. Route-map edits carry a device
/// config blob, so this is generous — but bounded, so a corrupt length
/// prefix cannot ask the receiver to allocate without limit.
pub const MAX_ADMIN_FRAME: usize = 8 << 20;

/// Magic bytes opening a warm-checkpoint file (versioned).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"S2CKPT01";

// ---- message types ----

/// A configuration delta submitted to the daemon. Devices and link
/// endpoints are referenced by hostname; the daemon resolves them
/// against its model and rejects unknown names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaSpec {
    /// Fail the physical link between two nodes.
    LinkDown {
        /// One endpoint hostname.
        a: String,
        /// The other endpoint hostname.
        b: String,
    },
    /// Restore a previously failed link.
    LinkUp {
        /// One endpoint hostname.
        a: String,
        /// The other endpoint hostname.
        b: String,
    },
    /// Replace one device's configuration (route-map edit: the full
    /// updated config text for that device).
    RouteMapEdit {
        /// Hostname of the device being re-configured.
        device: String,
        /// The complete replacement config text.
        config: String,
    },
    /// Originate an extra BGP network on a device.
    PrefixAdd {
        /// Hostname of the originating device.
        device: String,
        /// The network to originate.
        prefix: Prefix,
    },
    /// Withdraw a BGP network from a device.
    PrefixWithdraw {
        /// Hostname of the originating device.
        device: String,
        /// The network to withdraw.
        prefix: Prefix,
    },
}

impl DeltaSpec {
    /// Short human label for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            DeltaSpec::LinkDown { .. } => "link-down",
            DeltaSpec::LinkUp { .. } => "link-up",
            DeltaSpec::RouteMapEdit { .. } => "route-map-edit",
            DeltaSpec::PrefixAdd { .. } => "prefix-add",
            DeltaSpec::PrefixWithdraw { .. } => "prefix-withdraw",
        }
    }
}

/// A request on the admin socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminRequest {
    /// Report daemon state.
    Status,
    /// Apply one delta, verify-then-commit.
    ApplyDelta(DeltaSpec),
    /// Scrape the telemetry plane: the controller-side aggregate plus
    /// per-worker snapshots and liveness. In the text dialect this is
    /// the `metrics` command, answered with a Prometheus
    /// text-exposition document instead of a JSON line.
    Metrics,
    /// Cheap liveness/readiness probe (`healthz` in text).
    Healthz,
    /// Checkpoint and exit.
    Shutdown,
}

/// One worker's slot in a fleet metrics scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    /// Worker id (also the `worker="<id>"` exposition label).
    pub id: u32,
    /// Whether the worker answered this scrape.
    pub up: bool,
    /// Whether the snapshot is a cached one from an earlier scrape
    /// (the worker stopped answering but its last view is still
    /// served, flagged stale).
    pub stale: bool,
    /// The worker's snapshot; `None` when it never answered at all.
    pub snapshot: Option<s2_obs::MetricsSnapshot>,
}

/// A reply on the admin socket.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminResponse {
    /// The delta verified and was committed.
    Committed {
        /// Committed generation after the delta.
        generation: u64,
        /// Wall time of the whole apply, milliseconds.
        ms: f64,
        /// Nodes whose RIB changed (0 for an escalated full rebuild).
        changed_nodes: u32,
        /// Whether the delta escalated to a full re-verification.
        escalated: bool,
        /// Whether all verified properties hold after the delta.
        all_clear: bool,
    },
    /// The delta failed validation or exhausted its retries; warm state
    /// is unchanged.
    Rejected {
        /// Why the delta was refused.
        reason: String,
        /// Verification attempts consumed before giving up.
        attempts: u32,
    },
    /// Daemon status.
    Status {
        /// Committed generation.
        generation: u64,
        /// Currently failed links.
        failed_links: u32,
        /// Whether all verified properties hold.
        all_clear: bool,
        /// Deltas committed since start.
        committed: u64,
        /// Deltas rejected since start.
        rejected: u64,
        /// Whether this process resumed from a warm checkpoint.
        warm_start: bool,
        /// [`verdict_hash`] over the committed verdict BDDs. ROBDD
        /// serialization is canonical, so equal hashes mean equal
        /// verdicts — CI compares this against a cold `s2 verify` run.
        verdict_hash: u64,
    },
    /// Fleet metrics for the scrape endpoint.
    Metrics {
        /// The merged controller-side snapshot (worker answers +
        /// traffic counters + process-global registry).
        aggregate: s2_obs::MetricsSnapshot,
        /// Per-worker series with liveness/staleness flags.
        workers: Vec<WorkerMetrics>,
    },
    /// Liveness/readiness probe answer.
    Healthz {
        /// Overall health: the daemon is serving and every worker
        /// answered the last scrape.
        ok: bool,
        /// Committed generation.
        generation: u64,
        /// Milliseconds since the daemon opened.
        uptime_ms: u64,
        /// Workers that answered the most recent poll.
        workers_up: u32,
        /// Fleet size.
        workers_total: u32,
        /// Milliseconds since the last warm checkpoint was written
        /// (`None` before the first).
        checkpoint_age_ms: Option<u64>,
    },
    /// Request-level failure (parse error, unknown device, …).
    Error(String),
    /// Acknowledges a shutdown request.
    ShuttingDown,
}

// ---- primitive codecs (crate::remote style) ----

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

/// Caps a peer-supplied element count before preallocation.
// s2-lint: sanitizer(alloc-bound): the returned count is min-capped at 64 Ki elements, so allocations sized by it are bounded regardless of the peer's declared length.
fn cap(n: usize) -> usize {
    n.min(1 << 16)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    need(buf, n)?;
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadValue("utf-8 string"))
}

fn put_prefix(buf: &mut BytesMut, p: &Prefix) {
    buf.put_u32(p.addr().0);
    buf.put_u8(p.len());
}

fn get_prefix(buf: &mut impl Buf) -> Result<Prefix, WireError> {
    need(buf, 5)?;
    let addr = buf.get_u32();
    let len = buf.get_u8();
    if len > 32 {
        return Err(WireError::BadValue("prefix length"));
    }
    Ok(Prefix::new(Ipv4Addr(addr), len))
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(u8::from(v));
}

fn get_bool(buf: &mut impl Buf) -> Result<bool, WireError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadValue("bool")),
    }
}

fn put_protocol(buf: &mut BytesMut, p: Protocol) {
    buf.put_u8(match p {
        Protocol::Connected => 0,
        Protocol::Static => 1,
        Protocol::Ospf => 2,
        Protocol::Bgp => 3,
        Protocol::Aggregate => 4,
    });
}

fn get_protocol(buf: &mut impl Buf) -> Result<Protocol, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => Protocol::Connected,
        1 => Protocol::Static,
        2 => Protocol::Ospf,
        3 => Protocol::Bgp,
        4 => Protocol::Aggregate,
        _ => return Err(WireError::BadValue("protocol")),
    })
}

fn put_rib_route(buf: &mut BytesMut, r: &RibRoute) {
    put_prefix(buf, &r.prefix);
    put_protocol(buf, r.protocol);
    buf.put_u16(r.egress.len() as u16);
    for e in &r.egress {
        buf.put_u16(e.0);
    }
    put_bool(buf, r.is_local);
    buf.put_u32(r.as_path_len);
}

fn get_rib_route(buf: &mut impl Buf) -> Result<RibRoute, WireError> {
    let prefix = get_prefix(buf)?;
    let protocol = get_protocol(buf)?;
    need(buf, 2)?;
    let n = buf.get_u16() as usize;
    need(buf, n * 2)?;
    let egress = (0..n).map(|_| InterfaceId(buf.get_u16())).collect();
    let is_local = get_bool(buf)?;
    need(buf, 4)?;
    let as_path_len = buf.get_u32();
    Ok(RibRoute {
        prefix,
        protocol,
        egress,
        is_local,
        as_path_len,
    })
}

/// Decodes a JSON-encoded metrics snapshot field.
fn get_snapshot(buf: &mut Bytes) -> Result<s2_obs::MetricsSnapshot, WireError> {
    let json = get_str(buf)?;
    s2_obs::MetricsSnapshot::from_json(&json).map_err(|_| WireError::BadValue("metrics snapshot"))
}

fn put_final_kind(buf: &mut BytesMut, k: FinalKind) {
    buf.put_u8(match k {
        FinalKind::Arrive => 0,
        FinalKind::Exit => 1,
        FinalKind::Blackhole => 2,
        FinalKind::Loop => 3,
    });
}

fn get_final_kind(buf: &mut impl Buf) -> Result<FinalKind, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => FinalKind::Arrive,
        1 => FinalKind::Exit,
        2 => FinalKind::Blackhole,
        3 => FinalKind::Loop,
        _ => return Err(WireError::BadValue("final kind")),
    })
}

// ---- request / response codecs ----

const T_REQ_STATUS: u8 = 1;
const T_REQ_DELTA: u8 = 2;
const T_REQ_SHUTDOWN: u8 = 3;
const T_REQ_METRICS: u8 = 4;
const T_REQ_HEALTHZ: u8 = 5;

const T_DELTA_LINK_DOWN: u8 = 1;
const T_DELTA_LINK_UP: u8 = 2;
const T_DELTA_ROUTE_MAP: u8 = 3;
const T_DELTA_PREFIX_ADD: u8 = 4;
const T_DELTA_PREFIX_WITHDRAW: u8 = 5;

const T_RESP_COMMITTED: u8 = 1;
const T_RESP_REJECTED: u8 = 2;
const T_RESP_STATUS: u8 = 3;
const T_RESP_ERROR: u8 = 4;
const T_RESP_SHUTTING_DOWN: u8 = 5;
const T_RESP_METRICS: u8 = 6;
const T_RESP_HEALTHZ: u8 = 7;

/// Serializes a request payload (without the envelope).
pub fn encode_request(req: &AdminRequest) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match req {
        AdminRequest::Status => buf.put_u8(T_REQ_STATUS),
        AdminRequest::ApplyDelta(delta) => {
            buf.put_u8(T_REQ_DELTA);
            match delta {
                DeltaSpec::LinkDown { a, b } => {
                    buf.put_u8(T_DELTA_LINK_DOWN);
                    put_str(&mut buf, a);
                    put_str(&mut buf, b);
                }
                DeltaSpec::LinkUp { a, b } => {
                    buf.put_u8(T_DELTA_LINK_UP);
                    put_str(&mut buf, a);
                    put_str(&mut buf, b);
                }
                DeltaSpec::RouteMapEdit { device, config } => {
                    buf.put_u8(T_DELTA_ROUTE_MAP);
                    put_str(&mut buf, device);
                    put_str(&mut buf, config);
                }
                DeltaSpec::PrefixAdd { device, prefix } => {
                    buf.put_u8(T_DELTA_PREFIX_ADD);
                    put_str(&mut buf, device);
                    put_prefix(&mut buf, prefix);
                }
                DeltaSpec::PrefixWithdraw { device, prefix } => {
                    buf.put_u8(T_DELTA_PREFIX_WITHDRAW);
                    put_str(&mut buf, device);
                    put_prefix(&mut buf, prefix);
                }
            }
        }
        AdminRequest::Metrics => buf.put_u8(T_REQ_METRICS),
        AdminRequest::Healthz => buf.put_u8(T_REQ_HEALTHZ),
        AdminRequest::Shutdown => buf.put_u8(T_REQ_SHUTDOWN),
    }
    buf.to_vec()
}

/// Parses a request payload.
pub fn decode_request(payload: &[u8]) -> Result<AdminRequest, WireError> {
    let mut buf = Bytes::from(payload);
    need(&buf, 1)?;
    let req = match buf.get_u8() {
        T_REQ_STATUS => AdminRequest::Status,
        T_REQ_DELTA => {
            need(&buf, 1)?;
            let delta = match buf.get_u8() {
                T_DELTA_LINK_DOWN => DeltaSpec::LinkDown {
                    a: get_str(&mut buf)?,
                    b: get_str(&mut buf)?,
                },
                T_DELTA_LINK_UP => DeltaSpec::LinkUp {
                    a: get_str(&mut buf)?,
                    b: get_str(&mut buf)?,
                },
                T_DELTA_ROUTE_MAP => DeltaSpec::RouteMapEdit {
                    device: get_str(&mut buf)?,
                    config: get_str(&mut buf)?,
                },
                T_DELTA_PREFIX_ADD => DeltaSpec::PrefixAdd {
                    device: get_str(&mut buf)?,
                    prefix: get_prefix(&mut buf)?,
                },
                T_DELTA_PREFIX_WITHDRAW => DeltaSpec::PrefixWithdraw {
                    device: get_str(&mut buf)?,
                    prefix: get_prefix(&mut buf)?,
                },
                _ => return Err(WireError::BadValue("delta tag")),
            };
            AdminRequest::ApplyDelta(delta)
        }
        T_REQ_METRICS => AdminRequest::Metrics,
        T_REQ_HEALTHZ => AdminRequest::Healthz,
        T_REQ_SHUTDOWN => AdminRequest::Shutdown,
        _ => return Err(WireError::BadValue("admin request tag")),
    };
    if buf.remaining() > 0 {
        return Err(WireError::BadValue("trailing request bytes"));
    }
    Ok(req)
}

/// Serializes a response payload (without the envelope).
pub fn encode_response(resp: &AdminResponse) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match resp {
        AdminResponse::Committed {
            generation,
            ms,
            changed_nodes,
            escalated,
            all_clear,
        } => {
            buf.put_u8(T_RESP_COMMITTED);
            buf.put_u64(*generation);
            buf.put_u64(ms.to_bits());
            buf.put_u32(*changed_nodes);
            put_bool(&mut buf, *escalated);
            put_bool(&mut buf, *all_clear);
        }
        AdminResponse::Rejected { reason, attempts } => {
            buf.put_u8(T_RESP_REJECTED);
            put_str(&mut buf, reason);
            buf.put_u32(*attempts);
        }
        AdminResponse::Status {
            generation,
            failed_links,
            all_clear,
            committed,
            rejected,
            warm_start,
            verdict_hash,
        } => {
            buf.put_u8(T_RESP_STATUS);
            buf.put_u64(*generation);
            buf.put_u32(*failed_links);
            put_bool(&mut buf, *all_clear);
            buf.put_u64(*committed);
            buf.put_u64(*rejected);
            put_bool(&mut buf, *warm_start);
            buf.put_u64(*verdict_hash);
        }
        // Snapshots cross as their canonical JSON encoding (BTreeMap
        // order — deterministic bytes), like `Reply::Metrics` on the
        // control channel.
        AdminResponse::Metrics { aggregate, workers } => {
            buf.put_u8(T_RESP_METRICS);
            put_str(&mut buf, &aggregate.to_json());
            buf.put_u32(workers.len() as u32);
            for w in workers {
                buf.put_u32(w.id);
                put_bool(&mut buf, w.up);
                put_bool(&mut buf, w.stale);
                match &w.snapshot {
                    Some(s) => {
                        buf.put_u8(1);
                        put_str(&mut buf, &s.to_json());
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        AdminResponse::Healthz {
            ok,
            generation,
            uptime_ms,
            workers_up,
            workers_total,
            checkpoint_age_ms,
        } => {
            buf.put_u8(T_RESP_HEALTHZ);
            put_bool(&mut buf, *ok);
            buf.put_u64(*generation);
            buf.put_u64(*uptime_ms);
            buf.put_u32(*workers_up);
            buf.put_u32(*workers_total);
            match checkpoint_age_ms {
                Some(age) => {
                    buf.put_u8(1);
                    buf.put_u64(*age);
                }
                None => buf.put_u8(0),
            }
        }
        AdminResponse::Error(msg) => {
            buf.put_u8(T_RESP_ERROR);
            put_str(&mut buf, msg);
        }
        AdminResponse::ShuttingDown => buf.put_u8(T_RESP_SHUTTING_DOWN),
    }
    buf.to_vec()
}

/// Parses a response payload.
pub fn decode_response(payload: &[u8]) -> Result<AdminResponse, WireError> {
    let mut buf = Bytes::from(payload);
    need(&buf, 1)?;
    let resp = match buf.get_u8() {
        T_RESP_COMMITTED => {
            need(&buf, 8 + 8 + 4)?;
            let generation = buf.get_u64();
            let ms = f64::from_bits(buf.get_u64());
            let changed_nodes = buf.get_u32();
            if !ms.is_finite() || ms < 0.0 {
                return Err(WireError::BadValue("committed ms"));
            }
            AdminResponse::Committed {
                generation,
                ms,
                changed_nodes,
                escalated: get_bool(&mut buf)?,
                all_clear: get_bool(&mut buf)?,
            }
        }
        T_RESP_REJECTED => {
            let reason = get_str(&mut buf)?;
            need(&buf, 4)?;
            AdminResponse::Rejected {
                reason,
                attempts: buf.get_u32(),
            }
        }
        T_RESP_STATUS => {
            need(&buf, 8 + 4)?;
            let generation = buf.get_u64();
            let failed_links = buf.get_u32();
            let all_clear = get_bool(&mut buf)?;
            need(&buf, 16)?;
            let committed = buf.get_u64();
            let rejected = buf.get_u64();
            let warm_start = get_bool(&mut buf)?;
            need(&buf, 8)?;
            AdminResponse::Status {
                generation,
                failed_links,
                all_clear,
                committed,
                rejected,
                warm_start,
                verdict_hash: buf.get_u64(),
            }
        }
        T_RESP_METRICS => {
            let aggregate = get_snapshot(&mut buf)?;
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut workers = Vec::with_capacity(cap(n));
            for _ in 0..n {
                need(&buf, 4)?;
                let id = buf.get_u32();
                let up = get_bool(&mut buf)?;
                let stale = get_bool(&mut buf)?;
                need(&buf, 1)?;
                let snapshot = match buf.get_u8() {
                    0 => None,
                    1 => Some(get_snapshot(&mut buf)?),
                    _ => return Err(WireError::BadValue("option discriminant")),
                };
                workers.push(WorkerMetrics {
                    id,
                    up,
                    stale,
                    snapshot,
                });
            }
            AdminResponse::Metrics { aggregate, workers }
        }
        T_RESP_HEALTHZ => {
            let ok = get_bool(&mut buf)?;
            need(&buf, 8 + 8 + 4 + 4 + 1)?;
            let generation = buf.get_u64();
            let uptime_ms = buf.get_u64();
            let workers_up = buf.get_u32();
            let workers_total = buf.get_u32();
            let checkpoint_age_ms = match buf.get_u8() {
                0 => None,
                1 => {
                    need(&buf, 8)?;
                    Some(buf.get_u64())
                }
                _ => return Err(WireError::BadValue("option discriminant")),
            };
            AdminResponse::Healthz {
                ok,
                generation,
                uptime_ms,
                workers_up,
                workers_total,
                checkpoint_age_ms,
            }
        }
        T_RESP_ERROR => AdminResponse::Error(get_str(&mut buf)?),
        T_RESP_SHUTTING_DOWN => AdminResponse::ShuttingDown,
        _ => return Err(WireError::BadValue("admin response tag")),
    };
    if buf.remaining() > 0 {
        return Err(WireError::BadValue("trailing response bytes"));
    }
    Ok(resp)
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("admin wire: {e}"))
}

/// Writes one framed request.
pub fn write_request(w: &mut impl Write, req: &AdminRequest) -> io::Result<()> {
    write_envelope(w, K_ADMIN_REQUEST, &encode_request(req))
}

/// Reads one framed request. `InvalidData` on a bad kind or payload.
pub fn read_request(r: &mut impl Read) -> io::Result<AdminRequest> {
    let (kind, payload) = read_envelope(r, MAX_ADMIN_FRAME)?;
    if kind != K_ADMIN_REQUEST {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected admin kind {kind}"),
        ));
    }
    decode_request(&payload).map_err(wire_to_io)
}

/// Writes one framed response.
pub fn write_response(w: &mut impl Write, resp: &AdminResponse) -> io::Result<()> {
    write_envelope(w, K_ADMIN_RESPONSE, &encode_response(resp))
}

/// Reads one framed response. `InvalidData` on a bad kind or payload.
pub fn read_response(r: &mut impl Read) -> io::Result<AdminResponse> {
    let (kind, payload) = read_envelope(r, MAX_ADMIN_FRAME)?;
    if kind != K_ADMIN_RESPONSE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected admin kind {kind}"),
        ));
    }
    decode_response(&payload).map_err(wire_to_io)
}

// ---- text dialect ----

/// Parses one text-mode admin line. Commands:
///
/// ```text
/// status
/// metrics
/// healthz
/// link-down <nodeA> <nodeB>
/// link-up <nodeA> <nodeB>
/// prefix-add <device> <a.b.c.d/len>
/// prefix-withdraw <device> <a.b.c.d/len>
/// shutdown
/// ```
///
/// Route-map edits carry a config blob and are binary/CLI-only.
pub fn parse_text_command(line: &str) -> Result<AdminRequest, String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().ok_or_else(|| "empty command".to_string())?;
    let mut two = |what: &str| -> Result<(String, String), String> {
        let a = words
            .next()
            .ok_or_else(|| format!("{cmd}: missing {what}"))?
            .to_string();
        let b = words
            .next()
            .ok_or_else(|| format!("{cmd}: missing {what}"))?
            .to_string();
        Ok((a, b))
    };
    let req = match cmd {
        "status" => AdminRequest::Status,
        "metrics" => AdminRequest::Metrics,
        "healthz" => AdminRequest::Healthz,
        "shutdown" => AdminRequest::Shutdown,
        "link-down" => {
            let (a, b) = two("node name")?;
            AdminRequest::ApplyDelta(DeltaSpec::LinkDown { a, b })
        }
        "link-up" => {
            let (a, b) = two("node name")?;
            AdminRequest::ApplyDelta(DeltaSpec::LinkUp { a, b })
        }
        "prefix-add" | "prefix-withdraw" => {
            let (device, raw) = two("device / prefix")?;
            let prefix: Prefix = raw
                .parse()
                .map_err(|_| format!("{cmd}: bad prefix {raw:?}"))?;
            if cmd == "prefix-add" {
                AdminRequest::ApplyDelta(DeltaSpec::PrefixAdd { device, prefix })
            } else {
                AdminRequest::ApplyDelta(DeltaSpec::PrefixWithdraw { device, prefix })
            }
        }
        "route-map-edit" => {
            return Err("route-map-edit needs a config payload; use `s2 admin route-map-edit`".into())
        }
        other => return Err(format!("unknown command {other:?}")),
    };
    if words.next().is_some() {
        return Err(format!("{cmd}: trailing arguments"));
    }
    Ok(req)
}

/// Bridges an admin metrics response into the Prometheus exposition
/// renderer: per-worker slots become labeled series, liveness flags
/// become the `s2_worker_up` / `s2_worker_stale` gauges. This is the
/// document `echo metrics | nc <daemon>` returns.
pub fn render_exposition(
    aggregate: &s2_obs::MetricsSnapshot,
    workers: &[WorkerMetrics],
) -> String {
    let series: Vec<s2_obs::expo::WorkerSeries> = workers
        .iter()
        .map(|w| s2_obs::expo::WorkerSeries {
            id: w.id,
            up: w.up,
            stale: w.stale,
            snapshot: w.snapshot.clone(),
        })
        .collect();
    s2_obs::expo::render(aggregate, &series)
}

/// Renders a response as one line of JSON for the text dialect — with
/// one exception: a `Metrics` response renders as the (multi-line)
/// Prometheus exposition document, which is the whole point of the
/// text-mode `metrics` command.
pub fn render_text_response(resp: &AdminResponse) -> String {
    use s2_obs::json::{push_f64, push_str};
    use std::fmt::Write as _;
    let mut out = String::new();
    match resp {
        AdminResponse::Committed {
            generation,
            ms,
            changed_nodes,
            escalated,
            all_clear,
        } => {
            out.push_str("{\"ok\":true,\"result\":\"committed\",\"generation\":");
            out.push_str(&generation.to_string());
            out.push_str(",\"ms\":");
            push_f64(&mut out, *ms);
            out.push_str(",\"changed_nodes\":");
            out.push_str(&changed_nodes.to_string());
            out.push_str(",\"escalated\":");
            out.push_str(if *escalated { "true" } else { "false" });
            out.push_str(",\"all_clear\":");
            out.push_str(if *all_clear { "true" } else { "false" });
            out.push('}');
        }
        AdminResponse::Rejected { reason, attempts } => {
            out.push_str("{\"ok\":false,\"result\":\"rejected\",\"reason\":");
            push_str(&mut out, reason);
            out.push_str(",\"attempts\":");
            out.push_str(&attempts.to_string());
            out.push('}');
        }
        AdminResponse::Status {
            generation,
            failed_links,
            all_clear,
            committed,
            rejected,
            warm_start,
            verdict_hash,
        } => {
            out.push_str("{\"ok\":true,\"result\":\"status\",\"generation\":");
            out.push_str(&generation.to_string());
            out.push_str(",\"failed_links\":");
            out.push_str(&failed_links.to_string());
            out.push_str(",\"all_clear\":");
            out.push_str(if *all_clear { "true" } else { "false" });
            out.push_str(",\"committed\":");
            out.push_str(&committed.to_string());
            out.push_str(",\"rejected\":");
            out.push_str(&rejected.to_string());
            out.push_str(",\"warm_start\":");
            out.push_str(if *warm_start { "true" } else { "false" });
            // Hex string: u64 hashes overflow an f64-backed JSON number.
            let _ = write!(out, ",\"verdict_hash\":\"{verdict_hash:016x}\"");
            out.push('}');
        }
        AdminResponse::Metrics { aggregate, workers } => {
            out.push_str(&render_exposition(aggregate, workers));
        }
        AdminResponse::Healthz {
            ok,
            generation,
            uptime_ms,
            workers_up,
            workers_total,
            checkpoint_age_ms,
        } => {
            out.push_str("{\"ok\":");
            out.push_str(if *ok { "true" } else { "false" });
            out.push_str(",\"result\":\"healthz\",\"generation\":");
            out.push_str(&generation.to_string());
            out.push_str(",\"uptime_ms\":");
            out.push_str(&uptime_ms.to_string());
            out.push_str(",\"workers_up\":");
            out.push_str(&workers_up.to_string());
            out.push_str(",\"workers_total\":");
            out.push_str(&workers_total.to_string());
            out.push_str(",\"checkpoint_age_ms\":");
            match checkpoint_age_ms {
                Some(age) => out.push_str(&age.to_string()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        AdminResponse::Error(msg) => {
            out.push_str("{\"ok\":false,\"result\":\"error\",\"reason\":");
            push_str(&mut out, msg);
            out.push('}');
        }
        AdminResponse::ShuttingDown => {
            out.push_str("{\"ok\":true,\"result\":\"shutting-down\"}");
        }
    }
    out
}

// ---- warm checkpoint ----

/// The verdict summary persisted alongside the RIB snapshot: everything
/// the daemon needs to answer status/queries and to prove byte-identity
/// against a cold oracle after a restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerdictSummary {
    /// `(src, dst)` pairs whose expected prefixes fully arrived.
    pub reachable_pairs: u64,
    /// Pairs with missing reachability.
    pub unreachable_pairs: Vec<(NodeId, NodeId)>,
    /// Sources with multipath-consistency violations.
    pub multipath_violations: Vec<NodeId>,
    /// Loop finals observed.
    pub loops: u64,
    /// Blackhole finals observed.
    pub blackholes: u64,
    /// Serialized per-(source, kind) verdict BDDs, sorted. ROBDD
    /// serialization is canonical across managers, so byte equality
    /// here is semantic equality.
    pub verdict_sets: Vec<(NodeId, FinalKind, Vec<u8>)>,
}

/// A complete on-disk warm checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmCheckpoint {
    /// Hash of the snapshot (topology + configs) this state belongs to;
    /// a restart against a different snapshot must go cold.
    pub snapshot_hash: u64,
    /// Committed generation at write time.
    pub generation: u64,
    /// Committed failed links, as model node pairs (sorted).
    pub failed_links: Vec<(NodeId, NodeId)>,
    /// The converged RIB of the committed state.
    pub rib: RibSnapshot,
    /// The committed verdicts.
    pub verdict: VerdictSummary,
}

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read (missing counts here too).
    Io(io::Error),
    /// The file was read but is not a valid checkpoint: bad magic,
    /// checksum mismatch, or malformed payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Canonical hash of a verdict-set collection: FNV-1a over each
/// `(node, kind, len, bytes)` record in order. Callers sort the sets by
/// `(node, kind)` first (the daemon and `s2 verify --verdict-hash` both
/// emit them sorted), so two runs agree iff their verdict BDDs agree.
pub fn verdict_hash(sets: &[(NodeId, FinalKind, Vec<u8>)]) -> u64 {
    let mut buf = BytesMut::new();
    buf.put_u64(sets.len() as u64);
    for (node, kind, bytes) in sets {
        buf.put_u32(node.0);
        put_final_kind(&mut buf, *kind);
        buf.put_u64(bytes.len() as u64);
        buf.put_slice(bytes);
    }
    fnv1a64(&buf)
}

/// FNV-1a 64-bit — the checkpoint (and snapshot) content hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a checkpoint payload (header not included).
pub fn encode_checkpoint(ckpt: &WarmCheckpoint) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64(ckpt.snapshot_hash);
    buf.put_u64(ckpt.generation);
    buf.put_u32(ckpt.failed_links.len() as u32);
    for (a, b) in &ckpt.failed_links {
        buf.put_u32(a.0);
        buf.put_u32(b.0);
    }
    buf.put_u32(ckpt.rib.per_node.len() as u32);
    for table in &ckpt.rib.per_node {
        buf.put_u32(table.len() as u32);
        for r in table {
            put_rib_route(&mut buf, r);
        }
    }
    let v = &ckpt.verdict;
    buf.put_u64(v.reachable_pairs);
    buf.put_u32(v.unreachable_pairs.len() as u32);
    for (s, d) in &v.unreachable_pairs {
        buf.put_u32(s.0);
        buf.put_u32(d.0);
    }
    buf.put_u32(v.multipath_violations.len() as u32);
    for n in &v.multipath_violations {
        buf.put_u32(n.0);
    }
    buf.put_u64(v.loops);
    buf.put_u64(v.blackholes);
    buf.put_u32(v.verdict_sets.len() as u32);
    for (node, kind, bytes) in &v.verdict_sets {
        buf.put_u32(node.0);
        put_final_kind(&mut buf, *kind);
        buf.put_u32(bytes.len() as u32);
        buf.put_slice(bytes);
    }
    buf.to_vec()
}

/// Parses a checkpoint payload.
pub fn decode_checkpoint(payload: &[u8]) -> Result<WarmCheckpoint, WireError> {
    let mut buf = Bytes::from(payload);
    need(&buf, 16)?;
    let snapshot_hash = buf.get_u64();
    let generation = buf.get_u64();
    need(&buf, 4)?;
    let n = buf.get_u32() as usize;
    need(&buf, n * 8)?;
    let failed_links = (0..n)
        .map(|_| (NodeId(buf.get_u32()), NodeId(buf.get_u32())))
        .collect();
    need(&buf, 4)?;
    let nodes = buf.get_u32() as usize;
    let mut per_node = Vec::with_capacity(cap(nodes));
    for _ in 0..nodes {
        need(&buf, 4)?;
        let routes = buf.get_u32() as usize;
        let mut table = Vec::with_capacity(cap(routes));
        for _ in 0..routes {
            table.push(get_rib_route(&mut buf)?);
        }
        per_node.push(table);
    }
    need(&buf, 8 + 4)?;
    let reachable_pairs = buf.get_u64();
    let n = buf.get_u32() as usize;
    need(&buf, n * 8)?;
    let unreachable_pairs = (0..n)
        .map(|_| (NodeId(buf.get_u32()), NodeId(buf.get_u32())))
        .collect();
    need(&buf, 4)?;
    let n = buf.get_u32() as usize;
    need(&buf, n * 4)?;
    let multipath_violations = (0..n).map(|_| NodeId(buf.get_u32())).collect();
    need(&buf, 16 + 4)?;
    let loops = buf.get_u64();
    let blackholes = buf.get_u64();
    let n = buf.get_u32() as usize;
    let mut verdict_sets = Vec::with_capacity(cap(n));
    for _ in 0..n {
        need(&buf, 4)?;
        let node = NodeId(buf.get_u32());
        let kind = get_final_kind(&mut buf)?;
        need(&buf, 4)?;
        let len = buf.get_u32() as usize;
        need(&buf, len)?;
        verdict_sets.push((node, kind, buf.copy_to_bytes(len).to_vec()));
    }
    if buf.remaining() > 0 {
        return Err(WireError::BadValue("trailing checkpoint bytes"));
    }
    Ok(WarmCheckpoint {
        snapshot_hash,
        generation,
        failed_links,
        rib: RibSnapshot { per_node },
        verdict: VerdictSummary {
            reachable_pairs,
            unreachable_pairs,
            multipath_violations,
            loops,
            blackholes,
            verdict_sets,
        },
    })
}

/// Frames a checkpoint payload into the on-disk file image:
/// `magic(8) checksum(8) len(8) payload`.
pub fn frame_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut file = Vec::with_capacity(24 + payload.len());
    file.extend_from_slice(&CHECKPOINT_MAGIC);
    file.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    file.extend_from_slice(payload);
    file
}

/// Reads the big-endian u64 header field starting at `at`.
fn header_u64(file: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = file.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

/// Validates a file image and returns the payload slice.
pub fn unframe_checkpoint(file: &[u8]) -> Result<&[u8], CheckpointError> {
    let truncated = || CheckpointError::Corrupt("truncated header");
    let magic = file.get(..8).ok_or_else(truncated)?;
    if magic != CHECKPOINT_MAGIC.as_slice() {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let checksum = header_u64(file, 8).ok_or_else(truncated)?;
    let len = header_u64(file, 16).ok_or_else(truncated)? as usize;
    let payload = file
        .get(24..)
        .filter(|p| p.len() == len)
        .ok_or(CheckpointError::Corrupt("length mismatch"))?;
    if fnv1a64(payload) != checksum {
        return Err(CheckpointError::Corrupt("checksum mismatch"));
    }
    Ok(payload)
}

/// Writes a checkpoint atomically: encode, frame, write `<path>.tmp`,
/// fsync, rename over `path`. A [`FaultPlan::corrupt_checkpoint`]
/// trigger flips a payload byte *after* the checksum is computed, so the
/// next load must detect it.
///
/// [`FaultPlan::corrupt_checkpoint`]: crate::faults::FaultPlan::corrupt_checkpoint
pub fn write_checkpoint(
    path: &Path,
    ckpt: &WarmCheckpoint,
    faults: &FaultState,
) -> io::Result<()> {
    let payload = encode_checkpoint(ckpt);
    let mut file = frame_checkpoint(&payload);
    let idx = faults.next_checkpoint_index();
    if faults.corrupts_checkpoint(idx) {
        if let Some(b) = file.last_mut() {
            *b ^= 0xff;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&file)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads and validates a checkpoint. Every corruption mode — bad magic,
/// flipped byte, truncation, malformed payload — comes back as
/// [`CheckpointError::Corrupt`]; a missing file is `Io`.
pub fn load_checkpoint(path: &Path) -> Result<WarmCheckpoint, CheckpointError> {
    let file = std::fs::read(path)?;
    let payload = unframe_checkpoint(&file)?;
    decode_checkpoint(payload).map_err(|_| CheckpointError::Corrupt("payload decode"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn sample_checkpoint() -> WarmCheckpoint {
        WarmCheckpoint {
            snapshot_hash: 0xdead_beef_0042,
            generation: 7,
            failed_links: vec![(NodeId(1), NodeId(4))],
            rib: RibSnapshot {
                per_node: vec![
                    vec![RibRoute {
                        prefix: Prefix::new(Ipv4Addr(0x0a000000), 24),
                        protocol: Protocol::Bgp,
                        egress: vec![InterfaceId(2), InterfaceId(3)],
                        is_local: false,
                        as_path_len: 3,
                    }],
                    vec![],
                ],
            },
            verdict: VerdictSummary {
                reachable_pairs: 12,
                unreachable_pairs: vec![(NodeId(0), NodeId(1))],
                multipath_violations: vec![NodeId(5)],
                loops: 1,
                blackholes: 2,
                verdict_sets: vec![
                    (NodeId(0), FinalKind::Arrive, vec![1, 2, 3]),
                    (NodeId(1), FinalKind::Loop, vec![]),
                ],
            },
        }
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            AdminRequest::Status,
            AdminRequest::Shutdown,
            AdminRequest::ApplyDelta(DeltaSpec::LinkDown {
                a: "edge-0".into(),
                b: "agg-1".into(),
            }),
            AdminRequest::ApplyDelta(DeltaSpec::RouteMapEdit {
                device: "core-0".into(),
                config: "hostname core-0\n".into(),
            }),
            AdminRequest::ApplyDelta(DeltaSpec::PrefixAdd {
                device: "edge-3".into(),
                prefix: Prefix::new(Ipv4Addr(0x0a630000), 16),
            }),
        ];
        for req in reqs {
            assert_eq!(decode_request(&encode_request(&req)), Ok(req.clone()));
        }
    }

    fn sample_metrics_response() -> AdminResponse {
        let mut aggregate = s2_obs::MetricsSnapshot::default();
        aggregate.counter("daemon.delta.committed", 3);
        aggregate.gauge_max("mem.peak_bytes", 1 << 20);
        let mut w0 = s2_obs::MetricsSnapshot::default();
        w0.counter("dpv.scoped.runs", 2);
        AdminResponse::Metrics {
            aggregate,
            workers: vec![
                WorkerMetrics {
                    id: 0,
                    up: true,
                    stale: false,
                    snapshot: Some(w0),
                },
                WorkerMetrics {
                    id: 1,
                    up: false,
                    stale: true,
                    snapshot: Some(s2_obs::MetricsSnapshot::default()),
                },
                WorkerMetrics {
                    id: 2,
                    up: false,
                    stale: false,
                    snapshot: None,
                },
            ],
        }
    }

    #[test]
    fn metrics_and_healthz_roundtrip() {
        for req in [AdminRequest::Metrics, AdminRequest::Healthz] {
            assert_eq!(decode_request(&encode_request(&req)), Ok(req.clone()));
        }
        let resps = [
            sample_metrics_response(),
            AdminResponse::Healthz {
                ok: true,
                generation: 4,
                uptime_ms: 12_345,
                workers_up: 2,
                workers_total: 2,
                checkpoint_age_ms: Some(777),
            },
            AdminResponse::Healthz {
                ok: false,
                generation: 0,
                uptime_ms: 1,
                workers_up: 0,
                workers_total: 2,
                checkpoint_age_ms: None,
            },
        ];
        for resp in resps {
            let back = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn metrics_response_truncations_error() {
        let full = encode_response(&sample_metrics_response());
        for cut in 0..full.len() {
            assert!(decode_response(&full[..cut]).is_err());
        }
    }

    /// The text-mode `metrics` answer is a valid Prometheus exposition
    /// document carrying both aggregate and per-worker series; the
    /// `healthz` answer stays a single JSON line.
    #[test]
    fn metrics_text_answer_is_valid_exposition() {
        let resp = sample_metrics_response();
        let doc = render_text_response(&resp);
        let stats = s2_obs::expo::validate(&doc).expect("exposition validates");
        assert!(stats.families.contains_key("s2_daemon_delta_committed"));
        assert!(doc.contains("s2_dpv_scoped_runs{worker=\"0\"} 2"));
        assert!(doc.contains("s2_worker_up{worker=\"2\"} 0"));
        assert!(doc.contains("s2_worker_stale{worker=\"1\"} 1"));

        let line = render_text_response(&AdminResponse::Healthz {
            ok: true,
            generation: 2,
            uptime_ms: 99,
            workers_up: 2,
            workers_total: 2,
            checkpoint_age_ms: None,
        });
        assert!(!line.contains('\n'));
        assert!(s2_obs::parse_json(&line).is_ok(), "not JSON: {line}");
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            AdminResponse::Committed {
                generation: 3,
                ms: 41.5,
                changed_nodes: 9,
                escalated: false,
                all_clear: true,
            },
            AdminResponse::Rejected {
                reason: "unknown device".into(),
                attempts: 2,
            },
            AdminResponse::Status {
                generation: 1,
                failed_links: 0,
                all_clear: true,
                committed: 10,
                rejected: 1,
                warm_start: true,
                verdict_hash: 0xfeed_beef_cafe_f00d,
            },
            AdminResponse::Error("nope".into()),
            AdminResponse::ShuttingDown,
        ];
        for resp in resps {
            let back = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn truncated_encodings_error() {
        let req = AdminRequest::ApplyDelta(DeltaSpec::PrefixWithdraw {
            device: "edge-1".into(),
            prefix: Prefix::new(Ipv4Addr(0x0a000000), 8),
        });
        let full = encode_request(&req);
        for cut in 0..full.len() {
            assert!(
                decode_request(&full[..cut]).is_err(),
                "prefix of len {cut} must not decode"
            );
        }
        let resp = AdminResponse::Rejected {
            reason: "x".into(),
            attempts: 1,
        };
        let full = encode_response(&resp);
        for cut in 0..full.len() {
            assert!(decode_response(&full[..cut]).is_err());
        }
    }

    #[test]
    fn non_finite_latency_rejected() {
        let resp = AdminResponse::Committed {
            generation: 1,
            ms: f64::NAN,
            changed_nodes: 0,
            escalated: false,
            all_clear: true,
        };
        assert!(decode_response(&encode_response(&resp)).is_err());
    }

    #[test]
    fn text_commands_parse() {
        assert_eq!(parse_text_command("status"), Ok(AdminRequest::Status));
        assert_eq!(parse_text_command("metrics"), Ok(AdminRequest::Metrics));
        assert_eq!(parse_text_command(" healthz "), Ok(AdminRequest::Healthz));
        assert!(parse_text_command("metrics extra").is_err());
        assert_eq!(
            parse_text_command("  link-down edge-0 agg-1 "),
            Ok(AdminRequest::ApplyDelta(DeltaSpec::LinkDown {
                a: "edge-0".into(),
                b: "agg-1".into()
            }))
        );
        assert_eq!(
            parse_text_command("prefix-add edge-0 10.99.0.0/16"),
            Ok(AdminRequest::ApplyDelta(DeltaSpec::PrefixAdd {
                device: "edge-0".into(),
                prefix: Prefix::new(Ipv4Addr(0x0a630000), 16),
            }))
        );
        assert!(parse_text_command("link-down edge-0").is_err());
        assert!(parse_text_command("prefix-add edge-0 10.0.0.0/40").is_err());
        assert!(parse_text_command("frobnicate").is_err());
        assert!(parse_text_command("status extra").is_err());
        assert!(parse_text_command("").is_err());
    }

    #[test]
    fn text_responses_are_valid_json() {
        let resps = [
            AdminResponse::Committed {
                generation: 2,
                ms: 10.0,
                changed_nodes: 4,
                escalated: true,
                all_clear: false,
            },
            AdminResponse::Error("bad \"quote\"".into()),
            AdminResponse::ShuttingDown,
        ];
        for resp in resps {
            let line = render_text_response(&resp);
            assert!(
                s2_obs::parse_json(&line).is_ok(),
                "not JSON: {line}"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = sample_checkpoint();
        let payload = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&payload), Ok(ckpt.clone()));
        let file = frame_checkpoint(&payload);
        assert_eq!(unframe_checkpoint(&file).unwrap(), &payload[..]);
    }

    #[test]
    fn checkpoint_file_roundtrip_and_corruption_fault() {
        let dir = std::env::temp_dir().join(format!("s2-admin-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.ckpt");
        let ckpt = sample_checkpoint();

        let clean = FaultState::new(FaultPlan::new());
        write_checkpoint(&path, &ckpt, &clean).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), ckpt);

        // The second write is corrupted by the plan; the first is not.
        let faulty = FaultState::new(FaultPlan::new().corrupt_checkpoint(1));
        write_checkpoint(&path, &ckpt, &faulty).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), ckpt);
        write_checkpoint(&path, &ckpt, &faulty).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt("checksum mismatch"))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_io_not_corrupt() {
        let err = load_checkpoint(Path::new("/nonexistent/s2/warm.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    proptest::proptest! {
        /// Arbitrary bytes never panic any admin decoder and never
        /// "succeed" at being a checkpoint (a random 24+ byte file has a
        /// 2^-64 checksum collision chance — treat as impossible).
        #[test]
        fn prop_arbitrary_admin_bytes_never_panic(
            raw in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512),
        ) {
            let _ = decode_request(&raw);
            let _ = decode_response(&raw);
            let _ = decode_checkpoint(&raw);
            let _ = unframe_checkpoint(&raw);
        }

        /// Any single-byte flip anywhere in a framed checkpoint is
        /// detected: the load either fails, or (flips confined to the
        /// checksum-protected header being impossible to miss) never
        /// yields a *different* checkpoint than the original.
        #[test]
        fn prop_single_byte_flip_detected(pos in 0usize..4096, bit in 0u8..8) {
            let ckpt = sample_checkpoint();
            let mut file = frame_checkpoint(&encode_checkpoint(&ckpt));
            let pos = pos % file.len();
            file[pos] ^= 1 << bit;
            match unframe_checkpoint(&file) {
                Err(_) => {}
                Ok(payload) => {
                    // Flip must have been... nowhere: any flip changes
                    // magic, checksum, length, or payload, all covered.
                    proptest::prop_assert!(false, "flip at {pos} undetected: {payload:?}");
                }
            }
        }

        /// Truncating a framed checkpoint at any point is detected.
        #[test]
        fn prop_truncation_detected(cut in 0usize..4096) {
            let ckpt = sample_checkpoint();
            let file = frame_checkpoint(&encode_checkpoint(&ckpt));
            let cut = cut % file.len();
            proptest::prop_assert!(unframe_checkpoint(&file[..cut]).is_err());
        }
    }
}
