//! The binary wire format for cross-worker traffic.
//!
//! Everything that crosses a worker boundary — BGP advertisements, OSPF
//! advertisements, symbolic packets — is encoded into a self-delimiting
//! byte string and decoded on the far side. The paper uses gRPC with Java
//! serialization; a hand-rolled codec keeps the serialization cost real
//! and observable (the sidecar counts every byte) without pulling in an
//! RPC stack.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! frame     := len:u32 src:u32 epoch:u32 seq:u64 crc:u32 message
//! message   := tag:u8 body
//! tag       := 1 (BGP) | 2 (OSPF) | 3 (packet)
//! bgp       := target_node:u32 target_session:u32 n:u32 route*
//! route     := prefix_addr:u32 prefix_len:u8 next_hop:u32 local_pref:u32
//!              med:u32 origin:u8 weight:u32 proto:u8
//!              plen:u16 asn:u32{plen} clen:u16 community:u32{clen}
//! ospf      := target_node:u32 via_iface:u16 n:u32 (addr:u32 len:u8 cost:u32)*
//! packet    := src:u32 node:u32 ingress:u16 hops:u16 bddlen:u32 bdd-bytes
//! ```
//!
//! Every message travelling between sidecars is wrapped in a *frame*
//! carrying the sending worker, the controller epoch it was sent in, a
//! per-link sequence number, and a CRC-32 of the message bytes. `len` is
//! the total frame length — redundant over an in-process channel, but it
//! is what makes truncation detectable once the transport is a byte
//! stream, and the receiver verifies it. Decode failures are *per-frame*
//! errors: the receiving sidecar counts and skips the bad frame rather
//! than tearing the worker down.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use s2_net::policy::Protocol;
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::{Ipv4Addr, Prefix};
use s2_routing::{BgpRoute, Origin};

/// Decoded form of a cross-worker message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A full per-session BGP advertisement.
    BgpAdvertisement {
        /// Receiving node.
        target_node: NodeId,
        /// Session index on the receiving node.
        target_session: u32,
        /// Advertised routes (may be empty — "nothing to advertise" must
        /// still clear the stale Adj-RIB-In).
        routes: Vec<BgpRoute>,
    },
    /// A full OSPF table advertisement.
    OspfAdvertisement {
        /// Receiving node.
        target_node: NodeId,
        /// The interface the advertisement arrives on (receiver side).
        via_iface: InterfaceId,
        /// `(prefix, cost)` pairs.
        entries: Vec<(Prefix, u32)>,
    },
    /// A symbolic packet; the BDD payload must be re-encoded into the
    /// receiving worker's manager.
    Packet {
        /// Injection node.
        src: NodeId,
        /// Receiving node.
        node: NodeId,
        /// Ingress port on the receiving node (`None` = injection).
        ingress: Option<InterfaceId>,
        /// Hops taken so far.
        hops: u16,
        /// Serialized BDD (see [`s2_bdd::serialize`]).
        bdd: Bytes,
    },
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// An unknown message tag.
    BadTag(u8),
    /// A field held an invalid value.
    BadValue(&'static str),
    /// The frame checksum did not match the payload.
    ChecksumMismatch {
        /// CRC-32 carried by the frame.
        expected: u32,
        /// CRC-32 computed over the received payload.
        actual: u32,
    },
    /// The frame's length field disagrees with the received byte count.
    LengthMismatch {
        /// Length carried by the frame.
        declared: u32,
        /// Bytes actually received.
        received: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadValue(what) => write!(f, "invalid {what}"),
            WireError::ChecksumMismatch { expected, actual } => {
                write!(f, "frame checksum mismatch (expected {expected:#010x}, got {actual:#010x})")
            }
            WireError::LengthMismatch { declared, received } => {
                write!(f, "frame length mismatch (declared {declared}, received {received})")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- framing ----

/// Size of the frame header preceding the message bytes.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 4;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// A decoded frame header plus the message payload it guarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending worker.
    pub src: u32,
    /// Controller epoch the frame was sent in.
    pub epoch: u32,
    /// Per-(sender, receiver) sequence number.
    pub seq: u64,
    /// The encoded [`Message`].
    pub payload: Bytes,
}

/// Wraps an encoded message in a checksummed frame.
pub fn frame(src: u32, epoch: u32, seq: u64, payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.put_u32((FRAME_HEADER_LEN + payload.len()) as u32);
    buf.put_u32(src);
    buf.put_u32(epoch);
    buf.put_u64(seq);
    buf.put_u32(crc32(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Validates and strips a frame header: length first, then checksum.
pub fn deframe(bytes: Bytes) -> Result<Frame, WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut buf = bytes.clone();
    let declared = buf.get_u32();
    if declared as usize != bytes.len() {
        return Err(WireError::LengthMismatch {
            declared,
            received: bytes.len() as u32,
        });
    }
    let src = buf.get_u32();
    let epoch = buf.get_u32();
    let seq = buf.get_u64();
    let expected = buf.get_u32();
    let payload = bytes.slice(FRAME_HEADER_LEN..);
    let actual = crc32(&payload);
    if actual != expected {
        return Err(WireError::ChecksumMismatch { expected, actual });
    }
    Ok(Frame {
        src,
        epoch,
        seq,
        payload,
    })
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

/// Encodes one route.
pub fn put_route(buf: &mut BytesMut, r: &BgpRoute) {
    buf.put_u32(r.prefix.addr().0);
    buf.put_u8(r.prefix.len());
    buf.put_u32(r.next_hop.0);
    buf.put_u32(r.local_pref);
    buf.put_u32(r.med);
    buf.put_u8(match r.origin {
        Origin::Igp => 0,
        Origin::Incomplete => 1,
    });
    buf.put_u32(r.weight);
    buf.put_u8(match r.source_protocol {
        Protocol::Connected => 0,
        Protocol::Static => 1,
        Protocol::Ospf => 2,
        Protocol::Bgp => 3,
        Protocol::Aggregate => 4,
    });
    buf.put_u16(r.as_path.len() as u16);
    for asn in &r.as_path {
        buf.put_u32(*asn);
    }
    buf.put_u16(r.communities.len() as u16);
    for c in &r.communities {
        buf.put_u32(*c);
    }
}

/// Decodes one route.
pub fn get_route(buf: &mut impl Buf) -> Result<BgpRoute, WireError> {
    need(buf, 4 + 1 + 4 + 4 + 4 + 1 + 4 + 1 + 2)?;
    let addr = buf.get_u32();
    let len = buf.get_u8();
    if len > 32 {
        return Err(WireError::BadValue("prefix length"));
    }
    let prefix = Prefix::new(Ipv4Addr(addr), len);
    let next_hop = Ipv4Addr(buf.get_u32());
    let local_pref = buf.get_u32();
    let med = buf.get_u32();
    let origin = match buf.get_u8() {
        0 => Origin::Igp,
        1 => Origin::Incomplete,
        _ => return Err(WireError::BadValue("origin")),
    };
    let weight = buf.get_u32();
    let source_protocol = match buf.get_u8() {
        0 => Protocol::Connected,
        1 => Protocol::Static,
        2 => Protocol::Ospf,
        3 => Protocol::Bgp,
        4 => Protocol::Aggregate,
        _ => return Err(WireError::BadValue("protocol")),
    };
    let plen = buf.get_u16() as usize;
    need(buf, plen * 4 + 2)?;
    let as_path = (0..plen).map(|_| buf.get_u32()).collect();
    let clen = buf.get_u16() as usize;
    need(buf, clen * 4)?;
    let communities = (0..clen).map(|_| buf.get_u32()).collect();
    Ok(BgpRoute {
        prefix,
        next_hop,
        as_path,
        local_pref,
        med,
        origin,
        communities,
        weight,
        source_protocol,
    })
}

/// Encodes a message into a fresh byte string.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match msg {
        Message::BgpAdvertisement {
            target_node,
            target_session,
            routes,
        } => {
            buf.put_u8(1);
            buf.put_u32(target_node.0);
            buf.put_u32(*target_session);
            buf.put_u32(routes.len() as u32);
            for r in routes {
                put_route(&mut buf, r);
            }
        }
        Message::OspfAdvertisement {
            target_node,
            via_iface,
            entries,
        } => {
            buf.put_u8(2);
            buf.put_u32(target_node.0);
            buf.put_u16(via_iface.0);
            buf.put_u32(entries.len() as u32);
            for (p, cost) in entries {
                buf.put_u32(p.addr().0);
                buf.put_u8(p.len());
                buf.put_u32(*cost);
            }
        }
        Message::Packet {
            src,
            node,
            ingress,
            hops,
            bdd,
        } => {
            buf.put_u8(3);
            buf.put_u32(src.0);
            buf.put_u32(node.0);
            buf.put_u16(ingress.map(|i| i.0).unwrap_or(u16::MAX));
            buf.put_u16(*hops);
            buf.put_u32(bdd.len() as u32);
            buf.put_slice(bdd);
        }
    }
    buf.freeze()
}

/// Decodes a message.
pub fn decode(mut buf: Bytes) -> Result<Message, WireError> {
    need(&buf, 1)?;
    match buf.get_u8() {
        1 => {
            need(&buf, 12)?;
            let target_node = NodeId(buf.get_u32());
            let target_session = buf.get_u32();
            let n = buf.get_u32() as usize;
            let mut routes = Vec::with_capacity(n.min(65536));
            for _ in 0..n {
                routes.push(get_route(&mut buf)?);
            }
            Ok(Message::BgpAdvertisement {
                target_node,
                target_session,
                routes,
            })
        }
        2 => {
            need(&buf, 10)?;
            let target_node = NodeId(buf.get_u32());
            let via_iface = InterfaceId(buf.get_u16());
            let n = buf.get_u32() as usize;
            let mut entries = Vec::with_capacity(n.min(65536));
            for _ in 0..n {
                need(&buf, 9)?;
                let addr = buf.get_u32();
                let len = buf.get_u8();
                if len > 32 {
                    return Err(WireError::BadValue("prefix length"));
                }
                let cost = buf.get_u32();
                entries.push((Prefix::new(Ipv4Addr(addr), len), cost));
            }
            Ok(Message::OspfAdvertisement {
                target_node,
                via_iface,
                entries,
            })
        }
        3 => {
            need(&buf, 16)?;
            let src = NodeId(buf.get_u32());
            let node = NodeId(buf.get_u32());
            let ingress = match buf.get_u16() {
                u16::MAX => None,
                i => Some(InterfaceId(i)),
            };
            let hops = buf.get_u16();
            let blen = buf.get_u32() as usize;
            need(&buf, blen)?;
            let bdd = buf.copy_to_bytes(blen);
            Ok(Message::Packet {
                src,
                node,
                ingress,
                hops,
                bdd,
            })
        }
        t => Err(WireError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_route() -> BgpRoute {
        BgpRoute {
            prefix: "10.1.2.0/24".parse().unwrap(),
            next_hop: Ipv4Addr::new(172, 16, 0, 1),
            as_path: vec![65001, 65002, 65001],
            local_pref: 200,
            med: 5,
            origin: Origin::Igp,
            communities: vec![1, 99],
            weight: 0,
            source_protocol: Protocol::Bgp,
        }
    }

    #[test]
    fn bgp_roundtrip() {
        let msg = Message::BgpAdvertisement {
            target_node: NodeId(7),
            target_session: 3,
            routes: vec![sample_route(), BgpRoute::local(
                "0.0.0.0/0".parse().unwrap(),
                Origin::Incomplete,
                Protocol::Static,
            )],
        };
        let bytes = encode(&msg);
        assert_eq!(decode(bytes).unwrap(), msg);
    }

    #[test]
    fn empty_advertisement_roundtrips() {
        let msg = Message::BgpAdvertisement {
            target_node: NodeId(0),
            target_session: 0,
            routes: vec![],
        };
        assert_eq!(decode(encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn ospf_roundtrip() {
        let msg = Message::OspfAdvertisement {
            target_node: NodeId(2),
            via_iface: InterfaceId(5),
            entries: vec![
                ("10.0.0.0/31".parse().unwrap(), 1),
                ("1.1.1.1/32".parse().unwrap(), 10),
            ],
        };
        assert_eq!(decode(encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn packet_roundtrip() {
        let msg = Message::Packet {
            src: NodeId(1),
            node: NodeId(9),
            ingress: Some(InterfaceId(4)),
            hops: 3,
            bdd: Bytes::from_static(&[1, 2, 3, 4]),
        };
        assert_eq!(decode(encode(&msg)).unwrap(), msg);
        let none = Message::Packet {
            src: NodeId(1),
            node: NodeId(9),
            ingress: None,
            hops: 0,
            bdd: Bytes::new(),
        };
        assert_eq!(decode(encode(&none)).unwrap(), none);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let msg = Message::BgpAdvertisement {
            target_node: NodeId(7),
            target_session: 3,
            routes: vec![sample_route()],
        };
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            assert!(decode(bytes.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(decode(Bytes::from_static(&[9])), Err(WireError::BadTag(9)));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frame_roundtrips() {
        let payload = encode(&Message::OspfAdvertisement {
            target_node: NodeId(3),
            via_iface: InterfaceId(1),
            entries: vec![("10.0.0.0/24".parse().unwrap(), 5)],
        });
        let framed = frame(2, 7, 41, &payload);
        let f = deframe(framed).unwrap();
        assert_eq!((f.src, f.epoch, f.seq), (2, 7, 41));
        assert_eq!(f.payload, payload);
        assert!(decode(f.payload).is_ok());
    }

    #[test]
    fn corrupted_frame_fails_checksum() {
        let payload = encode(&Message::BgpAdvertisement {
            target_node: NodeId(0),
            target_session: 0,
            routes: vec![sample_route()],
        });
        let framed = frame(0, 0, 0, &payload);
        // Flip the last byte (payload region) — the checksum must catch it.
        let mut raw: Vec<u8> = framed.as_ref().to_vec();
        *raw.last_mut().unwrap() ^= 0xff;
        assert!(matches!(
            deframe(Bytes::from(raw)),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_or_padded_frame_fails_length_check() {
        let payload = encode(&Message::BgpAdvertisement {
            target_node: NodeId(0),
            target_session: 0,
            routes: vec![],
        });
        let framed = frame(0, 0, 0, &payload);
        assert!(matches!(
            deframe(framed.slice(..framed.len() - 1)),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut padded: Vec<u8> = framed.as_ref().to_vec();
        padded.push(0);
        assert!(matches!(
            deframe(Bytes::from(padded)),
            Err(WireError::LengthMismatch { .. })
        ));
        assert_eq!(deframe(Bytes::new()), Err(WireError::Truncated));
    }

    proptest! {
        #[test]
        fn prop_route_roundtrip(
            addr in any::<u32>(),
            len in 0u8..=32,
            nh in any::<u32>(),
            lp in any::<u32>(),
            med in any::<u32>(),
            origin_igp in any::<bool>(),
            path in proptest::collection::vec(any::<u32>(), 0..16),
            comms in proptest::collection::vec(any::<u32>(), 0..8),
            weight in any::<u32>(),
        ) {
            let mut comms = comms;
            comms.sort_unstable();
            comms.dedup();
            let r = BgpRoute {
                prefix: Prefix::new(Ipv4Addr(addr), len),
                next_hop: Ipv4Addr(nh),
                as_path: path,
                local_pref: lp,
                med,
                origin: if origin_igp { Origin::Igp } else { Origin::Incomplete },
                communities: comms,
                weight,
                source_protocol: Protocol::Bgp,
            };
            let mut buf = BytesMut::new();
            put_route(&mut buf, &r);
            let mut b = buf.freeze();
            prop_assert_eq!(get_route(&mut b).unwrap(), r);
            prop_assert_eq!(b.remaining(), 0);
        }

        /// Adversarial input: random byte strings must never panic the
        /// deframer, and (length prefix + CRC) must reject essentially
        /// all of them as frames.
        #[test]
        fn prop_arbitrary_bytes_never_panic_deframe(
            raw in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            prop_assert!(deframe(Bytes::from(raw)).is_err());
        }

        /// Random byte strings through the message decoder: decoding may
        /// succeed by coincidence (the decoder ignores trailing bytes;
        /// the frame layer owns length integrity), but it must never
        /// panic, and anything it accepts must re-encode decodably.
        #[test]
        fn prop_arbitrary_bytes_never_panic_decode(
            raw in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            if let Ok(msg) = decode(Bytes::from(raw)) {
                prop_assert_eq!(decode(encode(&msg)).unwrap(), msg);
            }
        }

        /// Any single bit flip in a frame's length field or payload is
        /// caught (`src`/`epoch`/`seq` are metadata outside the CRC; the
        /// sequence/epoch checks one layer up own those).
        #[test]
        fn prop_bitflip_in_frame_is_caught(
            session in any::<u32>(),
            byte_sel in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let payload = encode(&Message::BgpAdvertisement {
                target_node: NodeId(3),
                target_session: session,
                routes: vec![sample_route()],
            });
            let framed = frame(1, 2, 3, &payload);
            let mut raw: Vec<u8> = framed.as_ref().to_vec();
            let idx = byte_sel.index(raw.len());
            raw[idx] ^= 1 << bit;
            let result = deframe(Bytes::from(raw));
            if idx < 4 || idx >= FRAME_HEADER_LEN {
                // Length field or payload: must be rejected.
                prop_assert!(result.is_err(), "idx={idx} bit={bit}");
            }
            // Header metadata region: flips pass the CRC by design, but
            // must still not panic (asserted by reaching this line).
        }

        /// A corrupted message body (post-CRC, e.g. memory corruption)
        /// must never panic the decoder.
        #[test]
        fn prop_corrupted_message_never_panics(
            byte_sel in any::<prop::sample::Index>(),
            patch in any::<u8>(),
        ) {
            let bytes = encode(&Message::BgpAdvertisement {
                target_node: NodeId(7),
                target_session: 1,
                routes: vec![sample_route(), sample_route()],
            });
            let mut raw: Vec<u8> = bytes.as_ref().to_vec();
            let idx = byte_sel.index(raw.len());
            raw[idx] = patch;
            let _ = decode(Bytes::from(raw));
        }
    }
}
