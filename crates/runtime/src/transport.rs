//! The pluggable inter-worker transport.
//!
//! [`SidecarNet`](crate::sidecar::SidecarNet) frames every cross-worker
//! message and hands the framed bytes to a [`Transport`], which delivers
//! them into the destination worker's [`Inbox`]. Two backends exist:
//!
//! * [`ChannelTransport`] — in-process crossbeam channels, the default.
//!   Delivery is synchronous (a frame is in the destination inbox the
//!   moment `send` returns) and infallible; this is the seed behaviour
//!   and what tier-1 tests run against.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — length-prefixed framed
//!   TCP with per-peer connection supervision: heartbeats, automatic
//!   reconnect with exponential backoff and jitter, bounded per-link
//!   outboxes and credit-based flow control. Delivery is asynchronous;
//!   the controller compensates by folding [`Transport::in_flight`] into
//!   its convergence checks.
//!
//! The backend is chosen per cluster through [`TransportKind`] in
//! [`RuntimeConfig`](crate::RuntimeConfig).

use crate::sidecar::WorkerId;
use crate::tcp::TcpConfig;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Failures of a transport send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The transport (or the destination inbox) is shut down.
    Closed,
    /// The frame could not be queued before the send deadline expired
    /// (sustained backpressure); the frame was dropped and the caller
    /// must count it as a loss so the disturbance machinery heals it.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Timeout => write!(f, "send deadline expired under backpressure"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Which data-fabric backend a cluster runs on.
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels (the default; synchronous delivery).
    #[default]
    Channel,
    /// Framed TCP over loopback with connection supervision; every worker
    /// gets its own listener and per-peer supervised links even when all
    /// workers share the process.
    Tcp(TcpConfig),
}

impl TransportKind {
    /// A TCP backend with default supervision parameters.
    pub fn tcp() -> Self {
        TransportKind::Tcp(TcpConfig::default())
    }
}

/// A handle a sidecar drains frames from.
///
/// For the TCP backend, popping a frame also returns link credit to the
/// sending peer — the receiving *worker* (not merely the receiving
/// socket) is what replenishes the sender's credit window, so a slow
/// worker backpressures its senders.
#[derive(Debug)]
pub enum Inbox {
    /// Receiver half of a crossbeam channel.
    Channel(Receiver<Bytes>),
    /// Shared queue fed by the TCP acceptor threads.
    Tcp(crate::tcp::TcpInbox),
}

impl Inbox {
    /// Pops the next queued frame, if any.
    pub fn try_recv(&mut self) -> Option<Bytes> {
        match self {
            Inbox::Channel(rx) => match rx.try_recv() {
                Ok(b) => Some(b),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
            },
            Inbox::Tcp(q) => q.pop(),
        }
    }
}

/// The inter-worker data fabric: delivers framed messages into per-worker
/// inboxes.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Queues `frame` (sent by worker `src`) for delivery to `dst`'s
    /// inbox. May block under backpressure up to the backend's send
    /// deadline.
    fn send(&self, src: WorkerId, dst: WorkerId, frame: Bytes) -> Result<(), TransportError>;

    /// Replaces worker `w`'s inbox with a fresh, empty one and returns it
    /// (worker respawn during recovery). Frames queued in the old inbox
    /// die with it.
    fn replace_inbox(&self, w: WorkerId) -> Inbox;

    /// Frames accepted by [`Transport::send`] that have not yet been
    /// drained by the destination worker (outboxes, wire, inboxes). The
    /// controller refuses to declare a fix-point round converged while
    /// this is non-zero. Synchronous backends return 0.
    fn in_flight(&self) -> usize;

    /// Stops supervision threads and closes sockets (no-op for channels).
    fn shutdown(&self) {}
}

/// The default backend: one unbounded in-process channel per worker.
///
/// Senders are swappable so a respawned worker gets a fresh inbox; frames
/// still queued in the old channel die with the old receiver.
#[derive(Debug)]
pub struct ChannelTransport {
    senders: Vec<Mutex<Sender<Bytes>>>,
}

impl ChannelTransport {
    /// Builds channels for `num_workers` workers, returning the transport
    /// plus each worker's inbox.
    pub fn build(num_workers: u32) -> (Arc<ChannelTransport>, Vec<Inbox>) {
        let mut senders = Vec::with_capacity(num_workers as usize);
        let mut inboxes = Vec::with_capacity(num_workers as usize);
        for _ in 0..num_workers {
            let (tx, rx) = unbounded();
            senders.push(Mutex::new(tx));
            inboxes.push(Inbox::Channel(rx));
        }
        (Arc::new(ChannelTransport { senders }), inboxes)
    }
}

impl Transport for ChannelTransport {
    fn send(&self, _src: WorkerId, dst: WorkerId, frame: Bytes) -> Result<(), TransportError> {
        // A closed inbox means the cluster is shutting down, and an
        // out-of-range dst means a corrupt proxy frame; dropping the
        // frame is correct in both cases.
        if let Some(tx) = self.senders.get(dst as usize) {
            let _ = tx.lock().send(frame);
        }
        Ok(())
    }

    fn replace_inbox(&self, w: WorkerId) -> Inbox {
        let (tx, rx) = unbounded();
        *self.senders[w as usize].lock() = tx;
        Inbox::Channel(rx)
    }

    fn in_flight(&self) -> usize {
        // Channel delivery is synchronous with respect to the barrier
        // protocol: every frame sent during an export phase is in its
        // destination inbox before the apply phase drains, so nothing is
        // ever in flight at a convergence check.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transport_roundtrips() {
        let (t, mut inboxes) = ChannelTransport::build(2);
        t.send(0, 1, Bytes::from_static(b"hi")).unwrap();
        assert_eq!(inboxes[1].try_recv().unwrap().as_ref(), b"hi");
        assert!(inboxes[1].try_recv().is_none());
        assert!(inboxes[0].try_recv().is_none());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn replace_inbox_discards_queued_frames() {
        let (t, _inboxes) = ChannelTransport::build(1);
        t.send(0, 0, Bytes::from_static(b"stale")).unwrap();
        let mut fresh = t.replace_inbox(0);
        assert!(fresh.try_recv().is_none());
        t.send(0, 0, Bytes::from_static(b"fresh")).unwrap();
        assert_eq!(fresh.try_recv().unwrap().as_ref(), b"fresh");
    }
}
