//! Intra-worker evaluation pool: scoped threads over independent
//! switches, with deterministic result order.
//!
//! S2's fix-point rounds evaluate each switch independently within a
//! round (§4: Jacobi-style two-phase rounds), so a worker that owns many
//! switches can fan their evaluation out across threads. Determinism is
//! preserved by construction: closures get an *index* into the worker's
//! node-id-ordered switch list, and results are merged back in index
//! order before anything touches a RIB, a wire frame, or a BDD — the
//! parallel path is byte-identical to the sequential one.
//!
//! The pool lives in `runtime` (not the pure crates) because spawning
//! threads is a runtime-layer concern; the closures it runs are pure.
//! Threads are scoped (`std::thread::scope`) so borrows of the worker's
//! state can cross into them without `'static` gymnastics, and nothing
//! outlives a single evaluation call — there is no queue, no channel,
//! and no wall-clock anywhere in this module.

use s2_obs::{Counter, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Registry counter for indices claimed off the shared counter by the
/// parallel path (the pool's work-stealing volume). Cached so the hot
/// path pays one `OnceLock` load, not a registry lookup.
fn tasks_claimed() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("pool.tasks_claimed"))
}

/// Registry counter for calls that actually fanned out across threads.
fn parallel_calls() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("pool.parallel_calls"))
}

/// A fixed-width evaluation pool. `threads == 1` (the default) is the
/// strictly sequential path with zero thread overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalPool {
    threads: usize,
}

impl Default for EvalPool {
    fn default() -> Self {
        EvalPool { threads: 1 }
    }
}

impl EvalPool {
    /// Creates a pool that evaluates with `threads` worker threads
    /// (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        EvalPool {
            threads: threads.max(1),
        }
    }

    /// Configured width of the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f(0..len)` and returns the results in index order.
    ///
    /// With more than one thread, indices are claimed from a shared
    /// atomic counter (work-stealing granularity of 1, which balances
    /// well when per-switch cost varies) and the results are sorted back
    /// into index order before returning — callers observe exactly the
    /// sequential output.
    ///
    /// If a closure panics, the panic is resumed on the caller thread
    /// after the scope unwinds, matching the sequential path's behavior.
    pub fn map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        parallel_calls().inc();
        tasks_claimed().add(len as u64);
        let next = AtomicUsize::new(0);
        let mut pairs: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads.min(len))
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut acc = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            acc.push((i, f(i)));
                        }
                        acc
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(len);
            for handle in handles {
                match handle.join() {
                    Ok(part) => all.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all
        });
        // Deterministic merge: index order, regardless of which thread
        // finished first.
        pairs.sort_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, value)| value).collect()
    }

    /// Runs `f(index, &mut item)` over every item, mutating in place, and
    /// returns the per-item results in index order.
    ///
    /// The slice is split into contiguous chunks (one per thread), so
    /// each item is touched by exactly one thread and no locking is
    /// needed; chunk results are concatenated in chunk order, which *is*
    /// index order.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let len = items.len();
        if self.threads == 1 || len <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        parallel_calls().inc();
        tasks_claimed().add(len as u64);
        let chunk_len = len.div_ceil(self.threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(chunk_idx, chunk)| {
                    let f = &f;
                    scope.spawn(move || {
                        chunk
                            .iter_mut()
                            .enumerate()
                            .map(|(j, item)| f(chunk_idx * chunk_len + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(len);
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_pool_maps_in_order() {
        let pool = EvalPool::new(1);
        assert_eq!(pool.map_indexed(4, |i| i * 10), vec![0, 10, 20, 30]);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let pool = EvalPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_map_matches_sequential_order() {
        let seq = EvalPool::new(1);
        let par = EvalPool::new(4);
        for len in [0usize, 1, 2, 3, 7, 64, 257] {
            let expect = seq.map_indexed(len, |i| i * 3 + 1);
            let got = par.map_indexed(len, |i| i * 3 + 1);
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn parallel_map_uses_multiple_claims() {
        // Every index is claimed exactly once even with contention.
        let par = EvalPool::new(4);
        let hits = AtomicU64::new(0);
        let out = par.map_indexed(100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn map_mut_mutates_every_item_once() {
        for threads in [1usize, 2, 4, 9] {
            let pool = EvalPool::new(threads);
            let mut items: Vec<u64> = (0..37).collect();
            let results = pool.map_mut(&mut items, |i, item| {
                *item += 1;
                (i as u64) * 2
            });
            assert_eq!(items, (1..38).collect::<Vec<u64>>(), "threads {threads}");
            assert_eq!(
                results,
                (0..37).map(|i| i * 2).collect::<Vec<u64>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn map_mut_handles_empty_and_tiny_slices() {
        let pool = EvalPool::new(8);
        let mut empty: Vec<u32> = Vec::new();
        assert!(pool.map_mut(&mut empty, |_, _| 0u32).is_empty());
        let mut one = vec![5u32];
        assert_eq!(pool.map_mut(&mut one, |i, v| *v + i as u32), vec![5]);
    }

    #[test]
    fn uneven_work_still_merges_in_index_order() {
        // Vary per-item cost so threads finish out of order.
        let pool = EvalPool::new(3);
        let out = pool.map_indexed(50, |i| {
            let spin = if i % 7 == 0 { 10_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc)
        });
        let expect: Vec<(usize, u64)> = (0..50)
            .map(|i| {
                let spin = if i % 7 == 0 { 10_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(k);
                }
                (i, acc)
            })
            .collect();
        assert_eq!(out, expect);
    }
}
