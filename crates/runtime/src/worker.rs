//! The worker: owns the real nodes of one segment and executes the
//! phase commands issued by the controller's orchestrators.
//!
//! A worker holds:
//!
//! * one [`SwitchModel`] per **real** node (remote nodes are reached only
//!   through the sidecar — the shadow-node role),
//! * its private BDD manager and per-node predicates for the data plane,
//! * a [`MemGauge`] modelling the logical server's heap.
//!
//! Rounds are two-phase (export, then apply) so the distributed schedule
//! is the exact Jacobi schedule of the monolithic engine — which is what
//! makes S2's RIBs bit-identical to the baseline's (§5.3).

use crate::faults::FaultState;
use crate::memstats::{MemGauge, MemReport};
use crate::pool::EvalPool;
use crate::sidecar::{Sidecar, TrafficSnapshot};
use crate::wire::Message;
use bytes::Bytes;
use s2_bdd::serialize as bdd_io;
use s2_bdd::splice::Splicer;
use s2_bdd::BddManager;
use s2_dataplane::{
    merge_packet, step_into, Fib, FinalKind, FinalPacket, ForwardOptions, NodePredicates,
    PacketKey, PacketSpace, StepOutput, SymbolicPacket,
};
use s2_net::topology::{InterfaceId, NodeId};
use s2_net::Prefix;
use s2_routing::{BgpRoute, NetworkModel, RibRoute, RibSnapshot, SwitchModel};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Commands issued by the controller's orchestrators.
#[derive(Debug)]
pub enum Command {
    /// Compute and send this round's OSPF advertisements.
    OspfExport,
    /// Drain the inbox and apply OSPF advertisements. Replies `Changed`.
    OspfApply,
    /// Reset BGP state and originate routes for `shard`.
    BgpBegin {
        /// The active prefix shard (`None` = all prefixes).
        shard: Option<Arc<BTreeSet<Prefix>>>,
    },
    /// Compute and send this round's BGP advertisements.
    BgpExport,
    /// Drain the inbox, apply advertisements, rerun best-path selection.
    /// Replies `Changed`.
    BgpApply,
    /// Collect connected/static/OSPF routes of local nodes. Replies `Rib`.
    CollectBaseRib,
    /// Collect the BGP routes of the current shard. Replies `Rib`.
    CollectBgpRib,
    /// Build FIBs and port predicates for local nodes from the final RIBs.
    DpSetup {
        /// The converged global RIBs.
        rib: Arc<RibSnapshot>,
        /// Metadata bits in the packet space.
        meta_bits: u16,
        /// Waypoint write rules (node → metadata bit).
        waypoints: Arc<BTreeMap<NodeId, u16>>,
        /// TTL for forwarding.
        max_hops: u16,
    },
    /// Inject the header space at each locally hosted source.
    Inject {
        /// `(source node, destination space)` pairs; non-local ones are
        /// ignored (every worker receives the full list).
        injections: Arc<Vec<(NodeId, Prefix)>>,
    },
    /// Drain the inbox and process the local packet queue to exhaustion.
    /// Replies `Forwarded`.
    ForwardRound,
    /// Check which expected `(destination, prefixes)` arrivals hold for
    /// locally hosted destinations. Replies `Arrivals`.
    CheckArrivals {
        /// Sources to check (all injection nodes).
        sources: Arc<Vec<NodeId>>,
        /// Expected arrivals at each destination.
        expected: Arc<Vec<(NodeId, Vec<Prefix>)>>,
        /// Waypoint requirements: `(transit node, metadata bit)` that every
        /// arrived packet must carry.
        transits: Arc<Vec<(NodeId, u16)>>,
    },
    /// Collect per-source final-state summaries (and serialized header
    /// sets for the controller-side multipath consistency check).
    CollectFinals,
    /// Collect every prefix local nodes can originate (with aggregates
    /// separated) plus statically declared prefix dependencies, for the
    /// shard planner. Must run after OSPF convergence so redistribution
    /// targets are known. Replies `Prefixes`.
    CollectPrefixes,
    /// Collect the prefix dependencies *observed during route computation*
    /// (aggregate activations, conditional-advertisement evaluations) —
    /// the §7 soundness input. Replies `Deps`.
    CollectObservedDeps,
    /// Report the memory gauge.
    MemReport,
    /// Liveness / resynchronization probe: replies `Pong` with the same
    /// nonce. The controller uses it after a failed barrier to discard
    /// stale replies until the channel is back in lockstep.
    Ping(u64),
    /// Recovery: discard everything queued in the sidecar inbox, adopt
    /// `epoch` as current, reset sequence tracking, and clear staged
    /// same-worker deliveries from the aborted round.
    FlushInbox {
        /// The controller epoch to adopt.
        epoch: u32,
    },
    /// Recovery: forget the Adj-RIB-Out cache so the next `BgpExport`
    /// re-sends full state (heals receivers that missed an incremental
    /// update to loss, corruption, or a worker replacement).
    BgpResync,
    /// Resilience sweeps: snapshot the converged control-plane state of
    /// every local switch (plus the Adj-RIB-Out cache) so failure
    /// scenarios can restore it. Overwrites any previous checkpoint.
    ScenarioCheckpoint,
    /// Resilience sweeps: restore the checkpoint, then mark the locally
    /// hosted `failed` ports as down. The next `BgpExport`/`BgpApply`
    /// rounds replay the warm state incrementally around the failure.
    ScenarioBegin {
        /// Failed ports, cluster-wide (non-local entries are ignored).
        failed: Arc<Vec<(NodeId, InterfaceId)>>,
        /// Whether the checkpoint must be restored first. The controller
        /// sends `false` when the fleet is already at the checkpoint (a
        /// rollback or the checkpoint itself was the last state-changing
        /// barrier), skipping the per-switch state clone on the scenario
        /// hot path. A checkpoint must exist either way.
        restore: bool,
    },
    /// Resilience sweeps: restore the checkpoint (healthy state, no
    /// failed ports) and drop any scenario data-plane overlay. The
    /// checkpoint is kept for the next scenario.
    ScenarioRollback,
    /// Resilience sweeps: patch the data plane for the current scenario
    /// *in the warm BDD manager*: stage the `changed` local nodes for an
    /// overlay recompile (consulted before the baseline predicates),
    /// install the failed-port mask, and clear the packet level and
    /// finals for a fresh forwarding run. The compile itself is deferred
    /// to the following `DpScope` (restricted to the pass's destination
    /// scopes) or `DpCompile` (full-space) — the reply's changed-prefix
    /// extraction is what the controller needs to decide between them.
    /// An empty `changed` list patches nothing but the mask — the
    /// transient (pre-reconvergence) stage.
    DpPatch {
        /// The scenario RIBs (only `changed` nodes are read).
        rib: Arc<RibSnapshot>,
        /// Nodes whose RIB differs from baseline.
        changed: Arc<Vec<NodeId>>,
        /// Failed ports for the forwarding mask.
        failed_ports: Arc<Vec<(NodeId, InterfaceId)>>,
    },
    /// Destination-scoped DPV: install per-source scope predicates for
    /// the coming pass. Each source's verdicts are recomputed only over
    /// `dst_space ∧ scope` and spliced with the baseline stashed at
    /// `ScenarioCheckpoint` as `(base ∧ ¬scope) ∨ recomputed`. Cleared
    /// by the next `DpPatch`, `DpSetup`, or `ScenarioRollback`; a plain
    /// full-space pass simply never sends this command.
    DpScope {
        /// `(source, changed prefixes)` for **every** source of the
        /// coming pass. An empty prefix list skips the source entirely
        /// (scope = ∅: no injection, verdicts pass through from the
        /// baseline).
        scopes: Arc<Vec<(NodeId, Vec<Prefix>)>>,
    },
    /// Compile the overlay predicates staged by the last `DpPatch` over
    /// the *full* FIB of every changed node — the unscoped companion of
    /// `DpScope` (which compiles only routes overlapping the coming
    /// pass's destination scopes). Sent before a full-space scenario
    /// drive: the no-baseline and everything-changed fallbacks.
    DpCompile,
    /// Report the worker-side transport counters and in-flight frame
    /// count. Replies `Net`. In multi-process mode this is how the
    /// controller folds remote disturbances into its convergence checks.
    NetStats,
    /// Report this worker's unified metrics snapshot (the memory gauge
    /// bridged into the `s2-obs` registry form). Replies `Metrics`.
    Metrics,
    /// A command carrying the controller's trace context: the worker
    /// adopts `(epoch, parent)` as the causal parent of any spans the
    /// inner command opens, so a stitched Chrome trace shows worker
    /// DPV work under the controller span that dispatched it. Only the
    /// multi-process proxy produces this (in-process workers read the
    /// published context directly); nesting is rejected on decode.
    CtxWrap {
        /// The controller's trace epoch when the context was captured.
        epoch: u64,
        /// The controller-side span id to parent under (0 = root).
        parent: u64,
        /// The wrapped command.
        inner: Box<Command>,
    },
    /// Drain the worker *process*'s buffered trace events. Replies
    /// `TraceEvents`. Answered by the remote serve loop (the event
    /// sink is process-global); an in-process worker replies an empty
    /// batch because its events already sit in the controller's sink.
    TraceDrain,
    /// Terminate the worker thread.
    Shutdown,
}

/// Replies from workers to the controller.
#[derive(Debug)]
pub enum Reply {
    /// Command completed.
    Ok,
    /// Whether local state changed this round.
    Changed(bool),
    /// Routes per local node.
    Rib(Vec<(NodeId, Vec<RibRoute>)>),
    /// Forwarding-round outcome.
    Forwarded {
        /// Packets processed locally.
        processed: usize,
        /// Packets sent to remote workers.
        sent_remote: usize,
    },
    /// Arrival-check outcome for local destinations.
    Arrivals {
        /// `(src, dst)` pairs that fully arrived.
        reachable: Vec<(NodeId, NodeId)>,
        /// `(src, dst)` pairs with missing traffic.
        unreachable: Vec<(NodeId, NodeId)>,
        /// `(src, dst, transit)` waypoint violations.
        waypoint_violations: Vec<(NodeId, NodeId, NodeId)>,
    },
    /// Final-state summary; `sets` carries `(src, kind, serialized set)`
    /// for the controller-side multipath check.
    Finals {
        /// Loop finals observed.
        loops: usize,
        /// Blackhole finals observed.
        blackholes: usize,
        /// Verdict-splice operations performed during this pass (zero on
        /// a full-space pass). Feeds `dpv.scoped.splice_ops`.
        splices: u64,
        /// Serialized per-(source, kind) unions.
        sets: Vec<(NodeId, FinalKind, Bytes)>,
    },
    /// Originated prefixes of local nodes.
    Prefixes {
        /// All originated prefixes.
        all: Vec<Prefix>,
        /// The subset that are aggregates.
        aggregates: Vec<Prefix>,
        /// Statically declared `(dependent, dependee)` pairs.
        deps: Vec<(Prefix, Prefix)>,
    },
    /// Observed prefix dependencies.
    Deps(Vec<(Prefix, Prefix)>),
    /// Memory report.
    Mem(MemReport),
    /// The worker hit its memory budget.
    OutOfMemory {
        /// Budget in bytes.
        budget: usize,
        /// Observed usage in bytes.
        observed: usize,
    },
    /// Liveness probe answer, echoing the `Ping` nonce.
    Pong(u64),
    /// Worker-side transport counters.
    Net {
        /// Snapshot of the worker's traffic stats.
        traffic: TrafficSnapshot,
        /// Frames accepted by the worker's transport but not yet drained
        /// by their destination.
        in_flight: u64,
    },
    /// This worker's unified metrics snapshot.
    Metrics(s2_obs::MetricsSnapshot),
    /// `DpPatch` outcome: per hosted node, the prefixes whose forwarding
    /// behavior changed against the `DpSetup` baseline — the old-vs-new
    /// route-set diff of the patched nodes plus the prefixes of routes
    /// egressing locally owned failed ports. Nodes with no changes are
    /// omitted; an empty vector means the patch is a forwarding no-op.
    ChangedDst(Vec<(NodeId, Vec<Prefix>)>),
    /// A drained batch of worker-process trace events (`TraceDrain`).
    /// Event `name` fields index `names`; `now_ns` is the worker
    /// process's clock at drain time, the anchor the controller uses
    /// to rebase `ts_ns` values into its own timeline.
    TraceEvents {
        /// Worker-process monotonic clock at drain time.
        now_ns: u64,
        /// Span/event name table the batch's `name` ids index into.
        names: Vec<String>,
        /// The drained events, in emission order per lane.
        events: Vec<s2_obs::trace::Event>,
    },
    /// The command violated the controller/worker protocol (e.g. a
    /// data-plane command before `DpSetup`); the worker refuses it
    /// instead of panicking.
    Violation(String),
}

/// Counts a peer protocol violation (malformed or misrouted payload) on
/// the shared traffic stats. Violations feed the disturbance and loss
/// counters, so a round that skipped a bad frame can never converge on
/// it and the resync machinery re-sends the real state.
fn note_violation(sidecar: &Sidecar) {
    sidecar
        .net()
        .stats()
        .protocol_violations
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// A staged OSPF delivery: (destination node, arriving interface, routes).
type PendingOspf = (NodeId, s2_net::topology::InterfaceId, Vec<(Prefix, u32)>);

/// A restorable snapshot of the worker's converged control-plane state
/// (resilience sweeps restore this between failure scenarios).
struct Checkpoint {
    switches: BTreeMap<NodeId, SwitchModel>,
    last_adv: BTreeMap<(NodeId, usize), Vec<BgpRoute>>,
}

/// The baseline data-plane verdict material, stashed at
/// `ScenarioCheckpoint` from the finals of the preceding full-space
/// pass. Destination-scoped passes splice against it: outside each
/// source's scope the baseline forwarding is provably unperturbed, so
/// its verdicts are reused verbatim.
#[derive(Default)]
struct DpBaseline {
    /// Per-(src, dst) `Arrive` unions with metadata bits **kept** —
    /// spliced arrivals feed the waypoint check, which inspects meta.
    arrivals: BTreeMap<(NodeId, NodeId), s2_bdd::Bdd>,
    /// Per-(src, kind) meta-stripped verdict unions (what
    /// `collect_finals` serializes).
    unions: BTreeMap<(NodeId, FinalKind), s2_bdd::Bdd>,
}

/// The worker's mutable state.
pub struct Worker {
    sidecar: Sidecar,
    faults: Arc<FaultState>,
    model: Arc<NetworkModel>,
    local_nodes: Vec<NodeId>,
    switches: BTreeMap<NodeId, SwitchModel>,
    shard: Option<Arc<BTreeSet<Prefix>>>,
    gauge: MemGauge,
    memory_budget: Option<usize>,
    // Same-worker deliveries staged during export, applied in the apply
    // phase (keeping the Jacobi schedule).
    pending_bgp: Vec<(NodeId, u32, Vec<BgpRoute>)>,
    /// Adj-RIB-Out: the last advertisement sent per (node, session).
    /// Unchanged advertisements are not re-sent — the incremental-update
    /// behaviour of real BGP, and what keeps cross-worker traffic
    /// proportional to convergence activity rather than round count.
    last_adv: BTreeMap<(NodeId, usize), Vec<BgpRoute>>,
    /// Switches whose local RIB changed since their last `bgp_export`
    /// (plus everyone after a reset or resync). `bgp_export` is a pure
    /// function of the switch, so a switch outside this set would
    /// recompute advertisements identical to `last_adv` — skipping it is
    /// behaviour-preserving and keeps warm-replay rounds proportional to
    /// the convergence frontier, not the topology.
    export_dirty: BTreeSet<NodeId>,
    /// Switches that must rerun `bgp_decide` on the next apply even
    /// without fresh deliveries (after a reset). `bgp_decide` is a pure
    /// function of local routes + Adj-RIB-Ins, so a switch with neither
    /// deliveries nor this mark would decide into the same RIB.
    decide_dirty: BTreeSet<NodeId>,
    pending_ospf: Vec<PendingOspf>,
    // Data plane.
    space: PacketSpace,
    manager: Option<BddManager>,
    preds: BTreeMap<NodeId, NodePredicates>,
    /// Scenario overlay: predicates recompiled for the current failure
    /// scenario, consulted before `preds`. Cleared on rollback.
    scenario_preds: BTreeMap<NodeId, NodePredicates>,
    /// The material of a `DpPatch` whose overlay compile was deferred:
    /// the scenario RIB and the changed node list. The following
    /// `DpScope` compiles it restricted to the pass's destination
    /// scopes; a `DpCompile` (full-space pass) compiles it whole.
    pending_patch: Option<(Arc<RibSnapshot>, Arc<Vec<NodeId>>)>,
    /// Control-plane snapshot for scenario restore.
    checkpoint: Option<Checkpoint>,
    /// The RIB snapshot the data plane was compiled from — the "old"
    /// side of the next `DpPatch`'s per-prefix diff.
    dp_rib: Option<Arc<RibSnapshot>>,
    /// Baseline verdict stash for splicing (see [`DpBaseline`]). Taken
    /// at `ScenarioCheckpoint`, invalidated by `DpSetup` (the manager
    /// that owns its handles is recreated).
    dp_base: Option<DpBaseline>,
    /// Per-source splicers of the active destination-scoped pass
    /// (`None` = full-space pass, no surgery).
    scopes: Option<BTreeMap<NodeId, Splicer>>,
    fwd_opts: ForwardOptions,
    /// The current hop level's merged fragments (see
    /// [`s2_dataplane::PacketKey`]); merging before processing and before
    /// sending is what keeps the cross-worker BDD traffic polynomial.
    level: BTreeMap<PacketKey, s2_bdd::Bdd>,
    finals: Vec<FinalPacket>,
    /// Intra-worker evaluation pool (width 1 = sequential).
    pool: EvalPool,
    /// Reusable per-worker step buffers (see `forward_round`): avoids
    /// allocating three Vecs per switch per hop level.
    step_scratch: StepOutput,
    /// Whether `step_scratch` has served at least one step (the first
    /// use allocates; every later one is a counted reuse).
    scratch_primed: bool,
}

impl Worker {
    /// Builds the worker's state: one switch model per local node.
    pub fn new(
        sidecar: Sidecar,
        model: Arc<NetworkModel>,
        local_nodes: Vec<NodeId>,
        memory_budget: Option<usize>,
    ) -> Self {
        Self::with_faults(
            sidecar,
            model,
            local_nodes,
            memory_budget,
            Arc::new(FaultState::default()),
            1,
        )
    }

    /// [`Worker::new`] with an armed fault plan (shared cluster-wide) and
    /// an intra-worker thread count (1 = today's sequential behavior).
    pub fn with_faults(
        sidecar: Sidecar,
        model: Arc<NetworkModel>,
        local_nodes: Vec<NodeId>,
        memory_budget: Option<usize>,
        faults: Arc<FaultState>,
        intra_worker_threads: usize,
    ) -> Self {
        let mut switches: BTreeMap<NodeId, SwitchModel> = local_nodes
            .iter()
            .map(|&n| (n, SwitchModel::new(&model, n)))
            .collect();
        // Model-level link failures from the fault plan apply from
        // construction on: the control plane converges around them.
        let fail_links = faults.plan().failed_links();
        if !fail_links.is_empty() {
            let mut by_node: BTreeMap<NodeId, Vec<InterfaceId>> = BTreeMap::new();
            for link in model.topology.links() {
                let ends = (link.a.0, link.b.0);
                if fail_links
                    .iter()
                    .any(|&(a, b)| ends == (a, b) || ends == (b, a))
                {
                    by_node.entry(link.a.0).or_default().push(link.a.1);
                    by_node.entry(link.b.0).or_default().push(link.b.1);
                }
            }
            for (n, ifaces) in by_node {
                if let Some(sw) = switches.get_mut(&n) {
                    sw.set_failed_interfaces(&model, ifaces);
                }
            }
        }
        Worker {
            sidecar,
            faults,
            model,
            local_nodes,
            switches,
            shard: None,
            gauge: MemGauge::new(),
            memory_budget,
            pending_bgp: Vec::new(),
            last_adv: BTreeMap::new(),
            export_dirty: BTreeSet::new(),
            decide_dirty: BTreeSet::new(),
            pending_ospf: Vec::new(),
            space: PacketSpace::new(0),
            manager: None,
            preds: BTreeMap::new(),
            scenario_preds: BTreeMap::new(),
            pending_patch: None,
            checkpoint: None,
            dp_rib: None,
            dp_base: None,
            scopes: None,
            fwd_opts: ForwardOptions::default(),
            level: BTreeMap::new(),
            finals: Vec::new(),
            pool: EvalPool::new(intra_worker_threads),
            step_scratch: StepOutput::default(),
            scratch_primed: false,
        }
    }

    /// The command-processing loop; runs until `Shutdown`.
    ///
    /// Fault hooks: an armed *kill* makes the thread return before the
    /// triggering command (a crashed logical server — the controller sees
    /// closed channels); an armed *hang* keeps the thread alive but mute
    /// (the controller sees a barrier timeout), draining commands until
    /// the controller abandons the channel so the thread stays joinable.
    pub fn run(
        mut self,
        commands: crossbeam::channel::Receiver<Command>,
        replies: crossbeam::channel::Sender<Reply>,
    ) {
        let mut processed: u64 = 0;
        while let Ok(cmd) = commands.recv() {
            processed += 1;
            if self.faults.should_kill(self.sidecar.worker, processed) {
                return;
            }
            if self.faults.should_hang(self.sidecar.worker, processed) {
                while commands.recv().is_ok() {}
                return;
            }
            // Re-read the controller's published trace context at every
            // dispatch, so spans opened while handling this command (BDD
            // recompiles, DPV verdicts) parent under whatever controller
            // span issued it — the cross-thread half of trace stitching.
            s2_obs::trace::adopt_published();
            let reply = match cmd {
                Command::Shutdown => break,
                other => self.handle(other),
            };
            if replies.send(reply).is_err() {
                break; // controller vanished
            }
        }
    }

    fn handle(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::OspfExport => {
                self.ospf_export();
                Reply::Ok
            }
            Command::OspfApply => Reply::Changed(self.ospf_apply()),
            Command::BgpBegin { shard } => {
                self.shard = shard;
                for s in self.switches.values_mut() {
                    s.begin_bgp(self.shard.as_deref());
                }
                self.pending_bgp.clear();
                self.last_adv.clear();
                // Cold start: everyone re-originates, everyone decides.
                self.export_dirty.extend(self.local_nodes.iter().copied());
                self.decide_dirty.extend(self.local_nodes.iter().copied());
                self.update_gauge();
                Reply::Ok
            }
            Command::BgpExport => {
                self.bgp_export();
                Reply::Ok
            }
            Command::BgpApply => {
                let changed = self.bgp_apply();
                self.update_gauge();
                if self.gauge.over_budget(self.memory_budget) {
                    return Reply::OutOfMemory {
                        budget: self.memory_budget.unwrap_or(0),
                        observed: self.gauge.current(),
                    };
                }
                Reply::Changed(changed)
            }
            Command::CollectBaseRib => Reply::Rib(
                self.local_nodes
                    .iter()
                    .map(|&n| (n, self.switches[&n].base_rib_routes()))
                    .collect(),
            ),
            Command::CollectBgpRib => Reply::Rib(
                self.local_nodes
                    .iter()
                    .map(|&n| (n, self.switches[&n].bgp_rib_routes()))
                    .collect(),
            ),
            Command::DpSetup {
                rib,
                meta_bits,
                waypoints,
                max_hops,
            } => {
                self.dp_setup(rib, meta_bits, &waypoints, max_hops);
                self.update_gauge();
                Reply::Ok
            }
            Command::Inject { injections } => {
                if self.manager.is_none() {
                    return Reply::Violation("Inject before DpSetup".to_string());
                }
                self.inject(&injections);
                Reply::Ok
            }
            Command::ForwardRound => {
                if self.manager.is_none() {
                    return Reply::Violation("ForwardRound before DpSetup".to_string());
                }
                let (processed, sent_remote) = self.forward_round();
                self.update_gauge();
                if self.gauge.over_budget(self.memory_budget) {
                    return Reply::OutOfMemory {
                        budget: self.memory_budget.unwrap_or(0),
                        observed: self.gauge.current(),
                    };
                }
                Reply::Forwarded {
                    processed,
                    sent_remote,
                }
            }
            Command::CheckArrivals {
                sources,
                expected,
                transits,
            } => self.check_arrivals(&sources, &expected, &transits),
            Command::CollectFinals => self.collect_finals(),
            Command::CollectPrefixes => {
                let mut all = Vec::new();
                let mut aggregates = Vec::new();
                let mut deps = Vec::new();
                for sw in self.switches.values() {
                    for (p, proto) in sw.originated_prefixes() {
                        all.push(p);
                        if proto == s2_net::policy::Protocol::Aggregate {
                            aggregates.push(p);
                        }
                    }
                    deps.extend(sw.prefix_dependencies());
                }
                Reply::Prefixes {
                    all,
                    aggregates,
                    deps,
                }
            }
            Command::CollectObservedDeps => {
                let mut deps = Vec::new();
                for sw in self.switches.values_mut() {
                    deps.extend(sw.take_observed_deps());
                }
                Reply::Deps(deps)
            }
            Command::MemReport => Reply::Mem(self.mem_report()),
            Command::Ping(nonce) => Reply::Pong(nonce),
            Command::FlushInbox { epoch } => {
                self.sidecar.flush(epoch);
                // Staged same-worker deliveries belong to the aborted
                // round; the recovery rerun regenerates them.
                self.pending_ospf.clear();
                self.pending_bgp.clear();
                Reply::Ok
            }
            Command::BgpResync => {
                self.last_adv.clear();
                // Every advertisement must be re-sent, so every switch
                // must re-export.
                self.export_dirty.extend(self.local_nodes.iter().copied());
                Reply::Ok
            }
            Command::ScenarioCheckpoint => {
                self.checkpoint = Some(Checkpoint {
                    switches: self.switches.clone(),
                    last_adv: self.last_adv.clone(),
                });
                // The finals of the preceding full-space pass are the
                // splice baseline for destination-scoped scenario
                // passes. Without a data plane (or a prior pass) there
                // is nothing to stash; scoped passes then splice
                // against ∅, which is only reachable through a fresh
                // worker that will be driven full-space anyway.
                self.dp_base = self.stash_dp_baseline();
                Reply::Ok
            }
            Command::ScenarioBegin { failed, restore } => {
                if self.checkpoint.is_none() {
                    return Reply::Violation("ScenarioBegin before ScenarioCheckpoint".to_string());
                }
                if restore {
                    self.restore_checkpoint();
                } else {
                    // The live state already equals the checkpoint; only
                    // the staged-delivery scratch needs the same reset
                    // `restore_checkpoint` would have applied.
                    self.pending_bgp.clear();
                    self.export_dirty.clear();
                    self.decide_dirty.clear();
                }
                let mut by_node: BTreeMap<NodeId, Vec<InterfaceId>> = BTreeMap::new();
                for &(n, i) in failed.iter() {
                    by_node.entry(n).or_default().push(i);
                }
                let model = self.model.clone();
                for (n, ifaces) in by_node {
                    if let Some(sw) = self.switches.get_mut(&n) {
                        sw.set_failed_interfaces(&model, ifaces);
                        // Sessions on the failed ports now export empty
                        // advertisements — only these switches' exports
                        // change until withdrawals propagate.
                        self.export_dirty.insert(n);
                    }
                }
                self.update_gauge();
                Reply::Ok
            }
            Command::ScenarioRollback => {
                // Without a checkpoint there is nothing to restore — a
                // worker respawned mid-sweep starts from fresh (healthy)
                // switches — but the forwarding overlays must still be
                // cleared so the recovery re-warm starts clean on a
                // mixed fleet of survivors and replacements.
                let _ = self.restore_checkpoint();
                self.scenario_preds.clear();
                self.pending_patch = None;
                self.scopes = None;
                self.fwd_opts.failed_ports.clear();
                self.level.clear();
                self.finals.clear();
                self.update_gauge();
                Reply::Ok
            }
            Command::DpPatch {
                rib,
                changed,
                failed_ports,
            } => {
                if self.manager.is_none() {
                    return Reply::Violation("DpPatch before DpSetup".to_string());
                }
                self.scenario_preds.clear();
                self.scopes = None;
                // Per hosted node: extract the prefixes whose route set
                // actually moved against the `DpSetup` baseline — the
                // raw material of the controller's changed-destination
                // scoping. The overlay compile is deferred to the
                // `DpScope`/`DpCompile` that follows, once the
                // controller knows how much of the space it needs.
                let mut changed_dst: BTreeMap<NodeId, BTreeSet<Prefix>> = BTreeMap::new();
                for &n in changed.iter() {
                    if !self.preds.contains_key(&n) {
                        continue; // not hosted here
                    }
                    if let Some(base) = self.dp_rib.as_deref() {
                        let moved = changed_prefixes(base.node(n), rib.node(n));
                        if !moved.is_empty() {
                            changed_dst.entry(n).or_default().extend(moved);
                        }
                    }
                }
                self.pending_patch = Some((rib.clone(), changed.clone()));
                // Routes egressing a failed port change forwarding even
                // when the owning node's RIB does not (the transient,
                // pre-reconvergence stage): attribute their prefixes to
                // the port owner. Both the baseline and the patched RIB
                // are scanned — a route present on either side of the
                // mask flip perturbs its prefix.
                for &(n, iface) in failed_ports.iter() {
                    if !self.preds.contains_key(&n) {
                        continue;
                    }
                    let sides = [self.dp_rib.as_deref().map(|r| r.node(n)), Some(rib.node(n))];
                    for routes in sides.into_iter().flatten() {
                        for r in routes {
                            if r.egress.contains(&iface) {
                                changed_dst.entry(n).or_default().insert(r.prefix);
                            }
                        }
                    }
                }
                self.fwd_opts.failed_ports = failed_ports.iter().copied().collect();
                self.level.clear();
                self.finals.clear();
                self.update_gauge();
                if self.gauge.over_budget(self.memory_budget) {
                    return Reply::OutOfMemory {
                        budget: self.memory_budget.unwrap_or(0),
                        observed: self.gauge.current(),
                    };
                }
                Reply::ChangedDst(
                    changed_dst
                        .into_iter()
                        .map(|(n, ps)| (n, ps.into_iter().collect()))
                        .collect(),
                )
            }
            Command::DpScope { scopes } => {
                let filter: BTreeSet<Prefix> =
                    scopes.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
                match self.compile_overlays(Some(&filter)) {
                    Reply::Ok => self.set_scopes(&scopes),
                    other => other,
                }
            }
            Command::DpCompile => self.compile_overlays(None),
            Command::NetStats => {
                // `in_flight` strictly before the counter snapshot: a
                // concurrent reconnect bumps `reconnects` before resetting
                // the credit window (see `tcp::dial`), so sampling in this
                // order means at least one of the two witnesses it.
                let in_flight = self.sidecar.net().in_flight() as u64;
                let traffic = self.sidecar.net().stats().full_snapshot();
                Reply::Net { traffic, in_flight }
            }
            // Only this worker's own memory gauge is bridged: in-process
            // workers share the process-global registry and traffic stats,
            // which the controller folds into the aggregate exactly once
            // (see `Cluster::collect_metrics`).
            Command::Metrics => Reply::Metrics(crate::metrics::mem_metrics(&self.mem_report())),
            Command::CtxWrap { epoch, parent, inner } => {
                // Normally unwrapped by the remote serve loop before the
                // worker thread sees it; handled here too so an
                // in-process wrap still stitches. Decode rejects nested
                // wraps, so this recursion is depth one.
                s2_obs::trace::adopt(epoch, parent);
                self.handle(*inner)
            }
            // In-process workers share the controller's event sink, so
            // draining here would steal events the controller already
            // owns — reply an empty batch. Remote processes answer this
            // in `remote::serve` before the command reaches the worker
            // thread.
            Command::TraceDrain => Reply::TraceEvents {
                now_ns: s2_obs::time::now_ns(),
                names: Vec::new(),
                events: Vec::new(),
            },
            Command::Shutdown => Reply::Violation("Shutdown reached handle()".to_string()),
        }
    }

    // ---- control plane ----

    /// Restores the scenario checkpoint (switch models + Adj-RIB-Out
    /// cache), discarding staged deliveries of the aborted round. The
    /// checkpoint itself is kept. Returns false when none exists.
    fn restore_checkpoint(&mut self) -> bool {
        let Some(cp) = self.checkpoint.as_ref() else {
            return false;
        };
        self.switches = cp.switches.clone();
        self.last_adv = cp.last_adv.clone();
        self.pending_bgp.clear();
        // The restored pair is converged: nothing to export or decide
        // until a scenario perturbs it.
        self.export_dirty.clear();
        self.decide_dirty.clear();
        true
    }

    fn ospf_export(&mut self) {
        // Phase 1 (parallel): per-switch export is read-only on the
        // switch models, so independent switches compute concurrently.
        let exports: Vec<Vec<(Prefix, u32)>> = {
            let nodes = &self.local_nodes;
            let switches = &self.switches;
            self.pool.map_indexed(nodes.len(), |i| {
                switches[&nodes[i]].ospf.export().into_iter().collect()
            })
        };
        // Phase 2 (sequential, node-id order): staging and wire sends —
        // identical frame order to the sequential path.
        for (&node, entries) in self.local_nodes.iter().zip(exports) {
            for adj in &self.model.ospf_adj[node.index()] {
                // The receiver applies its own interface cost; it finds the
                // adjacency by its receiving interface.
                let Some((peer, peer_if)) = self.model.topology.peer_of(node, adj.local_if) else {
                    continue; // adjacency without a link: nothing to export to
                };
                debug_assert_eq!(peer, adj.peer_node);
                if self.sidecar.is_local(peer) {
                    self.pending_ospf.push((peer, peer_if, entries.clone()));
                } else {
                    self.sidecar.send(
                        peer,
                        &Message::OspfAdvertisement {
                            target_node: peer,
                            via_iface: peer_if,
                            entries: entries.clone(),
                        },
                    );
                }
            }
        }
    }

    fn ospf_apply(&mut self) -> bool {
        let mut changed = false;
        let mut deliveries = std::mem::take(&mut self.pending_ospf);
        for msg in self.sidecar.drain() {
            if let Message::OspfAdvertisement {
                target_node,
                via_iface,
                entries,
            } = msg
            {
                deliveries.push((target_node, via_iface, entries));
            }
        }
        // Validate and group per target node (arrival order preserved
        // within a node; applying different nodes' deliveries in any
        // order is equivalent because each touches only its own switch).
        type OspfBatch = Vec<(BTreeMap<Prefix, u32>, u32, s2_net::topology::InterfaceId)>;
        let mut grouped: BTreeMap<NodeId, OspfBatch> = BTreeMap::new();
        for (node, via_iface, entries) in deliveries {
            // Target node and interface come off the wire: an unknown
            // node, a non-local target, or an interface that is not an
            // OSPF adjacency is a peer protocol violation — counted and
            // skipped, never a panic.
            let cost = self
                .model
                .ospf_adj
                .get(node.index())
                .and_then(|adjs| adjs.iter().find(|a| a.local_if == via_iface))
                .map(|a| a.cost);
            let adv: BTreeMap<Prefix, u32> = entries.into_iter().collect();
            match (cost, self.switches.contains_key(&node)) {
                (Some(cost), true) => {
                    grouped.entry(node).or_default().push((adv, cost, via_iface));
                }
                _ => note_violation(&self.sidecar),
            }
        }
        // Parallel SPF: each switch applies its own batch; flags are
        // OR-folded, so thread scheduling cannot affect the result.
        let pool = self.pool;
        let grouped = &grouped;
        let mut targets: Vec<(NodeId, &mut SwitchModel)> = self
            .switches
            .iter_mut()
            .filter(|(n, _)| grouped.contains_key(n))
            .map(|(&n, sw)| (n, sw))
            .collect();
        let flags = pool.map_mut(&mut targets, |_, (node, sw)| {
            let mut local_changed = false;
            if let Some(batch) = grouped.get(node) {
                for (adv, cost, via_iface) in batch {
                    local_changed |= sw.ospf.receive(adv, *cost, *via_iface);
                }
            }
            local_changed
        });
        changed |= flags.into_iter().any(|c| c);
        changed
    }

    fn bgp_export(&mut self) {
        // Only switches whose state changed since their last export can
        // produce a different advertisement (`bgp_export` is pure in the
        // switch) — everyone else would be suppressed by the Adj-RIB-Out
        // compare below, so they are not even evaluated. The set is
        // sorted, preserving the node-id wire order of the full scan.
        let dirty: Vec<NodeId> = std::mem::take(&mut self.export_dirty).into_iter().collect();
        // Phase 1 (parallel): per-session export policy evaluation is
        // read-only on the switch models — the expensive part of the
        // phase — so independent switches compute concurrently.
        let exports: Vec<Vec<Vec<BgpRoute>>> = {
            let nodes = &dirty;
            let switches = &self.switches;
            self.pool.map_indexed(nodes.len(), |i| {
                let sw = &switches[&nodes[i]];
                (0..sw.sessions.len()).map(|si| sw.bgp_export(si)).collect()
            })
        };
        // Phase 2 (sequential, node-id order): Adj-RIB-Out compare,
        // staging and wire sends — identical frame order and identical
        // incremental-update decisions to the sequential path.
        for (&node, advs) in dirty.iter().zip(exports) {
            let sw = &self.switches[&node];
            for (si, adv) in advs.into_iter().enumerate() {
                // Incremental updates: an advertisement identical to the
                // previous round's carries no information (the receiver's
                // replace-compare would be a no-op) and is not re-sent.
                if self.last_adv.get(&(node, si)) == Some(&adv) {
                    continue;
                }
                let Some(session) = sw.sessions.get(si) else {
                    continue; // unreachable: advs has one entry per session
                };
                let target = session.peer_node;
                let target_session = session.peer_session_index;
                if self.sidecar.is_local(target) {
                    self.pending_bgp.push((target, target_session, adv.clone()));
                } else {
                    self.sidecar.send(
                        target,
                        &Message::BgpAdvertisement {
                            target_node: target,
                            target_session,
                            routes: adv.clone(),
                        },
                    );
                }
                self.last_adv.insert((node, si), adv);
            }
        }
    }

    fn bgp_apply(&mut self) -> bool {
        let mut changed = false;
        let mut deliveries = std::mem::take(&mut self.pending_bgp);
        for msg in self.sidecar.drain() {
            if let Message::BgpAdvertisement {
                target_node,
                target_session,
                routes,
            } = msg
            {
                deliveries.push((target_node, target_session, routes));
            }
        }
        // Validate and group per target node (arrival order preserved
        // within a node — replace-compare semantics make per-node order
        // the only order that matters).
        let mut grouped: BTreeMap<NodeId, Vec<(usize, Vec<BgpRoute>)>> = BTreeMap::new();
        for (node, session, routes) in deliveries {
            // Both the target node and the session index come off the
            // wire; a non-local node or out-of-range session is a peer
            // protocol violation, not a reason to panic.
            match self.switches.get(&node) {
                Some(sw) if (session as usize) < sw.sessions.len() => {
                    grouped.entry(node).or_default().push((session as usize, routes));
                }
                _ => note_violation(&self.sidecar),
            }
        }
        // Only switches with fresh deliveries (or a pending reset mark)
        // can decide into a different RIB — `bgp_decide` is pure in the
        // local routes and Adj-RIB-Ins — so the others are skipped
        // entirely. Switches whose decision changed are marked for
        // re-export.
        let mut decide_nodes = std::mem::take(&mut self.decide_dirty);
        decide_nodes.extend(grouped.keys().copied());
        // Parallel receive + decide: a switch's best-path selection reads
        // only its own Adj-RIB-Ins, so fusing its receives with its
        // decision keeps the exact Jacobi schedule while letting
        // independent switches run concurrently.
        let pool = self.pool;
        let grouped = &grouped;
        let shard = self.shard.clone();
        let mut targets: Vec<(NodeId, &mut SwitchModel)> = self
            .switches
            .iter_mut()
            .filter(|(n, _)| decide_nodes.contains(n))
            .map(|(&n, sw)| (n, sw))
            .collect();
        let flags = pool.map_mut(&mut targets, |_, (node, sw)| {
            let mut local_changed = false;
            if let Some(batch) = grouped.get(node) {
                for (si, routes) in batch {
                    local_changed |= sw.bgp_receive(*si, routes);
                }
            }
            let decided = sw.bgp_decide(shard.as_deref());
            (local_changed | decided, decided)
        });
        for ((node, _), (any, decided)) in targets.iter().zip(&flags) {
            changed |= any;
            if *decided {
                self.export_dirty.insert(*node);
            }
        }
        changed
    }

    // ---- data plane ----

    fn dp_setup(
        &mut self,
        rib: Arc<RibSnapshot>,
        meta_bits: u16,
        waypoints: &BTreeMap<NodeId, u16>,
        max_hops: u16,
    ) {
        self.space = PacketSpace::new(meta_bits);
        let mut manager = self.space.manager();
        self.preds = self
            .local_nodes
            .iter()
            .map(|&n| {
                let fib = Fib::from_rib(rib.node(n));
                let p = NodePredicates::compile(&self.model, n, &fib, &self.space, &mut manager);
                (n, p)
            })
            .collect();
        self.manager = Some(manager);
        // The manager that owned any stashed baseline handles just died;
        // the new RIB is the diff baseline for the next `DpPatch`.
        self.dp_rib = Some(rib);
        self.dp_base = None;
        self.pending_patch = None;
        self.scopes = None;
        self.fwd_opts = ForwardOptions {
            max_hops,
            waypoint_bits: waypoints.clone(),
            ..Default::default()
        };
        self.level.clear();
        self.finals.clear();
    }

    /// Builds the splice baseline from the current finals (the verdicts
    /// of the last full-space pass). `None` without a data plane.
    fn stash_dp_baseline(&mut self) -> Option<DpBaseline> {
        let manager = self.manager.as_mut()?;
        let meta_vars: Vec<u16> = (0..self.space.meta_bits)
            .map(|i| self.space.meta_var(i))
            .collect();
        let mut base = DpBaseline::default();
        for f in &self.finals {
            if f.kind == FinalKind::Arrive {
                let entry = base
                    .arrivals
                    .entry((f.src, f.node))
                    .or_insert(s2_bdd::Bdd::FALSE);
                *entry = manager.or(*entry, f.set);
            }
            let stripped = manager.exists_all(f.set, meta_vars.iter().copied());
            let entry = base
                .unions
                .entry((f.src, f.kind))
                .or_insert(s2_bdd::Bdd::FALSE);
            *entry = manager.or(*entry, stripped);
        }
        Some(base)
    }

    /// Compiles the overlay predicates staged by the last `DpPatch`.
    /// With a `filter` (the union of the coming pass's destination
    /// scopes) only routes overlapping it are compiled: the scoped
    /// drive never forwards a destination outside the filter, and for
    /// every destination *inside* it longest-prefix match over the
    /// filtered FIB equals LPM over the full FIB (any route matching
    /// such a destination overlaps the filter and is kept). Without a
    /// filter the whole FIB is compiled — the full-space fallbacks.
    fn compile_overlays(&mut self, filter: Option<&BTreeSet<Prefix>>) -> Reply {
        let Some((rib, changed)) = self.pending_patch.clone() else {
            // Nothing staged: a scope-only pass over an unpatched data
            // plane (e.g. the transient stage with no changed nodes).
            return Reply::Ok;
        };
        let Some(manager) = self.manager.as_mut() else {
            return Reply::Violation("DpCompile before DpSetup".to_string());
        };
        for &n in changed.iter() {
            if !self.preds.contains_key(&n) {
                continue; // not hosted here
            }
            let routes = rib.node(n);
            let fib = match filter {
                Some(f) => {
                    let kept: Vec<RibRoute> = routes
                        .iter()
                        .filter(|r| f.iter().any(|p| p.overlaps(r.prefix)))
                        .cloned()
                        .collect();
                    Fib::from_rib(&kept)
                }
                None => Fib::from_rib(routes),
            };
            let p = NodePredicates::compile(&self.model, n, &fib, &self.space, manager);
            self.scenario_preds.insert(n, p);
        }
        self.update_gauge();
        if self.gauge.over_budget(self.memory_budget) {
            return Reply::OutOfMemory {
                budget: self.memory_budget.unwrap_or(0),
                observed: self.gauge.current(),
            };
        }
        Reply::Ok
    }

    /// Installs per-source destination scopes for the next scoped drive.
    /// Every source gets an entry; an empty prefix list means "skipped"
    /// (its splicer passes the baseline through untouched).
    fn set_scopes(&mut self, scopes: &[(NodeId, Vec<Prefix>)]) -> Reply {
        let Some(manager) = self.manager.as_mut() else {
            return Reply::Violation("DpScope before DpSetup".to_string());
        };
        let mut map = BTreeMap::new();
        for (src, prefixes) in scopes {
            let parts: Vec<s2_bdd::Bdd> = prefixes
                .iter()
                .map(|&p| self.space.dst_in(manager, p))
                .collect();
            let scope = manager.or_all(parts);
            map.insert(*src, Splicer::new(manager, scope));
        }
        self.scopes = Some(map);
        Reply::Ok
    }

    fn inject(&mut self, injections: &[(NodeId, Prefix)]) {
        let Some(manager) = self.manager.as_mut() else {
            return; // guarded in handle(); kept panic-free regardless
        };
        for &(src, dst_space) in injections {
            if !self.sidecar.is_local(src) {
                continue;
            }
            let dst = self.space.dst_in(manager, dst_space);
            let clear = self.space.meta_clear(manager);
            let mut set = manager.and(dst, clear);
            // Destination-scoped pass: only the changed packet space is
            // re-verified; a source whose scope is empty injects nothing.
            if let Some(scopes) = self.scopes.as_ref() {
                let scope = scopes.get(&src).map_or(s2_bdd::Bdd::FALSE, Splicer::scope);
                set = manager.and(set, scope);
                if set.is_false() {
                    continue;
                }
            }
            merge_packet(
                manager,
                &mut self.level,
                SymbolicPacket {
                    src,
                    node: src,
                    ingress: None,
                    set,
                    hops: 0,
                },
            );
        }
    }

    /// Processes one hop level: ingest remote fragments (re-encoding their
    /// BDDs into the private manager), step every merged fragment, stage
    /// local next-hop fragments, and ship merged remote fragments — one
    /// serialized BDD per (worker, merge-key).
    fn forward_round(&mut self) -> (usize, usize) {
        let Some(manager) = self.manager.as_mut() else {
            return (0, 0); // guarded in handle(); kept panic-free regardless
        };
        {
            // Spans the ingest phase, where remote fragments cross into
            // this worker's private BDD manager (the §4.3 re-encode
            // boundary).
            let _reencode_span = s2_obs::span!("bdd.reencode");
            for msg in self.sidecar.drain() {
                if let Message::Packet {
                    src,
                    node,
                    ingress,
                    hops,
                    bdd,
                } = msg
                {
                    // An undecodable BDD payload is a per-message wire
                    // error (counted, packet skipped), not a worker crash;
                    // the controller's disturbance tracking replays the
                    // phase.
                    let set = match bdd_io::from_bytes(manager, &bdd) {
                        Ok(set) => set,
                        Err(_) => {
                            self.sidecar
                                .net()
                                .stats()
                                .wire_errors
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            continue;
                        }
                    };
                    merge_packet(
                        manager,
                        &mut self.level,
                        SymbolicPacket {
                            src,
                            node,
                            ingress,
                            set,
                            hops,
                        },
                    );
                }
            }
        }

        let mut processed = 0;
        let mut sent_remote = 0;
        let mut scratch_reuses: u64 = 0;
        let mut next: BTreeMap<PacketKey, s2_bdd::Bdd> = BTreeMap::new();
        let mut outbound: BTreeMap<PacketKey, s2_bdd::Bdd> = BTreeMap::new();
        for ((src, node, ingress, hops), set) in std::mem::take(&mut self.level) {
            // The packet's location came off the wire for remote
            // fragments; a node this worker does not host is a peer
            // protocol violation — count it and drop the fragment (the
            // disturbance machinery forces a replay). The scenario
            // overlay shadows the baseline predicates when present.
            let Some(preds) = self
                .scenario_preds
                .get(&node)
                .or_else(|| self.preds.get(&node))
            else {
                note_violation(&self.sidecar);
                continue;
            };
            let pkt = SymbolicPacket {
                src,
                node,
                ingress,
                set,
                hops,
            };
            // Reusable per-worker scratch instead of three fresh Vecs
            // per switch; each reuse is counted as a saved allocation.
            self.step_scratch.clear();
            if self.scratch_primed {
                scratch_reuses += 1;
            } else {
                self.scratch_primed = true;
            }
            step_into(
                &self.model.topology,
                preds,
                &self.space,
                manager,
                pkt,
                &self.fwd_opts,
                &mut self.step_scratch,
            );
            processed += 1;
            self.finals.append(&mut self.step_scratch.finals);
            for fwd in self.step_scratch.forwarded.drain(..) {
                if self.sidecar.is_local(fwd.node) {
                    merge_packet(manager, &mut next, fwd);
                } else {
                    merge_packet(manager, &mut outbound, fwd);
                }
            }
        }
        for ((src, node, ingress, hops), set) in outbound {
            let bdd = Bytes::from(bdd_io::to_bytes(manager, set));
            self.sidecar.send(
                node,
                &Message::Packet {
                    src,
                    node,
                    ingress,
                    hops,
                    bdd,
                },
            );
            sent_remote += 1;
        }
        s2_obs::event!("bdd.encode.outbound", sent_remote);
        if scratch_reuses > 0 {
            self.sidecar
                .net()
                .stats()
                .scratch_reuses
                .fetch_add(scratch_reuses, std::sync::atomic::Ordering::Relaxed);
        }
        self.level = next;
        (processed, sent_remote)
    }

    fn check_arrivals(
        &mut self,
        sources: &[NodeId],
        expected: &[(NodeId, Vec<Prefix>)],
        transits: &[(NodeId, u16)],
    ) -> Reply {
        let Some(manager) = self.manager.as_mut() else {
            return Reply::Violation("CheckArrivals before DpSetup".to_string());
        };
        let mut reachable = Vec::new();
        let mut unreachable = Vec::new();
        let mut waypoint_violations = Vec::new();
        // Index arrivals once: (src, dst) -> union of arrived sets.
        let mut arrivals: BTreeMap<(NodeId, NodeId), s2_bdd::Bdd> = BTreeMap::new();
        for f in &self.finals {
            if f.kind == FinalKind::Arrive {
                let entry = arrivals
                    .entry((f.src, f.node))
                    .or_insert(s2_bdd::Bdd::FALSE);
                *entry = manager.or(*entry, f.set);
            }
        }
        for (dst, prefixes) in expected {
            if !self.sidecar.is_local(*dst) {
                continue;
            }
            let wanted: Vec<_> = prefixes
                .iter()
                .map(|p| self.space.dst_in(manager, *p))
                .collect();
            let want = manager.or_all(wanted);
            for &src in sources {
                if src == *dst {
                    continue;
                }
                let mut arrived = arrivals
                    .get(&(src, *dst))
                    .copied()
                    .unwrap_or(s2_bdd::Bdd::FALSE);
                // Destination-scoped pass: the finals only cover the
                // scoped space — splice the baseline arrival back in
                // before judging reachability and waypoints, so the
                // verdict is a full-space one.
                if let Some(scopes) = self.scopes.as_mut() {
                    let base = self
                        .dp_base
                        .as_ref()
                        .and_then(|b| b.arrivals.get(&(src, *dst)))
                        .copied()
                        .unwrap_or(s2_bdd::Bdd::FALSE);
                    arrived = match scopes.get_mut(&src) {
                        Some(splicer) => splicer.splice(manager, base, arrived),
                        // No scope recorded for this source: nothing was
                        // injected for it, the baseline is all there is.
                        None => manager.or(base, arrived),
                    };
                }
                if manager.implies(want, arrived) {
                    reachable.push((src, *dst));
                } else {
                    unreachable.push((src, *dst));
                }
                for &(transit, bit) in transits {
                    let visited = self.space.with_meta(manager, arrived, bit);
                    if visited != arrived {
                        waypoint_violations.push((src, *dst, transit));
                    }
                }
            }
        }
        Reply::Arrivals {
            reachable,
            unreachable,
            waypoint_violations,
        }
    }

    fn collect_finals(&mut self) -> Reply {
        let Some(manager) = self.manager.as_mut() else {
            return Reply::Violation("CollectFinals before DpSetup".to_string());
        };
        let meta_vars: Vec<u16> = (0..self.space.meta_bits)
            .map(|i| self.space.meta_var(i))
            .collect();
        let mut loops = 0;
        let mut blackholes = 0;
        let mut unions: BTreeMap<(NodeId, FinalKind), s2_bdd::Bdd> = BTreeMap::new();
        for f in &self.finals {
            match f.kind {
                FinalKind::Loop => loops += 1,
                FinalKind::Blackhole => blackholes += 1,
                _ => {}
            }
            let stripped = manager.exists_all(f.set, meta_vars.iter().copied());
            let entry = unions.entry((f.src, f.kind)).or_insert(s2_bdd::Bdd::FALSE);
            *entry = manager.or(*entry, stripped);
        }
        // Destination-scoped pass: the unions above only cover the
        // scoped space — splice each (src, kind) verdict with the
        // stashed baseline into a full-space union. Semantic equality
        // plus canonical serialization makes the result byte-identical
        // to a cold full-space recompute.
        if let Some(scopes) = self.scopes.as_mut() {
            let scoped = std::mem::take(&mut unions);
            let empty = DpBaseline::default();
            let base = self.dp_base.as_ref().unwrap_or(&empty);
            for (&src, splicer) in scopes.iter_mut() {
                for kind in [
                    FinalKind::Arrive,
                    FinalKind::Exit,
                    FinalKind::Blackhole,
                    FinalKind::Loop,
                ] {
                    let fresh = scoped.get(&(src, kind)).copied().unwrap_or(s2_bdd::Bdd::FALSE);
                    let basev = base
                        .unions
                        .get(&(src, kind))
                        .copied()
                        .unwrap_or(s2_bdd::Bdd::FALSE);
                    if fresh.is_false() && basev.is_false() {
                        continue;
                    }
                    let full = splicer.splice(manager, basev, fresh);
                    if !full.is_false() {
                        unions.insert((src, kind), full);
                    }
                    // Baseline loop/blackhole material surviving outside
                    // the scope counts as one final: fragment counts were
                    // never run-deterministic (only the unions are), but
                    // `loops == 0` must still mean loop-free afterwards.
                    if matches!(kind, FinalKind::Loop | FinalKind::Blackhole)
                        && !splicer.outside(manager, basev).is_false()
                    {
                        match kind {
                            FinalKind::Loop => loops += 1,
                            FinalKind::Blackhole => blackholes += 1,
                            _ => {}
                        }
                    }
                }
            }
        }
        let splices = self
            .scopes
            .as_ref()
            .map_or(0, |s| s.values().map(Splicer::ops).sum());
        let sets = unions
            .into_iter()
            .filter(|(_, set)| !set.is_false())
            .map(|((src, kind), set)| {
                (src, kind, Bytes::from(bdd_io::to_bytes(manager, set)))
            })
            .collect();
        Reply::Finals {
            loops,
            blackholes,
            splices,
            sets,
        }
    }

    // ---- bookkeeping ----

    /// Bytes of the Adj-RIB-Out cache (also real per-worker state).
    fn adj_out_bytes(&self) -> usize {
        self.last_adv
            .values()
            .flatten()
            .map(BgpRoute::approx_bytes)
            .sum()
    }

    fn update_gauge(&mut self) {
        let routes: usize = self.switches.values().map(SwitchModel::approx_bgp_bytes).sum();
        let bdd = self.manager.as_ref().map_or(0, BddManager::approx_bytes);
        self.gauge.set(routes + self.adj_out_bytes() + bdd);
    }

    fn mem_report(&self) -> MemReport {
        let routes: usize = self.switches.values().map(SwitchModel::approx_bgp_bytes).sum::<usize>()
            + self.adj_out_bytes();
        let bdd = self.manager.as_ref().map_or(0, BddManager::approx_bytes);
        MemReport {
            route_bytes: routes,
            bdd_bytes: bdd,
            peak_bytes: self.gauge.peak(),
            bdd_peak_nodes: self.manager.as_ref().map_or(0, BddManager::peak_node_count),
            bdd_cache: self
                .manager
                .as_ref()
                .map(BddManager::cache_stats)
                .unwrap_or_default(),
        }
    }
}

/// The prefixes whose route set differs between `old` and `new`,
/// including prefixes present on only one side. Route order within a
/// prefix participates in the comparison: RIB snapshots are
/// deterministic, so an order change implies a selection change.
fn changed_prefixes(old: &[RibRoute], new: &[RibRoute]) -> BTreeSet<Prefix> {
    let mut by_prefix: BTreeMap<Prefix, (Vec<&RibRoute>, Vec<&RibRoute>)> = BTreeMap::new();
    for r in old {
        by_prefix.entry(r.prefix).or_default().0.push(r);
    }
    for r in new {
        by_prefix.entry(r.prefix).or_default().1.push(r);
    }
    by_prefix
        .into_iter()
        .filter(|(_, (o, n))| o != n)
        .map(|(p, _)| p)
        .collect()
}
