//! Exhaustive model checks of the TCP transport's credit accounting.
//!
//! Built only with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p s2-runtime --test loom --release
//! ```
//!
//! The production writer / credit-reader / dial threads all mutate one
//! [`CreditLedger`] under the link mutex; what the chaos tests can only
//! sample, these models explore exhaustively — every interleaving of
//! the consume, refill, requeue, and epoch-fence (reconnect) operations
//! — and assert the invariants the controller's convergence detection
//! depends on after every step:
//!
//! * **Bounded window**: `credits <= window` in every reachable state
//!   (no interleaving of refills and requeues can mint send capacity).
//! * **Epoch fence**: a credit reader holding a stale connection
//!   generation can neither refill nor kill a newer connection, in any
//!   ordering of its delivery relative to the reconnect.
//! * **Conservation / no undercount**: `outstanding()` always accounts
//!   for every frame consumed-but-not-refilled, so `in_flight` can
//!   never report quiescence while a frame is still pending.
//!
//! The models mirror the lock discipline of `tcp.rs`: every ledger
//! transition happens under one mutex, and the schedule points are the
//! lock acquisitions — exactly the granularity at which the real
//! threads interleave.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use s2_runtime::credit::CreditLedger;

const WINDOW: u32 = 2;

fn check(l: &CreditLedger, what: &str) {
    assert!(
        l.invariant_holds(),
        "credits exceeded window after {what}: {l:?}"
    );
}

/// Writer consumes frames while the receiver refills: in every
/// interleaving the window stays bounded and every consumed credit is
/// visible in `outstanding()` until refilled.
#[test]
fn consume_refill_window_stays_bounded() {
    loom::model(|| {
        let ledger = Arc::new(Mutex::new(CreditLedger::new(WINDOW)));
        let gen = ledger.lock().unwrap().reconnect();

        // Writer: send up to two frames, skipping when the window is dry
        // (the real writer blocks on the condvar; the model just moves on
        // — the interleavings where it retries later are explored via the
        // scheduler anyway).
        let writer = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                let mut sent = 0u32;
                for _ in 0..2 {
                    let mut l = ledger.lock().unwrap();
                    if l.can_send(true) {
                        let spent = l.begin_send(true);
                        assert!(spent, "connected sends always spend");
                        check(&l, "begin_send");
                        l.sent();
                        check(&l, "sent");
                        sent += 1;
                    }
                }
                sent
            })
        };

        // Credit reader: the receiver drains two frames, granting one
        // credit each (possibly before the writer even sent them — the
        // clamp must absorb that).
        let reader = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                for _ in 0..2 {
                    let mut l = ledger.lock().unwrap();
                    l.refill(1, gen);
                    check(&l, "refill");
                }
            })
        };

        let sent = writer.join().unwrap();
        reader.join().unwrap();

        let l = ledger.lock().unwrap();
        check(&l, "quiescence");
        // Conservation: consumed minus refunded, clamped at zero (extra
        // refills are absorbed by the clamp), never *under*counted.
        assert!(
            l.outstanding() <= sent as usize,
            "outstanding {} exceeds frames actually sent {}",
            l.outstanding(),
            sent
        );
        // With at most `window` sends and one credit granted per drain,
        // credits + outstanding can never drop below the window:
        // capacity is only clamped, never lost.
        assert!(
            l.credits() as usize + l.outstanding() >= WINDOW as usize,
            "credits {} + outstanding {} lost capacity below the window",
            l.credits(),
            l.outstanding()
        );
    });
}

/// A stale credit reader (from a connection that died) races the
/// reconnect and the new connection's refills: in no interleaving may
/// its refill mint credit on the new window, nor its death notice kill
/// the new connection *after* the writer has observed the reconnect.
#[test]
fn stale_reader_is_epoch_fenced() {
    loom::model(|| {
        let ledger = Arc::new(Mutex::new(CreditLedger::new(WINDOW)));
        let old_gen = ledger.lock().unwrap().reconnect();

        // Writer consumes one credit on the old connection, then the
        // connection dies and the writer redials (new generation).
        let dialer = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                {
                    let mut l = ledger.lock().unwrap();
                    let spent = l.begin_send(true);
                    check(&l, "old-gen begin_send");
                    // The write fails: requeue, credit comes back.
                    l.requeue(spent);
                    check(&l, "old-gen requeue");
                }
                let mut l = ledger.lock().unwrap();
                let new_gen = l.reconnect();
                check(&l, "reconnect");
                new_gen
            })
        };

        // Stale reader: delivers a huge refill and then a death notice
        // with the old generation, interleaved arbitrarily with the
        // reconnect above.
        let stale = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                {
                    let mut l = ledger.lock().unwrap();
                    let applied = l.refill(100, old_gen);
                    check(&l, "stale refill");
                    if applied {
                        // Only legal before the reconnect happened.
                        assert_eq!(l.generation(), old_gen);
                    }
                }
                let mut l = ledger.lock().unwrap();
                let applied = l.connection_lost(old_gen);
                if applied {
                    assert_eq!(l.generation(), old_gen);
                }
            })
        };

        let new_gen = dialer.join().unwrap();
        stale.join().unwrap();

        let mut l = ledger.lock().unwrap();
        check(&l, "quiescence");
        assert_eq!(l.generation(), new_gen);
        assert_eq!(
            l.credits(),
            WINDOW,
            "stale refill/death leaked past the reconnect fence"
        );
        // A death notice that raced in *before* the reconnect was
        // already cleared by it; one arriving after was fenced. Either
        // way the new connection must not observe a death it didn't have.
        assert!(
            !l.take_conn_dead(),
            "stale reader killed the new connection"
        );
    });
}

/// The lazy-dial path: the writer pops a frame while disconnected (no
/// credit spent), dials, and debits the fresh window, racing the new
/// connection's first refill. The forfeit-on-race rule must only ever
/// overstate `outstanding()`, never understate it, and the window must
/// stay bounded.
#[test]
fn lazy_dial_debit_races_refill_conservatively() {
    loom::model(|| {
        let ledger = Arc::new(Mutex::new(CreditLedger::new(WINDOW)));

        // Writer: disconnected pop (no credit spent), then dial + debit.
        let writer = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                {
                    let mut l = ledger.lock().unwrap();
                    assert!(l.can_send(false));
                    let spent = l.begin_send(false);
                    assert!(!spent, "disconnected pops spend no credit");
                    check(&l, "disconnected begin_send");
                }
                let gen = {
                    let mut l = ledger.lock().unwrap();
                    let gen = l.reconnect();
                    check(&l, "reconnect");
                    gen
                };
                {
                    let mut l = ledger.lock().unwrap();
                    l.debit_fresh_window();
                    check(&l, "debit_fresh_window");
                }
                let mut l = ledger.lock().unwrap();
                l.sent();
                check(&l, "sent");
                gen
            })
        };

        // Receiver: the frame arrives and is drained; its credit grant
        // races the debit above. (Generation 1 is the writer's dial —
        // the model exposes the race by running this refill at any
        // point relative to it; pre-dial deliveries are fenced.)
        let reader = {
            let ledger = ledger.clone();
            thread::spawn(move || {
                let mut l = ledger.lock().unwrap();
                l.refill(1, 1);
                check(&l, "refill");
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();

        let l = ledger.lock().unwrap();
        check(&l, "quiescence");
        // One frame was sent and at most one credit granted back; the
        // forfeit rule may leave the ledger claiming an extra frame
        // outstanding (conservative) but never fewer than zero, and
        // never a window overflow.
        assert!(
            l.outstanding() <= 1,
            "more outstanding than frames ever sent: {}",
            l.outstanding()
        );
    });
}
