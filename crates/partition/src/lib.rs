//! # s2-partition
//!
//! Network partitioning for S2 (§4.1): splits the topology into segments,
//! one per worker, prioritizing **balanced load** over minimal edge cut —
//! the paper's measurements (Fig. 7) show S2's performance is dominated by
//! load balance, with inter-worker communication a distant second.
//!
//! * [`estimate`] — per-node load estimation (FatTree closed forms k³/2 and
//!   k³/4, uniform fallback for nonstandard networks),
//! * [`greedy`] — the balanced greedy partitioner with Kernighan–Lin-style
//!   boundary refinement (the METIS substitute),
//! * [`schemes`] — the evaluation's partition schemes: `metis`, `random`,
//!   `expert`, plus the two adversarial extremes `imbalanced` and
//!   `comm-heavy` (§5.6).

#![deny(missing_docs)]

pub mod estimate;
pub mod greedy;
pub mod schemes;

use s2_net::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Identifier of a worker (= segment index).
pub type WorkerId = u32;

/// An assignment of every node to a worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `assignment[node] = worker`.
    pub assignment: Vec<WorkerId>,
    /// Number of workers.
    pub num_workers: u32,
}

impl Partition {
    /// Validates and wraps an assignment.
    ///
    /// # Panics
    /// Panics if any worker index is out of range.
    pub fn new(assignment: Vec<WorkerId>, num_workers: u32) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        assert!(
            assignment.iter().all(|&w| w < num_workers),
            "worker index out of range"
        );
        Partition {
            assignment,
            num_workers,
        }
    }

    /// The worker hosting `node`.
    #[inline]
    pub fn worker_of(&self, node: NodeId) -> WorkerId {
        self.assignment[node.index()]
    }

    /// Nodes assigned to `worker`, in id order.
    pub fn nodes_of(&self, worker: WorkerId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &w)| w == worker)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of nodes per worker.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_workers as usize];
        for &w in &self.assignment {
            sizes[w as usize] += 1;
        }
        sizes
    }

    /// Number of topology links whose endpoints live on different workers
    /// (the communication cost proxy).
    pub fn edge_cut(&self, topology: &Topology) -> usize {
        topology
            .links()
            .iter()
            .filter(|l| self.worker_of(l.a.0) != self.worker_of(l.b.0))
            .count()
    }

    /// Load imbalance: max worker load / mean worker load, given per-node
    /// loads. 1.0 is perfectly balanced.
    pub fn load_imbalance(&self, loads: &[u64]) -> f64 {
        let mut per_worker = vec![0u64; self.num_workers as usize];
        for (i, &w) in self.assignment.iter().enumerate() {
            per_worker[w as usize] += loads[i];
        }
        let total: u64 = per_worker.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.num_workers as f64;
        let max = *per_worker.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            t.connect(w[0], w[1]);
        }
        t
    }

    #[test]
    fn partition_accessors() {
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.worker_of(NodeId(2)), 1);
        assert_eq!(p.nodes_of(0), vec![NodeId(0), NodeId(1)]);
        assert_eq!(p.sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_worker_rejected() {
        Partition::new(vec![0, 2], 2);
    }

    #[test]
    fn edge_cut_counts_cross_links() {
        let t = line(4);
        // 0-1 | 2-3: one cut link (1-2).
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&t), 1);
        // Alternating: all 3 links cut.
        let p = Partition::new(vec![0, 1, 0, 1], 2);
        assert_eq!(p.edge_cut(&t), 3);
    }

    #[test]
    fn imbalance_metric() {
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        let loads = vec![1, 1, 1, 1];
        assert!((p.load_imbalance(&loads) - 1.5).abs() < 1e-9);
        let balanced = Partition::new(vec![0, 0, 1, 1], 2);
        assert!((balanced.load_imbalance(&loads) - 1.0).abs() < 1e-9);
        assert_eq!(balanced.load_imbalance(&[0, 0, 0, 0]), 1.0);
    }
}
