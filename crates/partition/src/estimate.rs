//! Per-node load estimation (§4.1).
//!
//! The partitioner needs node weights *before* any simulation has run. For
//! standard FatTrees the paper uses closed forms — core and aggregation
//! switches process ≈ k³/2 routes, edge switches ≈ k³/4 — and for
//! nonstandard networks it assumes uniform loads. We detect roles from the
//! generator's hostname convention (`core*`, `pod*-agg*`, `pod*-edge*`);
//! anything else falls back to uniform.

use s2_net::topology::Topology;

/// The role of a switch in a FatTree, as far as load estimation cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatTreeRole {
    /// Core switch.
    Core,
    /// Aggregation switch.
    Aggregation,
    /// Edge (ToR) switch.
    Edge,
}

/// Parses the generator's hostname convention into a role.
pub fn role_of(name: &str) -> Option<FatTreeRole> {
    if name.starts_with("core") {
        Some(FatTreeRole::Core)
    } else if name.contains("-agg") {
        Some(FatTreeRole::Aggregation)
    } else if name.contains("-edge") {
        Some(FatTreeRole::Edge)
    } else {
        None
    }
}

/// The paper's closed-form route-count estimate for a FatTree with `k`
/// pods.
pub fn fattree_load(k: u64, role: FatTreeRole) -> u64 {
    match role {
        FatTreeRole::Core | FatTreeRole::Aggregation => k * k * k / 2,
        FatTreeRole::Edge => k * k * k / 4,
    }
}

/// Infers the FatTree parameter k from the topology, assuming the
/// generator's naming convention: k = number of distinct pods.
fn infer_k(topology: &Topology) -> Option<u64> {
    let mut pods = std::collections::HashSet::new();
    for n in topology.nodes() {
        let name = topology.name(n);
        if let Some(rest) = name.strip_prefix("pod") {
            if let Some((pod, _)) = rest.split_once('-') {
                pods.insert(pod.to_string());
            }
        }
    }
    if pods.is_empty() {
        None
    } else {
        Some(pods.len() as u64)
    }
}

/// Estimates the load of every node. FatTree names get closed-form
/// estimates; all other nodes get the uniform weight 1 — and if *any* node
/// is unrecognized, the whole network falls back to uniform (the paper's
/// behaviour for nonstandard networks like its DCN).
pub fn estimate_loads(topology: &Topology) -> Vec<u64> {
    let roles: Vec<Option<FatTreeRole>> = topology
        .nodes()
        .map(|n| role_of(topology.name(n)))
        .collect();
    if roles.iter().any(Option::is_none) {
        return vec![1; topology.node_count()];
    }
    let k = infer_k(topology).unwrap_or(4);
    roles
        .into_iter()
        .map(|r| fattree_load(k, r.expect("checked above")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_parsing() {
        assert_eq!(role_of("core3"), Some(FatTreeRole::Core));
        assert_eq!(role_of("pod2-agg1"), Some(FatTreeRole::Aggregation));
        assert_eq!(role_of("pod2-edge0"), Some(FatTreeRole::Edge));
        assert_eq!(role_of("cl1-l3-s4"), None);
    }

    #[test]
    fn closed_forms_match_paper() {
        assert_eq!(fattree_load(4, FatTreeRole::Core), 32);
        assert_eq!(fattree_load(4, FatTreeRole::Aggregation), 32);
        assert_eq!(fattree_load(4, FatTreeRole::Edge), 16);
        // FatTree60 example from §2.2: k=60 → edge ≈ 54000.
        assert_eq!(fattree_load(60, FatTreeRole::Edge), 54000);
    }

    #[test]
    fn fattree_topology_gets_shaped_loads() {
        let mut t = Topology::new();
        t.add_node("core0");
        t.add_node("pod0-agg0");
        t.add_node("pod0-edge0");
        t.add_node("pod1-agg0");
        let loads = estimate_loads(&t);
        // k inferred = 2 pods → core/agg = 4, edge = 2.
        assert_eq!(loads, vec![4, 4, 2, 4]);
    }

    #[test]
    fn mixed_names_fall_back_to_uniform() {
        let mut t = Topology::new();
        t.add_node("core0");
        t.add_node("mystery-switch");
        assert_eq!(estimate_loads(&t), vec![1, 1]);
    }

    #[test]
    fn dcn_names_are_uniform() {
        let mut t = Topology::new();
        t.add_node("cl0-l0-s0");
        t.add_node("cl0-l1-s0");
        assert_eq!(estimate_loads(&t), vec![1, 1]);
    }
}
