//! The partition schemes evaluated in §5.6: `metis` (our greedy+refine
//! substitute), `random`, `expert`, and the two adversarial extremes
//! `imbalanced` and `comm-heavy`.

use crate::estimate::{estimate_loads, role_of, FatTreeRole};
use crate::greedy::{partition as greedy_partition, GreedyOptions};
use crate::{Partition, WorkerId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use s2_net::topology::Topology;

/// A partition scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Load-balanced graph partitioning (the METIS role; default).
    Metis,
    /// Shuffle all switches evenly across segments.
    Random {
        /// RNG seed so experiments are repeatable.
        seed: u64,
    },
    /// Topology-aware manual strategy: FatTree pods stay together with
    /// cores spread round-robin; other networks are name-sorted and
    /// chunked (the operators' heuristic for the real DCN).
    Expert,
    /// Adversarial: ~3/4 of all switches on worker 0, the rest spread
    /// evenly (§5.6's load-imbalance extreme).
    Imbalanced,
    /// Adversarial: aggregation switches separated from core+edge so
    /// almost every FatTree link crosses workers (§5.6's
    /// communication-heavy extreme).
    CommHeavy,
}

impl Scheme {
    /// Human-readable name used by the benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Metis => "metis",
            Scheme::Random { .. } => "random",
            Scheme::Expert => "expert",
            Scheme::Imbalanced => "imbalanced",
            Scheme::CommHeavy => "comm-heavy",
        }
    }
}

/// Computes the partition of `topology` into `num_workers` segments under
/// `scheme`.
pub fn compute(topology: &Topology, num_workers: u32, scheme: Scheme) -> Partition {
    let n = topology.node_count();
    if num_workers <= 1 {
        return Partition::new(vec![0; n], 1);
    }
    match scheme {
        Scheme::Metis => {
            let loads = estimate_loads(topology);
            greedy_partition(topology, &loads, num_workers, &GreedyOptions::default())
        }
        Scheme::Random { seed } => {
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            let mut assignment = vec![0 as WorkerId; n];
            for (pos, node) in order.into_iter().enumerate() {
                assignment[node] = (pos % num_workers as usize) as WorkerId;
            }
            Partition::new(assignment, num_workers)
        }
        Scheme::Expert => expert(topology, num_workers),
        Scheme::Imbalanced => {
            let mut assignment = vec![0 as WorkerId; n];
            let big = n * 3 / 4;
            for (i, a) in assignment.iter_mut().enumerate().skip(big) {
                let others = (num_workers - 1).max(1) as usize;
                *a = 1 + ((i - big) % others) as WorkerId;
            }
            Partition::new(assignment, num_workers)
        }
        Scheme::CommHeavy => comm_heavy(topology, num_workers),
    }
}

/// Expert strategy: FatTree pods are kept together (pod p → worker
/// p mod W), cores spread round-robin; for non-FatTree networks the
/// name-sorted node list is chunked evenly — the paper's heuristic that
/// "switches whose names have similar prefixes are more likely adjacent".
fn expert(topology: &Topology, num_workers: u32) -> Partition {
    let n = topology.node_count();
    let mut assignment = vec![0 as WorkerId; n];
    let is_fattree = topology
        .nodes()
        .all(|nd| role_of(topology.name(nd)).is_some());
    if is_fattree {
        let mut core_counter = 0u32;
        for node in topology.nodes() {
            let name = topology.name(node);
            assignment[node.index()] = match role_of(name) {
                Some(FatTreeRole::Core) => {
                    let w = core_counter % num_workers;
                    core_counter += 1;
                    w
                }
                _ => {
                    // pod<p>-suffix
                    let pod: u32 = name
                        .strip_prefix("pod")
                        .and_then(|r| r.split('-').next())
                        .and_then(|p| p.parse().ok())
                        .unwrap_or(0);
                    pod % num_workers
                }
            };
        }
    } else {
        let mut names: Vec<(String, usize)> = topology
            .nodes()
            .map(|nd| (topology.name(nd).to_string(), nd.index()))
            .collect();
        names.sort();
        let chunk = n.div_ceil(num_workers as usize);
        for (pos, (_, idx)) in names.into_iter().enumerate() {
            assignment[idx] = (pos / chunk) as WorkerId;
        }
    }
    Partition::new(assignment, num_workers)
}

/// Communication-heavy strategy: aggregation switches go to the upper half
/// of workers, cores and edges to the lower half, so every edge–agg and
/// agg–core link crosses workers on a FatTree. Non-FatTree networks get an
/// alternating assignment (also cut-maximizing for chains/meshes).
fn comm_heavy(topology: &Topology, num_workers: u32) -> Partition {
    let n = topology.node_count();
    let half = (num_workers / 2).max(1);
    let mut assignment = vec![0 as WorkerId; n];
    let mut low_counter = 0u32;
    let mut high_counter = 0u32;
    for node in topology.nodes() {
        let name = topology.name(node);
        assignment[node.index()] = match role_of(name) {
            Some(FatTreeRole::Aggregation) => {
                let w = half + (high_counter % (num_workers - half));
                high_counter += 1;
                w
            }
            Some(_) => {
                let w = low_counter % half;
                low_counter += 1;
                w
            }
            None => {
                let w = (node.index() as u32) % num_workers;
                low_counter += 1;
                w
            }
        };
    }
    Partition::new(assignment, num_workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::topology::NodeId;

    /// A toy 2-pod FatTree naming layout: 2 cores, 2 pods × (1 agg + 1
    /// edge), fully meshed pod-internally and agg-core.
    fn mini_fattree() -> Topology {
        let mut t = Topology::new();
        let c0 = t.add_node("core0");
        let c1 = t.add_node("core1");
        let a0 = t.add_node("pod0-agg0");
        let e0 = t.add_node("pod0-edge0");
        let a1 = t.add_node("pod1-agg0");
        let e1 = t.add_node("pod1-edge0");
        t.connect(a0, e0);
        t.connect(a1, e1);
        t.connect(c0, a0);
        t.connect(c0, a1);
        t.connect(c1, a0);
        t.connect(c1, a1);
        t
    }

    #[test]
    fn all_schemes_cover_every_node() {
        let t = mini_fattree();
        for scheme in [
            Scheme::Metis,
            Scheme::Random { seed: 7 },
            Scheme::Expert,
            Scheme::Imbalanced,
            Scheme::CommHeavy,
        ] {
            let p = compute(&t, 2, scheme);
            assert_eq!(p.assignment.len(), 6, "{}", scheme.name());
            assert_eq!(p.sizes().iter().sum::<usize>(), 6);
        }
    }

    #[test]
    fn random_is_even_and_seeded() {
        let t = mini_fattree();
        let p1 = compute(&t, 3, Scheme::Random { seed: 42 });
        let p2 = compute(&t, 3, Scheme::Random { seed: 42 });
        assert_eq!(p1, p2);
        let sizes = p1.sizes();
        assert_eq!(sizes, vec![2, 2, 2]);
        let p3 = compute(&t, 3, Scheme::Random { seed: 43 });
        // Different seed very likely differs (fixed-seed check keeps this
        // deterministic).
        assert_ne!(p1.assignment, p3.assignment);
    }

    #[test]
    fn expert_keeps_pods_together() {
        let t = mini_fattree();
        let p = compute(&t, 2, Scheme::Expert);
        assert_eq!(p.worker_of(NodeId(2)), p.worker_of(NodeId(3)), "pod0 split");
        assert_eq!(p.worker_of(NodeId(4)), p.worker_of(NodeId(5)), "pod1 split");
        assert_ne!(p.worker_of(NodeId(2)), p.worker_of(NodeId(4)));
    }

    #[test]
    fn imbalanced_puts_three_quarters_on_zero() {
        let mut t = Topology::new();
        for i in 0..8 {
            t.add_node(format!("n{i}"));
        }
        let p = compute(&t, 4, Scheme::Imbalanced);
        assert_eq!(p.sizes()[0], 6);
        let loads = vec![1u64; 8];
        assert!(p.load_imbalance(&loads) > 2.0);
    }

    #[test]
    fn comm_heavy_separates_aggs() {
        let t = mini_fattree();
        let p = compute(&t, 2, Scheme::CommHeavy);
        // Aggs on worker 1, cores/edges on worker 0 → every link crosses.
        assert_eq!(p.edge_cut(&t), t.link_count());
    }

    #[test]
    fn metis_beats_random_on_cut() {
        let t = mini_fattree();
        let metis = compute(&t, 2, Scheme::Metis);
        let ch = compute(&t, 2, Scheme::CommHeavy);
        assert!(metis.edge_cut(&t) <= ch.edge_cut(&t));
    }

    #[test]
    fn single_worker_short_circuits() {
        let t = mini_fattree();
        let p = compute(&t, 1, Scheme::Random { seed: 1 });
        assert!(p.assignment.iter().all(|&w| w == 0));
    }

    #[test]
    fn expert_chunk_for_dcn_names() {
        let mut t = Topology::new();
        for c in 0..2 {
            for s in 0..3 {
                t.add_node(format!("cl{c}-l0-s{s}"));
            }
        }
        let p = compute(&t, 2, Scheme::Expert);
        // Sorted names chunked: cl0-* together, cl1-* together.
        assert_eq!(p.worker_of(NodeId(0)), p.worker_of(NodeId(1)));
        assert_ne!(p.worker_of(NodeId(0)), p.worker_of(NodeId(5)));
    }
}
