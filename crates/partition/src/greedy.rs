//! The balanced greedy partitioner with boundary refinement — our METIS
//! substitute.
//!
//! Two phases:
//!
//! 1. **Greedy packing**: nodes sorted by descending load are assigned to
//!    the currently lightest worker, with a tie-break that prefers the
//!    worker already hosting the most neighbors (a cheap locality nudge).
//! 2. **Kernighan–Lin-style refinement**: boundary nodes are moved to the
//!    worker where they have more neighbors whenever the move keeps every
//!    worker's load within the balance tolerance. This reduces edge cut
//!    without sacrificing the primary goal (balance), matching the paper's
//!    priority ordering (§4.1).

use crate::{Partition, WorkerId};
use s2_net::topology::{NodeId, Topology};

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Maximum allowed ratio of any worker's load to the mean (1.05 = 5%
    /// over mean).
    pub balance_tolerance: f64,
    /// Number of refinement sweeps over the boundary.
    pub refinement_passes: usize,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            balance_tolerance: 1.05,
            refinement_passes: 4,
        }
    }
}

/// Partitions `topology` into `num_workers` segments using `loads` as node
/// weights.
pub fn partition(
    topology: &Topology,
    loads: &[u64],
    num_workers: u32,
    opts: &GreedyOptions,
) -> Partition {
    assert_eq!(loads.len(), topology.node_count());
    let n = topology.node_count();
    if num_workers <= 1 || n == 0 {
        return Partition::new(vec![0; n], num_workers.max(1));
    }

    // Phase 1: greedy packing, heaviest first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
    let mut assignment: Vec<Option<WorkerId>> = vec![None; n];
    let mut worker_load = vec![0u64; num_workers as usize];
    for &node in &order {
        // Count already-placed neighbors per worker for the locality nudge.
        let mut neighbor_count = vec![0u32; num_workers as usize];
        for (_, peer, _) in topology.neighbors(NodeId(node as u32)) {
            if let Some(w) = assignment[peer.index()] {
                neighbor_count[w as usize] += 1;
            }
        }
        let best = (0..num_workers as usize)
            .min_by(|&a, &b| {
                worker_load[a]
                    .cmp(&worker_load[b])
                    .then(neighbor_count[b].cmp(&neighbor_count[a]))
                    .then(a.cmp(&b))
            })
            .expect("at least one worker");
        assignment[node] = Some(best as WorkerId);
        worker_load[best] += loads[node];
    }
    let mut assignment: Vec<WorkerId> = assignment.into_iter().map(|a| a.unwrap()).collect();

    // Phase 2: KL-style refinement.
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / num_workers as f64;
    let cap = (mean * opts.balance_tolerance).ceil() as u64;
    for _ in 0..opts.refinement_passes {
        let mut moved = false;
        for node in 0..n {
            let cur = assignment[node];
            // Gain of moving to each worker = neighbors there − neighbors
            // here.
            let mut neighbor_count = vec![0i64; num_workers as usize];
            for (_, peer, _) in topology.neighbors(NodeId(node as u32)) {
                neighbor_count[assignment[peer.index()] as usize] += 1;
            }
            let here = neighbor_count[cur as usize];
            let best_target = (0..num_workers)
                .filter(|&w| w != cur)
                .max_by_key(|&w| neighbor_count[w as usize])
                .expect("at least two workers");
            let gain = neighbor_count[best_target as usize] - here;
            if gain <= 0 {
                continue;
            }
            // Balance check: the move must not overload the target.
            if worker_load[best_target as usize] + loads[node] > cap {
                continue;
            }
            worker_load[cur as usize] -= loads[node];
            worker_load[best_target as usize] += loads[node];
            assignment[node] = best_target;
            moved = true;
        }
        if !moved {
            break;
        }
    }

    Partition::new(assignment, num_workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A 2-pod mini FatTree-ish topology: two cliques joined by one link.
    fn two_cliques(size: usize) -> Topology {
        let mut t = Topology::new();
        let a: Vec<NodeId> = (0..size).map(|i| t.add_node(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..size).map(|i| t.add_node(format!("b{i}"))).collect();
        for i in 0..size {
            for j in (i + 1)..size {
                t.connect(a[i], a[j]);
                t.connect(b[i], b[j]);
            }
        }
        t.connect(a[0], b[0]);
        t
    }

    #[test]
    fn single_worker_puts_everything_on_zero() {
        let t = two_cliques(3);
        let p = partition(&t, &[1; 6], 1, &GreedyOptions::default());
        assert!(p.assignment.iter().all(|&w| w == 0));
    }

    #[test]
    fn balances_uniform_loads() {
        let t = two_cliques(4);
        let p = partition(&t, &[1; 8], 2, &GreedyOptions::default());
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!((sizes[0] as i64 - sizes[1] as i64).abs() <= 1, "{sizes:?}");
    }

    #[test]
    fn refinement_separates_cliques() {
        // With balance kept, the min-cut 2-way split of two cliques is one
        // clique per worker (cut = 1).
        let t = two_cliques(4);
        let p = partition(&t, &[1; 8], 2, &GreedyOptions::default());
        assert_eq!(p.edge_cut(&t), 1, "assignment: {:?}", p.assignment);
    }

    #[test]
    fn heavy_node_gets_its_own_worker() {
        let t = two_cliques(2); // 4 nodes
        let loads = [100, 1, 1, 1];
        let p = partition(&t, &loads, 2, &GreedyOptions::default());
        let heavy_worker = p.worker_of(NodeId(0));
        // The three light nodes share the other worker.
        for i in 1..4 {
            assert_ne!(p.worker_of(NodeId(i)), heavy_worker);
        }
    }

    proptest! {
        /// Every node is assigned exactly once and balance stays within a
        /// factor ~2 of ideal for uniform loads.
        #[test]
        fn prop_complete_and_roughly_balanced(n in 2usize..40, workers in 1u32..8) {
            let mut t = Topology::new();
            let ids: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
            for w in ids.windows(2) {
                t.connect(w[0], w[1]);
            }
            let loads = vec![1u64; n];
            let p = partition(&t, &loads, workers, &GreedyOptions::default());
            prop_assert_eq!(p.assignment.len(), n);
            let sizes = p.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
            if n >= workers as usize {
                let max = *sizes.iter().max().unwrap() as f64;
                let ideal = n as f64 / workers as f64;
                prop_assert!(max <= ideal * 2.0 + 1.0, "max={max} ideal={ideal}");
            }
        }
    }
}
