//! Chaos demo: kill a worker mid-BGP, drop and corrupt frames, then cap
//! worker memory — the verifier converges to the fault-free result anyway.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use s2::{ingest, FaultPlan, NetworkModel, RuntimeConfig, S2Options, S2Verifier};
use std::time::Duration;

fn model() -> NetworkModel {
    let ft = s2_topogen::fattree::generate(s2_topogen::fattree::FatTreeParams::new(4));
    let texts: Vec<String> = s2_topogen::emit_configs(&ft.configs)
        .into_iter()
        .map(|(_, text)| text)
        .collect();
    ingest(ft.topology, &texts).expect("fat-tree model ingests")
}

fn simulate(opts: &S2Options) -> (s2::RibSnapshot, s2_runtime::CpRunStats, usize) {
    let verifier = S2Verifier::new(model(), opts).expect("verifier builds");
    let out = verifier.simulate().expect("simulation converges");
    verifier.shutdown();
    out
}

fn main() {
    let base = S2Options { workers: 4, shards: 8, ..Default::default() };
    let (reference, ref_stats, _) = simulate(&base);
    println!(
        "reference:  {} routes, {} BGP rounds, clean run",
        reference.total_routes(),
        ref_stats.bgp_rounds
    );

    // 1. Kill worker 1 before its 30th command, drop the 5th cross-worker
    //    frame, flip a byte in the 9th. The controller respawns the worker,
    //    replays the in-flight shard from the checkpoint, and resyncs the
    //    incremental BGP export caches over the lost/corrupted frames.
    let chaos = S2Options {
        runtime: RuntimeConfig {
            barrier_timeout: Duration::from_secs(5),
            faults: FaultPlan::new()
                .kill_worker(1, 30)
                .drop_message(5)
                .corrupt_message(9),
            ..RuntimeConfig::default()
        },
        ..base.clone()
    };
    let (rib, stats, shards) = simulate(&chaos);
    println!(
        "chaos:      {} routes over {} shards; recoveries={} shard_retries={} \
         resyncs={} wire_errors={}",
        rib.total_routes(),
        shards,
        stats.recoveries,
        stats.shard_retries,
        stats.resyncs,
        stats.wire_errors
    );
    assert_eq!(rib, reference, "chaos run must be bit-identical to the reference");
    assert!(stats.recoveries >= 1, "the killed worker must have been recovered");

    // 2. Cap per-worker memory between the all-prefixes peak and the peak of
    //    an 8-way split: the single shard goes over budget and the runtime
    //    degrades by bisecting it along DPDG components instead of failing.
    let (_, full_stats, _) = simulate(&S2Options { shards: 1, ..base.clone() });
    let full_peak = full_stats.per_worker_peak.iter().copied().max().unwrap_or(0);
    let split_peak = ref_stats.per_worker_peak.iter().copied().max().unwrap_or(0);
    let budget = (full_peak + split_peak) / 2;
    let capped = S2Options { shards: 1, memory_budget: Some(budget), ..base.clone() };
    let (rib, stats, shards) = simulate(&capped);
    println!(
        "oom-capped: {} routes; budget {} bytes forced {} bisections -> {} shards",
        rib.total_routes(),
        budget,
        stats.oom_splits,
        shards
    );
    assert_eq!(rib, reference, "bisected run must be bit-identical to the reference");
    assert!(stats.oom_splits >= 1, "the budget must have forced a bisection");

    println!("all three runs produced bit-identical RIBs ✔");
}
