//! End-to-end smoke test on the synthetic DCN workload: convergence,
//! ToR-to-ToR reachability, aggregation visible at borders.

use s2::{S2Options, S2Verifier, VerificationRequest};
use s2_routing::NetworkModel;
use s2_topogen::dcn::{generate, Dcn, DcnParams};

#[test]
fn dcn_small_converges_and_is_reachable() {
    let dcn = generate(DcnParams::small());
    let model = NetworkModel::build(dcn.topology.clone(), dcn.configs.clone()).unwrap();
    assert!(model.session_diagnostics.is_empty(), "{:?}", model.session_diagnostics);

    let mut endpoints = Vec::new();
    for (c, tors) in dcn.tors.iter().enumerate() {
        for (t, &tor) in tors.iter().enumerate() {
            endpoints.push((tor, vec![Dcn::server_prefix(c, t)]));
        }
    }
    let request =
        VerificationRequest::all_pair_reachability(endpoints.clone(), "10.0.0.0/7".parse().unwrap());
    let opts = S2Options { workers: 3, shards: 4, ..Default::default() };
    let verifier = S2Verifier::new(model, &opts).unwrap();
    let report = verifier.verify(&request).unwrap();
    verifier.shutdown();
    let n = endpoints.len();
    assert_eq!(
        report.dpv.reachable_pairs,
        n * (n - 1),
        "unreachable: {:?}\n{}",
        report.dpv.unreachable_pairs,
        report.summary()
    );
    assert_eq!(report.dpv.loops, 0, "{}", report.summary());
}
