//! Integration and chaos tests for the incremental verification daemon:
//! verify-then-commit deltas, worker loss mid-delta, injected daemon
//! crashes at every phase, and checkpoint corruption — always comparing
//! post-recovery verdicts against a cold oracle.

use s2::{Daemon, DaemonConfig, S2Options, VerificationRequest};
use s2_runtime::admin::{AdminRequest, AdminResponse, DeltaSpec};
use s2_runtime::{DaemonPhase, FaultPlan};
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_CKPT: AtomicUsize = AtomicUsize::new(0);

/// A unique checkpoint path per test (the file may not exist yet).
fn ckpt_path(name: &str) -> PathBuf {
    let n = NEXT_CKPT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("s2-daemon-test-{name}-{}-{n}.ckpt", std::process::id()))
}

/// FatTree k=4 daemon config with the standard all-pair edge request.
fn ft_config() -> DaemonConfig {
    let k = 4;
    let ft = generate(FatTreeParams::new(k));
    let ft_ref = &ft;
    let endpoints = (0..k)
        .flat_map(|p| {
            (0..k / 2).map(move |e| (ft_ref.edge(p, e), vec![FatTree::server_prefix(p, e)]))
        })
        .collect();
    let request =
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap());
    let mut cfg = DaemonConfig::new(ft.topology.clone(), ft.configs.clone(), request);
    cfg.opts = S2Options { workers: 2, ..Default::default() };
    cfg
}

fn link_down(a: &str, b: &str) -> DeltaSpec {
    DeltaSpec::LinkDown { a: a.into(), b: b.into() }
}

fn link_up(a: &str, b: &str) -> DeltaSpec {
    DeltaSpec::LinkUp { a: a.into(), b: b.into() }
}

/// Applies a delta that must commit; returns (generation, escalated).
fn must_commit(d: &mut Daemon, delta: &DeltaSpec) -> (u64, bool) {
    match d.apply(delta).expect("no injected crash") {
        AdminResponse::Committed { generation, escalated, all_clear, .. } => {
            assert!(all_clear, "{} should leave the network clean", delta.kind());
            (generation, escalated)
        }
        other => panic!("{} should commit, got {other:?}", delta.kind()),
    }
}

fn must_reject(d: &mut Daemon, delta: &DeltaSpec) -> String {
    match d.apply(delta).expect("no injected crash") {
        AdminResponse::Rejected { reason, .. } => reason,
        other => panic!("{} should be rejected, got {other:?}", delta.kind()),
    }
}

/// A link flap (down, then up) commits warm on both edges and restores
/// the baseline verdicts byte-for-byte.
#[test]
fn link_flap_commits_warm_and_restores_verdicts() {
    let mut d = Daemon::open(ft_config()).unwrap();
    assert!(!d.warm_start());
    assert_eq!(d.generation(), 0);
    let h0 = d.verdict_hash();

    match d.apply(&link_down("pod0-edge0", "pod0-agg0")).unwrap() {
        AdminResponse::Committed { generation, escalated, changed_nodes, all_clear, .. } => {
            assert_eq!(generation, 1);
            assert!(!escalated, "single link-down should replay warm");
            assert!(changed_nodes > 0, "the flap must move some RIBs");
            assert!(all_clear, "FatTree k=4 survives one link failure");
        }
        other => panic!("link-down should commit: {other:?}"),
    }
    match d.status() {
        AdminResponse::Status { generation, failed_links, committed, rejected, .. } => {
            assert_eq!((generation, failed_links, committed, rejected), (1, 1, 1, 0));
        }
        other => panic!("status: {other:?}"),
    }

    let (generation, escalated) = must_commit(&mut d, &link_up("pod0-edge0", "pod0-agg0"));
    assert_eq!(generation, 2);
    assert!(!escalated);
    assert_eq!(d.verdict_hash(), h0, "restoring the link must restore the baseline verdicts");
    d.shutdown();
}

/// Malformed or inapplicable deltas are rejected without touching the
/// committed state.
#[test]
fn invalid_deltas_reject_without_state_change() {
    let mut d = Daemon::open(ft_config()).unwrap();
    let h0 = d.verdict_hash();

    let r = must_reject(&mut d, &link_down("pod0-edge0", "no-such-node"));
    assert!(r.contains("no-such-node"), "{r}");
    let r = must_reject(&mut d, &link_up("pod0-edge0", "pod0-agg0"));
    assert!(r.contains("not down"), "{r}");
    let r = must_reject(
        &mut d,
        &DeltaSpec::PrefixAdd {
            device: "pod0-edge0".into(),
            prefix: FatTree::server_prefix(0, 0),
        },
    );
    assert!(r.contains("already originates"), "{r}");
    let r = must_reject(
        &mut d,
        &DeltaSpec::PrefixWithdraw {
            device: "pod0-edge0".into(),
            prefix: "10.99.0.0/16".parse().unwrap(),
        },
    );
    assert!(r.contains("does not originate"), "{r}");
    assert_eq!(d.verdict_hash(), h0, "rejections must not touch committed verdicts");
    assert_eq!(d.generation(), 0);

    // A committed link-down makes a second one for the same link invalid.
    must_commit(&mut d, &link_down("pod0-edge0", "pod0-agg0"));
    let r = must_reject(&mut d, &link_down("pod0-edge0", "pod0-agg0"));
    assert!(r.contains("already"), "{r}");

    match d.status() {
        AdminResponse::Status { generation, committed, rejected, .. } => {
            assert_eq!((generation, committed, rejected), (1, 1, 5));
        }
        other => panic!("status: {other:?}"),
    }
    d.shutdown();
}

/// Config-changing deltas escalate to a blue/green rebuild; withdrawing
/// the added prefix returns the verdicts to the baseline bytes.
#[test]
fn prefix_add_escalates_and_withdraw_restores_baseline() {
    let mut d = Daemon::open(ft_config()).unwrap();
    let h0 = d.verdict_hash();
    let prefix = "10.250.0.0/16".parse().unwrap();

    let (generation, escalated) =
        must_commit(&mut d, &DeltaSpec::PrefixAdd { device: "pod0-edge0".into(), prefix });
    assert_eq!(generation, 1);
    assert!(escalated, "a config delta cannot replay warm");

    let (generation, escalated) =
        must_commit(&mut d, &DeltaSpec::PrefixWithdraw { device: "pod0-edge0".into(), prefix });
    assert_eq!(generation, 2);
    assert!(escalated);
    assert_eq!(d.verdict_hash(), h0, "withdrawing the prefix must restore baseline verdicts");
    d.shutdown();
}

/// A route-map edit whose config text names a different device is
/// rejected; re-submitting the device's own config commits (escalated).
#[test]
fn route_map_edit_checks_hostname_and_escalates() {
    let mut d = Daemon::open(ft_config()).unwrap();
    let h0 = d.verdict_hash();
    let ft = generate(FatTreeParams::new(4));
    let texts = s2_topogen::emit_configs(&ft.configs);
    let own = texts.iter().find(|(h, _)| h == "pod0-edge0").unwrap().1.clone();
    let other = texts.iter().find(|(h, _)| h == "pod1-edge0").unwrap().1.clone();

    let r = must_reject(
        &mut d,
        &DeltaSpec::RouteMapEdit { device: "pod0-edge0".into(), config: other },
    );
    assert!(r.contains("pod1-edge0"), "{r}");

    let (generation, escalated) =
        must_commit(&mut d, &DeltaSpec::RouteMapEdit { device: "pod0-edge0".into(), config: own });
    assert_eq!(generation, 1);
    assert!(escalated);
    assert_eq!(d.verdict_hash(), h0, "an identical config must reproduce baseline verdicts");
    d.shutdown();
}

/// Chaos: a worker killed mid-delta is recovered, the baseline
/// re-warmed, and the delta retried — the daemon never wedges and the
/// final verdicts still match the no-fault run.
#[test]
fn worker_kill_mid_delta_recovers_and_commits() {
    let mut cfg = ft_config();
    // Past warm-up's command stream: fires inside the first delta's
    // replay/DPV exchange (same placement as the sweep chaos test).
    cfg.opts.runtime.faults = FaultPlan::new().kill_worker(1, 400);
    let mut d = Daemon::open(cfg).unwrap();
    let h0 = d.verdict_hash();

    let down = link_down("pod0-edge0", "pod0-agg0");
    match d.apply(&down).expect("no injected crash") {
        AdminResponse::Committed { generation, all_clear, .. } => {
            assert_eq!(generation, 1);
            assert!(all_clear);
        }
        // Retries exhausting inside the delta budget must degrade to a
        // clean rejection, never a wedged daemon.
        AdminResponse::Rejected { reason, attempts } => {
            assert!(attempts >= 1, "{reason}");
            assert_eq!(d.generation(), 0, "a rejected delta must not move the generation");
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Whatever happened above, the daemon must still serve deltas.
    if d.generation() == 1 {
        must_commit(&mut d, &link_up("pod0-edge0", "pod0-agg0"));
        assert_eq!(d.verdict_hash(), h0);
    } else {
        must_commit(&mut d, &down);
    }
    d.shutdown();
}

/// Chaos: an injected daemon crash at every delta phase, followed by a
/// restart from the warm checkpoint. The restarted daemon must come up
/// warm at the pre-delta generation with verdicts byte-identical to a
/// cold oracle of the same snapshot.
#[test]
fn crash_at_every_phase_restarts_warm_with_oracle_verdicts() {
    let oracle = Daemon::open(ft_config()).unwrap();
    let h0 = oracle.verdict_hash();
    oracle.shutdown();

    let phases = [
        DaemonPhase::Validate,
        DaemonPhase::Stage,
        DaemonPhase::Replay,
        DaemonPhase::Dpv,
        DaemonPhase::Commit,
        DaemonPhase::Checkpoint,
    ];
    for phase in phases {
        let path = ckpt_path("phase");
        let mut cfg = ft_config();
        cfg.checkpoint = Some(path.clone());
        cfg.opts.runtime.faults = FaultPlan::new().crash_daemon(phase);
        let mut d = Daemon::open(cfg).unwrap();
        let err = d
            .apply(&link_down("pod0-edge0", "pod0-agg0"))
            .expect_err("the injected crash must fire");
        assert_eq!(err.0, phase);
        // Simulated kill -9: tear the fleet down without committing.
        d.shutdown();

        let mut cfg = ft_config();
        cfg.checkpoint = Some(path.clone());
        let d = Daemon::open(cfg).unwrap();
        assert!(d.warm_start(), "crash at {phase:?}: restart must restore the checkpoint");
        assert_eq!(d.generation(), 0, "crash at {phase:?}: the delta must not have committed");
        assert_eq!(
            d.verdict_hash(),
            h0,
            "crash at {phase:?}: post-recovery verdicts must match the cold oracle"
        );
        assert!(d.restore_ms().is_some());
        d.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}

/// Restarting after a committed link-down resumes at the committed
/// generation with the failed link baked in — verdicts byte-identical
/// to a cold oracle verifying the degraded snapshot.
#[test]
fn restart_resumes_committed_overlay_and_matches_degraded_oracle() {
    let path = ckpt_path("overlay");
    let mut cfg = ft_config();
    cfg.checkpoint = Some(path.clone());
    let mut d = Daemon::open(cfg).unwrap();
    must_commit(&mut d, &link_down("pod0-edge0", "pod0-agg0"));
    // No clean shutdown request: the commit already checkpointed.
    d.shutdown();

    let mut cfg = ft_config();
    cfg.checkpoint = Some(path.clone());
    let d = Daemon::open(cfg).unwrap();
    assert!(d.warm_start());
    assert_eq!(d.generation(), 1);
    let restarted = d.verdict_hash();
    d.shutdown();

    // Cold oracle: same snapshot with the link failed at the model level.
    let mut cfg = ft_config();
    let a = cfg.topology.node_by_name("pod0-edge0").unwrap();
    let b = cfg.topology.node_by_name("pod0-agg0").unwrap();
    cfg.opts.runtime.faults = FaultPlan::new().fail_link(a, b);
    let oracle = Daemon::open(cfg).unwrap();
    assert_eq!(restarted, oracle.verdict_hash(), "restart must match the degraded cold oracle");
    oracle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A corrupted checkpoint is detected by checksum on restart and the
/// daemon falls back to a cold start with correct verdicts.
#[test]
fn corrupt_checkpoint_falls_back_to_cold_start() {
    let path = ckpt_path("corrupt");
    let mut cfg = ft_config();
    cfg.checkpoint = Some(path.clone());
    // Flip a byte of the very first checkpoint write (generation 0).
    cfg.opts.runtime.faults = FaultPlan::new().corrupt_checkpoint(0);
    let d = Daemon::open(cfg).unwrap();
    let h0 = d.verdict_hash();
    d.shutdown();
    assert!(path.is_file(), "the corrupted checkpoint must still exist");

    let mut cfg = ft_config();
    cfg.checkpoint = Some(path.clone());
    let d = Daemon::open(cfg).unwrap();
    assert!(!d.warm_start(), "a corrupt checkpoint must not restore");
    assert_eq!(d.generation(), 0);
    assert_eq!(d.verdict_hash(), h0, "the cold fallback must still verify correctly");
    d.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// The admin socket serves both dialects, survives an injected dropped
/// connection, and shuts down cleanly on request.
#[test]
fn admin_socket_serves_both_dialects_and_survives_dropped_conn() {
    use std::io::{BufRead, BufReader, Write};

    let mut cfg = ft_config();
    // Drop the connection serving the first accepted request.
    cfg.opts.runtime.faults = FaultPlan::new().drop_admin_conn(0);
    let d = Daemon::open(cfg).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || d.serve(listener));

    // Request 0: the fault closes the connection before any reply.
    let err = s2::daemon::admin_roundtrip(&addr, &AdminRequest::Status)
        .expect_err("the dropped connection must surface as an error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");

    // Request 1: binary dialect works again on a fresh connection.
    match s2::daemon::admin_roundtrip(&addr, &AdminRequest::Status).unwrap() {
        AdminResponse::Status { generation, warm_start, .. } => {
            assert_eq!(generation, 0);
            assert!(!warm_start);
        }
        other => panic!("status: {other:?}"),
    }

    // Text dialect on the same socket: one line in, one JSON line out.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"status\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
    assert!(line.starts_with("{\"ok\":true,\"result\":\"status\""), "{line}");
    drop(stream);

    // Unknown text commands get a JSON error, not a dropped connection.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"frobnicate\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "{line}");
    drop(stream);

    match s2::daemon::admin_roundtrip(&addr, &AdminRequest::Shutdown).unwrap() {
        AdminResponse::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    server.join().unwrap().unwrap();
}

/// The text-dialect `metrics` command serves a valid Prometheus
/// exposition merging controller series (SLO gauges, phase-latency
/// quantiles, scoped-DPV counters) with per-worker liveness series;
/// `healthz` reports the fleet healthy.
#[test]
fn metrics_endpoint_serves_merged_exposition() {
    use std::io::{BufRead, BufReader, Read, Write};

    let d = Daemon::open(ft_config()).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || d.serve(listener));

    // A committed delta populates the SLO gauges and phase histograms.
    let delta = AdminRequest::ApplyDelta(link_down("pod0-edge0", "pod0-agg0"));
    match s2::daemon::admin_roundtrip(&addr, &delta).unwrap() {
        AdminResponse::Committed { .. } => {}
        other => panic!("link-down should commit: {other:?}"),
    }

    // `echo metrics | nc`: send the line, half-close, read to EOF.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"metrics\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();

    s2_obs::expo::validate(&body).expect("the scrape must be valid exposition");
    // Controller-side series: delta counters, SLO quantile gauges,
    // phase histograms with summary quantiles, scoped-DPV counters.
    // (Values are process-global across parallel tests, so assert
    // presence, not exact numbers — except this daemon's own fleet.)
    for series in [
        "s2_daemon_delta_committed",
        "s2_daemon_delta_ms{quantile=\"0.99\"}",
        "s2_daemon_delta_stage_ms{quantile=\"0.5\"}",
        "s2_daemon_delta_dpv_ms_count",
        "s2_daemon_slo_commit_p50_ms",
        "s2_daemon_slo_rejection_rate_pct",
        "s2_daemon_uptime_ms",
        "s2_daemon_generation",
        "s2_dpv_scoped_runs",
        "s2_worker_up{worker=\"0\"} 1",
        "s2_worker_up{worker=\"1\"} 1",
        "s2_worker_stale{worker=\"0\"} 0",
    ] {
        assert!(body.contains(series), "scrape must contain {series}:\n{body}");
    }

    // `echo healthz | nc`: one JSON line, fleet healthy.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"healthz\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"workers_up\":2"), "{line}");
    assert!(line.contains("\"workers_total\":2"), "{line}");
    drop(stream);

    match s2::daemon::admin_roundtrip(&addr, &AdminRequest::Shutdown).unwrap() {
        AdminResponse::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    server.join().unwrap().unwrap();
}

/// Chaos: a worker killed by the scrape traffic itself leaves the
/// endpoint serving. The dead worker degrades to its last-known
/// snapshot with the staleness gauge flipped; healthz goes unhealthy;
/// the daemon never wedges.
#[test]
fn worker_death_degrades_scrape_with_staleness_flag() {
    let mut cfg = ft_config();
    // Past warm-up's command stream (same placement as the mid-delta
    // chaos test). No deltas are applied here, so the only post-warm-up
    // traffic to worker 1 is the Metrics polls below — the kill fires
    // on one of them, i.e. mid-scrape.
    cfg.opts.runtime.faults = FaultPlan::new().kill_worker(1, 400);
    let mut d = Daemon::open(cfg).unwrap();

    let mut saw_degraded = false;
    for _ in 0..600 {
        match d.metrics() {
            AdminResponse::Metrics { aggregate, workers } => {
                assert_eq!(workers.len(), 2);
                if workers[1].up {
                    assert!(!workers[1].stale);
                    assert!(workers[1].snapshot.is_some());
                } else {
                    // Degraded, not wedged: the stale flag is flipped,
                    // the cached snapshot is still served, and the
                    // aggregate (with the live worker merged) remains.
                    assert!(workers[1].stale);
                    assert!(
                        workers[1].snapshot.is_some(),
                        "the last-known snapshot must be served stale"
                    );
                    assert!(workers[0].up && !workers[0].stale);
                    assert!(!aggregate.counters.is_empty() || !aggregate.gauges.is_empty());
                    saw_degraded = true;
                    break;
                }
            }
            other => panic!("metrics: {other:?}"),
        }
    }
    assert!(saw_degraded, "the kill fault must fire within the scrape budget");

    // The exposition still renders and validates with the staleness
    // gauge flipped — a scrape of a degraded fleet is still a scrape.
    match d.metrics() {
        AdminResponse::Metrics { aggregate, workers } => {
            let body = s2_runtime::admin::render_exposition(&aggregate, &workers);
            assert!(body.contains("s2_worker_up{worker=\"1\"} 0"), "{body}");
            assert!(body.contains("s2_worker_stale{worker=\"1\"} 1"), "{body}");
            assert!(body.contains("s2_worker_up{worker=\"0\"} 1"), "{body}");
            s2_obs::expo::validate(&body).expect("degraded exposition must stay valid");
        }
        other => panic!("metrics: {other:?}"),
    }

    match d.healthz() {
        AdminResponse::Healthz { ok, workers_up, workers_total, .. } => {
            assert!(!ok, "a dead worker must fail healthz");
            assert_eq!((workers_up, workers_total), (1, 2));
        }
        other => panic!("healthz: {other:?}"),
    }
    d.shutdown();
}

/// Span stitching: with tracing on, a committed delta's worker-side
/// DPV spans (recorded on worker lanes) parent-chain up to the
/// controller's `daemon.delta` span in one event stream — the property
/// that makes the exported Chrome trace causally navigable.
#[test]
fn worker_dpv_spans_stitch_under_daemon_delta() {
    s2_obs::trace::set_enabled(true);
    let _ = s2_obs::trace::take_events(); // drop unrelated backlog
    let mut d = Daemon::open(ft_config()).unwrap();
    must_commit(&mut d, &link_down("pod0-edge0", "pod0-agg0"));
    d.shutdown();
    let events = s2_obs::trace::take_events();
    s2_obs::trace::set_enabled(false);

    // Index spans by id, then walk a worker-lane dpv span's parent
    // chain; it must pass through the daemon.delta (or daemon.open
    // warm-up) root rather than floating unparented.
    let by_span: std::collections::HashMap<u64, &s2_obs::trace::Event> =
        events.iter().filter(|e| e.span != 0).map(|e| (e.span, e)).collect();
    let reaches_delta = |mut span: u64| -> bool {
        for _ in 0..64 {
            let Some(e) = by_span.get(&span) else { return false };
            if s2_obs::trace::name_of(e.name) == "daemon.delta" {
                return true;
            }
            if e.parent == 0 {
                return false;
            }
            span = e.parent;
        }
        false
    };
    let worker_dpv: Vec<&&s2_obs::trace::Event> = by_span
        .values()
        .filter(|e| e.lane >= 1 && s2_obs::trace::name_of(e.name).starts_with("dpv."))
        .collect();
    assert!(
        !worker_dpv.is_empty(),
        "the delta's DPV must record worker-lane spans"
    );
    assert!(
        worker_dpv.iter().any(|e| reaches_delta(e.span)),
        "at least one worker DPV span must stitch under daemon.delta"
    );
}
