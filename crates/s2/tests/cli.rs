//! Integration tests for the `s2` command-line binary: generate a network
//! to disk, then verify and simulate it through the real CLI surface.

use std::path::PathBuf;
use std::process::Command;

fn s2_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_s2"))
}

fn gen_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let status = s2_bin()
        .args(["gen-fattree", "4"])
        .arg(&dir)
        .status()
        .expect("s2 binary runs");
    assert!(status.success());
    dir
}

#[test]
fn gen_writes_topology_and_configs() {
    let dir = gen_dir("gen");
    assert!(dir.join("topology.txt").is_file());
    let configs: Vec<_> = std::fs::read_dir(dir.join("configs"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(configs.len(), 20);
    assert!(configs.iter().all(|p| p.extension().unwrap() == "cfg"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_clean_network_exits_zero() {
    let dir = gen_dir("verify");
    let out = s2_bin()
        .args([
            "verify",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--workers",
            "2",
            "--shards",
            "3",
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod2-edge1=10.2.1.0/24",
            "--dst-space",
            "10.0.0.0/8",
        ])
        .output()
        .expect("s2 binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: CLEAN"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_broken_network_exits_nonzero() {
    let dir = gen_dir("broken");
    // Remove the network statement from one edge switch's config text.
    let victim = dir.join("configs/pod0-edge0.cfg");
    let text = std::fs::read_to_string(&victim).unwrap();
    let patched: String = text
        .lines()
        .filter(|l| !l.contains("network 10.0.0.0/24"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(text, patched, "the statement must have been present");
    std::fs::write(&victim, patched).unwrap();

    let out = s2_bin()
        .args([
            "verify",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod1-edge0=10.1.0.0/24",
            "--dst-space",
            "10.0.0.0/8",
        ])
        .output()
        .expect("s2 binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNREACHABLE"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulate_prints_route_summary() {
    let dir = gen_dir("simulate");
    let out = s2_bin()
        .args([
            "simulate",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--workers",
            "2",
        ])
        .output()
        .expect("s2 binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("converged: 224 routes"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_process_verify_over_tcp() {
    use std::io::BufRead;

    let dir = gen_dir("remote");
    let topo = dir.join("topology.txt");
    let confs = dir.join("configs");
    let common = [
        "--topology",
        topo.to_str().unwrap(),
        "--configs",
        confs.to_str().unwrap(),
    ];

    // Controller on an ephemeral port; it announces the bound address on
    // stderr before it starts accepting workers. Metrics and trace files
    // exercise the Command::Metrics wire path: each worker process
    // bridges its own snapshot over TCP and the controller merges them.
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");
    let mut controller = s2_bin()
        .args([
            "verify",
            "--workers",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod2-edge1=10.2.1.0/24",
            "--dst-space",
            "10.0.0.0/8",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .args(common)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("controller spawns");
    let mut stderr = std::io::BufReader::new(controller.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unexpected controller banner: {line:?}"))
        .to_string();
    // Keep draining stderr so the controller never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        for _ in stderr.lines() {}
    });

    let workers: Vec<_> = (0..2)
        .map(|_| {
            s2_bin()
                .args(["worker", "--connect", &addr])
                .args(common)
                .spawn()
                .expect("worker spawns")
        })
        .collect();

    let out = controller.wait_with_output().expect("controller finishes");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: CLEAN"), "{stdout}");
    for mut w in workers {
        let status = w.wait().expect("worker finishes");
        assert!(status.success(), "worker must exit cleanly after shutdown");
    }
    drain.join().unwrap();

    // Snapshot merge correctness across the two worker *processes*: one
    // snapshot each, shipped over the control connection, and for every
    // counter the aggregate covers the per-worker sum (the aggregate
    // additionally folds in controller-side sources).
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let doc = s2_obs::parse_json(&metrics).expect("metrics JSON parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("s2-metrics-report/v1")
    );
    let workers_json = match doc.get("per_worker") {
        Some(s2_obs::Json::Arr(a)) => a.clone(),
        other => panic!("per_worker must be an array, got {other:?}"),
    };
    assert_eq!(workers_json.len(), 2, "one snapshot per worker process");
    let counter = |j: &s2_obs::Json, name: &str| -> u64 {
        j.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_num())
            .unwrap_or(0.0) as u64
    };
    let per_worker_sum: u64 = workers_json
        .iter()
        .map(|w| counter(w, "bdd.unique.lookups"))
        .sum();
    let aggregate = doc.get("aggregate").expect("aggregate present");
    assert!(per_worker_sum > 0, "workers did BDD work");
    assert!(counter(aggregate, "bdd.unique.lookups") >= per_worker_sum);

    // The controller-side trace is valid Chrome trace JSON with the
    // barrier/CP-round spans (worker-process spans stay local to the
    // worker processes by design).
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let tdoc = s2_obs::parse_json(&trace).expect("trace JSON parses");
    match tdoc.get("traceEvents") {
        Some(s2_obs::Json::Arr(events)) => assert!(!events.is_empty()),
        other => panic!("traceEvents must be an array, got {other:?}"),
    }
    for name in ["\"barrier\"", "\"cp.round\"", "\"verify\""] {
        assert!(trace.contains(name), "trace missing {name}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_flags_fail_gracefully() {
    for args in [
        vec!["verify"],                      // missing everything
        vec!["frobnicate"],                  // unknown subcommand
        vec!["verify", "--topology"],        // dangling flag
        vec!["gen-fattree", "nope", "/tmp"], // bad k
    ] {
        let out = s2_bin().args(&args).output().expect("s2 binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
