//! Integration tests for the `s2` command-line binary: generate a network
//! to disk, then verify and simulate it through the real CLI surface.

use std::path::PathBuf;
use std::process::Command;

fn s2_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_s2"))
}

fn gen_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s2-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let status = s2_bin()
        .args(["gen-fattree", "4"])
        .arg(&dir)
        .status()
        .expect("s2 binary runs");
    assert!(status.success());
    dir
}

#[test]
fn gen_writes_topology_and_configs() {
    let dir = gen_dir("gen");
    assert!(dir.join("topology.txt").is_file());
    let configs: Vec<_> = std::fs::read_dir(dir.join("configs"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(configs.len(), 20);
    assert!(configs.iter().all(|p| p.extension().unwrap() == "cfg"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_clean_network_exits_zero() {
    let dir = gen_dir("verify");
    let out = s2_bin()
        .args([
            "verify",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--workers",
            "2",
            "--shards",
            "3",
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod2-edge1=10.2.1.0/24",
            "--dst-space",
            "10.0.0.0/8",
        ])
        .output()
        .expect("s2 binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: CLEAN"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_broken_network_exits_nonzero() {
    let dir = gen_dir("broken");
    // Remove the network statement from one edge switch's config text.
    let victim = dir.join("configs/pod0-edge0.cfg");
    let text = std::fs::read_to_string(&victim).unwrap();
    let patched: String = text
        .lines()
        .filter(|l| !l.contains("network 10.0.0.0/24"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(text, patched, "the statement must have been present");
    std::fs::write(&victim, patched).unwrap();

    let out = s2_bin()
        .args([
            "verify",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod1-edge0=10.1.0.0/24",
            "--dst-space",
            "10.0.0.0/8",
        ])
        .output()
        .expect("s2 binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNREACHABLE"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulate_prints_route_summary() {
    let dir = gen_dir("simulate");
    let out = s2_bin()
        .args([
            "simulate",
            "--topology",
            dir.join("topology.txt").to_str().unwrap(),
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--workers",
            "2",
        ])
        .output()
        .expect("s2 binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("converged: 224 routes"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_process_verify_over_tcp() {
    use std::io::BufRead;

    let dir = gen_dir("remote");
    let topo = dir.join("topology.txt");
    let confs = dir.join("configs");
    let common = [
        "--topology",
        topo.to_str().unwrap(),
        "--configs",
        confs.to_str().unwrap(),
    ];

    // Controller on an ephemeral port; it announces the bound address on
    // stderr before it starts accepting workers.
    let mut controller = s2_bin()
        .args([
            "verify",
            "--workers",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--expect",
            "pod0-edge0=10.0.0.0/24",
            "--expect",
            "pod2-edge1=10.2.1.0/24",
            "--dst-space",
            "10.0.0.0/8",
        ])
        .args(common)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("controller spawns");
    let mut stderr = std::io::BufReader::new(controller.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("unexpected controller banner: {line:?}"))
        .to_string();
    // Keep draining stderr so the controller never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        for _ in stderr.lines() {}
    });

    let workers: Vec<_> = (0..2)
        .map(|_| {
            s2_bin()
                .args(["worker", "--connect", &addr])
                .args(common)
                .spawn()
                .expect("worker spawns")
        })
        .collect();

    let out = controller.wait_with_output().expect("controller finishes");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: CLEAN"), "{stdout}");
    for mut w in workers {
        let status = w.wait().expect("worker finishes");
        assert!(status.success(), "worker must exit cleanly after shutdown");
    }
    drain.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_flags_fail_gracefully() {
    for args in [
        vec!["verify"],                      // missing everything
        vec!["frobnicate"],                  // unknown subcommand
        vec!["verify", "--topology"],        // dangling flag
        vec!["gen-fattree", "nope", "/tmp"], // bad k
    ] {
        let out = s2_bin().args(&args).output().expect("s2 binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
