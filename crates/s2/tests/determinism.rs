//! Intra-worker parallelism must be invisible in every observable
//! artifact: the thread pool only reorders *computation*, never results.
//!
//! For proptest-chosen topogen networks (FatTree and DCN families, varied
//! arity/shape/worker count/shard count), a verification at thread width
//! 1 and one at width 4 must produce
//!
//! * byte-identical `CollectBgpRib` payloads — the converged RIBs, wire-
//!   encoded exactly as the workers' `Reply::Rib` frames are, and
//! * byte-identical serialized BDD verdicts — the per-(source, kind)
//!   final sets exactly as they crossed the wire during DPV.

use proptest::prelude::*;
use s2::{NetworkModel, S2Options, S2Report, S2Verifier, VerificationRequest};
use s2_net::topology::NodeId;
use s2_runtime::remote::encode_reply;
use s2_runtime::worker::Reply;
use s2_topogen::dcn::{self, Dcn, DcnParams};
use s2_topogen::fattree::{self, FatTree, FatTreeParams};

/// A proptest-generated workload: a topogen network plus its all-pair
/// reachability request.
#[derive(Debug, Clone)]
enum Topo {
    FatTree { k: usize },
    Dcn { clusters: usize, tors: usize },
}

fn build(topo: &Topo) -> (NetworkModel, VerificationRequest) {
    match *topo {
        Topo::FatTree { k } => {
            let ft = fattree::generate(FatTreeParams::new(k));
            let endpoints: Vec<(NodeId, Vec<s2_net::Prefix>)> = (0..k)
                .flat_map(|p| {
                    let ft = &ft;
                    (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
                })
                .collect();
            let request = VerificationRequest::all_pair_reachability(
                endpoints,
                "10.0.0.0/8".parse().unwrap(),
            );
            let model = NetworkModel::build(ft.topology, ft.configs).unwrap();
            (model, request)
        }
        Topo::Dcn { clusters, tors } => {
            let d = dcn::generate(DcnParams::scaled(clusters, tors, 2));
            let mut endpoints = Vec::new();
            for (c, cluster_tors) in d.tors.iter().enumerate() {
                for (t, &tor) in cluster_tors.iter().enumerate() {
                    endpoints.push((tor, vec![Dcn::server_prefix(c, t)]));
                }
            }
            let request = VerificationRequest::all_pair_reachability(
                endpoints,
                "10.0.0.0/7".parse().unwrap(),
            );
            let model = NetworkModel::build(d.topology, d.configs).unwrap();
            (model, request)
        }
    }
}

fn run(model: &NetworkModel, request: &VerificationRequest, opts: &S2Options) -> S2Report {
    let verifier = S2Verifier::new(model.clone(), opts).expect("model is valid");
    let report = verifier.verify(request).expect("verification succeeds");
    verifier.shutdown();
    report
}

/// The `CollectBgpRib` payload of the converged run: every node's final
/// routes, wire-encoded exactly as a worker's `Reply::Rib` frame.
fn rib_payload(report: &S2Report) -> Vec<u8> {
    let rows: Vec<(NodeId, Vec<s2_routing::RibRoute>)> = report
        .rib
        .per_node
        .iter()
        .enumerate()
        .map(|(n, routes)| (NodeId(n as u32), routes.clone()))
        .collect();
    encode_reply(&Reply::Rib(rows)).to_vec()
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    prop_oneof![
        (2usize..=3).prop_map(|half| Topo::FatTree { k: half * 2 }),
        (2usize..=3, 2usize..=3).prop_map(|(clusters, tors)| Topo::Dcn { clusters, tors }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn thread_width_is_invisible(
        topo in topo_strategy(),
        workers in 1u32..=3,
        shards in 1usize..=2,
    ) {
        let (model, request) = build(&topo);
        let base = S2Options {
            workers,
            shards,
            ..Default::default()
        };
        let seq = run(&model, &request, &S2Options { intra_worker_threads: 1, ..base.clone() });
        let par = run(&model, &request, &S2Options { intra_worker_threads: 4, ..base });

        // Byte-identical CollectBgpRib payloads.
        prop_assert_eq!(rib_payload(&seq), rib_payload(&par),
            "wire-encoded RIBs diverge between thread widths ({topo:?})");
        prop_assert_eq!(&seq.rib, &par.rib);

        // Byte-identical serialized BDD verdicts.
        prop_assert_eq!(&seq.dpv.verdict_sets, &par.dpv.verdict_sets,
            "serialized final BDD sets diverge between thread widths ({topo:?})");

        // And identical property verdicts on top. (`loops`/`blackholes`
        // event *counts* are deliberately not compared: they count final
        // fragments, and fragment boundaries depend on which barrier
        // round a cross-worker frame lands in — timing-dependent even
        // between two runs at the same width. The union of the fragments
        // — the verdict — is byte-compared above; only presence is a
        // run-invariant of the counts.)
        prop_assert_eq!(seq.dpv.reachable_pairs, par.dpv.reachable_pairs);
        prop_assert_eq!(&seq.dpv.unreachable_pairs, &par.dpv.unreachable_pairs);
        prop_assert_eq!(&seq.dpv.waypoint_violations, &par.dpv.waypoint_violations);
        prop_assert_eq!(&seq.dpv.multipath_violations, &par.dpv.multipath_violations);
        prop_assert_eq!(seq.dpv.loops > 0, par.dpv.loops > 0);
        prop_assert_eq!(seq.dpv.blackholes > 0, par.dpv.blackholes > 0);
    }
}

/// The pinned pair the CI job always exercises: a FatTree4 on two workers
/// at widths 1 vs 4 (no proptest indirection, so a failure names itself).
#[test]
fn fattree4_two_workers_width_4_matches_width_1() {
    let (model, request) = build(&Topo::FatTree { k: 4 });
    let base = S2Options {
        workers: 2,
        ..Default::default()
    };
    let seq = run(&model, &request, &S2Options { intra_worker_threads: 1, ..base.clone() });
    let par = run(&model, &request, &S2Options { intra_worker_threads: 4, ..base });
    assert_eq!(rib_payload(&seq), rib_payload(&par));
    assert_eq!(seq.dpv.verdict_sets, par.dpv.verdict_sets);
    assert!(!seq.dpv.verdict_sets.is_empty(), "DPV produced verdict material");
    assert_eq!(seq.dpv.reachable_pairs, 8 * 7);
}
