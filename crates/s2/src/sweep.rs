//! Resilience sweeps: every ≤k link-failure scenario, re-verified
//! incrementally over a warm runtime.
//!
//! A sweep runs the baseline verification once and keeps the fleet's
//! state warm (converged switches, compiled forwarding predicates, a
//! scenario checkpoint). Each failure scenario is then resolved without
//! a cold restart:
//!
//! 1. **Impact classification** — scenarios whose failed links the
//!    baseline never forwards over are *baseline-equivalent* (no
//!    verdict can change); scenarios with the same relevant link set
//!    share one re-verification ([`s2_shard::impact`]).
//! 2. **Transient stage** — the failed ports are masked in the
//!    forwarding step against the *baseline* predicates: the data
//!    plane before the control plane reacts.
//! 3. **Reconverged stage** — the warm BGP fix point replays only the
//!    deltas the failure induces (no `BgpBegin` reset), the RIB is
//!    diffed against the baseline, and only the changed nodes'
//!    predicates are recompiled before the data plane is re-checked.
//!
//! Every scenario runs inside a *fence*: a per-attempt deadline and a
//! bounded retry budget with backoff. A lost or hung worker triggers a
//! flight-recorder dump, recovery, and a re-warm of the baseline —
//! never a poisoned successor scenario. Scenarios that exhaust their
//! budget (or hit conditions the warm path cannot verify, e.g. an OSPF
//! adjacency on a failed link) degrade gracefully to
//! `undetermined(reason)` instead of failing the sweep.

use crate::query::VerificationRequest;
use crate::verifier::{S2Error, S2Verifier};
use s2_dataplane::{verdict_delta, PacketSpace};
use s2_net::topology::{InterfaceId, NodeId};
use s2_obs::json::{parse_json, push_f64, push_str, Json};
use s2_obs::{Deadline, Stopwatch};
use s2_routing::RibSnapshot;
use s2_runtime::{ClusterOptions, DpvRunStats, RuntimeError};
use s2_shard::dpdg::Dpdg;
use s2_shard::impact::{link_key, scenario_impact, LinkUsage};
pub use s2_shard::impact::LinkKey;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Scenario-fencing and enumeration options for a resilience sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Maximum simultaneous link failures per scenario (the `k` in
    /// "≤k failures"). Scenario count grows as `C(links, 1) + … +
    /// C(links, k)`.
    pub max_failures: usize,
    /// Total wall-clock budget per scenario, **all retries and backoff
    /// sleeps included**. A blown deadline rolls the fleet back to the
    /// warm baseline and degrades the scenario to `undetermined` — the
    /// fence is shared across attempts, so retries can never overshoot
    /// it.
    pub scenario_deadline: Duration,
    /// Retries after a failed attempt before the scenario degrades to
    /// `undetermined`.
    pub max_retries: usize,
    /// Base sleep between retry attempts; the actual sleep grows
    /// exponentially with the attempt, carries deterministic jitter,
    /// and is capped at the fence's remaining budget.
    pub retry_backoff: Duration,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_failures: 1,
            scenario_deadline: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(100),
        }
    }
}

/// Deterministic retry backoff: exponential in the attempt number with
/// a jitter derived from the attempt (no RNG, so chaos runs reproduce
/// exactly), in the `s2_runtime::tcp` reconnect style. Callers cap the
/// result at their fence's remaining budget.
pub(crate) fn retry_backoff(base: Duration, attempt: usize) -> Duration {
    let base = base.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(6) as u32);
    let jitter_ms = (attempt as u64).wrapping_mul(7919) % (base.as_millis().max(1) as u64);
    exp + Duration::from_millis(jitter_ms)
}

/// Enumerates every non-empty failure set of at most `max_failures`
/// links out of `num_links`, as sorted index vectors in lexicographic
/// order grouped by size. Every set appears exactly once.
pub fn enumerate_failure_sets(num_links: usize, max_failures: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for size in 1..=max_failures.min(num_links) {
        let mut combo: Vec<usize> = (0..size).collect();
        'combos: loop {
            out.push(combo.clone());
            // Advance to the next combination: bump the rightmost index
            // that still has room, reset everything after it.
            let mut i = size;
            while i > 0 {
                i -= 1;
                if combo[i] < num_links - size + i {
                    combo[i] += 1;
                    for j in i + 1..size {
                        combo[j] = combo[j - 1] + 1;
                    }
                    continue 'combos;
                }
            }
            break;
        }
    }
    out
}

/// Per-property verdict changes of one scenario stage relative to the
/// warm baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageDelta {
    /// Sources with headers that blackhole under the scenario but not
    /// in the baseline.
    pub new_blackholes: Vec<NodeId>,
    /// Sources with headers that loop under the scenario but not in
    /// the baseline.
    pub new_loops: Vec<NodeId>,
    /// Sources whose baseline-arriving headers no longer all arrive.
    pub lost_arrivals: Vec<NodeId>,
    /// `(src, dst)` pairs unreachable under the scenario but reachable
    /// in the baseline.
    pub new_unreachable: Vec<(NodeId, NodeId)>,
    /// Sources with multipath-consistency violations absent from the
    /// baseline.
    pub new_multipath: Vec<NodeId>,
}

impl StageDelta {
    /// Whether every baseline verdict survived this stage.
    pub fn is_clean(&self) -> bool {
        self.reachability_ok()
            && self.blackhole_free()
            && self.loop_free()
            && self.multipath_ok()
    }

    /// Reachability survived (no lost arrivals, no new unreachable
    /// pairs).
    pub fn reachability_ok(&self) -> bool {
        self.lost_arrivals.is_empty() && self.new_unreachable.is_empty()
    }

    /// Blackhole-freedom survived.
    pub fn blackhole_free(&self) -> bool {
        self.new_blackholes.is_empty()
    }

    /// Loop-freedom survived.
    pub fn loop_free(&self) -> bool {
        self.new_loops.is_empty()
    }

    /// Multipath consistency survived.
    pub fn multipath_ok(&self) -> bool {
        self.new_multipath.is_empty()
    }
}

/// The verdict of an executed (representative) scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioVerdict {
    /// Warm BGP fix-point rounds the failure induced.
    pub warm_rounds: usize,
    /// Verdict changes before the control plane reacts (failed ports
    /// masked against baseline predicates).
    pub transient: StageDelta,
    /// Verdict changes after warm reconvergence.
    pub reconverged: StageDelta,
    /// Wall-clock milliseconds for the successful attempt.
    pub elapsed_ms: f64,
}

/// How a scenario was resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioStatus {
    /// Executed end to end. Boxed: the verdict dwarfs the other
    /// variants and outcomes are stored per enumerated scenario.
    Resolved(Box<ScenarioVerdict>),
    /// Impact-equivalent to an earlier scenario; shares the verdict of
    /// `outcomes[i]`.
    SharedWith(usize),
    /// No baseline path crosses any failed link: every verdict is
    /// provably unchanged, nothing to execute.
    BaselineEquivalent,
    /// The scenario could not be verified within its fence. The warm
    /// state was rolled back; the sweep continued.
    Undetermined {
        /// Why (e.g. `"deadline"`, `"oom"`, `"worker-lost: …"`).
        reason: String,
        /// Attempts spent before degrading.
        attempts: usize,
    },
}

/// One enumerated scenario and its resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The failed links.
    pub links: Vec<LinkKey>,
    /// The resolution.
    pub status: ScenarioStatus,
}

/// Survival counts of one property across the sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSurvival {
    /// Scenarios where the property survived the transient stage.
    pub transient: usize,
    /// Scenarios where the property survived reconvergence.
    pub reconverged: usize,
    /// Scenarios with a determinable verdict (everything but
    /// `undetermined`).
    pub evaluated: usize,
}

/// Per-property survival across all evaluated scenarios.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropertySurvival {
    /// All-pairs reachability.
    pub reachability: StageSurvival,
    /// Blackhole-freedom.
    pub blackhole_freedom: StageSurvival,
    /// Loop-freedom.
    pub loop_freedom: StageSurvival,
    /// Multipath consistency.
    pub multipath_consistency: StageSurvival,
}

/// The result of a resilience sweep.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// The `k` the sweep enumerated up to.
    pub max_failures: usize,
    /// Links in the topology.
    pub link_count: usize,
    /// Distinct impact-equivalence classes actually executed.
    pub class_count: usize,
    /// Scenarios resolved without execution (no used link failed).
    pub baseline_equivalent: usize,
    /// Scenarios sharing an earlier class representative's verdict.
    pub shared: usize,
    /// Scenarios that degraded to `undetermined`.
    pub undetermined: usize,
    /// Every scenario, in enumeration order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-property survival over the evaluated scenarios.
    pub survival: PropertySurvival,
    /// Subset-minimal failure sets whose *reconverged* stage breaks at
    /// least one property — the network's true resilience gaps (purely
    /// transient breakage heals on its own).
    pub minimal_breaking: Vec<Vec<LinkKey>>,
    /// Wall-clock milliseconds of the warm baseline (control plane +
    /// full DPV + checkpoint).
    pub baseline_ms: f64,
    /// Wall-clock milliseconds of the whole sweep, baseline included.
    pub sweep_ms: f64,
}

impl ResilienceReport {
    /// Total enumerated scenarios.
    pub fn scenario_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Scenarios resolved per second, baseline excluded.
    pub fn scenarios_per_sec(&self) -> f64 {
        let post = (self.sweep_ms - self.baseline_ms).max(1e-9) / 1000.0;
        self.outcomes.len() as f64 / post
    }

    /// What re-verifying every scenario with a cold full run would have
    /// cost (scenario count × baseline time) — the yardstick the warm
    /// sweep must beat.
    pub fn est_serial_full_ms(&self) -> f64 {
        self.outcomes.len() as f64 * self.baseline_ms
    }

    /// Speedup of the warm sweep over the serial-full estimate.
    pub fn speedup_vs_serial_full(&self) -> f64 {
        self.est_serial_full_ms() / self.sweep_ms.max(1e-9)
    }

    /// The effective verdict of `outcomes[i]`, following `SharedWith`
    /// references to the class representative.
    pub fn effective_status(&self, i: usize) -> &ScenarioStatus {
        match &self.outcomes[i].status {
            ScenarioStatus::SharedWith(rep) => &self.outcomes[*rep].status,
            other => other,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "sweep k<={}: {} scenarios ({} classes, {} baseline-equivalent, {} shared, \
             {} undetermined), {} minimal breaking set(s), {:.1}ms baseline, {:.1}ms total \
             ({:.2} scenarios/s, {:.1}x vs serial full re-verify)",
            self.max_failures,
            self.outcomes.len(),
            self.class_count,
            self.baseline_equivalent,
            self.shared,
            self.undetermined,
            self.minimal_breaking.len(),
            self.baseline_ms,
            self.sweep_ms,
            self.scenarios_per_sec(),
            self.speedup_vs_serial_full(),
        )
    }

    /// Serializes the report as `s2-resilience-report/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.outcomes.len() * 128);
        out.push_str("{\n  \"schema\": \"s2-resilience-report/v1\",\n");
        let _ = writeln!(out, "  \"max_failures\": {},", self.max_failures);
        let _ = writeln!(out, "  \"links\": {},", self.link_count);
        let _ = writeln!(out, "  \"scenarios\": {},", self.outcomes.len());
        let _ = writeln!(out, "  \"classes\": {},", self.class_count);
        let _ = writeln!(
            out,
            "  \"baseline_equivalent\": {},",
            self.baseline_equivalent
        );
        let _ = writeln!(out, "  \"shared\": {},", self.shared);
        let _ = writeln!(out, "  \"undetermined\": {},", self.undetermined);
        out.push_str("  \"baseline_ms\": ");
        push_f64(&mut out, self.baseline_ms);
        out.push_str(",\n  \"sweep_ms\": ");
        push_f64(&mut out, self.sweep_ms);
        out.push_str(",\n  \"scenarios_per_sec\": ");
        push_f64(&mut out, self.scenarios_per_sec());
        out.push_str(",\n  \"est_serial_full_ms\": ");
        push_f64(&mut out, self.est_serial_full_ms());
        out.push_str(",\n  \"speedup_vs_serial_full\": ");
        push_f64(&mut out, self.speedup_vs_serial_full());
        out.push_str(",\n  \"survival\": {\n");
        let props = [
            ("reachability", &self.survival.reachability),
            ("blackhole_freedom", &self.survival.blackhole_freedom),
            ("loop_freedom", &self.survival.loop_freedom),
            ("multipath_consistency", &self.survival.multipath_consistency),
        ];
        for (i, (name, s)) in props.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"transient\": {}, \"reconverged\": {}, \"evaluated\": {}}}{}",
                s.transient,
                s.reconverged,
                s.evaluated,
                if i + 1 < props.len() { "," } else { "" }
            );
        }
        out.push_str("  },\n  \"minimal_breaking\": [");
        for (i, set) in self.minimal_breaking.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_links(&mut out, set);
        }
        out.push_str("],\n  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    {\"links\": ");
            push_links(&mut out, &o.links);
            match &o.status {
                ScenarioStatus::Resolved(v) => {
                    let _ = write!(
                        out,
                        ", \"status\": \"resolved\", \"warm_rounds\": {}, \"ms\": ",
                        v.warm_rounds
                    );
                    push_f64(&mut out, v.elapsed_ms);
                    let _ = write!(
                        out,
                        ", \"transient_clean\": {}, \"reconverged_clean\": {}",
                        v.transient.is_clean(),
                        v.reconverged.is_clean()
                    );
                }
                ScenarioStatus::SharedWith(rep) => {
                    let _ = write!(out, ", \"status\": \"shared\", \"with\": {rep}");
                }
                ScenarioStatus::BaselineEquivalent => {
                    out.push_str(", \"status\": \"baseline-equivalent\"");
                }
                ScenarioStatus::Undetermined { reason, attempts } => {
                    out.push_str(", \"status\": \"undetermined\", \"reason\": ");
                    push_str(&mut out, reason);
                    let _ = write!(out, ", \"attempts\": {attempts}");
                }
            }
            out.push('}');
            if i + 1 < self.outcomes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Writes a link set as `[[aNode, aIface, bNode, bIface], …]`.
fn push_links(out: &mut String, links: &[LinkKey]) {
    out.push('[');
    for (i, ((an, ai), (bn, bi))) in links.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{}, {}, {}, {}]", an.0, ai.0, bn.0, bi.0);
    }
    out.push(']');
}

/// A finite, non-negative number at `path`, or an error naming the
/// offending key path — durations and counts are never NaN or negative,
/// and a validator that only checks presence would wave those through.
fn checked_num(value: Option<&Json>, path: &str) -> Result<f64, String> {
    let n = value
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}: missing or not a number"))?;
    if !n.is_finite() {
        return Err(format!("{path}: non-finite value"));
    }
    if n < 0.0 {
        return Err(format!("{path}: negative value ({n})"));
    }
    Ok(n)
}

/// Validates a parsed `s2-resilience-report/v1` document (used by the
/// CLI after writing and by the CI smoke job). Rejects NaN/negative
/// durations and counts, naming the offending key path.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("s2-resilience-report/v1") => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    for key in [
        "max_failures",
        "links",
        "scenarios",
        "classes",
        "baseline_equivalent",
        "shared",
        "undetermined",
        "baseline_ms",
        "sweep_ms",
        "scenarios_per_sec",
        "est_serial_full_ms",
        "speedup_vs_serial_full",
    ] {
        checked_num(doc.get(key), key)?;
    }
    let survival = doc.get("survival").ok_or("missing survival")?;
    for prop in [
        "reachability",
        "blackhole_freedom",
        "loop_freedom",
        "multipath_consistency",
    ] {
        let s = survival
            .get(prop)
            .ok_or_else(|| format!("missing survival.{prop}"))?;
        for stage in ["transient", "reconverged", "evaluated"] {
            checked_num(s.get(stage), &format!("survival.{prop}.{stage}"))?;
        }
    }
    let check_links = |value: &Json, what: &str| -> Result<(), String> {
        let arr = value.as_arr().ok_or_else(|| format!("{what} not an array"))?;
        for link in arr {
            let parts = link.as_arr().ok_or_else(|| format!("{what} link not an array"))?;
            if parts.len() != 4 || parts.iter().any(|p| p.as_num().is_none()) {
                return Err(format!("{what} link is not [node, iface, node, iface]"));
            }
        }
        Ok(())
    };
    for set in doc
        .get("minimal_breaking")
        .and_then(Json::as_arr)
        .ok_or("missing minimal_breaking array")?
    {
        check_links(set, "minimal_breaking")?;
    }
    let outcomes = doc
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or("missing outcomes array")?;
    let scenarios = doc.get("scenarios").and_then(Json::as_num).unwrap_or(0.0);
    if outcomes.len() as f64 != scenarios {
        return Err(format!(
            "outcomes length {} != scenarios {scenarios}",
            outcomes.len()
        ));
    }
    for (i, o) in outcomes.iter().enumerate() {
        check_links(o.get("links").ok_or_else(|| format!("outcome {i}: no links"))?, "outcome")?;
        match o.get("status").and_then(Json::as_str) {
            Some("resolved") => {
                for key in ["warm_rounds", "ms"] {
                    checked_num(o.get(key), &format!("outcomes[{i}].{key}"))?;
                }
                for key in ["transient_clean", "reconverged_clean"] {
                    match o.get(key) {
                        Some(Json::Bool(_)) => {}
                        _ => return Err(format!("outcome {i}: resolved without bool {key}")),
                    }
                }
            }
            Some("shared") => {
                let with = checked_num(o.get("with"), &format!("outcomes[{i}].with"))?;
                if with < 0.0 || with >= i as f64 {
                    return Err(format!("outcome {i}: shared with {with} out of range"));
                }
            }
            Some("baseline-equivalent") => {}
            Some("undetermined") => {
                o.get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("outcome {i}: undetermined without reason"))?;
            }
            other => return Err(format!("outcome {i}: bad status {other:?}")),
        }
    }
    Ok(())
}

/// Parses and validates a serialized report in one step.
pub fn validate_str(text: &str) -> Result<(), String> {
    validate(&parse_json(text)?)
}

/// The warm baseline a sweep re-verifies against.
pub(crate) struct WarmBaseline {
    /// Converged RIBs, collected through the same path as scenario
    /// RIBs so diffs are representation-exact.
    pub(crate) rib: Arc<RibSnapshot>,
    /// Full baseline DPV outcome (verdict sets, unreachable pairs,
    /// multipath violations).
    pub(crate) dpv: DpvRunStats,
    /// Milliseconds to build (control plane + DPV + checkpoint).
    pub(crate) ms: f64,
}

/// Why one scenario attempt failed, for retry classification.
pub(crate) enum ScenarioFail {
    /// A worker crashed or hung: recover, re-warm, retry.
    Lost(RuntimeError),
    /// The per-attempt deadline expired: roll back, retry.
    Deadline,
    /// Not retryable (OOM, non-convergence, protocol bug): degrade to
    /// `undetermined` with this reason.
    Fatal(String),
}

pub(crate) fn classify(e: RuntimeError) -> ScenarioFail {
    match e {
        RuntimeError::WorkerLost { .. } => ScenarioFail::Lost(e),
        RuntimeError::OutOfMemory { .. } => ScenarioFail::Fatal("oom".into()),
        RuntimeError::NotConverged { .. } => ScenarioFail::Fatal("not-converged".into()),
        other => ScenarioFail::Fatal(format!("runtime-error: {other}")),
    }
}

/// Both endpoints of every failed link, as the runtime's port list.
pub(crate) fn scenario_ports(links: &[LinkKey]) -> Vec<(NodeId, InterfaceId)> {
    let mut ports: Vec<(NodeId, InterfaceId)> =
        links.iter().flat_map(|&(a, b)| [a, b]).collect();
    ports.sort_unstable();
    ports.dedup();
    ports
}

/// Nodes whose RIB differs between baseline and scenario — the only
/// nodes whose forwarding predicates need recompiling.
pub(crate) fn changed_nodes(baseline: &RibSnapshot, scenario: &RibSnapshot) -> Vec<NodeId> {
    baseline
        .per_node
        .iter()
        .zip(scenario.per_node.iter())
        .enumerate()
        .filter(|(_, (b, s))| b != s)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

impl S2Verifier {
    /// Sweeps every ≤`opts.max_failures` link-failure scenario of the
    /// model's topology against `request`, reusing the warm runtime
    /// between scenarios.
    pub fn sweep(
        &self,
        request: &VerificationRequest,
        opts: &SweepOptions,
    ) -> Result<ResilienceReport, S2Error> {
        let links: Vec<LinkKey> = self.model.topology.links().iter().map(link_key).collect();
        let scenarios: Vec<Vec<LinkKey>> =
            enumerate_failure_sets(links.len(), opts.max_failures)
                .into_iter()
                .map(|set| set.into_iter().map(|i| links[i]).collect())
                .collect();
        self.sweep_scenarios(request, opts, &scenarios)
    }

    /// Sweeps an explicit scenario list (each scenario a set of failed
    /// links). [`S2Verifier::sweep`] enumerates and delegates here;
    /// tests use this to pin exact scenarios.
    pub fn sweep_scenarios(
        &self,
        request: &VerificationRequest,
        opts: &SweepOptions,
        scenarios: &[Vec<LinkKey>],
    ) -> Result<ResilienceReport, S2Error> {
        let _span = s2_obs::span!("sweep");
        let total = Stopwatch::start();
        let waypoints: BTreeMap<NodeId, u16> = request
            .transits
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u16))
            .collect();
        let copts = self.cluster_opts();
        let mut baseline = self.warm_up(request, &waypoints, &copts)?;
        let usage = LinkUsage::from_baseline(&baseline.rib);
        let (prefixes, aggregates, deps) = self.cluster.collect_prefixes()?;
        let dpdg = Dpdg::build_with_deps(&prefixes, &aggregates, &deps);
        // Verdict-set BDDs are decoded into a local manager sized like
        // the workers' packet space (one meta var per waypoint).
        let space = PacketSpace::new(waypoints.len() as u16);
        let mut manager = space.manager();

        let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(scenarios.len());
        let mut class_reps: BTreeMap<Vec<LinkKey>, usize> = BTreeMap::new();
        for scenario in scenarios {
            let impact = scenario_impact(scenario, &usage, &dpdg);
            let status = if impact.is_baseline_equivalent() {
                ScenarioStatus::BaselineEquivalent
            } else if let Some(&rep) = class_reps.get(&impact.relevant) {
                ScenarioStatus::SharedWith(rep)
            } else {
                let ports = scenario_ports(scenario);
                let status = if let Some(reason) = self.ospf_gate(&ports) {
                    ScenarioStatus::Undetermined { reason, attempts: 0 }
                } else {
                    self.run_scenario_fenced(
                        &mut baseline,
                        request,
                        &waypoints,
                        &ports,
                        opts,
                        &copts,
                        &mut manager,
                    )
                };
                // Later members of the class share this verdict either
                // way — re-running an undetermined representative would
                // just re-fail.
                class_reps.insert(impact.relevant.clone(), outcomes.len());
                status
            };
            outcomes.push(ScenarioOutcome {
                links: scenario.clone(),
                status,
            });
        }

        let report = assemble_report(
            opts.max_failures,
            self.model.topology.links().len(),
            class_reps.len(),
            outcomes,
            baseline.ms,
            total.elapsed().as_secs_f64() * 1000.0,
        );
        s2_obs::event!("sweep.done", report.outcomes.len());
        Ok(report)
    }

    /// Builds (or rebuilds, after a recovery) the warm baseline: OSPF,
    /// a single-shard warm control plane, the full baseline DPV, and a
    /// scenario checkpoint on every worker.
    ///
    /// Sharding is forced to 1 regardless of `S2Options::shards`: warm
    /// incremental re-verification needs every worker's in-memory
    /// state to cover all prefixes at once, which a multi-shard
    /// schedule only guarantees for the last shard.
    pub(crate) fn warm_up(
        &self,
        request: &VerificationRequest,
        waypoints: &BTreeMap<NodeId, u16>,
        copts: &ClusterOptions,
    ) -> Result<WarmBaseline, S2Error> {
        let _span = s2_obs::span!("sweep.warm_up");
        let sw = Stopwatch::start();
        let mut attempts = self.opts.runtime.max_recoveries + 1;
        loop {
            attempts -= 1;
            let run = || -> Result<WarmBaseline, RuntimeError> {
                // Survivors of an aborted scenario may still carry its
                // failed interfaces; roll everyone back before the cold
                // rebuild (a no-op reset on freshly respawned workers).
                self.cluster.scenario_rollback()?;
                self.cluster.run_ospf(copts)?;
                let plan = self.cluster.plan_shards(1, self.opts.shard_seed)?;
                self.cluster.run_control_plane(&plan, copts)?;
                let rib = Arc::new(self.cluster.collect_full_rib()?);
                let dpv = self.cluster.run_dpv(
                    rib.clone(),
                    request.sources.clone(),
                    request.expected.clone(),
                    request.dst_space,
                    waypoints.clone(),
                    copts,
                )?;
                if dpv.recoveries > 0 {
                    // A worker died inside DPV: its replay restored the
                    // forwarding state but the respawned worker's
                    // control plane is cold, which would corrupt warm
                    // fix points. Rebuild from the top.
                    return Err(RuntimeError::WorkerLost {
                        worker: u32::MAX,
                        during: "warm-up-dpv",
                    });
                }
                self.cluster.scenario_checkpoint(rib.clone())?;
                Ok(WarmBaseline {
                    rib,
                    dpv,
                    ms: sw.elapsed().as_secs_f64() * 1000.0,
                })
            };
            match run() {
                Ok(b) => return Ok(b),
                Err(RuntimeError::WorkerLost { .. }) if attempts > 0 => {
                    s2_obs::recorder::dump("sweep-warm-up-retry");
                    self.cluster.recover()?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Warm verification cannot replay an IGP topology change (only
    /// the BGP fix point runs warm), so scenarios failing a link that
    /// carries an OSPF adjacency degrade to `undetermined`.
    pub(crate) fn ospf_gate(&self, ports: &[(NodeId, InterfaceId)]) -> Option<String> {
        for &(n, i) in ports {
            let has_adj = self
                .model
                .ospf_adj
                .get(n.index())
                .is_some_and(|adj| adj.iter().any(|a| a.local_if == i));
            if has_adj {
                return Some("ospf-adjacency-on-failed-link".into());
            }
        }
        None
    }

    /// Runs one scenario inside its fence: one deadline shared by every
    /// attempt (retries cannot overshoot the scenario budget), bounded
    /// retries with jittered exponential backoff, rollback to the warm
    /// baseline on every exit path, recovery + re-warm after a lost
    /// worker.
    #[allow(clippy::too_many_arguments)]
    fn run_scenario_fenced(
        &self,
        baseline: &mut WarmBaseline,
        request: &VerificationRequest,
        waypoints: &BTreeMap<NodeId, u16>,
        ports: &[(NodeId, InterfaceId)],
        opts: &SweepOptions,
        copts: &ClusterOptions,
        manager: &mut s2_bdd::BddManager,
    ) -> ScenarioStatus {
        let mut attempt = 0;
        let fence = Deadline::after(opts.scenario_deadline);
        loop {
            attempt += 1;
            let result = self.run_scenario_once(
                baseline, request, waypoints, ports, copts, &fence, manager,
            );
            // Whatever happened, the next scenario (or retry) starts
            // from the fenced warm baseline.
            let restored = self.restore_baseline();
            match (result, restored) {
                (Ok(verdict), Ok(())) => {
                    return ScenarioStatus::Resolved(Box::new(verdict))
                }
                (Ok(_), Err(e)) | (Err(ScenarioFail::Lost(e)), _) => {
                    // A verdict from an attempt whose cleanup lost a
                    // worker is still trustworthy, but the warm state
                    // is not — and without it the *next* scenario
                    // would silently go cold. Recover, re-warm, and
                    // retry this scenario for a verdict with an intact
                    // baseline.
                    s2_obs::recorder::dump("scenario-abort:worker-lost");
                    s2_obs::event!("sweep.scenario_abort", attempt);
                    if let Err(e2) = self.cluster.recover() {
                        return ScenarioStatus::Undetermined {
                            reason: format!("unrecoverable: {e2}"),
                            attempts: attempt,
                        };
                    }
                    match self.warm_up(request, waypoints, copts) {
                        Ok(b) => *baseline = b,
                        Err(e2) => {
                            return ScenarioStatus::Undetermined {
                                reason: format!("re-warm failed: {e2}"),
                                attempts: attempt,
                            }
                        }
                    }
                    if attempt > opts.max_retries {
                        return ScenarioStatus::Undetermined {
                            reason: format!("worker-lost: {e}"),
                            attempts: attempt,
                        };
                    }
                }
                (Err(ScenarioFail::Deadline), _) => {
                    // The fence is shared by all attempts: an expired
                    // deadline means the scenario's whole budget is
                    // spent, so there is nothing left to retry with.
                    s2_obs::recorder::dump("scenario-abort:deadline");
                    return ScenarioStatus::Undetermined {
                        reason: "deadline".into(),
                        attempts: attempt,
                    };
                }
                (Err(ScenarioFail::Fatal(reason)), _) => {
                    return ScenarioStatus::Undetermined {
                        reason,
                        attempts: attempt,
                    }
                }
            }
            if fence.expired() {
                return ScenarioStatus::Undetermined {
                    reason: "deadline".into(),
                    attempts: attempt,
                };
            }
            std::thread::sleep(retry_backoff(opts.retry_backoff, attempt).min(fence.remaining()));
        }
    }

    /// One attempt: fail the ports, check the transient data plane,
    /// replay the warm BGP fix point, re-check the reconverged data
    /// plane, and diff both stages' verdicts against the baseline.
    #[allow(clippy::too_many_arguments)]
    fn run_scenario_once(
        &self,
        baseline: &WarmBaseline,
        request: &VerificationRequest,
        waypoints: &BTreeMap<NodeId, u16>,
        ports: &[(NodeId, InterfaceId)],
        copts: &ClusterOptions,
        deadline: &Deadline,
        manager: &mut s2_bdd::BddManager,
    ) -> Result<ScenarioVerdict, ScenarioFail> {
        let sw = Stopwatch::start();
        self.cluster.scenario_begin(ports).map_err(classify)?;
        // Transient stage: baseline predicates, failure mask only.
        let transient_stats = self
            .cluster
            .run_scenario_dpv(
                baseline.rib.clone(),
                Vec::new(),
                ports.to_vec(),
                request.sources.clone(),
                request.expected.clone(),
                request.dst_space,
                waypoints.clone(),
            )
            .map_err(classify)?;
        if deadline.expired() {
            return Err(ScenarioFail::Deadline);
        }
        let warm_rounds = self.cluster.run_warm_fixpoint(copts).map_err(classify)?;
        let scen_rib = Arc::new(self.cluster.collect_full_rib().map_err(classify)?);
        let changed = changed_nodes(&baseline.rib, &scen_rib);
        if deadline.expired() {
            return Err(ScenarioFail::Deadline);
        }
        let reconverged_stats = self
            .cluster
            .run_scenario_dpv(
                scen_rib,
                changed,
                ports.to_vec(),
                request.sources.clone(),
                request.expected.clone(),
                request.dst_space,
                waypoints.clone(),
            )
            .map_err(classify)?;
        if deadline.expired() {
            return Err(ScenarioFail::Deadline);
        }
        let transient = stage_delta(manager, &baseline.dpv, &transient_stats)?;
        let reconverged = stage_delta(manager, &baseline.dpv, &reconverged_stats)?;
        Ok(ScenarioVerdict {
            warm_rounds,
            transient,
            reconverged,
            elapsed_ms: sw.elapsed().as_secs_f64() * 1000.0,
        })
    }

    /// Returns the fleet to the warm baseline: fence (discard every
    /// in-flight frame of the aborted/finished scenario), then restore
    /// the checkpoint and clear scenario forwarding state.
    pub(crate) fn restore_baseline(&self) -> Result<(), RuntimeError> {
        self.cluster.fence()?;
        self.cluster.scenario_rollback()
    }
}

/// Diffs one stage's DPV outcome against the baseline.
pub(crate) fn stage_delta(
    manager: &mut s2_bdd::BddManager,
    baseline: &DpvRunStats,
    stage: &DpvRunStats,
) -> Result<StageDelta, ScenarioFail> {
    let vd = verdict_delta(manager, &baseline.verdict_sets, &stage.verdict_sets)
        .map_err(|e| ScenarioFail::Fatal(format!("verdict-delta: {e}")))?;
    let base_unreachable: BTreeSet<(NodeId, NodeId)> =
        baseline.unreachable_pairs.iter().copied().collect();
    let base_multipath: BTreeSet<NodeId> =
        baseline.multipath_violations.iter().copied().collect();
    Ok(StageDelta {
        new_blackholes: vd.new_blackholes,
        new_loops: vd.new_loops,
        lost_arrivals: vd.lost_arrivals,
        new_unreachable: stage
            .unreachable_pairs
            .iter()
            .filter(|p| !base_unreachable.contains(p))
            .copied()
            .collect(),
        new_multipath: stage
            .multipath_violations
            .iter()
            .filter(|n| !base_multipath.contains(n))
            .copied()
            .collect(),
    })
}

/// Folds outcomes into survival counts, minimal breaking sets, and the
/// final report.
fn assemble_report(
    max_failures: usize,
    link_count: usize,
    class_count: usize,
    outcomes: Vec<ScenarioOutcome>,
    baseline_ms: f64,
    sweep_ms: f64,
) -> ResilienceReport {
    let mut survival = PropertySurvival::default();
    let mut baseline_equivalent = 0;
    let mut shared = 0;
    let mut undetermined = 0;
    let mut breaking: Vec<BTreeSet<LinkKey>> = Vec::new();
    let clean = StageDelta::default();
    for o in outcomes.iter() {
        let effective = match &o.status {
            ScenarioStatus::SharedWith(rep) => {
                shared += 1;
                &outcomes[*rep].status
            }
            other => other,
        };
        let (transient, reconverged) = match effective {
            ScenarioStatus::Resolved(v) => (&v.transient, &v.reconverged),
            ScenarioStatus::BaselineEquivalent => {
                if matches!(o.status, ScenarioStatus::BaselineEquivalent) {
                    baseline_equivalent += 1;
                }
                (&clean, &clean)
            }
            ScenarioStatus::Undetermined { .. } => {
                undetermined += 1;
                continue;
            }
            ScenarioStatus::SharedWith(_) => unreachable!("representatives are never shared"),
        };
        for (s, t, r) in [
            (
                &mut survival.reachability,
                transient.reachability_ok(),
                reconverged.reachability_ok(),
            ),
            (
                &mut survival.blackhole_freedom,
                transient.blackhole_free(),
                reconverged.blackhole_free(),
            ),
            (
                &mut survival.loop_freedom,
                transient.loop_free(),
                reconverged.loop_free(),
            ),
            (
                &mut survival.multipath_consistency,
                transient.multipath_ok(),
                reconverged.multipath_ok(),
            ),
        ] {
            s.evaluated += 1;
            s.transient += t as usize;
            s.reconverged += r as usize;
        }
        if !reconverged.is_clean() {
            breaking.push(o.links.iter().copied().collect());
        }
    }
    // Subset-minimal breaking sets: drop any breaking set that strictly
    // contains another breaking set.
    let mut minimal: Vec<Vec<LinkKey>> = breaking
        .iter()
        .filter(|s| {
            !breaking
                .iter()
                .any(|t| t.len() < s.len() && t.is_subset(s))
        })
        .map(|s| s.iter().copied().collect())
        .collect();
    minimal.sort();
    minimal.dedup();
    ResilienceReport {
        max_failures,
        link_count,
        class_count,
        baseline_equivalent,
        shared,
        undetermined,
        outcomes,
        survival,
        minimal_breaking: minimal,
        baseline_ms,
        sweep_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerator_counts_match_binomials() {
        // C(5,1) + C(5,2) = 5 + 10.
        assert_eq!(enumerate_failure_sets(5, 2).len(), 15);
        // C(4,1) + C(4,2) + C(4,3) = 4 + 6 + 4.
        assert_eq!(enumerate_failure_sets(4, 3).len(), 14);
        // k beyond n saturates at the power set minus empty.
        assert_eq!(enumerate_failure_sets(3, 9).len(), 7);
        assert!(enumerate_failure_sets(0, 2).is_empty());
    }

    #[test]
    fn enumerator_yields_sorted_unique_sets() {
        let sets = enumerate_failure_sets(6, 3);
        let mut seen = BTreeSet::new();
        for s in &sets {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "unsorted: {s:?}");
            assert!(s.iter().all(|&i| i < 6));
            assert!(seen.insert(s.clone()), "duplicate: {s:?}");
        }
        assert_eq!(seen.len(), 6 + 15 + 20);
    }

    #[test]
    fn minimal_breaking_filters_supersets() {
        fn key(a: u32, b: u32) -> LinkKey {
            (
                (NodeId(a), InterfaceId(0)),
                (NodeId(b), InterfaceId(0)),
            )
        }
        let broken = |links: Vec<LinkKey>| ScenarioOutcome {
            links,
            status: ScenarioStatus::Resolved(Box::new(ScenarioVerdict {
                warm_rounds: 1,
                transient: StageDelta::default(),
                reconverged: StageDelta {
                    new_blackholes: vec![NodeId(0)],
                    ..StageDelta::default()
                },
                elapsed_ms: 1.0,
            })),
        };
        let outcomes = vec![
            broken(vec![key(0, 1)]),
            broken(vec![key(0, 1), key(2, 3)]),
            broken(vec![key(4, 5), key(6, 7)]),
        ];
        let report = assemble_report(2, 8, 3, outcomes, 10.0, 20.0);
        // {0-1, 2-3} ⊃ {0-1} is dropped; the disjoint pair stays.
        assert_eq!(report.minimal_breaking.len(), 2);
        assert_eq!(report.minimal_breaking[0], vec![key(0, 1)]);
        assert_eq!(report.survival.blackhole_freedom.reconverged, 0);
        assert_eq!(report.survival.blackhole_freedom.transient, 3);
        assert_eq!(report.survival.loop_freedom.reconverged, 3);
    }

    #[test]
    fn report_json_roundtrips_through_validator() {
        let outcomes = vec![
            ScenarioOutcome {
                links: vec![((NodeId(0), InterfaceId(0)), (NodeId(1), InterfaceId(1)))],
                status: ScenarioStatus::Resolved(Box::new(ScenarioVerdict {
                    warm_rounds: 2,
                    transient: StageDelta {
                        new_blackholes: vec![NodeId(0)],
                        ..StageDelta::default()
                    },
                    reconverged: StageDelta::default(),
                    elapsed_ms: 12.5,
                })),
            },
            ScenarioOutcome {
                links: vec![((NodeId(0), InterfaceId(0)), (NodeId(2), InterfaceId(0)))],
                status: ScenarioStatus::SharedWith(0),
            },
            ScenarioOutcome {
                links: vec![((NodeId(3), InterfaceId(0)), (NodeId(4), InterfaceId(0)))],
                status: ScenarioStatus::BaselineEquivalent,
            },
            ScenarioOutcome {
                links: vec![((NodeId(5), InterfaceId(0)), (NodeId(6), InterfaceId(0)))],
                status: ScenarioStatus::Undetermined {
                    reason: "deadline".into(),
                    attempts: 3,
                },
            },
        ];
        let report = assemble_report(1, 10, 1, outcomes, 100.0, 250.0);
        let json = report.to_json();
        validate_str(&json).unwrap();
        // Survival excludes the undetermined scenario.
        assert_eq!(report.survival.reachability.evaluated, 3);
        assert_eq!(report.undetermined, 1);
        assert_eq!(report.shared, 1);
        assert_eq!(report.baseline_equivalent, 1);
        assert!(report.summary().contains("4 scenarios"));
        // Tampered docs are rejected.
        assert!(validate_str(&json.replace("resolved", "solved")).is_err());
        assert!(validate_str(&json.replace("\"schema\": \"s2-resilience-report/v1\",", "")).is_err());
    }

    #[test]
    fn validator_rejects_nan_and_negative_with_key_path() {
        let outcomes = vec![ScenarioOutcome {
            links: vec![((NodeId(0), InterfaceId(0)), (NodeId(1), InterfaceId(1)))],
            status: ScenarioStatus::Resolved(Box::new(ScenarioVerdict {
                warm_rounds: 2,
                transient: StageDelta::default(),
                reconverged: StageDelta::default(),
                elapsed_ms: 12.5,
            })),
        }];
        let report = assemble_report(1, 10, 1, outcomes, 100.0, 250.0);
        let json = report.to_json();
        validate_str(&json).unwrap();

        let err =
            validate_str(&json.replace("\"baseline_ms\": 100.000", "\"baseline_ms\": -100.000"))
                .unwrap_err();
        assert!(err.contains("baseline_ms"), "{err}");
        assert!(err.contains("negative"), "{err}");

        let err = validate_str(&json.replace("\"ms\": 12.500", "\"ms\": -12.500")).unwrap_err();
        assert!(err.contains("outcomes[0].ms"), "{err}");

        let err = validate_str(&json.replace("\"sweep_ms\": 250.000", "\"sweep_ms\": 1e999"))
            .unwrap_err();
        assert!(err.contains("sweep_ms"), "{err}");
        assert!(err.contains("non-finite"), "{err}");

        let err = validate_str(
            &json.replace("\"transient\": 1, \"reconverged\": 1", "\"transient\": -1, \"reconverged\": 1"),
        )
        .unwrap_err();
        assert!(err.contains("survival."), "{err}");
    }

    #[test]
    fn retry_backoff_is_deterministic_exponential_and_jittered() {
        let base = Duration::from_millis(100);
        // Deterministic: same attempt, same sleep.
        assert_eq!(retry_backoff(base, 1), retry_backoff(base, 1));
        // Exponential growth.
        assert!(retry_backoff(base, 3) >= 2 * retry_backoff(base, 1) - Duration::from_millis(100));
        // Jitter: consecutive attempts never collapse onto one value.
        assert_ne!(retry_backoff(base, 1), retry_backoff(base, 2));
        // Saturates instead of overflowing.
        assert!(retry_backoff(base, usize::MAX) > retry_backoff(base, 1));
        // A zero base stays schedulable.
        assert!(retry_backoff(Duration::ZERO, 5) > Duration::ZERO);
    }

    use crate::verifier::S2Options;
    use crate::S2Verifier;
    use proptest::prelude::*;
    use s2_routing::NetworkModel;
    use s2_topogen::fattree::{generate, FatTree, FatTreeParams};

    fn fattree_request(ft: &FatTree) -> VerificationRequest {
        let k = ft.params.k;
        let endpoints = (0..k)
            .flat_map(|p| {
                (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
            })
            .collect();
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap())
    }

    fn fattree_verifier(k: usize, workers: u32) -> (S2Verifier, VerificationRequest, FatTree) {
        let ft = generate(FatTreeParams::new(k));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let request = fattree_request(&ft);
        let opts = S2Options {
            workers,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model, &opts).unwrap();
        (verifier, request, ft)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The enumerator yields every non-empty ≤k subset exactly once.
        #[test]
        fn enumerator_is_exact_and_complete(n in 0usize..9, k in 1usize..5) {
            let sets = enumerate_failure_sets(n, k);
            let mut seen = BTreeSet::new();
            for s in &sets {
                prop_assert!(!s.is_empty() && s.len() <= k.min(n));
                prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(s.iter().all(|&i| i < n));
                prop_assert!(seen.insert(s.clone()), "duplicate {s:?}");
            }
            // Completeness: walk the power set of 0..n and count the
            // non-empty subsets of size ≤ k.
            let mut expected = 0usize;
            for mask in 1u32..(1u32 << n) {
                let size = mask.count_ones() as usize;
                if size <= k {
                    expected += 1;
                }
            }
            prop_assert_eq!(sets.len(), expected);
        }
    }

    /// The tentpole end-to-end check: a full k=1 sweep over FatTree
    /// k=4 on a warm 2-worker fleet. Every link carries ECMP traffic,
    /// so every scenario is its own class; every failure transiently
    /// breaks blackhole-freedom (packets in flight toward the dead
    /// port drop) while reachability *survives* through the remaining
    /// ECMP copies; and after warm reconvergence BGP has healed every
    /// single-link failure completely.
    #[test]
    fn fattree4_single_failure_sweep_resolves_everything() {
        let (verifier, request, _ft) = fattree_verifier(4, 2);
        let report = verifier.sweep(&request, &SweepOptions::default()).unwrap();
        verifier.shutdown();
        assert_eq!(report.scenario_count(), 32);
        assert_eq!(report.class_count, 32);
        assert_eq!(report.undetermined, 0);
        assert_eq!(report.baseline_equivalent, 0);
        assert_eq!(report.shared, 0);
        for (i, o) in report.outcomes.iter().enumerate() {
            let ScenarioStatus::Resolved(v) = report.effective_status(i) else {
                panic!("scenario {:?} not resolved: {:?}", o.links, o.status);
            };
            assert!(v.warm_rounds >= 1, "{:?}: failure induced no warm rounds", o.links);
            // Transient: blackhole-freedom breaks, reachability holds.
            assert!(!v.transient.blackhole_free(), "{:?}", o.links);
            assert!(v.transient.reachability_ok(), "{:?}", o.links);
            // Reconverged: BGP routes around any single link failure.
            assert!(v.reconverged.is_clean(), "{:?}: {:?}", o.links, v.reconverged);
        }
        // No permanent damage from any single failure.
        assert!(report.minimal_breaking.is_empty());
        assert_eq!(report.survival.reachability.evaluated, 32);
        assert_eq!(report.survival.reachability.transient, 32);
        assert_eq!(report.survival.blackhole_freedom.transient, 0);
        assert_eq!(report.survival.blackhole_freedom.reconverged, 32);
        validate_str(&report.to_json()).unwrap();
    }

    /// Losing *both* uplinks of an edge switch isolates it — the
    /// reconverged stage must report the lost reachability, and the
    /// pair must surface as a minimal breaking set (its supersets
    /// pruned).
    #[test]
    fn double_uplink_failure_is_a_minimal_breaking_set() {
        let (verifier, request, ft) = fattree_verifier(4, 2);
        let links: Vec<LinkKey> = ft.topology.links().iter().map(link_key).collect();
        let victim = ft.edge(0, 0);
        let uplinks: Vec<LinkKey> = links
            .iter()
            .copied()
            .filter(|((a, _), (b, _))| *a == victim || *b == victim)
            .collect();
        assert_eq!(uplinks.len(), 2);
        let unrelated = links
            .iter()
            .copied()
            .find(|((a, _), (b, _))| ft.cores.contains(a) || ft.cores.contains(b))
            .unwrap();
        // The pair, and the pair padded with an unrelated core link:
        // the padded superset must not appear as minimal.
        let scenarios = vec![uplinks.clone(), {
            let mut s = uplinks.clone();
            s.push(unrelated);
            s
        }];
        let report = verifier
            .sweep_scenarios(&request, &SweepOptions::default(), &scenarios)
            .unwrap();
        verifier.shutdown();
        assert_eq!(report.undetermined, 0);
        let ScenarioStatus::Resolved(v) = report.effective_status(0) else {
            panic!("not resolved: {:?}", report.outcomes[0].status);
        };
        assert!(!v.reconverged.reachability_ok(), "victim should be isolated");
        // Every lost pair involves the victim.
        for (a, b) in &v.reconverged.new_unreachable {
            assert!(*a == victim || *b == victim, "unrelated pair ({a}, {b}) lost");
        }
        let mut sorted = uplinks.clone();
        sorted.sort();
        assert_eq!(report.minimal_breaking, vec![sorted]);
        validate_str(&report.to_json()).unwrap();
    }

    /// Oracle equivalence: for a spread of 1- and 2-link scenarios the
    /// warm incremental re-verification must agree exactly with a cold
    /// full re-verify (`s2_baselines::verify` with `failed_links`) on
    /// the reconverged reachability outcome.
    #[test]
    fn warm_sweep_matches_cold_oracle() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let request = fattree_request(&ft);
        let links: Vec<LinkKey> = ft.topology.links().iter().map(link_key).collect();
        // Singles across both tiers, plus every 5th pair of links —
        // includes same-edge double-uplinks and cross-tier pairs.
        let mut scenarios: Vec<Vec<LinkKey>> =
            links.iter().take(6).map(|&l| vec![l]).collect();
        scenarios.extend(
            enumerate_failure_sets(links.len(), 2)
                .into_iter()
                .filter(|s| s.len() == 2)
                .step_by(97)
                .map(|s| s.into_iter().map(|i| links[i]).collect()),
        );
        let opts = S2Options {
            workers: 2,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
        let report = verifier
            .sweep_scenarios(&request, &SweepOptions::default(), &scenarios)
            .unwrap();
        verifier.shutdown();
        for (i, scenario) in scenarios.iter().enumerate() {
            let failed_links: Vec<(NodeId, NodeId)> =
                scenario.iter().map(|((a, _), (b, _))| (*a, *b)).collect();
            let oracle = s2_baselines::verify(
                &model,
                &request.expected,
                request.dst_space,
                &s2_baselines::MonolithicOptions {
                    failed_links,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut oracle_unreachable = oracle.dpv.unreachable_pairs.clone();
            oracle_unreachable.sort_unstable();
            let warm_unreachable = match report.effective_status(i) {
                ScenarioStatus::Resolved(v) => {
                    let mut u = v.reconverged.new_unreachable.clone();
                    u.sort_unstable();
                    u
                }
                ScenarioStatus::BaselineEquivalent => Vec::new(),
                other => panic!("scenario {scenario:?} not comparable: {other:?}"),
            };
            assert_eq!(
                warm_unreachable, oracle_unreachable,
                "scenario {scenario:?}: warm reconverged disagrees with cold oracle"
            );
            assert_eq!(oracle.dpv.loops, 0);
        }
    }

    /// Chaos: a worker killed mid-sweep must be recovered, the baseline
    /// re-warmed, the interrupted scenario retried, and the report
    /// still complete — with the abort recorded by the flight recorder.
    #[test]
    fn worker_killed_mid_sweep_recovers_and_completes() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let request = fattree_request(&ft);
        let opts = S2Options {
            workers: 2,
            runtime: s2_runtime::RuntimeConfig {
                // Well past the warm-up barriers: lands inside an early
                // scenario's begin/DPV/fix-point command stream.
                faults: s2_runtime::FaultPlan::new().kill_worker(1, 400),
                ..Default::default()
            },
            ..Default::default()
        };
        let verifier = S2Verifier::new(model, &opts).unwrap();
        let dumps_before = s2_obs::recorder::dumps();
        let report = verifier.sweep(&request, &SweepOptions::default()).unwrap();
        verifier.shutdown();
        assert_eq!(report.scenario_count(), 32);
        assert_eq!(report.undetermined, 0, "{}", report.summary());
        for (i, o) in report.outcomes.iter().enumerate() {
            assert!(
                matches!(report.effective_status(i), ScenarioStatus::Resolved(_)),
                "scenario {:?}: {:?}",
                o.links,
                o.status
            );
        }
        if cfg!(feature = "obs") {
            assert!(
                s2_obs::recorder::dumps() > dumps_before,
                "the abort should have dumped the flight recorder"
            );
        }
    }

    #[test]
    fn scenario_ports_dedup_both_endpoints() {
        let l1 = ((NodeId(1), InterfaceId(0)), (NodeId(2), InterfaceId(1)));
        let l2 = ((NodeId(1), InterfaceId(0)), (NodeId(2), InterfaceId(1)));
        let ports = scenario_ports(&[l1, l2]);
        assert_eq!(
            ports,
            vec![(NodeId(1), InterfaceId(0)), (NodeId(2), InterfaceId(1))]
        );
    }
}
