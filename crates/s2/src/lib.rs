//! # S2 — a distributed configuration verifier
//!
//! A Rust reproduction of *"S2: A Distributed Configuration Verifier for
//! Hyper-Scale Networks"* (SIGCOMM 2025). S2 **scales out** network
//! configuration verification: the network model is partitioned across
//! workers, control-plane simulation runs as a distributed fix point with
//! **prefix sharding** bounding per-worker memory, and data-plane
//! verification forwards symbolic packets between per-worker BDD managers.
//!
//! ## Quick start
//!
//! ```
//! use s2::{S2Options, S2Verifier, VerificationRequest};
//! use s2_topogen::fattree::{generate, FatTreeParams, FatTree};
//!
//! // Synthesize a small FatTree running eBGP.
//! let ft = generate(FatTreeParams::new(4));
//! let model = s2_routing::NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
//!
//! // Ask: can every edge switch reach every server prefix?
//! let mut endpoints = Vec::new();
//! for p in 0..4 {
//!     for e in 0..2 {
//!         endpoints.push((ft.edge(p, e), vec![FatTree::server_prefix(p, e)]));
//!     }
//! }
//! let request = VerificationRequest::all_pair_reachability(
//!     endpoints,
//!     "10.0.0.0/8".parse().unwrap(),
//! );
//!
//! // Verify with 2 workers and 4 prefix shards.
//! let opts = S2Options { workers: 2, shards: 4, ..Default::default() };
//! let verifier = S2Verifier::new(model, &opts).unwrap();
//! let report = verifier.verify(&request).unwrap();
//! assert!(report.dpv.unreachable_pairs.is_empty());
//! assert_eq!(report.dpv.reachable_pairs, 8 * 7);
//! ```
//!
//! ## Pipeline
//!
//! 1. **Parse** — vendor configuration texts become the vendor-independent
//!    model (`s2-net`); [`ingest`] runs this front end.
//! 2. **Partition** — the topology is split into segments, one per worker,
//!    balancing estimated load first, communication second (`s2-partition`).
//! 3. **Control plane** — the CPO drives Algorithm 1: synchronized
//!    export/apply rounds per protocol (IGP before BGP) and per prefix
//!    shard, flushing each shard's RIBs to the controller's store.
//! 4. **Data plane** — the DPO compiles per-node port predicates on each
//!    worker's private BDD manager and forwards symbolic packets, with
//!    cross-worker packets serialized and re-encoded.
//! 5. **Properties** — reachability, waypoint, loop, blackhole and
//!    multipath-consistency verdicts are aggregated into the
//!    [`S2Report`].

#![deny(missing_docs)]

pub mod daemon;
pub mod query;
pub mod topofile;
pub mod report;
#[cfg(test)]
mod scoped_oracle;
pub mod sweep;
pub mod verifier;

pub use daemon::{Daemon, DaemonConfig, DaemonCrash};
pub use query::VerificationRequest;
pub use report::S2Report;
pub use sweep::{ResilienceReport, ScenarioOutcome, ScenarioStatus, SweepOptions};
pub use verifier::{ingest, S2Error, S2Options, S2Verifier};

// Re-export the workspace layers a downstream user needs.
pub use s2_partition::schemes::Scheme;
pub use s2_runtime::{FaultPlan, RuntimeConfig, RuntimeError};
pub use s2_routing::{NetworkModel, RibSnapshot};
