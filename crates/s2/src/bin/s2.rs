//! The `s2` command-line verifier.
//!
//! ```text
//! s2 verify --topology topo.txt --configs confdir/ [--workers N] [--shards M]
//!           [--source HOST]... [--expect HOST=PREFIX]... [--dst-space PREFIX]
//!           [--threads T] [--transport channel|tcp] [--listen ADDR]
//! s2 simulate --topology topo.txt --configs confdir/ [--workers N] [--shards M]
//!             [--threads T] [--transport channel|tcp] [--listen ADDR]
//! s2 worker --topology topo.txt --configs confdir/ --connect ADDR [--bind ADDR]
//! s2 gen-fattree K OUTDIR          # synthesize a demo network to verify
//! s2 sweep (--fattree K | --topology topo.txt --configs confdir/ --expect HOST=PREFIX...)
//!          [--max-failures N] [--json FILE] [--workers N] [--threads T]
//!          [--deadline-secs S]
//! ```
//!
//! `verify` checks all-pair reachability between the `--expect` endpoints
//! (each of which also acts as a source unless `--source` is given);
//! `simulate` prints the converged RIB summary only.
//!
//! Multi-process mode: start the controller with `--listen ADDR`, then
//! start `--workers` separate `s2 worker` processes pointing `--connect`
//! at that address (each with the same topology + configs). Workers form
//! their own TCP data fabric; `--bind` sets the local address of a
//! worker's data listener (default `127.0.0.1:0` — set a routable
//! address when workers run on different hosts). Single-process runs can
//! still exercise the TCP fabric with `--transport tcp`.
//!
//! `--threads T` sets the *intra-worker* pool: each worker evaluates
//! independent switches on up to `T` threads within a round. Results are
//! byte-identical to `--threads 1`; in multi-process mode the value is
//! shipped to worker processes in their setup frame.
//!
//! Observability: `--trace-out FILE` enables structured tracing and
//! writes a Chrome `trace_event` JSON file on exit (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>); crash flight dumps
//! go to `FILE` with a `.flight.json` extension. `--metrics-out FILE`
//! (verify only) writes the unified per-worker + aggregate metrics
//! snapshot as JSON.

use s2::{
    ingest, topofile, Daemon, DaemonConfig, S2Options, S2Verifier, ScenarioStatus, SweepOptions,
    VerificationRequest,
};
use s2_net::topology::NodeId;
use s2_net::Prefix;
use s2_runtime::admin::{parse_text_command, render_text_response, AdminRequest, DeltaSpec};
use s2_runtime::TransportKind;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  s2 verify   (--fattree K | --topology FILE --configs DIR) [--workers N] [--shards M] \\\n              [--expect HOST=PREFIX]... [--source HOST]... [--dst-space PREFIX] \\\n              [--threads T] [--transport channel|tcp] [--listen ADDR] \\\n              [--trace-out FILE] [--metrics-out FILE] [--verdict-hash]\n  s2 simulate --topology FILE --configs DIR [--workers N] [--shards M] \\\n              [--threads T] [--transport channel|tcp] [--listen ADDR] \\\n              [--trace-out FILE]\n  s2 sweep    (--fattree K | --topology FILE --configs DIR --expect HOST=PREFIX...) \\\n              [--max-failures N] [--json FILE] [--deadline-secs S] \\\n              [--workers N] [--threads T] [--trace-out FILE]\n  s2 daemon   (--fattree K | --topology FILE --configs DIR --expect HOST=PREFIX...) \\\n              [--admin ADDR] [--checkpoint FILE] [--deadline-secs S] \\\n              [--workers N] [--threads T] [--trace-out FILE]\n  s2 admin    --connect ADDR (status | stats | metrics | healthz | shutdown | \\\n              link-down A B | link-up A B | \\\n              prefix-add HOST PREFIX | prefix-withdraw HOST PREFIX | \\\n              route-map-edit HOST CONFIG_FILE)\n  s2 worker   --topology FILE --configs DIR --connect ADDR [--bind ADDR]\n  s2 gen-fattree K OUTDIR"
    );
    ExitCode::from(2)
}

struct Args {
    topology: PathBuf,
    configs: PathBuf,
    workers: u32,
    shards: usize,
    threads: usize,
    expects: Vec<(String, Prefix)>,
    sources: Vec<String>,
    dst_space: Prefix,
    transport: TransportKind,
    listen: Option<String>,
    connect: Option<String>,
    bind: String,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    fattree: Option<usize>,
    max_failures: usize,
    json_out: Option<PathBuf>,
    deadline_secs: u64,
    admin: String,
    checkpoint: Option<PathBuf>,
    verdict_hash: bool,
}

fn parse_args(mut argv: std::vec::IntoIter<String>) -> Result<Args, String> {
    let mut args = Args {
        topology: PathBuf::new(),
        configs: PathBuf::new(),
        workers: 1,
        shards: 1,
        threads: 1,
        expects: Vec::new(),
        sources: Vec::new(),
        dst_space: "0.0.0.0/0".parse().expect("valid"),
        transport: TransportKind::Channel,
        listen: None,
        connect: None,
        bind: "127.0.0.1:0".to_string(),
        trace_out: None,
        metrics_out: None,
        fattree: None,
        max_failures: 1,
        json_out: None,
        deadline_secs: 30,
        admin: "127.0.0.1:0".to_string(),
        checkpoint: None,
        verdict_hash: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--topology" => args.topology = PathBuf::from(value()?),
            "--configs" => args.configs = PathBuf::from(value()?),
            "--workers" => args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--shards" => args.shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--threads" => args.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--dst-space" => {
                args.dst_space = value()?.parse().map_err(|e| format!("--dst-space: {e}"))?
            }
            "--source" => args.sources.push(value()?),
            "--expect" => {
                let v = value()?;
                let (host, prefix) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--expect wants HOST=PREFIX, got {v}"))?;
                let prefix: Prefix = prefix.parse().map_err(|e| format!("--expect: {e}"))?;
                args.expects.push((host.to_string(), prefix));
            }
            "--transport" => {
                args.transport = match value()?.as_str() {
                    "channel" => TransportKind::Channel,
                    "tcp" => TransportKind::tcp(),
                    other => return Err(format!("--transport wants channel|tcp, got {other}")),
                }
            }
            "--listen" => args.listen = Some(value()?),
            "--connect" => args.connect = Some(value()?),
            "--bind" => args.bind = value()?,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value()?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value()?)),
            "--fattree" => {
                args.fattree = Some(value()?.parse().map_err(|e| format!("--fattree: {e}"))?)
            }
            "--max-failures" => {
                args.max_failures =
                    value()?.parse().map_err(|e| format!("--max-failures: {e}"))?
            }
            "--json" => args.json_out = Some(PathBuf::from(value()?)),
            "--deadline-secs" => {
                args.deadline_secs =
                    value()?.parse().map_err(|e| format!("--deadline-secs: {e}"))?
            }
            "--admin" => args.admin = value()?,
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value()?)),
            "--verdict-hash" => args.verdict_hash = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.fattree.is_none()
        && (args.topology.as_os_str().is_empty() || args.configs.as_os_str().is_empty())
    {
        return Err("--topology and --configs are required".into());
    }
    Ok(args)
}

fn load(args: &Args) -> Result<s2::NetworkModel, String> {
    let topo_text = std::fs::read_to_string(&args.topology)
        .map_err(|e| format!("{}: {e}", args.topology.display()))?;
    let topology = topofile::parse(&topo_text).map_err(|e| e.to_string())?;
    let mut texts = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&args.configs)
        .map_err(|e| format!("{}: {e}", args.configs.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "cfg") {
            texts.push(
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?,
            );
        }
    }
    if texts.is_empty() {
        return Err(format!("no .cfg files in {}", args.configs.display()));
    }
    ingest(topology, &texts).map_err(|e| e.to_string())
}

fn resolve(model: &s2::NetworkModel, host: &str) -> Result<NodeId, String> {
    model
        .topology
        .node_by_name(host)
        .ok_or_else(|| format!("unknown host {host}"))
}

/// Builds the verifier for the selected mode: in-process (channel or TCP
/// fabric) or multi-process controller (`--listen`).
fn make_verifier(model: s2::NetworkModel, args: &Args) -> Result<S2Verifier, String> {
    let mut opts = S2Options {
        workers: args.workers,
        shards: args.shards,
        intra_worker_threads: args.threads.max(1),
        ..Default::default()
    };
    opts.runtime.transport = args.transport.clone();
    match &args.listen {
        None => S2Verifier::new(model, &opts).map_err(|e| e.to_string()),
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
            eprintln!(
                "listening on {} for {} worker process(es)...",
                listener.local_addr().map_err(|e| e.to_string())?,
                args.workers
            );
            S2Verifier::listen(model, &opts, listener).map_err(|e| e.to_string())
        }
    }
}

/// Turns tracing on when `--trace-out` was given: structured spans flow
/// into the in-process sink, the flight recorder dumps next to the trace
/// file, and panics dump the recorder ring before unwinding.
fn obs_begin(args: &Args) {
    if let Some(path) = &args.trace_out {
        s2_obs::trace::set_enabled(true);
        s2_obs::recorder::set_dump_path(Some(path.with_extension("flight.json")));
        s2_obs::recorder::install_panic_hook();
    }
}

/// Writes the Chrome `trace_event` JSON for this run, draining the sink.
fn obs_finish(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let events = s2_obs::trace::take_events();
        let json = s2_obs::trace::export_chrome_trace(&events);
        std::fs::write(path, json).map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
        eprintln!("trace: {} events -> {}", events.len(), path.display());
    }
    Ok(())
}

/// Builds the verification request from `--expect`/`--source`/
/// `--dst-space` against a loaded model.
fn build_request(model: &s2::NetworkModel, args: &Args) -> Result<VerificationRequest, String> {
    let mut expected = Vec::new();
    for (host, prefix) in &args.expects {
        let node = resolve(model, host)?;
        match expected.iter_mut().find(|(n, _): &&mut (NodeId, Vec<Prefix>)| *n == node) {
            Some((_, ps)) => ps.push(*prefix),
            None => expected.push((node, vec![*prefix])),
        }
    }
    if expected.is_empty() {
        return Err("at least one --expect HOST=PREFIX is required".into());
    }
    let sources: Vec<NodeId> = if args.sources.is_empty() {
        expected.iter().map(|(n, _)| *n).collect()
    } else {
        args.sources
            .iter()
            .map(|h| resolve(model, h))
            .collect::<Result<_, _>>()?
    };
    Ok(VerificationRequest {
        sources,
        expected,
        dst_space: args.dst_space,
        transits: Vec::new(),
    })
}

fn cmd_verify(args: Args) -> Result<(), String> {
    let (model, request) = load_model_request(&args)?;
    for d in &model.session_diagnostics {
        eprintln!("warning: session diagnostic: {d:?}");
    }
    obs_begin(&args);
    let verifier = make_verifier(model, &args)?;
    let report = verifier.verify(&request).map_err(|e| e.to_string())?;
    verifier.shutdown();
    obs_finish(&args)?;
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, report.metrics.to_json())
            .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
        eprintln!("metrics: -> {}", path.display());
    }
    println!("{}", report.summary());
    print!("{}", report.metrics_table());
    for (s, d) in &report.dpv.unreachable_pairs {
        println!("UNREACHABLE: {s} -> {d}");
    }
    if args.verdict_hash {
        println!(
            "verdict-hash: {:016x}",
            s2_runtime::admin::verdict_hash(&report.dpv.verdict_sets)
        );
    }
    if report.all_clear() {
        println!("verdict: CLEAN");
        Ok(())
    } else {
        Err("verdict: VIOLATIONS FOUND".into())
    }
}

/// Builds the (model, request) pair for sweep/daemon modes: `--fattree K`
/// synthesizes the network and an all-pair edge-reachability request
/// in-memory; otherwise the topology, configs and `--expect` endpoints
/// are loaded as in `verify`.
fn load_model_request(args: &Args) -> Result<(s2::NetworkModel, VerificationRequest), String> {
    match args.fattree {
        Some(k) => {
            let ft = s2_topogen::fattree::generate(s2_topogen::fattree::FatTreeParams::new(k));
            let model = s2::NetworkModel::build(ft.topology.clone(), ft.configs.clone())
                .map_err(|e| e.to_string())?;
            let ft_ref = &ft;
            let endpoints = (0..k)
                .flat_map(|p| {
                    (0..k / 2).map(move |e| {
                        (ft_ref.edge(p, e), vec![s2_topogen::fattree::FatTree::server_prefix(p, e)])
                    })
                })
                .collect();
            let request = VerificationRequest::all_pair_reachability(
                endpoints,
                "10.0.0.0/8".parse().expect("valid"),
            );
            Ok((model, request))
        }
        None => {
            let model = load(args)?;
            let request = build_request(&model, args)?;
            Ok((model, request))
        }
    }
}

/// Runs a resilience sweep: baseline verification once over a warm
/// runtime, then every ≤`--max-failures` link-failure scenario
/// re-verified incrementally. `--fattree K` synthesizes the network and
/// an all-pair edge-reachability request in-memory; otherwise the
/// topology, configs and `--expect` endpoints are loaded as in `verify`.
fn cmd_sweep(args: Args) -> Result<(), String> {
    let (model, request) = load_model_request(&args)?;
    let topo = model.topology.clone();
    obs_begin(&args);
    let verifier = make_verifier(model, &args)?;
    let sweep_opts = SweepOptions {
        max_failures: args.max_failures,
        scenario_deadline: std::time::Duration::from_secs(args.deadline_secs),
        ..Default::default()
    };
    let report = verifier.sweep(&request, &sweep_opts).map_err(|e| e.to_string())?;
    verifier.shutdown();
    obs_finish(&args)?;
    println!("{}", report.summary());
    let link_name = |((a, ai), (b, bi)): &s2::sweep::LinkKey| {
        format!("{}#{ai}<->{}#{bi}", topo.name(*a), topo.name(*b))
    };
    for set in &report.minimal_breaking {
        let links: Vec<String> = set.iter().map(link_name).collect();
        println!("BREAKING: {{{}}}", links.join(", "));
    }
    for outcome in &report.outcomes {
        if let ScenarioStatus::Undetermined { reason, attempts } = &outcome.status {
            let links: Vec<String> = outcome.links.iter().map(link_name).collect();
            println!(
                "UNDETERMINED: {{{}}} after {attempts} attempt(s): {reason}",
                links.join(", ")
            );
        }
    }
    if let Some(path) = &args.json_out {
        let json = report.to_json();
        s2::sweep::validate_str(&json).map_err(|e| format!("internal: report schema: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("--json {}: {e}", path.display()))?;
        eprintln!("report: -> {}", path.display());
    }
    if report.undetermined == 0 {
        println!("sweep: COMPLETE");
        Ok(())
    } else {
        Err(format!("sweep: {} scenario(s) undetermined", report.undetermined))
    }
}

/// Runs the incremental verification daemon: verify the snapshot once
/// (or restore a warm checkpoint), then serve verify-then-commit deltas
/// over the `--admin` TCP socket until a `shutdown` request.
fn cmd_daemon(args: Args) -> Result<(), String> {
    let (model, request) = load_model_request(&args)?;
    obs_begin(&args);
    let mut cfg = DaemonConfig::new(
        model.topology.clone(),
        model.configs.iter().map(|c| (**c).clone()).collect(),
        request,
    );
    cfg.opts = S2Options {
        workers: args.workers,
        shards: args.shards,
        intra_worker_threads: args.threads.max(1),
        ..Default::default()
    };
    cfg.checkpoint = args.checkpoint.clone();
    cfg.delta_deadline = std::time::Duration::from_secs(args.deadline_secs);
    let listener = std::net::TcpListener::bind(&args.admin)
        .map_err(|e| format!("--admin {}: {e}", args.admin))?;
    let daemon = Daemon::open(cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "daemon: generation {} ({}) baseline {:.1} ms verdict-hash {:016x}",
        daemon.generation(),
        if daemon.warm_start() { "warm restart" } else { "cold start" },
        daemon.baseline_ms(),
        daemon.verdict_hash(),
    );
    daemon.serve(listener).map_err(|e| format!("daemon: {e}"))?;
    obs_finish(&args)?;
    Ok(())
}

/// One-shot admin client: sends a single text-grammar command to a
/// running daemon over the binary protocol and prints the JSON reply.
/// Exits non-zero when the daemon rejects the delta.
fn cmd_admin(argv: Vec<String>) -> Result<(), String> {
    let mut connect = None;
    let mut words = Vec::new();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(it.next().ok_or_else(|| "--connect needs a value".to_string())?)
            }
            _ => words.push(arg),
        }
    }
    let addr = connect.ok_or_else(|| "s2 admin requires --connect ADDR".to_string())?;
    if words.is_empty() {
        return Err("s2 admin requires a command (try: status)".into());
    }
    // `stats` is the human view of the metrics endpoint: a table of
    // key gauges and histogram quantiles instead of a JSON dump.
    if words[0] == "stats" {
        if words.len() != 1 {
            return Err("stats takes no arguments".into());
        }
        let resp = s2::daemon::admin_roundtrip(&addr, &AdminRequest::Metrics)
            .map_err(|e| format!("admin {addr}: {e}"))?;
        return match resp {
            s2_runtime::admin::AdminResponse::Metrics { aggregate, workers } => {
                print!("{}", render_stats(&aggregate, &workers));
                Ok(())
            }
            other => Err(format!("unexpected reply: {}", render_text_response(&other))),
        };
    }
    // `route-map-edit HOST FILE` carries a whole config text, so the
    // file is read here rather than squeezed through the line grammar.
    let req = if words[0] == "route-map-edit" {
        if words.len() != 3 {
            return Err("route-map-edit wants HOST CONFIG_FILE".into());
        }
        let config = std::fs::read_to_string(&words[2])
            .map_err(|e| format!("route-map-edit {}: {e}", words[2]))?;
        AdminRequest::ApplyDelta(DeltaSpec::RouteMapEdit { device: words[1].clone(), config })
    } else {
        parse_text_command(&words.join(" "))?
    };
    let resp = s2::daemon::admin_roundtrip(&addr, &req)
        .map_err(|e| format!("admin {addr}: {e}"))?;
    println!("{}", render_text_response(&resp));
    match resp {
        s2_runtime::admin::AdminResponse::Rejected { reason, .. } => {
            Err(format!("rejected: {reason}"))
        }
        s2_runtime::admin::AdminResponse::Error(message) => Err(format!("error: {message}")),
        _ => Ok(()),
    }
}

/// Renders the `s2 admin stats` table: daemon/worker liveness, every
/// gauge and counter of the merged aggregate, and p50/p90/p99 per
/// histogram (computed via [`HistogramSnapshot::quantile`] on the
/// decoded snapshot — the daemon ships state, not derived numbers).
///
/// [`HistogramSnapshot::quantile`]: s2_obs::HistogramSnapshot::quantile
fn render_stats(
    aggregate: &s2_obs::MetricsSnapshot,
    workers: &[s2_runtime::WorkerMetrics],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "workers");
    for w in workers {
        let _ = writeln!(
            out,
            "  {:<6} {:<6} {}",
            w.id,
            if w.up { "up" } else { "DOWN" },
            if w.stale { "stale" } else { "fresh" },
        );
    }
    let _ = writeln!(out, "\ngauges");
    for (name, v) in &aggregate.gauges {
        let _ = writeln!(out, "  {name:<36} {v:>12}");
    }
    let _ = writeln!(out, "\ncounters");
    for (name, v) in &aggregate.counters {
        let _ = writeln!(out, "  {name:<36} {v:>12}");
    }
    let _ = writeln!(
        out,
        "\nhistograms\n  {:<36} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "name", "count", "p50", "p90", "p99", "max"
    );
    for (name, h) in &aggregate.histograms {
        let _ = writeln!(
            out,
            "  {:<36} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max,
        );
    }
    out
}

fn cmd_simulate(args: Args) -> Result<(), String> {
    let model = load(&args)?;
    obs_begin(&args);
    let verifier = make_verifier(model, &args)?;
    let (rib, stats, shards) = verifier.simulate().map_err(|e| e.to_string())?;
    verifier.shutdown();
    obs_finish(&args)?;
    println!(
        "converged: {} routes, {} BGP rounds over {} shards, ospf {} rounds",
        rib.total_routes(),
        stats.bgp_rounds,
        shards,
        stats.ospf_rounds
    );
    println!("per-worker peak bytes: {:?}", stats.per_worker_peak);
    println!("protocol histogram: {:?}", rib.protocol_histogram());
    let t = &stats.traffic;
    println!(
        "transport: {} messages ({} bytes), {} reconnects, {} send drops, {} backpressure stalls, {} heartbeats, {} protocol violations",
        t.messages, t.bytes, t.reconnects, t.send_drops, t.backpressure_stalls, t.heartbeats, t.protocol_violations
    );
    Ok(())
}

/// Runs one worker process: builds the same model as the controller,
/// registers, and serves commands until shutdown.
fn cmd_worker(args: Args) -> Result<(), String> {
    let connect = args
        .connect
        .as_deref()
        .ok_or_else(|| "s2 worker requires --connect ADDR".to_string())?;
    let model = load(&args)?;
    s2_runtime::remote::serve(std::sync::Arc::new(model), connect, &args.bind)
        .map_err(|e| format!("worker: {e}"))
}

fn cmd_gen_fattree(k: usize, outdir: &Path) -> Result<(), String> {
    let ft = s2_topogen::fattree::generate(s2_topogen::fattree::FatTreeParams::new(k));
    std::fs::create_dir_all(outdir).map_err(|e| e.to_string())?;
    let topo_path = outdir.join("topology.txt");
    std::fs::write(&topo_path, topofile::emit(&ft.topology)).map_err(|e| e.to_string())?;
    let confdir = outdir.join("configs");
    std::fs::create_dir_all(&confdir).map_err(|e| e.to_string())?;
    for (host, text) in s2_topogen::emit_configs(&ft.configs) {
        std::fs::write(confdir.join(format!("{host}.cfg")), text).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} configs + {} — try:\n  s2 verify --topology {} --configs {} \\\n    --expect pod0-edge0=10.0.0.0/24 --expect pod1-edge0=10.1.0.0/24 --dst-space 10.0.0.0/8",
        ft.configs.len(),
        topo_path.display(),
        topo_path.display(),
        confdir.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "verify" => parse_args(argv.into_iter()).and_then(cmd_verify),
        "simulate" => parse_args(argv.into_iter()).and_then(cmd_simulate),
        "sweep" => parse_args(argv.into_iter()).and_then(cmd_sweep),
        "daemon" => parse_args(argv.into_iter()).and_then(cmd_daemon),
        "admin" => cmd_admin(argv),
        "worker" => parse_args(argv.into_iter()).and_then(cmd_worker),
        "gen-fattree" => {
            if argv.len() != 2 {
                return usage();
            }
            match argv[0].parse::<usize>() {
                Ok(k) => cmd_gen_fattree(k, Path::new(&argv[1])),
                Err(e) => Err(format!("bad k: {e}")),
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
