//! The verification report returned by [`S2Verifier`](crate::S2Verifier).

use s2_partition::Partition;
use s2_routing::{RibSnapshot, SessionDiagnostic};
use s2_runtime::{CpRunStats, DpvRunStats, RunMetrics};

/// Everything a verification run produced.
#[derive(Debug)]
pub struct S2Report {
    /// The converged RIBs of every node.
    pub rib: RibSnapshot,
    /// The partition used.
    pub partition: Partition,
    /// Control-plane phase statistics (rounds, shards, per-worker peaks,
    /// cross-worker traffic).
    pub cp: CpRunStats,
    /// Data-plane phase statistics and property verdicts.
    pub dpv: DpvRunStats,
    /// BGP sessions that failed to establish (misconfigurations surfaced
    /// during model building).
    pub session_diagnostics: Vec<SessionDiagnostic>,
    /// Number of prefix shards executed.
    pub shards: usize,
    /// Unified per-worker and aggregate metrics collected over the
    /// control protocol after the data-plane phase.
    pub metrics: RunMetrics,
}

impl S2Report {
    /// Total routes in the final RIBs.
    pub fn total_routes(&self) -> usize {
        self.rib.total_routes()
    }

    /// Whether every checked property held: full reachability, no loops,
    /// no waypoint or multipath violations, and all sessions established.
    pub fn all_clear(&self) -> bool {
        self.dpv.unreachable_pairs.is_empty()
            && self.dpv.loops == 0
            && self.dpv.waypoint_violations.is_empty()
            && self.dpv.multipath_violations.is_empty()
            && self.session_diagnostics.is_empty()
    }

    /// The paper's headline memory metric: the maximum per-worker peak.
    pub fn peak_worker_memory(&self) -> usize {
        self.cp
            .max_worker_peak()
            .max(self.dpv.per_worker_peak.iter().copied().max().unwrap_or(0))
    }

    /// A one-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} nodes on {} workers, {} shards: {} routes, {} BGP rounds; \
             reachability {}/{} pairs, {} loops, {} blackhole finals, \
             {} waypoint violations, {} multipath violations; \
             peak worker memory {} bytes; {} cross-worker messages ({} bytes)",
            self.partition.assignment.len(),
            self.partition.num_workers,
            self.shards,
            self.total_routes(),
            self.cp.bgp_rounds,
            self.dpv.reachable_pairs,
            self.dpv.reachable_pairs + self.dpv.unreachable_pairs.len(),
            self.dpv.loops,
            self.dpv.blackholes,
            self.dpv.waypoint_violations.len(),
            self.dpv.multipath_violations.len(),
            self.peak_worker_memory(),
            self.cp.messages,
            self.cp.bytes,
        );
        let recoveries = self.cp.recoveries + self.dpv.recoveries;
        let wire_errors = self.cp.wire_errors + self.dpv.wire_errors;
        if recoveries + self.cp.oom_splits > 0 || wire_errors > 0 {
            s.push_str(&format!(
                "; survived {} worker recoveries, {} OOM shard splits \
                 ({} shard retries), {} wire errors",
                recoveries, self.cp.oom_splits, self.cp.shard_retries, wire_errors,
            ));
        }
        let t = self.traffic();
        if t.reconnects + t.send_drops + t.backpressure_stalls + t.protocol_violations > 0
            || t.heartbeats > 0
        {
            s.push_str(&format!(
                "; transport: {} reconnects, {} send drops, \
                 {} backpressure stalls, {} heartbeats, {} protocol violations",
                t.reconnects,
                t.send_drops,
                t.backpressure_stalls,
                t.heartbeats,
                t.protocol_violations,
            ));
        }
        s
    }

    /// Renders the unified metrics as two fixed-width text tables: one
    /// row per metric in the aggregate, then one row per metric across
    /// workers. Deterministic (snapshot maps are key-ordered); empty
    /// sections are elided.
    pub fn metrics_table(&self) -> String {
        let mut out = String::new();
        let agg = &self.metrics.aggregate;
        if !agg.counters.is_empty() || !agg.gauges.is_empty() {
            out.push_str("metrics (aggregate):\n");
            for (name, v) in agg.counters.iter().chain(agg.gauges.iter()) {
                out.push_str(&format!("  {name:<28} {v}\n"));
            }
        }
        if !self.metrics.per_worker.is_empty() {
            out.push_str("metrics (per worker):\n");
            let mut names: Vec<&str> = Vec::new();
            for w in &self.metrics.per_worker {
                for name in w.counters.keys().chain(w.gauges.keys()) {
                    if !names.contains(&name.as_str()) {
                        names.push(name);
                    }
                }
            }
            names.sort_unstable();
            for name in names {
                out.push_str(&format!("  {name:<28}"));
                for w in &self.metrics.per_worker {
                    let v = w
                        .counters
                        .get(name)
                        .or_else(|| w.gauges.get(name))
                        .copied()
                        .unwrap_or(0);
                    out.push_str(&format!(" {v:>12}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Transport/traffic counters summed over both phases. The
    /// data-plane phase snapshot is cumulative over the run (counters
    /// are never reset), so it alone already covers the control plane;
    /// use the later (larger) snapshot rather than double-counting.
    pub fn traffic(&self) -> s2_runtime::TrafficSnapshot {
        if self.dpv.traffic.messages >= self.cp.traffic.messages {
            self.dpv.traffic
        } else {
            self.cp.traffic
        }
    }
}
