//! The topology file format consumed by the `s2` CLI.
//!
//! One statement per line, `#` comments:
//!
//! ```text
//! # hosts are declared implicitly by links
//! link tor0 agg0
//! link tor0 agg1
//! # optional explicit node declaration (for single-node topologies)
//! node lonely-switch
//! ```

use s2_net::topology::Topology;
use s2_net::NetError;

/// Parses the link-list topology format.
pub fn parse(text: &str) -> Result<Topology, NetError> {
    let mut topo = Topology::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["link", a, b] => {
                if a == b {
                    return Err(NetError::Syntax {
                        line: idx + 1,
                        message: format!("self-link on {a}"),
                    });
                }
                let na = topo.add_node(*a);
                let nb = topo.add_node(*b);
                topo.connect(na, nb);
            }
            ["node", n] => {
                topo.add_node(*n);
            }
            _ => {
                return Err(NetError::Syntax {
                    line: idx + 1,
                    message: format!("expected `link A B` or `node N`, got {line:?}"),
                })
            }
        }
    }
    Ok(topo)
}

/// Renders a topology back into the file format (links only; isolated
/// nodes get explicit `node` lines).
pub fn emit(topo: &Topology) -> String {
    let mut out = String::new();
    let mut connected = std::collections::HashSet::new();
    for l in topo.links() {
        out.push_str(&format!("link {} {}\n", topo.name(l.a.0), topo.name(l.b.0)));
        connected.insert(l.a.0);
        connected.insert(l.b.0);
    }
    for n in topo.nodes() {
        if !connected.contains(&n) {
            out.push_str(&format!("node {}\n", topo.name(n)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_links_and_nodes() {
        let t = parse("# c\nlink a b\nlink b c\nnode d\n").unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.degree(t.node_by_name("b").unwrap()), 2);
        assert_eq!(t.degree(t.node_by_name("d").unwrap()), 0);
    }

    #[test]
    fn rejects_garbage_and_self_links() {
        assert!(parse("link a\n").is_err());
        assert!(parse("link a a\n").is_err());
        assert!(parse("frobnicate x y\n").is_err());
    }

    #[test]
    fn emit_parse_roundtrip() {
        let t = parse("link a b\nlink a c\nnode z\n").unwrap();
        let text = emit(&t);
        let t2 = parse(&text).unwrap();
        assert_eq!(t2.node_count(), t.node_count());
        assert_eq!(t2.link_count(), t.link_count());
    }
}
