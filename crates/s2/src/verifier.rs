//! The S2 verifier: partition → distributed control plane → distributed
//! data plane → report.

use crate::query::VerificationRequest;
use crate::report::S2Report;
use s2_net::config::DeviceConfig;
use s2_net::topology::{NodeId, Topology};
use s2_net::{NetError, Prefix};
use s2_partition::schemes::{compute, Scheme};
use s2_partition::Partition;
use s2_routing::{NetworkModel, RibSnapshot};
use s2_runtime::{Cluster, ClusterOptions, CpRunStats, FaultPlan, RuntimeConfig, RuntimeError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Verification options.
#[derive(Debug, Clone)]
pub struct S2Options {
    /// Number of workers (logical servers).
    pub workers: u32,
    /// Partition scheme (§4.1 / §5.6).
    pub scheme: Scheme,
    /// Number of prefix shards; 0 or 1 disables sharding (§4.5).
    pub shards: usize,
    /// Seed for the shard planner's equal-size shuffle.
    pub shard_seed: u64,
    /// Per-worker memory budget in modelled bytes (`None` = unlimited).
    pub memory_budget: Option<usize>,
    /// Fix-point round budget per protocol per shard.
    pub max_rounds: usize,
    /// TTL for symbolic forwarding (0 = engine default).
    pub max_hops: u16,
    /// Prefix parallelism (the §7 discussion's alternative strategy):
    /// shards are split round-robin into this many groups and the groups
    /// execute **concurrently**, each on its own replica of the switch
    /// fleet. Trades memory (each group holds its own copy of the
    /// per-switch state) for wall-clock time — orthogonal to the
    /// switch-level parallelism of the workers, exactly as the paper
    /// describes. `0` or `1` keeps the default sequential-shard schedule.
    pub parallel_shard_groups: usize,
    /// Threads each worker uses to evaluate independent switches within
    /// a round (the intra-worker pool; 1 = sequential). Results are
    /// byte-identical at any width — this only trades CPU for latency.
    /// Takes precedence over `runtime.intra_worker_threads` when > 1.
    pub intra_worker_threads: usize,
    /// Fault-tolerance and transport configuration (barrier timeout,
    /// recovery/bisection budgets, fault injection). `memory_budget`
    /// above takes precedence over `runtime.memory_budget` when set.
    pub runtime: RuntimeConfig,
}

impl Default for S2Options {
    fn default() -> Self {
        S2Options {
            workers: 1,
            scheme: Scheme::Metis,
            shards: 1,
            shard_seed: 7,
            memory_budget: None,
            max_rounds: s2_routing::DEFAULT_MAX_ROUNDS,
            max_hops: 0,
            parallel_shard_groups: 1,
            intra_worker_threads: 1,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Verification failures.
#[derive(Debug)]
pub enum S2Error {
    /// Configuration parsing / model building failed.
    Model(NetError),
    /// The distributed run failed (non-convergence, worker OOM, ...).
    Runtime(RuntimeError),
    /// Multi-process setup failed (bind, accept, handshake).
    Io(std::io::Error),
}

impl std::fmt::Display for S2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            S2Error::Model(e) => write!(f, "model error: {e}"),
            S2Error::Runtime(e) => write!(f, "runtime error: {e}"),
            S2Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for S2Error {}

impl From<NetError> for S2Error {
    fn from(e: NetError) -> Self {
        S2Error::Model(e)
    }
}

impl From<RuntimeError> for S2Error {
    fn from(e: RuntimeError) -> Self {
        S2Error::Runtime(e)
    }
}

impl From<std::io::Error> for S2Error {
    fn from(e: std::io::Error) -> Self {
        S2Error::Io(e)
    }
}

/// The Batfish-style ingestion front end: parses vendor configuration
/// texts (auto-detecting each dialect) and builds the resolved network
/// model against `topology`.
pub fn ingest(topology: Topology, config_texts: &[String]) -> Result<NetworkModel, S2Error> {
    let configs: Result<Vec<DeviceConfig>, NetError> =
        config_texts.iter().map(|t| s2_net::vendor::parse(t)).collect();
    Ok(NetworkModel::build(topology, configs?)?)
}

/// A verifier instance: a partitioned model plus a running worker fleet.
///
/// Dropping the verifier without calling [`S2Verifier::shutdown`] leaks the
/// worker threads until process exit; prefer explicit shutdown.
pub struct S2Verifier {
    pub(crate) model: Arc<NetworkModel>,
    partition: Partition,
    pub(crate) cluster: Cluster,
    pub(crate) opts: S2Options,
}

impl S2Verifier {
    /// Partitions `model` and spawns the worker fleet.
    pub fn new(model: NetworkModel, opts: &S2Options) -> Result<Self, S2Error> {
        let partition = compute(&model.topology, opts.workers, opts.scheme);
        Self::with_partition(model, partition, opts)
    }

    /// Spawns the fleet with an explicit partition (used by the partition-
    /// scheme experiments).
    pub fn with_partition(
        model: NetworkModel,
        partition: Partition,
        opts: &S2Options,
    ) -> Result<Self, S2Error> {
        let model = Arc::new(model);
        let config = RuntimeConfig {
            memory_budget: opts.memory_budget.or(opts.runtime.memory_budget),
            intra_worker_threads: opts.intra_worker_threads.max(opts.runtime.intra_worker_threads),
            ..opts.runtime.clone()
        };
        let cluster = Cluster::with_config(
            model.clone(),
            partition.assignment.clone(),
            partition.num_workers,
            config,
        );
        Ok(S2Verifier {
            model,
            partition,
            cluster,
            opts: opts.clone(),
        })
    }

    /// Multi-process mode: partitions `model`, listens on `listener`, and
    /// waits for `opts.workers` `s2 worker` processes to register before
    /// returning. The workers form their own TCP data fabric; this
    /// process only orchestrates. Recovery is unavailable in this mode
    /// (a lost worker process fails the run), and `opts.runtime.faults`
    /// are not shipped to remote workers.
    pub fn listen(
        model: NetworkModel,
        opts: &S2Options,
        listener: std::net::TcpListener,
    ) -> Result<Self, S2Error> {
        let partition = compute(&model.topology, opts.workers, opts.scheme);
        let model = Arc::new(model);
        let config = RuntimeConfig {
            memory_budget: opts.memory_budget.or(opts.runtime.memory_budget),
            intra_worker_threads: opts.intra_worker_threads.max(opts.runtime.intra_worker_threads),
            ..opts.runtime.clone()
        };
        let cluster = Cluster::connect_remote(
            model.clone(),
            partition.assignment.clone(),
            partition.num_workers,
            listener,
            config,
        )?;
        Ok(S2Verifier {
            model,
            partition,
            cluster,
            opts: opts.clone(),
        })
    }

    /// The resolved model.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    pub(crate) fn cluster_opts(&self) -> ClusterOptions {
        ClusterOptions {
            max_rounds: self.opts.max_rounds,
            max_hops: self.opts.max_hops,
        }
    }

    /// Runs only the distributed control-plane simulation, returning the
    /// converged RIBs (and the shard count used).
    ///
    /// The run is self-checking (§7): the dependencies observed during
    /// route computation are validated against the shard plan, and any
    /// unforeseen cross-shard dependency triggers a merge-and-recompute of
    /// the affected shards. With the built-in planner this never fires —
    /// the planner already knows every dependency source — but it protects
    /// externally supplied plans and future model extensions.
    pub fn simulate(&self) -> Result<(RibSnapshot, CpRunStats, usize), S2Error> {
        let _span = s2_obs::span!("verify.cp");
        let copts = self.cluster_opts();
        // IGP first so the shard planner sees redistribution targets; the
        // control-plane run repeats the (cheap, already converged) OSPF
        // rounds. A worker lost during this pre-phase is recovered and
        // the pre-phase retried (losses inside the control-plane run are
        // handled by the cluster's own checkpointed retry loop).
        let mut attempts = self.opts.runtime.max_recoveries;
        let plan = loop {
            let attempt = self.cluster.run_ospf(&copts).and_then(|_| {
                self.cluster
                    .plan_shards(self.opts.shards, self.opts.shard_seed)
            });
            match attempt {
                Ok(plan) => break plan,
                Err(RuntimeError::WorkerLost { .. }) if attempts > 0 => {
                    attempts -= 1;
                    self.cluster.recover()?;
                }
                Err(e) => return Err(e.into()),
            }
        };
        if self.opts.parallel_shard_groups > 1 && plan.shards.len() > 1 {
            return self.simulate_parallel(plan, &copts);
        }
        let (rib, stats, final_plan) = self.cluster.run_control_plane_refined(plan, &copts)?;
        Ok((rib, stats, final_plan.shards.len()))
    }

    /// §7 prefix parallelism: splits the shard schedule round-robin into
    /// `parallel_shard_groups` groups and runs each group on its own
    /// replica fleet concurrently, merging the resulting RIBs. Shards are
    /// independent by construction (the DPDG co-shards every dependency),
    /// so the merged result is identical to the sequential schedule —
    /// asserted by tests.
    fn simulate_parallel(
        &self,
        plan: s2_shard::ShardPlan,
        copts: &ClusterOptions,
    ) -> Result<(RibSnapshot, CpRunStats, usize), S2Error> {
        let groups = self.opts.parallel_shard_groups.min(plan.shards.len());
        let total_shards = plan.shards.len();
        let mut group_plans: Vec<s2_shard::ShardPlan> = (0..groups)
            .map(|_| s2_shard::ShardPlan { shards: Vec::new() })
            .collect();
        for (i, shard) in plan.shards.into_iter().enumerate() {
            group_plans[i % groups].shards.push(shard);
        }

        let results: Vec<Result<(RibSnapshot, CpRunStats), RuntimeError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = group_plans
                    .into_iter()
                    .enumerate()
                    .map(|(g, gplan)| {
                        let model = self.model.clone();
                        let partition = &self.partition;
                        let budget = self.opts.memory_budget.or(self.opts.runtime.memory_budget);
                        let copts = copts.clone();
                        scope.spawn(move || {
                            // Group 0 reuses the main fleet; others get
                            // their own replica (the "multiple nodes per
                            // switch" of §7).
                            if g == 0 {
                                self.cluster.run_control_plane(&gplan, &copts)
                            } else {
                                // Replicas never re-inject the faults the
                                // main fleet already played out.
                                let config = RuntimeConfig {
                                    memory_budget: budget,
                                    faults: FaultPlan::default(),
                                    ..self.opts.runtime.clone()
                                };
                                let cluster = Cluster::with_config(
                                    model,
                                    partition.assignment.clone(),
                                    partition.num_workers,
                                    config,
                                );
                                let out = cluster.run_control_plane(&gplan, &copts);
                                cluster.shutdown();
                                out
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panics")).collect()
            });

        let mut merged: Option<(RibSnapshot, CpRunStats)> = None;
        for r in results {
            let (rib, stats) = r?;
            merged = Some(match merged {
                None => (rib, stats),
                Some((mut acc_rib, mut acc_stats)) => {
                    // Merge per-node tables; distinct shards produce
                    // distinct prefixes, base routes are identical.
                    for (node, routes) in rib.per_node.into_iter().enumerate() {
                        let table = &mut acc_rib.per_node[node];
                        table.extend(routes);
                        table.sort_by_key(|r| r.prefix);
                        table.dedup();
                    }
                    acc_stats.bgp_rounds += stats.bgp_rounds;
                    acc_stats.shards += stats.shards;
                    // Replica fleets add memory: report the sum of group
                    // peaks per worker — the §7 trade-off made visible.
                    for (w, peak) in stats.per_worker_peak.iter().enumerate() {
                        acc_stats.per_worker_peak[w] += peak;
                    }
                    acc_stats.messages += stats.messages;
                    acc_stats.bytes += stats.bytes;
                    acc_stats.recoveries += stats.recoveries;
                    acc_stats.oom_splits += stats.oom_splits;
                    acc_stats.shard_retries += stats.shard_retries;
                    acc_stats.resyncs += stats.resyncs;
                    acc_stats.wire_errors += stats.wire_errors;
                    acc_stats.traffic.merge(&stats.traffic);
                    acc_stats.elapsed = acc_stats.elapsed.max(stats.elapsed);
                    (acc_rib, acc_stats)
                }
            });
        }
        let (rib, stats) = merged.expect("at least one group");
        Ok((rib, stats, total_shards))
    }

    /// Runs the full verification: control plane, then the data-plane
    /// checks described by `request`.
    pub fn verify(&self, request: &VerificationRequest) -> Result<S2Report, S2Error> {
        let _span = s2_obs::span!("verify");
        let (rib, cp, shards) = self.simulate()?;
        let waypoints: BTreeMap<NodeId, u16> = request
            .transits
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u16))
            .collect();
        let dpv = {
            let _dpv_span = s2_obs::span!("verify.dpv");
            self.cluster.run_dpv(
                Arc::new(rib.clone()),
                request.sources.clone(),
                request.expected.clone(),
                request.dst_space,
                waypoints,
                &self.cluster_opts(),
            )?
        };
        // Collected immediately after the data-plane phase, so the
        // aggregate BDD counters equal the DpvRunStats cache stats.
        let metrics = self.cluster.collect_metrics()?;
        Ok(S2Report {
            rib,
            partition: self.partition.clone(),
            cp,
            dpv,
            session_diagnostics: self.model.session_diagnostics.clone(),
            shards,
            metrics,
        })
    }

    /// Runs only distributed data-plane verification against an
    /// already-converged RIB snapshot (the §5.8 experiments time this
    /// phase in isolation).
    pub fn run_dpv_only(
        &self,
        rib: Arc<RibSnapshot>,
        request: &VerificationRequest,
    ) -> Result<s2_runtime::DpvRunStats, S2Error> {
        let waypoints: BTreeMap<NodeId, u16> = request
            .transits
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u16))
            .collect();
        Ok(self.cluster.run_dpv(
            rib,
            request.sources.clone(),
            request.expected.clone(),
            request.dst_space,
            waypoints,
            &self.cluster_opts(),
        )?)
    }

    /// Checks reachability of a single prefix between two nodes — the
    /// paper's single-pair query (§5.8).
    pub fn verify_single_pair(
        &self,
        src: NodeId,
        dst: NodeId,
        prefix: Prefix,
    ) -> Result<S2Report, S2Error> {
        self.verify(&VerificationRequest::single_pair(src, dst, prefix))
    }

    /// Scrapes the fleet leniently: per-worker metric snapshots plus
    /// the merged aggregate. A dead or hung worker yields `None` for
    /// its slot instead of failing the whole scrape.
    pub fn scrape_metrics(&self) -> s2_runtime::FleetScrape {
        self.cluster.scrape_metrics()
    }

    /// Pulls buffered trace events from remote worker processes into
    /// this process's trace sink so one Chrome trace export covers the
    /// whole fleet. No-op for in-process fleets or when tracing is off.
    pub fn drain_remote_traces(&self) {
        self.cluster.drain_remote_traces()
    }

    /// Stops the worker fleet.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_topogen::fattree::{generate, FatTree, FatTreeParams};

    fn fattree_request(ft: &FatTree) -> VerificationRequest {
        let k = ft.params.k;
        let endpoints = (0..k)
            .flat_map(|p| {
                (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)]))
            })
            .collect();
        VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap())
    }

    #[test]
    fn fattree4_verifies_clean_on_multiple_workers() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let request = fattree_request(&ft);
        let opts = S2Options {
            workers: 4,
            shards: 3,
            ..Default::default()
        };
        let verifier = S2Verifier::new(model, &opts).unwrap();
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        assert!(report.all_clear(), "{}", report.summary());
        assert_eq!(report.dpv.reachable_pairs, 8 * 7);
        assert_eq!(report.shards, 3);
        assert!(report.cp.messages > 0);
        assert!(report.peak_worker_memory() > 0);
    }

    #[test]
    fn results_invariant_to_workers_schemes_and_shards() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let request = fattree_request(&ft);

        let mut reference: Option<RibSnapshot> = None;
        for (workers, scheme, shards) in [
            (1, Scheme::Metis, 1),
            (2, Scheme::Random { seed: 3 }, 2),
            (3, Scheme::Expert, 5),
            (4, Scheme::CommHeavy, 4),
        ] {
            let opts = S2Options {
                workers,
                scheme,
                shards,
                ..Default::default()
            };
            let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
            let report = verifier.verify(&request).unwrap();
            verifier.shutdown();
            assert!(report.all_clear(), "w={workers} {}", report.summary());
            match &reference {
                None => reference = Some(report.rib),
                Some(r) => assert_eq!(&report.rib, r, "w={workers} scheme differs"),
            }
        }
    }

    #[test]
    fn injected_acl_misconfig_is_reported() {
        let ft = generate(FatTreeParams::new(4));
        let mut configs = ft.configs.clone();
        // core0 drops traffic to pod0-edge0's prefix.
        s2_topogen::inject::acl_block_dst(&mut configs, "core0", "10.0.0.0/24".parse().unwrap());
        let model = NetworkModel::build(ft.topology.clone(), configs).unwrap();
        let request = fattree_request(&ft);
        let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        // Traffic through the other cores still arrives (ECMP), so
        // reachability holds, but the ACL produces blackholed copies and a
        // multipath inconsistency (same headers arrive AND blackhole).
        assert!(report.dpv.blackholes > 0);
        assert!(!report.dpv.multipath_violations.is_empty());
    }

    #[test]
    fn waypoint_query_flags_bypasses() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        // Demand all traffic from pod0-edge0 to pod1-edge0 pass core0 —
        // ECMP spreads over all cores, so this must be violated.
        let src = ft.edge(0, 0);
        let dst = ft.edge(1, 0);
        let request = VerificationRequest::single_pair(src, dst, FatTree::server_prefix(1, 0))
            .via(ft.cores[0]);
        let verifier = S2Verifier::new(model, &S2Options { workers: 2, ..Default::default() }).unwrap();
        let report = verifier.verify(&request).unwrap();
        verifier.shutdown();
        assert!(!report.dpv.waypoint_violations.is_empty());
    }

    #[test]
    fn ingest_parses_vendor_texts() {
        let ft = generate(FatTreeParams::new(4));
        let texts: Vec<String> = s2_topogen::emit_configs(&ft.configs)
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let model = ingest(ft.topology.clone(), &texts).unwrap();
        assert_eq!(model.topology.node_count(), 20);
        assert!(model.session_diagnostics.is_empty());
    }

    #[test]
    fn oom_surfaces_as_runtime_error() {
        let ft = generate(FatTreeParams::new(4));
        let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
        let opts = S2Options {
            workers: 2,
            memory_budget: Some(64),
            ..Default::default()
        };
        let verifier = S2Verifier::new(model, &opts).unwrap();
        let err = verifier.simulate().unwrap_err();
        verifier.shutdown();
        assert!(matches!(err, S2Error::Runtime(RuntimeError::OutOfMemory { .. })));
    }
}
