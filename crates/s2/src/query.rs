//! Verification requests: the user-facing form of the paper's
//! `(H, V_s, V_d, V_t)` query 4-tuple (§4.4).

use s2_net::topology::NodeId;
use s2_net::Prefix;

/// What to verify on the converged data plane.
#[derive(Debug, Clone)]
pub struct VerificationRequest {
    /// Injection nodes (`V_s`).
    pub sources: Vec<NodeId>,
    /// Expected arrivals (`V_d` with their prefixes): every source must
    /// deliver each destination's prefixes to it.
    pub expected: Vec<(NodeId, Vec<Prefix>)>,
    /// The injected destination header space (`H`, destination dimension).
    pub dst_space: Prefix,
    /// Waypoint nodes every delivered packet must traverse (`V_t`).
    pub transits: Vec<NodeId>,
}

impl VerificationRequest {
    /// All-pair reachability among `endpoints`: every endpoint is both a
    /// source and an expected destination for its own prefixes.
    pub fn all_pair_reachability(
        endpoints: Vec<(NodeId, Vec<Prefix>)>,
        dst_space: Prefix,
    ) -> Self {
        VerificationRequest {
            sources: endpoints.iter().map(|(n, _)| *n).collect(),
            expected: endpoints,
            dst_space,
            transits: Vec::new(),
        }
    }

    /// Single-pair reachability: `src` must reach `dst`'s `prefix`.
    pub fn single_pair(src: NodeId, dst: NodeId, prefix: Prefix) -> Self {
        VerificationRequest {
            sources: vec![src],
            expected: vec![(dst, vec![prefix])],
            dst_space: prefix,
            transits: Vec::new(),
        }
    }

    /// Adds a waypoint constraint.
    pub fn via(mut self, transit: NodeId) -> Self {
        self.transits.push(transit);
        self
    }

    /// The number of `(source, destination)` pairs this request checks.
    pub fn pair_count(&self) -> usize {
        self.sources
            .iter()
            .map(|s| self.expected.iter().filter(|(d, _)| d != s).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pair_builder() {
        let endpoints = vec![
            (NodeId(0), vec!["10.0.0.0/24".parse().unwrap()]),
            (NodeId(1), vec!["10.0.1.0/24".parse().unwrap()]),
            (NodeId(2), vec!["10.0.2.0/24".parse().unwrap()]),
        ];
        let q = VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap());
        assert_eq!(q.sources.len(), 3);
        assert_eq!(q.pair_count(), 6);
        assert!(q.transits.is_empty());
    }

    #[test]
    fn single_pair_builder_with_waypoint() {
        let q = VerificationRequest::single_pair(NodeId(0), NodeId(5), "10.0.0.0/24".parse().unwrap())
            .via(NodeId(3));
        assert_eq!(q.pair_count(), 1);
        assert_eq!(q.transits, vec![NodeId(3)]);
    }
}
