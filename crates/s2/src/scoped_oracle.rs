//! Oracle equivalence suite for destination-scoped DPV.
//!
//! Every scenario here is verified twice: **warm** — scoped injection
//! plus verdict splicing on a checkpointed fleet (the `s2 sweep` /
//! `s2 daemon` hot path) — and **cold** — a full-space
//! [`Cluster::run_dpv`] over the same reconverged scenario RIB on a
//! fresh fleet that never saw a scenario. ROBDD serialization is
//! canonical, so the spliced verdict sets must be *byte*-identical to
//! the cold recompute, not merely semantically equal.
//!
//! The matrix covers every FatTree k=4 single-link failure, a sample
//! of double failures (including isolating double-uplink pairs), a
//! handful of k=6 singles, the empty-changed-set edge (a spare link
//! carrying no routes: zero injections, baseline passthrough), and the
//! everything-changed edge (a dst space fully covered by the change:
//! scoping falls back to an unscoped full drive).
//!
//! [`Cluster::run_dpv`]: s2_runtime::Cluster::run_dpv

use crate::query::VerificationRequest;
use crate::sweep::{changed_nodes, enumerate_failure_sets, scenario_ports, LinkKey, WarmBaseline};
use crate::verifier::{S2Options, S2Verifier};
use s2_net::topology::NodeId;
use s2_routing::{NetworkModel, RibSnapshot};
use s2_runtime::DpvRunStats;
use s2_shard::impact::link_key;
use s2_topogen::fattree::{generate, FatTree, FatTreeParams};
use std::collections::BTreeMap;
use std::sync::Arc;

fn fattree_request(ft: &FatTree) -> VerificationRequest {
    let k = ft.params.k;
    let endpoints = (0..k)
        .flat_map(|p| (0..k / 2).map(move |e| (ft.edge(p, e), vec![FatTree::server_prefix(p, e)])))
        .collect();
    VerificationRequest::all_pair_reachability(endpoints, "10.0.0.0/8".parse().unwrap())
}

/// Drives one warm scenario end-to-end (begin → warm fix point →
/// scoped DPV) and returns the reconverged RIB plus the spliced stats.
/// The caller owns rollback.
fn warm_scenario(
    verifier: &S2Verifier,
    baseline: &WarmBaseline,
    request: &VerificationRequest,
    waypoints: &BTreeMap<NodeId, u16>,
    links: &[LinkKey],
) -> (Arc<RibSnapshot>, DpvRunStats) {
    let ports = scenario_ports(links);
    let cluster = &verifier.cluster;
    cluster.scenario_begin(&ports).unwrap();
    let copts = verifier.cluster_opts();
    cluster.run_warm_fixpoint(&copts).unwrap();
    let rib = Arc::new(cluster.collect_full_rib().unwrap());
    let changed = changed_nodes(&baseline.rib, &rib);
    let stats = cluster
        .run_scenario_dpv(
            rib.clone(),
            changed,
            ports,
            request.sources.clone(),
            request.expected.clone(),
            request.dst_space,
            waypoints.clone(),
        )
        .unwrap();
    (rib, stats)
}

/// Cold oracle: a full-space DPV of `rib` on a fleet with no scenario
/// state (warm reconvergence leaves no route egressing a failed port,
/// so the port masks are immaterial and plain `run_dpv` is exact).
fn cold_oracle(
    oracle: &S2Verifier,
    request: &VerificationRequest,
    waypoints: &BTreeMap<NodeId, u16>,
    rib: Arc<RibSnapshot>,
) -> DpvRunStats {
    oracle
        .cluster
        .run_dpv(
            rib,
            request.sources.clone(),
            request.expected.clone(),
            request.dst_space,
            waypoints.clone(),
            &oracle.cluster_opts(),
        )
        .unwrap()
}

/// Byte-level equivalence of a spliced warm outcome and its cold
/// recompute: verdict BDDs, plus every derived verdict field.
fn assert_byte_identical(scenario: &[LinkKey], warm: &DpvRunStats, cold: &DpvRunStats) {
    assert_eq!(
        warm.verdict_sets, cold.verdict_sets,
        "scenario {scenario:?}: spliced verdict BDDs differ from cold recompute"
    );
    assert_eq!(warm.unreachable_pairs, cold.unreachable_pairs, "{scenario:?}");
    assert_eq!(warm.multipath_violations, cold.multipath_violations, "{scenario:?}");
    // Final *counts* fragment differently per drive (the repo-wide
    // invariant is `count == 0` ⇔ kind-free; only the unions are
    // run-deterministic) — compare emptiness, not magnitudes.
    assert_eq!(warm.loops == 0, cold.loops == 0, "scenario {scenario:?}: loop-freedom");
    assert_eq!(
        warm.blackholes == 0,
        cold.blackholes == 0,
        "scenario {scenario:?}: blackhole-freedom"
    );
}

/// Runs the matrix on one model: warm fleet + cold oracle fleet, every
/// scenario compared byte-for-byte.
fn run_matrix(k: usize, workers: u32, scenarios: &[Vec<LinkKey>]) {
    let ft = generate(FatTreeParams::new(k));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let request = fattree_request(&ft);
    let waypoints = BTreeMap::new();
    let opts = S2Options {
        workers,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
    let copts = verifier.cluster_opts();
    let baseline = verifier.warm_up(&request, &waypoints, &copts).unwrap();
    let oracle = S2Verifier::new(model, &opts).unwrap();
    for scenario in scenarios {
        let (rib, warm) = warm_scenario(&verifier, &baseline, &request, &waypoints, scenario);
        verifier.restore_baseline().unwrap();
        let scoped = warm
            .scoped
            .as_ref()
            .unwrap_or_else(|| panic!("scenario {scenario:?}: warm run was not scoped"));
        assert_eq!(
            scoped.skipped_sources + scoped.injected_sources,
            request.sources.len(),
            "{scenario:?}: every source is either injected or skipped"
        );
        let cold = cold_oracle(&oracle, &request, &waypoints, rib);
        assert_byte_identical(scenario, &warm, &cold);
    }
    verifier.shutdown();
    oracle.shutdown();
}

/// Every single-link failure of FatTree k=4 plus a sample of double
/// failures (every 37th pair — includes isolating double-uplinks and
/// cross-tier pairs).
#[test]
fn fattree4_chaos_matrix_is_byte_identical_to_cold_oracle() {
    let ft = generate(FatTreeParams::new(4));
    let links: Vec<LinkKey> = ft.topology.links().iter().map(link_key).collect();
    let mut scenarios: Vec<Vec<LinkKey>> = links.iter().map(|&l| vec![l]).collect();
    scenarios.extend(
        enumerate_failure_sets(links.len(), 2)
            .into_iter()
            .filter(|s| s.len() == 2)
            .step_by(37)
            .map(|s| s.into_iter().map(|i| links[i]).collect::<Vec<_>>()),
    );
    assert!(scenarios.len() >= 32 + 10);
    run_matrix(4, 2, &scenarios);
}

/// A spread of k=6 singles across both fabric tiers.
#[test]
fn fattree6_single_failures_are_byte_identical_to_cold_oracle() {
    let ft = generate(FatTreeParams::new(6));
    let links: Vec<LinkKey> = ft.topology.links().iter().map(link_key).collect();
    let scenarios: Vec<Vec<LinkKey>> =
        links.iter().step_by(links.len() / 5).map(|&l| vec![l]).collect();
    assert!(scenarios.len() >= 5);
    run_matrix(6, 2, &scenarios);
}

/// Empty-changed-set edge: failing a spare link that carries no routes
/// changes nothing, so every source is skipped, nothing is injected,
/// and the spliced verdicts are the baseline verdicts, byte for byte.
#[test]
fn empty_changed_set_skips_every_source_and_passes_baseline_through() {
    let ft = generate(FatTreeParams::new(4));
    let mut topology = ft.topology.clone();
    let spare = topology.connect(ft.edge(0, 0), ft.edge(1, 1));
    let model = NetworkModel::build(topology, ft.configs.clone()).unwrap();
    let request = fattree_request(&ft);
    let waypoints = BTreeMap::new();
    let opts = S2Options {
        workers: 2,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model, &opts).unwrap();
    let copts = verifier.cluster_opts();
    let baseline = verifier.warm_up(&request, &waypoints, &copts).unwrap();
    let scenario = vec![link_key(&spare)];
    let (rib, warm) = warm_scenario(&verifier, &baseline, &request, &waypoints, &scenario);
    verifier.restore_baseline().unwrap();
    verifier.shutdown();
    assert_eq!(*rib, *baseline.rib, "a route-free link must not move the RIB");
    let scoped = warm.scoped.as_ref().unwrap();
    assert_eq!(scoped.changed_prefixes, 0);
    assert_eq!(scoped.injected_sources, 0);
    assert_eq!(scoped.skipped_sources, request.sources.len());
    assert!(!scoped.fallback_full);
    assert_eq!(
        warm.verdict_sets, baseline.dpv.verdict_sets,
        "zero injections must pass the baseline verdicts through unchanged"
    );
    assert_eq!(warm.unreachable_pairs, baseline.dpv.unreachable_pairs);
    assert_eq!(warm.loops == 0, baseline.dpv.loops == 0);
    assert_eq!(warm.blackholes == 0, baseline.dpv.blackholes == 0);
}

/// Everything-changed edge: with the dst space narrowed to a single
/// server prefix, failing that server's uplink changes routes covering
/// the *entire* injected space — scoping must fall back to a full
/// unscoped drive and still match the cold oracle byte for byte.
#[test]
fn full_space_change_falls_back_to_unscoped_full_drive() {
    let ft = generate(FatTreeParams::new(4));
    let model = NetworkModel::build(ft.topology.clone(), ft.configs.clone()).unwrap();
    let victim = ft.edge(0, 0);
    let victim_prefix = FatTree::server_prefix(0, 0);
    let request = VerificationRequest::all_pair_reachability(
        vec![(victim, vec![victim_prefix]), (ft.edge(1, 0), vec![victim_prefix])],
        victim_prefix,
    );
    let waypoints = BTreeMap::new();
    let opts = S2Options {
        workers: 2,
        ..Default::default()
    };
    let verifier = S2Verifier::new(model.clone(), &opts).unwrap();
    let copts = verifier.cluster_opts();
    let baseline = verifier.warm_up(&request, &waypoints, &copts).unwrap();
    // The victim's first uplink: failing it withdraws routes for the
    // victim's server prefix on the aggregation tier, so the changed
    // set covers all of `dst_space`.
    let uplink = ft
        .topology
        .links()
        .iter()
        .map(link_key)
        .find(|((a, _), (b, _))| *a == victim || *b == victim)
        .unwrap();
    let scenario = vec![uplink];
    let (rib, warm) = warm_scenario(&verifier, &baseline, &request, &waypoints, &scenario);
    verifier.restore_baseline().unwrap();
    verifier.shutdown();
    let scoped = warm.scoped.as_ref().unwrap();
    assert!(
        scoped.fallback_full,
        "a fully-covered dst space must fall back to the unscoped drive \
         (fraction {})",
        scoped.changed_dst_fraction
    );
    let oracle = S2Verifier::new(model, &opts).unwrap();
    let cold = cold_oracle(&oracle, &request, &waypoints, rib);
    oracle.shutdown();
    assert_byte_identical(&scenario, &warm, &cold);
}
