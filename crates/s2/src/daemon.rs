//! `s2d`: the crash-safe incremental verification daemon.
//!
//! The daemon loads a snapshot (topology + configs), verifies it once,
//! and then holds the fleet **warm**: converged switches, compiled
//! forwarding predicates, a scenario checkpoint on every worker.
//! Configuration deltas — link down/up, route-map edits, prefix
//! add/withdraw — arrive over a TCP admin socket
//! ([`s2_runtime::admin`]) and are applied **verify-then-commit**:
//!
//! 1. **Validate** — resolve names against the model; malformed or
//!    inapplicable deltas are rejected without touching the fleet.
//! 2. **Stage/Replay/Dpv** — link deltas run as a *warm scenario* on a
//!    shadow generation: the cumulative failed-link overlay is replayed
//!    from the workers' scenario checkpoint (delta-driven BGP fix
//!    point, changed-node predicate recompile, full data-plane check),
//!    then rolled back so the warm baseline is never consumed.
//!    Config-content deltas (and link deltas the warm path cannot
//!    verify, e.g. an OSPF adjacency on the failed link) **escalate**:
//!    a blue/green rebuild verifies the new snapshot on a fresh fleet
//!    while the old fleet keeps serving.
//! 3. **Commit** — only a fully verified candidate replaces the
//!    committed RIB + verdict state, atomically, bumping the
//!    generation. Any failure — deadline, lost worker, rebuild error —
//!    rolls back, retries with jittered bounded backoff, escalates to
//!    a full re-verification, and finally degrades to
//!    `rejected(reason)`. The daemon never wedges: after any outcome
//!    it is ready for the next delta.
//! 4. **Checkpoint** — the committed state is persisted
//!    (write-temp-then-rename, checksummed) so a `kill -9` resumes
//!    warm: on restart the checkpoint pre-seeds the committed verdicts
//!    instantly, the fleet rebuilds with the failed links baked into
//!    the model, and the recomputed verdict BDDs are byte-compared
//!    against the checkpoint (canonical ROBDD serialization makes
//!    byte equality semantic equality). A corrupt or mismatched
//!    checkpoint falls back to a cold start — never loads garbage.
//!
//! Chaos hooks: [`FaultPlan::crash_daemon`] aborts the daemon at any
//! phase above, [`FaultPlan::drop_admin_conn`] severs admin
//! connections, [`FaultPlan::corrupt_checkpoint`] flips checkpoint
//! bytes — the fault-tolerance suite drives all three.
//!
//! [`FaultPlan::crash_daemon`]: s2_runtime::FaultPlan::crash_daemon
//! [`FaultPlan::drop_admin_conn`]: s2_runtime::FaultPlan::drop_admin_conn
//! [`FaultPlan::corrupt_checkpoint`]: s2_runtime::FaultPlan::corrupt_checkpoint

use crate::query::VerificationRequest;
use crate::sweep::{
    changed_nodes, classify, retry_backoff, scenario_ports, LinkKey, ScenarioFail, WarmBaseline,
};
use crate::verifier::{S2Error, S2Options, S2Verifier};
use s2_net::config::{DeviceConfig, Network};
use s2_net::topology::{InterfaceId, NodeId, Topology};
use s2_obs::{Deadline, MetricsSnapshot, Registry, Stopwatch};
use s2_routing::{NetworkModel, RibSnapshot};
use s2_runtime::admin::{
    self, fnv1a64, parse_text_command, render_text_response, AdminRequest, AdminResponse,
    DeltaSpec, VerdictSummary, WarmCheckpoint, WorkerMetrics,
};
use s2_runtime::{
    CheckpointError, ClusterOptions, DaemonPhase, DpvRunStats, FaultPlan, FaultState,
};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Everything needed to start (or restart) a daemon.
#[derive(Clone)]
pub struct DaemonConfig {
    /// The physical topology of the snapshot.
    pub topology: Topology,
    /// Per-device configurations; updated in place by committed
    /// route-map / prefix deltas.
    pub configs: Vec<DeviceConfig>,
    /// The standing verification request re-checked after every delta.
    pub request: VerificationRequest,
    /// Fleet options. `opts.runtime.faults` seeds both the cluster's
    /// fault state and the daemon's own phase/connection/checkpoint
    /// triggers (independent one-shot counters).
    pub opts: S2Options,
    /// Warm-checkpoint path; `None` disables persistence.
    pub checkpoint: Option<PathBuf>,
    /// Total wall-clock budget per delta, retries and backoff included.
    pub delta_deadline: Duration,
    /// Warm re-verification retries before escalating to a rebuild.
    pub max_retries: usize,
    /// Base retry backoff (exponential, jittered, fence-capped).
    pub retry_backoff: Duration,
}

impl DaemonConfig {
    /// A config with the sweep-style fencing defaults.
    pub fn new(topology: Topology, configs: Vec<DeviceConfig>, request: VerificationRequest) -> Self {
        DaemonConfig {
            topology,
            configs,
            request,
            opts: S2Options::default(),
            checkpoint: None,
            delta_deadline: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(100),
        }
    }
}

/// An injected daemon crash surfaced to a test harness. In
/// [`Daemon::serve`] the process aborts instead (the real `kill -9`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonCrash(pub DaemonPhase);

impl std::fmt::Display for DaemonCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "daemon crashed in phase {:?}", self.0)
    }
}

/// The committed (serving) state: what `status` reports, what the
/// checkpoint persists, what the next delta is diffed against.
struct Committed {
    generation: u64,
    rib: Arc<RibSnapshot>,
    verdict: VerdictSummary,
    all_clear: bool,
}

/// What validation decided to do with a delta.
enum Action {
    /// Re-verify the new cumulative failed-link overlay warm.
    Warm(Vec<LinkKey>),
    /// Blue/green rebuild with these configs and model-baked links.
    Escalate(Vec<DeviceConfig>, Vec<(NodeId, NodeId)>),
}

/// A warm-attempt candidate: scenario RIB plus its full DPV outcome.
type WarmCandidate = (Arc<RibSnapshot>, DpvRunStats);

/// The incremental verification daemon. See the module docs for the
/// delta lifecycle.
pub struct Daemon {
    cfg: DaemonConfig,
    verifier: S2Verifier,
    waypoints: BTreeMap<NodeId, u16>,
    copts: ClusterOptions,
    /// The warm baseline of the *current fleet*: the converged state
    /// every warm scenario replays from. Under a non-empty overlay the
    /// committed state differs from the baseline (the overlay is
    /// re-applied as a scenario per delta).
    baseline: WarmBaseline,
    committed: Committed,
    /// Links failed into the model of the current fleet (escalated
    /// commits and checkpoint restores land here).
    baked: Vec<(NodeId, NodeId)>,
    /// Links failed on top of the baked model as a warm overlay.
    overlay: Vec<LinkKey>,
    snapshot_hash: u64,
    /// Daemon-side fault triggers (crash points, dropped admin
    /// connections, corrupted checkpoints). Built from the same plan as
    /// the cluster's state but counts independently.
    faults: FaultState,
    warm_start: bool,
    /// Milliseconds until checkpointed verdicts were servable again
    /// (warm restarts only) — the honest "resumes warm" metric.
    restore_ms: Option<f64>,
    committed_count: u64,
    rejected_count: u64,
    /// `serve` mode: injected crashes abort the process instead of
    /// returning [`DaemonCrash`].
    abort_on_crash: bool,
    /// Daemon start time, backing the `daemon.uptime_ms` gauge and the
    /// `healthz` reply.
    start: Stopwatch,
    /// `now_ns` of the last successful checkpoint write, backing the
    /// `daemon.checkpoint.age_ms` gauge. `Cell` keeps
    /// [`Daemon::checkpoint_now`] callable through `&self`.
    last_checkpoint_ns: Cell<Option<u64>>,
    /// Rolling window of the last [`SLO_WINDOW`] delta outcomes
    /// (latency ms, committed?) backing the `daemon.slo.*` gauges.
    slo_window: VecDeque<(u64, bool)>,
    /// Last-known per-worker metric snapshots. When a worker stops
    /// answering scrapes its cached snapshot is served with `stale`
    /// set, so a dead worker degrades the endpoint instead of
    /// wedging or blanking it.
    worker_cache: BTreeMap<u32, MetricsSnapshot>,
}

/// How many recent deltas the `daemon.slo.*` rolling window covers.
const SLO_WINDOW: usize = 64;

/// Coarse reason class of a rejection, for the per-class
/// `daemon.delta.rejected.*` counters. Classes are stable strings —
/// dashboards alert on them — so classification is by substring of the
/// human reason, never by exposing the raw reason as a label.
fn rejection_class(reason: &str, attempts: u32) -> &'static str {
    if attempts == 0 {
        "validate"
    } else if reason.contains("deadline") {
        "deadline"
    } else if reason.contains("worker-lost")
        || reason.contains("unrecoverable")
        || reason.contains("re-warm")
    {
        "worker_lost"
    } else if reason.contains("model:") || reason.contains("spawn:") || reason.contains("rebuild verify")
    {
        "rebuild"
    } else {
        "other"
    }
}

/// Stable content hash of a snapshot. Node names and links come from
/// the topology in insertion order; configs use their (deterministic,
/// `BTreeMap`-backed) `Debug` form. Never hash the `Topology` value
/// directly — its name index is a `HashMap` with per-process order.
pub fn snapshot_hash(topology: &Topology, configs: &[DeviceConfig]) -> u64 {
    let mut text = String::new();
    for node in topology.nodes() {
        let _ = write!(text, "{}|", topology.name(node));
    }
    let _ = write!(text, "{:?}|{configs:?}", topology.links());
    fnv1a64(text.as_bytes())
}

/// Whether a DPV outcome satisfies every requested property
/// ([`crate::report::S2Report::all_clear`] minus session diagnostics,
/// which are fixed at model build).
fn dpv_all_clear(dpv: &DpvRunStats) -> bool {
    dpv.unreachable_pairs.is_empty()
        && dpv.loops == 0
        && dpv.waypoint_violations.is_empty()
        && dpv.multipath_violations.is_empty()
}

/// Extracts the persistable verdict summary of a DPV outcome.
fn summarize(dpv: &DpvRunStats) -> VerdictSummary {
    VerdictSummary {
        reachable_pairs: dpv.reachable_pairs as u64,
        unreachable_pairs: dpv.unreachable_pairs.clone(),
        multipath_violations: dpv.multipath_violations.clone(),
        loops: dpv.loops as u64,
        blackholes: dpv.blackholes as u64,
        verdict_sets: dpv.verdict_sets.clone(),
    }
}

/// Normalised node pair of a link (smaller id first).
fn node_pair(key: &LinkKey) -> (NodeId, NodeId) {
    let (a, b) = (key.0 .0, key.1 .0);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Daemon {
    /// Starts the daemon: restores the warm checkpoint when one exists
    /// and matches the snapshot (corrupt or stale checkpoints fall back
    /// to a cold start), spawns the fleet, and builds the warm
    /// baseline.
    pub fn open(cfg: DaemonConfig) -> Result<Daemon, S2Error> {
        let _span = s2_obs::span!("daemon.open");
        let sw = Stopwatch::start();
        let snapshot_hash = snapshot_hash(&cfg.topology, &cfg.configs);
        let faults = FaultState::new(cfg.opts.runtime.faults.clone());
        let restore = cfg.checkpoint.as_deref().and_then(|path| {
            match admin::load_checkpoint(path) {
                Ok(ckpt) if ckpt.snapshot_hash == snapshot_hash => Some(ckpt),
                Ok(_) => {
                    s2_obs::recorder::dump("daemon-checkpoint-snapshot-mismatch");
                    None
                }
                Err(CheckpointError::Io(_)) => None,
                Err(CheckpointError::Corrupt(what)) => {
                    s2_obs::recorder::dump("daemon-checkpoint-corrupt");
                    s2_obs::event!("daemon.checkpoint_corrupt", what.len());
                    None
                }
            }
        });

        let baked: Vec<(NodeId, NodeId)> =
            restore.as_ref().map(|c| c.failed_links.clone()).unwrap_or_default();
        let mut opts = cfg.opts.clone();
        for &(a, b) in &baked {
            opts.runtime.faults = opts.runtime.faults.clone().fail_link(a, b);
        }
        let model = NetworkModel::build(cfg.topology.clone(), cfg.configs.clone())?;
        let verifier = S2Verifier::new(model, &opts)?;
        let waypoints: BTreeMap<NodeId, u16> = cfg
            .request
            .transits
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u16))
            .collect();
        let copts = verifier.cluster_opts();

        // A matching checkpoint makes the committed verdicts servable
        // before the fleet even finishes warming — that gap is the
        // restore latency worth reporting.
        let (mut committed, warm_start, restore_ms) = match restore {
            Some(ckpt) => {
                let verdict = ckpt.verdict;
                let all_clear = verdict.unreachable_pairs.is_empty()
                    && verdict.loops == 0
                    && verdict.multipath_violations.is_empty();
                let c = Committed {
                    generation: ckpt.generation,
                    rib: Arc::new(ckpt.rib),
                    verdict,
                    all_clear,
                };
                (c, true, Some(sw.elapsed().as_secs_f64() * 1000.0))
            }
            None => (
                Committed {
                    generation: 0,
                    rib: Arc::new(RibSnapshot { per_node: Vec::new() }),
                    verdict: VerdictSummary::default(),
                    all_clear: false,
                },
                false,
                None,
            ),
        };

        let baseline = verifier.warm_up(&cfg.request, &waypoints, &copts)?;
        if warm_start {
            // Determinism check: the rebuilt fleet's verdict BDDs must
            // be byte-identical to the checkpointed ones. If they are
            // not, the recomputation is the truth — adopt it loudly.
            if committed.verdict.verdict_sets != baseline.dpv.verdict_sets {
                s2_obs::recorder::dump("daemon-restore-verdict-drift");
                s2_obs::event!("daemon.restore_drift", 1);
                committed.rib = baseline.rib.clone();
                committed.verdict = summarize(&baseline.dpv);
                committed.all_clear = dpv_all_clear(&baseline.dpv);
            } else {
                committed.rib = baseline.rib.clone();
                committed.all_clear = dpv_all_clear(&baseline.dpv);
            }
        } else {
            committed.rib = baseline.rib.clone();
            committed.verdict = summarize(&baseline.dpv);
            committed.all_clear = dpv_all_clear(&baseline.dpv);
        }
        s2_obs::event!("daemon.open", committed.generation as usize);

        let daemon = Daemon {
            cfg,
            verifier,
            waypoints,
            copts,
            baseline,
            committed,
            baked,
            overlay: Vec::new(),
            snapshot_hash,
            faults,
            warm_start,
            restore_ms,
            committed_count: 0,
            rejected_count: 0,
            abort_on_crash: false,
            start: sw,
            last_checkpoint_ns: Cell::new(None),
            slo_window: VecDeque::new(),
            worker_cache: BTreeMap::new(),
        };
        // Persist generation 0 immediately: a `kill -9` before the first
        // delta must still restart warm.
        if !daemon.warm_start {
            daemon.checkpoint_now();
        }
        daemon.refresh_gauges();
        Ok(daemon)
    }

    /// Committed generation.
    pub fn generation(&self) -> u64 {
        self.committed.generation
    }

    /// Whether this instance restored from a warm checkpoint.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Milliseconds until checkpointed verdicts were servable (warm
    /// restarts only).
    pub fn restore_ms(&self) -> Option<f64> {
        self.restore_ms
    }

    /// The committed verdict summary.
    pub fn verdict(&self) -> &VerdictSummary {
        &self.committed.verdict
    }

    /// Canonical hash of the committed verdict BDDs.
    pub fn verdict_hash(&self) -> u64 {
        admin::verdict_hash(&self.committed.verdict.verdict_sets)
    }

    /// Wall time of the last warm baseline build — the cold-verify cost
    /// a warm delta is measured against.
    pub fn baseline_ms(&self) -> f64 {
        self.baseline.ms
    }

    /// Stops the fleet, pulling any buffered remote trace events into
    /// this process first so a subsequent Chrome-trace export covers
    /// the whole fleet.
    pub fn shutdown(self) {
        self.verifier.drain_remote_traces();
        self.verifier.shutdown();
    }

    /// Serves admin connections until a `shutdown` request. Prints a
    /// readiness line (`daemon: listening on ADDR`) on stderr — the
    /// stream scripts capture — for them to wait on. Injected crash
    /// points abort the process here — the real `kill -9` the
    /// checkpoint protects against.
    pub fn serve(mut self, listener: TcpListener) -> io::Result<()> {
        self.abort_on_crash = true;
        let addr = listener.local_addr()?;
        eprintln!("daemon: listening on {addr}");
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            match self.handle_conn(stream) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    // A misbehaving client never takes the daemon down.
                    s2_obs::event!("daemon.conn_error", e.raw_os_error().unwrap_or(0) as usize);
                }
            }
        }
        self.checkpoint_now();
        self.verifier.drain_remote_traces();
        self.verifier.shutdown();
        Ok(())
    }

    /// Handles one admin connection (both dialects); `Ok(false)` means
    /// a shutdown was requested.
    fn handle_conn(&mut self, stream: TcpStream) -> io::Result<bool> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        loop {
            let first = {
                let buf = reader.fill_buf()?;
                if buf.is_empty() {
                    return Ok(true);
                }
                buf[0]
            };
            // Text dialect: any printable first byte starts a command
            // line (`echo status | nc`); envelope kinds are < 0x20.
            let (req, text) = if first >= 0x20 {
                let mut line = String::new();
                reader.read_line(&mut line)?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_text_command(line.trim()) {
                    Ok(r) => (r, true),
                    Err(e) => {
                        let resp = AdminResponse::Error(e);
                        writeln!(writer, "{}", render_text_response(&resp))?;
                        continue;
                    }
                }
            } else {
                (admin::read_request(&mut reader)?, false)
            };
            let idx = self.faults.next_admin_index();
            if self.faults.drops_admin_conn(idx) {
                // Injected connection loss: sever without a reply. The
                // delta was not applied — the client must retry.
                s2_obs::event!("daemon.admin_drop", idx as usize);
                return Ok(true);
            }
            let resp = match self.handle(&req) {
                Ok(r) => r,
                // Unreachable in serve mode (crash points abort), kept
                // total so the compiler enforces it stays handled.
                Err(_) => std::process::abort(),
            };
            let shutting_down = matches!(resp, AdminResponse::ShuttingDown);
            if text {
                writeln!(writer, "{}", render_text_response(&resp))?;
            } else {
                admin::write_response(&mut writer, &resp)?;
            }
            if shutting_down {
                return Ok(false);
            }
        }
    }

    /// Dispatches one admin request.
    pub fn handle(&mut self, req: &AdminRequest) -> Result<AdminResponse, DaemonCrash> {
        match req {
            AdminRequest::Status => Ok(self.status()),
            AdminRequest::ApplyDelta(delta) => self.apply(delta),
            AdminRequest::Metrics => Ok(self.metrics()),
            AdminRequest::Healthz => Ok(self.healthz()),
            AdminRequest::Shutdown => {
                self.checkpoint_now();
                Ok(AdminResponse::ShuttingDown)
            }
        }
    }

    /// Refreshes the daemon-level gauges in the global registry so
    /// every scrape, snapshot-rendered log line, and healthz reply
    /// sees current values.
    fn refresh_gauges(&self) {
        let reg = Registry::global();
        reg.gauge("daemon.uptime_ms").set(self.start.elapsed().as_millis() as u64);
        reg.gauge("daemon.generation").set(self.committed.generation);
        reg.gauge("daemon.warm_start").set(u64::from(self.warm_start));
        if let Some(t) = self.last_checkpoint_ns.get() {
            reg.gauge("daemon.checkpoint.age_ms")
                .set(s2_obs::time::now_ns().saturating_sub(t) / 1_000_000);
        }
        if self.slo_window.is_empty() {
            return;
        }
        // SLO rolling window: rejection rate and commit-latency
        // quantiles over the last `SLO_WINDOW` deltas (nearest-rank on
        // the sorted exact values — the window is small).
        let total = self.slo_window.len() as u64;
        let rejected = self.slo_window.iter().filter(|(_, committed)| !committed).count() as u64;
        reg.gauge("daemon.slo.rejection_rate_pct").set(rejected * 100 / total);
        let mut commits: Vec<u64> = self
            .slo_window
            .iter()
            .filter(|(_, committed)| *committed)
            .map(|&(ms, _)| ms)
            .collect();
        if commits.is_empty() {
            return;
        }
        commits.sort_unstable();
        let rank = |q: f64| {
            let i = (q * (commits.len() - 1) as f64).round() as usize;
            commits[i.min(commits.len() - 1)]
        };
        reg.gauge("daemon.slo.commit_p50_ms").set(rank(0.5));
        reg.gauge("daemon.slo.commit_p90_ms").set(rank(0.9));
        reg.gauge("daemon.slo.commit_p99_ms").set(rank(0.99));
    }

    /// Records one delta outcome into the SLO window.
    fn record_outcome(&mut self, ms: u64, committed: bool) {
        if self.slo_window.len() == SLO_WINDOW {
            self.slo_window.pop_front();
        }
        self.slo_window.push_back((ms, committed));
    }

    /// The metrics reply: the controller-side registry merged with
    /// fleet-pulled per-worker snapshots. A worker that stops
    /// answering is reported `up: false, stale: true` with its
    /// last-known snapshot — the scrape degrades, it never wedges.
    pub fn metrics(&mut self) -> AdminResponse {
        self.refresh_gauges();
        let scrape = self.verifier.scrape_metrics();
        let mut workers = Vec::with_capacity(scrape.workers.len());
        for (id, snap) in scrape.workers {
            match snap {
                Some(s) => {
                    self.worker_cache.insert(id, s.clone());
                    workers.push(WorkerMetrics { id, up: true, stale: false, snapshot: Some(s) });
                }
                None => workers.push(WorkerMetrics {
                    id,
                    up: false,
                    stale: true,
                    snapshot: self.worker_cache.get(&id).cloned(),
                }),
            }
        }
        AdminResponse::Metrics { aggregate: scrape.aggregate, workers }
    }

    /// The liveness reply: fleet poll plus daemon vitals. `ok` means
    /// every worker answered — the committed verdict (all-clear or
    /// not) is a property of the *network*, not of daemon health.
    pub fn healthz(&mut self) -> AdminResponse {
        self.refresh_gauges();
        let scrape = self.verifier.scrape_metrics();
        let workers_total = scrape.workers.len() as u32;
        let workers_up = scrape.workers.iter().filter(|(_, s)| s.is_some()).count() as u32;
        AdminResponse::Healthz {
            ok: workers_total > 0 && workers_up == workers_total,
            generation: self.committed.generation,
            uptime_ms: self.start.elapsed().as_millis() as u64,
            workers_up,
            workers_total,
            checkpoint_age_ms: self
                .last_checkpoint_ns
                .get()
                .map(|t| s2_obs::time::now_ns().saturating_sub(t) / 1_000_000),
        }
    }

    /// The status reply.
    pub fn status(&self) -> AdminResponse {
        AdminResponse::Status {
            generation: self.committed.generation,
            failed_links: (self.baked.len() + self.overlay.len()) as u32,
            all_clear: self.committed.all_clear,
            committed: self.committed_count,
            rejected: self.rejected_count,
            warm_start: self.warm_start,
            verdict_hash: self.verdict_hash(),
        }
    }

    /// Applies one delta, verify-then-commit. Never leaves the daemon
    /// wedged: every outcome is `Committed` or `Rejected` (or an
    /// injected [`DaemonCrash`] in test mode).
    pub fn apply(&mut self, delta: &DeltaSpec) -> Result<AdminResponse, DaemonCrash> {
        let _span = s2_obs::span!("daemon.delta");
        let sw = Stopwatch::start();
        let resp = self.apply_inner(delta, &sw)?;
        let reg = Registry::global();
        match &resp {
            AdminResponse::Committed { ms, .. } => {
                self.committed_count += 1;
                self.record_outcome(*ms as u64, true);
                reg.counter("daemon.delta.committed").inc();
                reg.histogram("daemon.delta.ms").record(*ms as u64);
                self.refresh_gauges();
                // One stderr line per commit, rendered from a frozen
                // registry snapshot so the log and the metrics endpoint
                // can never disagree. Keys stay grep-compatible
                // (`dpv.scoped.runs=N`) for operators and CI.
                eprintln!("{}", self.commit_log(*ms));
            }
            AdminResponse::Rejected { reason, attempts } => {
                self.rejected_count += 1;
                self.record_outcome(sw.elapsed().as_millis() as u64, false);
                reg.counter("daemon.delta.rejected").inc();
                let class = rejection_class(reason, *attempts);
                reg.counter(&format!("daemon.delta.rejected.{class}")).inc();
                self.refresh_gauges();
                s2_obs::event!("daemon.delta_rejected", reason.len());
            }
            _ => {}
        }
        Ok(resp)
    }

    /// Renders the per-commit stderr line from a registry snapshot —
    /// one source of truth with the scrape endpoint.
    fn commit_log(&self, ms: f64) -> String {
        let snap = Registry::global().snapshot();
        let mut line = format!(
            "daemon: delta committed gen={} ms={ms:.1}",
            self.committed.generation
        );
        for key in [
            "dpv.scoped.runs",
            "dpv.scoped.skipped_sources",
            "dpv.scoped.splice_ops",
            "dpv.scoped.fallback_full",
        ] {
            let _ = write!(line, " {key}={}", snap.counter_value(key));
        }
        line
    }

    fn apply_inner(
        &mut self,
        delta: &DeltaSpec,
        sw: &Stopwatch,
    ) -> Result<AdminResponse, DaemonCrash> {
        let vsw = Stopwatch::start();
        let validated = self.validate(delta);
        Registry::global()
            .histogram("daemon.delta.validate_ms")
            .record(vsw.elapsed().as_millis() as u64);
        let action = match validated {
            Ok(a) => a,
            Err(reason) => return Ok(AdminResponse::Rejected { reason, attempts: 0 }),
        };
        self.crash(DaemonPhase::Validate)?;
        match action {
            Action::Warm(overlay) => self.apply_warm(overlay, sw),
            Action::Escalate(configs, baked) => {
                self.apply_escalated(configs, baked, Vec::new(), sw, 0, None)
            }
        }
    }

    /// Resolves a delta against the model without touching the fleet.
    fn validate(&self, delta: &DeltaSpec) -> Result<Action, String> {
        let topo = &self.cfg.topology;
        let node = |name: &str| {
            topo.node_by_name(name)
                .ok_or_else(|| format!("unknown device {name:?}"))
        };
        let link_between = |a: NodeId, b: NodeId| -> Option<LinkKey> {
            topo.links()
                .iter()
                .map(s2_shard::impact::link_key)
                .find(|k| node_pair(k) == if a <= b { (a, b) } else { (b, a) })
        };
        let fold_overlay = |baked: &[(NodeId, NodeId)], overlay: &[LinkKey]| {
            let mut all: Vec<(NodeId, NodeId)> = baked.to_vec();
            all.extend(overlay.iter().map(node_pair));
            all.sort_unstable();
            all.dedup();
            all
        };
        match delta {
            DeltaSpec::LinkDown { a, b } => {
                let (na, nb) = (node(a)?, node(b)?);
                let key = link_between(na, nb)
                    .ok_or_else(|| format!("no link between {a:?} and {b:?}"))?;
                if self.overlay.contains(&key) || self.baked.contains(&node_pair(&key)) {
                    return Err(format!("link {a} <-> {b} is already down"));
                }
                let ports = scenario_ports(&[key]);
                if self.verifier.ospf_gate(&ports).is_some() {
                    // Warm replay cannot re-run the IGP; bake the link
                    // into a rebuilt model instead.
                    let mut baked = fold_overlay(&self.baked, &self.overlay);
                    baked.push(node_pair(&key));
                    baked.sort_unstable();
                    baked.dedup();
                    return Ok(Action::Escalate(self.cfg.configs.clone(), baked));
                }
                let mut overlay = self.overlay.clone();
                overlay.push(key);
                Ok(Action::Warm(overlay))
            }
            DeltaSpec::LinkUp { a, b } => {
                let (na, nb) = (node(a)?, node(b)?);
                let key = link_between(na, nb)
                    .ok_or_else(|| format!("no link between {a:?} and {b:?}"))?;
                let pair = node_pair(&key);
                if self.overlay.contains(&key) {
                    let overlay: Vec<LinkKey> =
                        self.overlay.iter().filter(|&&k| k != key).copied().collect();
                    Ok(Action::Warm(overlay))
                } else if self.baked.contains(&pair) {
                    // The link is failed in the model itself; restoring
                    // it needs a rebuild (overlay folds in alongside).
                    let mut baked = fold_overlay(&self.baked, &self.overlay);
                    baked.retain(|&p| p != pair);
                    Ok(Action::Escalate(self.cfg.configs.clone(), baked))
                } else {
                    Err(format!("link {a} <-> {b} is not down"))
                }
            }
            DeltaSpec::RouteMapEdit { device, config } => {
                let n = node(device)?;
                let parsed = s2_net::vendor::parse(config)
                    .map_err(|e| format!("route-map-edit config: {e}"))?;
                if parsed.hostname != *device {
                    return Err(format!(
                        "config is for {:?}, not {device:?}",
                        parsed.hostname
                    ));
                }
                let mut configs = self.cfg.configs.clone();
                configs[n.index()] = parsed;
                Ok(Action::Escalate(configs, fold_overlay(&self.baked, &self.overlay)))
            }
            DeltaSpec::PrefixAdd { device, prefix } | DeltaSpec::PrefixWithdraw { device, prefix } => {
                let n = node(device)?;
                let mut configs = self.cfg.configs.clone();
                let bgp = configs[n.index()]
                    .bgp
                    .as_mut()
                    .ok_or_else(|| format!("{device} has no BGP process"))?;
                let present = bgp.networks.iter().any(|net| net.prefix == *prefix);
                if matches!(delta, DeltaSpec::PrefixAdd { .. }) {
                    if present {
                        return Err(format!("{device} already originates {prefix}"));
                    }
                    bgp.networks.push(Network { prefix: *prefix });
                } else {
                    if !present {
                        return Err(format!("{device} does not originate {prefix}"));
                    }
                    bgp.networks.retain(|net| net.prefix != *prefix);
                }
                Ok(Action::Escalate(configs, fold_overlay(&self.baked, &self.overlay)))
            }
        }
    }

    /// Warm path: re-verify the new overlay as a fenced scenario on the
    /// existing fleet, with bounded jittered retries; escalate to a
    /// rebuild when the fence or retry budget runs out.
    fn apply_warm(
        &mut self,
        new_overlay: Vec<LinkKey>,
        sw: &Stopwatch,
    ) -> Result<AdminResponse, DaemonCrash> {
        let fence = Deadline::after(self.cfg.delta_deadline);
        let ports = scenario_ports(&new_overlay);
        self.crash(DaemonPhase::Stage)?;
        let mut attempt = 0usize;
        let candidate: Result<WarmCandidate, String> = loop {
            attempt += 1;
            if new_overlay.is_empty() {
                // Every failed link restored: the committed state *is*
                // the warm baseline — nothing to execute.
                break Ok((self.baseline.rib.clone(), self.baseline.dpv.clone()));
            }
            let result = self.warm_attempt(&ports, &fence)?;
            // On success the fleet is left in the scenario state it just
            // verified — the state being committed. The next staging's
            // `scenario_begin` restores the checkpoint before replaying,
            // so an immediate rollback here would be a wasted barrier on
            // the delta hot path (and the empty-overlay shortcut never
            // touches the fleet at all).
            let fail = match result {
                Ok(c) => break Ok(c),
                Err(f) => f,
            };
            // A failed attempt must fence (discard the aborted
            // scenario's in-flight frames) and restore the baseline
            // before a retry, an escalation, or the next delta.
            let restored = self.verifier.restore_baseline();
            match (fail, restored) {
                (ScenarioFail::Lost(e), _) | (_, Err(e)) => {
                    // A worker died mid-delta: recover the fleet and
                    // rebuild the warm baseline, then retry. The
                    // committed state is untouched throughout.
                    s2_obs::recorder::dump("daemon-delta-worker-lost");
                    s2_obs::event!("daemon.delta_abort", attempt);
                    if let Err(e2) = self.verifier.cluster.recover() {
                        break Err(format!("unrecoverable: {e2}"));
                    }
                    match self.verifier.warm_up(&self.cfg.request, &self.waypoints, &self.copts) {
                        Ok(b) => self.baseline = b,
                        Err(e2) => break Err(format!("re-warm failed: {e2}")),
                    }
                    if attempt > self.cfg.max_retries {
                        break Err(format!("worker-lost: {e}"));
                    }
                }
                (ScenarioFail::Deadline, _) => break Err("deadline".into()),
                (ScenarioFail::Fatal(reason), _) => break Err(reason),
            }
            if fence.expired() {
                break Err("deadline".into());
            }
            std::thread::sleep(retry_backoff(self.cfg.retry_backoff, attempt).min(fence.remaining()));
        };
        match candidate {
            Ok((rib, dpv)) => {
                let commit_sw = Stopwatch::start();
                let changed = changed_nodes(&self.committed.rib, &rib).len() as u32;
                self.crash(DaemonPhase::Commit)?;
                let all_clear = dpv_all_clear(&dpv);
                self.overlay = new_overlay;
                self.committed = Committed {
                    generation: self.committed.generation + 1,
                    rib,
                    verdict: summarize(&dpv),
                    all_clear,
                };
                Registry::global()
                    .histogram("daemon.delta.commit_ms")
                    .record(commit_sw.elapsed().as_millis() as u64);
                self.crash(DaemonPhase::Checkpoint)?;
                let ckpt_sw = Stopwatch::start();
                self.checkpoint_now();
                Registry::global()
                    .histogram("daemon.delta.checkpoint_ms")
                    .record(ckpt_sw.elapsed().as_millis() as u64);
                Ok(AdminResponse::Committed {
                    generation: self.committed.generation,
                    ms: sw.elapsed().as_secs_f64() * 1000.0,
                    changed_nodes: changed,
                    escalated: false,
                    all_clear,
                })
            }
            Err(reason) => {
                // The warm path is out of budget; a full re-verification
                // on a fresh fleet is the last resort before rejecting.
                s2_obs::recorder::dump("daemon-delta-escalate");
                let mut baked = self.baked.clone();
                baked.extend(new_overlay.iter().map(node_pair));
                baked.sort_unstable();
                baked.dedup();
                self.apply_escalated(
                    self.cfg.configs.clone(),
                    baked,
                    Vec::new(),
                    sw,
                    attempt,
                    Some(reason),
                )
            }
        }
    }

    /// One warm attempt: replay the overlay from the scenario
    /// checkpoint, run the delta-driven BGP fix point, recompile only
    /// changed nodes, and re-check the data plane. On failure the
    /// caller restores the baseline; on success the fleet is left in
    /// the verified scenario state (the next `scenario_begin` restores
    /// the checkpoint before replaying anyway).
    #[allow(clippy::type_complexity)]
    fn warm_attempt(
        &self,
        ports: &[(NodeId, InterfaceId)],
        fence: &Deadline,
    ) -> Result<Result<WarmCandidate, ScenarioFail>, DaemonCrash> {
        let cluster = &self.verifier.cluster;
        let stage_sw = Stopwatch::start();
        if let Err(e) = cluster.scenario_begin(ports) {
            return Ok(Err(classify(e)));
        }
        self.crash(DaemonPhase::Replay)?;
        if fence.expired() {
            return Ok(Err(ScenarioFail::Deadline));
        }
        let inner = (|| {
            cluster.run_warm_fixpoint(&self.copts).map_err(classify)?;
            let rib = Arc::new(cluster.collect_full_rib().map_err(classify)?);
            if fence.expired() {
                return Err(ScenarioFail::Deadline);
            }
            Ok(rib)
        })();
        let rib = match inner {
            Ok(rib) => rib,
            Err(e) => return Ok(Err(e)),
        };
        Registry::global()
            .histogram("daemon.delta.stage_ms")
            .record(stage_sw.elapsed().as_millis() as u64);
        self.crash(DaemonPhase::Dpv)?;
        let dpv_sw = Stopwatch::start();
        let changed = changed_nodes(&self.baseline.rib, &rib);
        let dpv = cluster.run_scenario_dpv(
            rib.clone(),
            changed,
            ports.to_vec(),
            self.cfg.request.sources.clone(),
            self.cfg.request.expected.clone(),
            self.cfg.request.dst_space,
            self.waypoints.clone(),
        );
        Registry::global()
            .histogram("daemon.delta.dpv_ms")
            .record(dpv_sw.elapsed().as_millis() as u64);
        match dpv {
            Ok(dpv) => Ok(Ok((rib, dpv))),
            Err(e) => Ok(Err(classify(e))),
        }
    }

    /// Escalated path: blue/green. Build the candidate snapshot, spawn
    /// a fresh fleet with the failed links baked into the model, verify
    /// it fully, and only then swap it in — the serving fleet and the
    /// committed state are untouched until the swap.
    fn apply_escalated(
        &mut self,
        configs: Vec<DeviceConfig>,
        baked: Vec<(NodeId, NodeId)>,
        overlay: Vec<LinkKey>,
        sw: &Stopwatch,
        prior_attempts: usize,
        warm_reason: Option<String>,
    ) -> Result<AdminResponse, DaemonCrash> {
        let _span = s2_obs::span!("daemon.escalate");
        self.crash(DaemonPhase::Stage)?;
        let attempts = (prior_attempts + 1) as u32;
        let reject = |reason: String| {
            let reason = match &warm_reason {
                Some(w) => format!("{w}; escalation failed: {reason}"),
                None => reason,
            };
            AdminResponse::Rejected { reason, attempts }
        };
        let stage_sw = Stopwatch::start();
        let model = match NetworkModel::build(self.cfg.topology.clone(), configs.clone()) {
            Ok(m) => m,
            Err(e) => return Ok(reject(format!("model: {e}"))),
        };
        // The candidate fleet gets a clean fault plan (the chaos plan
        // already played out on the serving fleet) plus the baked links.
        let mut opts = self.cfg.opts.clone();
        opts.runtime.faults = FaultPlan::new();
        for &(a, b) in &baked {
            opts.runtime.faults = opts.runtime.faults.clone().fail_link(a, b);
        }
        self.crash(DaemonPhase::Replay)?;
        let verifier = match S2Verifier::new(model, &opts) {
            Ok(v) => v,
            Err(e) => return Ok(reject(format!("spawn: {e}"))),
        };
        Registry::global()
            .histogram("daemon.delta.stage_ms")
            .record(stage_sw.elapsed().as_millis() as u64);
        self.crash(DaemonPhase::Dpv)?;
        let dpv_sw = Stopwatch::start();
        match verifier.warm_up(&self.cfg.request, &self.waypoints, &self.copts) {
            Ok(baseline) => {
                Registry::global()
                    .histogram("daemon.delta.dpv_ms")
                    .record(dpv_sw.elapsed().as_millis() as u64);
                let commit_sw = Stopwatch::start();
                self.crash(DaemonPhase::Commit)?;
                let changed = changed_nodes(&self.committed.rib, &baseline.rib).len() as u32;
                let all_clear = dpv_all_clear(&baseline.dpv);
                let old = std::mem::replace(&mut self.verifier, verifier);
                old.shutdown();
                self.cfg.configs = configs;
                self.snapshot_hash = snapshot_hash(&self.cfg.topology, &self.cfg.configs);
                self.baked = baked;
                self.overlay = overlay;
                self.committed = Committed {
                    generation: self.committed.generation + 1,
                    rib: baseline.rib.clone(),
                    verdict: summarize(&baseline.dpv),
                    all_clear,
                };
                self.baseline = baseline;
                Registry::global()
                    .histogram("daemon.delta.commit_ms")
                    .record(commit_sw.elapsed().as_millis() as u64);
                self.crash(DaemonPhase::Checkpoint)?;
                let ckpt_sw = Stopwatch::start();
                self.checkpoint_now();
                Registry::global()
                    .histogram("daemon.delta.checkpoint_ms")
                    .record(ckpt_sw.elapsed().as_millis() as u64);
                Ok(AdminResponse::Committed {
                    generation: self.committed.generation,
                    ms: sw.elapsed().as_secs_f64() * 1000.0,
                    changed_nodes: changed,
                    escalated: true,
                    all_clear,
                })
            }
            Err(e) => {
                verifier.shutdown();
                s2_obs::recorder::dump("daemon-escalation-failed");
                Ok(reject(format!("rebuild verify: {e}")))
            }
        }
    }

    /// Persists the committed state (best effort — a failed write is
    /// recorded, not fatal: the daemon keeps serving and the previous
    /// checkpoint file, if any, stays valid thanks to temp-then-rename).
    fn checkpoint_now(&self) {
        let Some(path) = &self.cfg.checkpoint else { return };
        let ckpt = WarmCheckpoint {
            snapshot_hash: self.snapshot_hash,
            generation: self.committed.generation,
            failed_links: {
                let mut all = self.baked.clone();
                all.extend(self.overlay.iter().map(node_pair));
                all.sort_unstable();
                all.dedup();
                all
            },
            rib: (*self.committed.rib).clone(),
            verdict: self.committed.verdict.clone(),
        };
        match admin::write_checkpoint(path, &ckpt, &self.faults) {
            Ok(()) => self.last_checkpoint_ns.set(Some(s2_obs::time::now_ns())),
            Err(e) => {
                s2_obs::recorder::dump("daemon-checkpoint-write-failed");
                s2_obs::event!("daemon.checkpoint_error", e.raw_os_error().unwrap_or(0) as usize);
            }
        }
    }

    /// Fires an injected crash point: aborts the process in serve mode,
    /// surfaces [`DaemonCrash`] to test harnesses otherwise.
    fn crash(&self, phase: DaemonPhase) -> Result<(), DaemonCrash> {
        if self.faults.should_crash_daemon(phase) {
            s2_obs::recorder::dump("daemon-crash-injected");
            if self.abort_on_crash {
                std::process::abort();
            }
            return Err(DaemonCrash(phase));
        }
        Ok(())
    }
}

/// A binary-protocol admin client: connect, send one request, read the
/// reply. Used by `s2 admin` and tests.
pub fn admin_roundtrip(addr: &str, req: &AdminRequest) -> io::Result<AdminResponse> {
    let mut stream = TcpStream::connect(addr)?;
    admin::write_request(&mut stream, req)?;
    admin::read_response(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2_net::config::Vendor;

    #[test]
    fn snapshot_hash_is_stable_and_config_sensitive() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let _ = (a, b);
        let mk = |host: &str| DeviceConfig::new(host, Vendor::A);
        let configs = vec![mk("a"), mk("b")];
        let h1 = snapshot_hash(&topo, &configs);
        let h2 = snapshot_hash(&topo, &configs);
        assert_eq!(h1, h2);
        let mut edited = configs.clone();
        edited[0].hostname = "a2".into();
        assert_ne!(h1, snapshot_hash(&topo, &edited));
    }

    #[test]
    fn node_pair_is_orientation_invariant() {
        let k1: LinkKey = ((NodeId(3), InterfaceId(0)), (NodeId(1), InterfaceId(2)));
        let k2: LinkKey = ((NodeId(1), InterfaceId(2)), (NodeId(3), InterfaceId(0)));
        assert_eq!(node_pair(&k1), (NodeId(1), NodeId(3)));
        assert_eq!(node_pair(&k1), node_pair(&k2));
    }
}
