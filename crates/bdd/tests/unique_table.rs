//! Coverage for the open-addressed unique table and the lossy computed
//! caches: canonicity under forced resizes, collision-heavy workloads,
//! and byte-identity of `serialize` against fixtures captured from the
//! previous `HashMap`-based unique table.

use s2_bdd::serialize::to_bytes;
use s2_bdd::{Bdd, BddManager, CacheConfig};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Serialize fixtures recorded from the seed implementation (SipHash
/// `HashMap` unique table) before the open-addressed rework. The wire
/// format is a pure function of canonical ROBDD structure, so the new
/// table must reproduce these bytes exactly.
const FIXTURE_F1: &str =
    "0000000300050000000100000000000300000002000000010000000000020000000300000004";
const FIXTURE_F2: &str = "0000000b0005000000010000000000050000000000000001000400000003000000020004000\
     000020000000300030000000500000004000300000004000000050002000000070000000600020000000600000007\
     000100000009000000080001000000080000000900000000000b0000000a0000000c";
const FIXTURE_F3: &str = "0000000600030000000000000001000200000000000000020001000000030000000100020\
     000000000000001000100000003000000050000000000060000000400000007";
const FIXTURE_F4: &str = "000000040007000000000000000100060000000000000002000500000003000000000004\
     000000000000000400000005";
const FIXTURE_TRUE: &str = "0000000000000001";
const FIXTURE_FALSE: &str = "0000000000000000";

fn strip(f: &str) -> String {
    f.chars().filter(|c| !c.is_whitespace()).collect()
}

fn build_f1(m: &mut BddManager) -> Bdd {
    let a = m.var(0);
    let b = m.var(3);
    let c = m.nvar(5);
    let ab = m.and(a, b);
    m.or(ab, c)
}

fn build_f2(m: &mut BddManager) -> Bdd {
    let mut f = Bdd::FALSE;
    for v in 0..6 {
        let x = m.var(v);
        f = m.xor(f, x);
    }
    f
}

fn build_f3(m: &mut BddManager) -> Bdd {
    let x0 = m.var(0);
    let x1 = m.var(1);
    let x2 = m.var(2);
    let x3 = m.var(3);
    let a = m.and(x0, x1);
    let b = m.and(x1, x2);
    let c = m.and(x2, x3);
    let ab = m.or(a, b);
    m.or(ab, c)
}

fn build_f4(m: &mut BddManager) -> Bdd {
    let hi = m.var(7);
    let h6 = m.var(6);
    let n5 = m.nvar(5);
    let h4 = m.var(4);
    let t = m.and(hi, h6);
    let t = m.and(t, n5);
    m.and(t, h4)
}

#[test]
fn serialize_matches_old_table_fixtures() {
    let mut m = BddManager::new(8);
    let f1 = build_f1(&mut m);
    assert_eq!(hex(&to_bytes(&m, f1)), strip(FIXTURE_F1));

    let mut m = BddManager::new(6);
    let f2 = build_f2(&mut m);
    assert_eq!(hex(&to_bytes(&m, f2)), strip(FIXTURE_F2));

    let mut m = BddManager::new(8);
    let f3 = build_f3(&mut m);
    assert_eq!(hex(&to_bytes(&m, f3)), strip(FIXTURE_F3));

    let mut m = BddManager::new(8);
    let f4 = build_f4(&mut m);
    assert_eq!(hex(&to_bytes(&m, f4)), strip(FIXTURE_F4));

    let m = BddManager::new(4);
    assert_eq!(hex(&to_bytes(&m, Bdd::TRUE)), FIXTURE_TRUE);
    assert_eq!(hex(&to_bytes(&m, Bdd::FALSE)), FIXTURE_FALSE);
}

#[test]
fn fixtures_roundtrip_into_the_new_table() {
    // Deserializing the old-format bytes into a reworked manager must
    // rebuild the same functions (and re-serialize byte-identically).
    for (fixture, vars) in [
        (FIXTURE_F1, 8u16),
        (FIXTURE_F2, 6),
        (FIXTURE_F3, 8),
        (FIXTURE_F4, 8),
    ] {
        let stripped = strip(fixture);
        let bytes: Vec<u8> = (0..stripped.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&stripped[i..i + 2], 16).unwrap())
            .collect();
        let mut m = BddManager::new(vars);
        let f = s2_bdd::serialize::from_bytes(&mut m, &bytes).unwrap();
        assert_eq!(hex(&to_bytes(&m, f)), stripped);
    }
}

#[test]
fn serialize_is_invariant_to_table_geometry() {
    // The same function built under wildly different unique-table sizes
    // (many forced resizes vs none) must emit identical bytes.
    let tiny = CacheConfig {
        unique_bits: 2,
        bin_bits: 4,
        not_bits: 4,
        memo_bits: 4,
    };
    let big = CacheConfig {
        unique_bits: 16,
        ..CacheConfig::default()
    };
    let mut m_tiny = BddManager::with_config(8, tiny);
    let mut m_big = BddManager::with_config(8, big);
    for build in [build_f1, build_f3, build_f4] {
        let f_tiny = build(&mut m_tiny);
        let f_big = build(&mut m_big);
        assert_eq!(to_bytes(&m_tiny, f_tiny), to_bytes(&m_big, f_big));
    }
    assert!(m_tiny.cache_stats().unique_resizes > 0);
    assert_eq!(m_big.cache_stats().unique_resizes, 0);
}

#[test]
fn canonicity_survives_forced_resizes() {
    // Start from a 4-slot table and intern enough distinct nodes to force
    // many doublings; handles created before a resize must keep resolving
    // to the same node after it.
    let config = CacheConfig {
        unique_bits: 2,
        ..CacheConfig::default()
    };
    let mut m = BddManager::with_config(64, config);
    let mut chain = Bdd::TRUE;
    let mut checkpoints = Vec::new();
    for v in (0..64).rev() {
        let x = m.var(v);
        chain = m.and(chain, x);
        checkpoints.push((v, chain));
    }
    assert!(m.cache_stats().unique_resizes >= 3, "resizes must trigger");
    // Rebuild each checkpoint from scratch: hash-consing must return the
    // recorded handle, not a duplicate node.
    for (v, expected) in checkpoints {
        let mut rebuilt = Bdd::TRUE;
        for u in (v..64).rev() {
            let x = m.var(u);
            rebuilt = m.and(rebuilt, x);
        }
        assert_eq!(rebuilt, expected, "checkpoint at var {v}");
    }
}

#[test]
fn collision_heavy_workload_stays_canonical() {
    // A 1-slot-ish table (4 slots) makes every insert collide; linear
    // probing plus resize must still intern each distinct triple once.
    let config = CacheConfig {
        unique_bits: 2,
        bin_bits: 2,
        not_bits: 2,
        memo_bits: 2,
    };
    let mut m = BddManager::with_config(16, config);
    // Dense function family: all pairwise ANDs/ORs/XORs of 16 variables.
    let vars: Vec<Bdd> = (0..16).map(|v| m.var(v)).collect();
    let mut results = Vec::new();
    for &a in &vars {
        for &b in &vars {
            let and1 = m.and(a, b);
            let or1 = m.or(a, b);
            let xor1 = m.xor(a, b);
            results.push((a, b, and1, or1, xor1));
        }
    }
    // Probe misses must have happened (the whole point of the stress),
    // yet recomputation returns identical handles.
    assert!(m.cache_stats().unique_probe_misses > 0);
    for (a, b, and1, or1, xor1) in results {
        assert_eq!(m.and(a, b), and1);
        assert_eq!(m.or(a, b), or1);
        assert_eq!(m.xor(a, b), xor1);
        // Commutativity through the canonical table.
        assert_eq!(m.and(b, a), and1);
        assert_eq!(m.or(b, a), or1);
        assert_eq!(m.xor(b, a), xor1);
    }
}

#[test]
fn lossy_caches_never_change_results() {
    // With 4-entry computed caches nearly every lookup evicts; the
    // results must match a generously-cached manager node for node.
    let starved = CacheConfig {
        unique_bits: 4,
        bin_bits: 2,
        not_bits: 2,
        memo_bits: 2,
    };
    let mut m1 = BddManager::with_config(10, starved);
    let mut m2 = BddManager::new(10);
    let build = |m: &mut BddManager| {
        let mut acc = Bdd::FALSE;
        for v in 0..10u16 {
            let x = m.var(v);
            let y = m.var((v + 3) % 10);
            let t = m.and(x, y);
            let nt = m.not(t);
            let r = m.restrict(nt, (v + 1) % 10, v % 2 == 0);
            acc = m.xor(acc, r);
        }
        m.exists(acc, 5)
    };
    let f1 = build(&mut m1);
    let f2 = build(&mut m2);
    assert_eq!(to_bytes(&m1, f1), to_bytes(&m2, f2));
    // The starved caches must show a worse hit rate — i.e. the counters
    // are actually measuring something.
    let (s1, s2) = (m1.cache_stats(), m2.cache_stats());
    assert!(s1.bin_lookups >= s2.bin_lookups);
    assert!(s1.bin_hit_rate() <= s2.bin_hit_rate() + 1e-9);
}
