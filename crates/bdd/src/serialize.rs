//! BDD DAG serialization — the cross-worker transfer format.
//!
//! When an S2 worker forwards a symbolic packet to a node hosted on another
//! worker, the packet's BDD must be re-encoded in the destination worker's
//! private manager (§4.3, option 2). The wire format is a topologically
//! ordered node list:
//!
//! ```text
//! u32  node_count          (number of decision nodes, excluding terminals)
//! then node_count records of
//!   u16 var
//!   u32 lo                 (0 = FALSE, 1 = TRUE, k+2 = k-th record)
//!   u32 hi
//! u32  root                (same index encoding)
//! ```
//!
//! Deserialization rebuilds bottom-up through the destination manager's
//! hash-consing constructor, so shared subgraphs stay shared and the result
//! is canonical in the destination manager.

use crate::manager::{Bdd, BddManager};
use bytes::{Buf, BufMut};
use std::collections::BTreeMap;

/// Errors from [`deserialize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the declared structure was complete.
    Truncated,
    /// A node referenced a child that has not been defined yet.
    ForwardReference,
    /// A node's variable is outside the destination manager's range.
    VarOutOfRange(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated BDD payload"),
            DecodeError::ForwardReference => write!(f, "BDD payload has a forward reference"),
            DecodeError::VarOutOfRange(v) => write!(f, "BDD variable {v} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes `f` into `buf`. The encoding is self-delimiting.
///
/// The record order is the post-order DFS of the DAG — a pure function
/// of the function's canonical (ROBDD) structure, never of manager node
/// ids or hash-table layout — so two managers that built the same
/// boolean function independently emit byte-identical payloads (R2:
/// wire bytes must be deterministic; the chaos tests diff them).
pub fn serialize(m: &BddManager, f: Bdd, buf: &mut impl BufMut) {
    // Topological order: children before parents. A post-order DFS gives
    // exactly that. The node-id→slot index is a BTreeMap purely for
    // determinism hygiene: nothing may iterate it in hash order.
    let mut order: Vec<u32> = Vec::new();
    let mut index: BTreeMap<u32, u32> = BTreeMap::new();
    let mut stack: Vec<(u32, bool)> = vec![(f.0, false)];
    while let Some((i, expanded)) = stack.pop() {
        if i <= 1 || index.contains_key(&i) {
            continue;
        }
        if expanded {
            let slot = order.len() as u32;
            if index.insert(i, slot).is_none() {
                order.push(i);
            }
        } else {
            stack.push((i, true));
            let n = m.node(Bdd(i));
            stack.push((n.lo, false));
            stack.push((n.hi, false));
        }
    }

    let encode_ref = |i: u32, index: &BTreeMap<u32, u32>| -> u32 {
        if i <= 1 {
            i
        } else {
            index[&i] + 2
        }
    };

    buf.put_u32(order.len() as u32);
    for &i in &order {
        let n = m.node(Bdd(i));
        buf.put_u16(n.var);
        buf.put_u32(encode_ref(n.lo, &index));
        buf.put_u32(encode_ref(n.hi, &index));
    }
    buf.put_u32(encode_ref(f.0, &index));
}

/// Deserializes a BDD from `buf` into manager `m`.
pub fn deserialize(m: &mut BddManager, buf: &mut impl Buf) -> Result<Bdd, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let count = buf.get_u32() as usize;
    let mut handles: Vec<Bdd> = Vec::with_capacity(count + 2);
    handles.push(Bdd::FALSE);
    handles.push(Bdd::TRUE);
    for _ in 0..count {
        if buf.remaining() < 10 {
            return Err(DecodeError::Truncated);
        }
        let var = buf.get_u16();
        if var >= m.num_vars() {
            return Err(DecodeError::VarOutOfRange(var));
        }
        let lo = buf.get_u32() as usize;
        let hi = buf.get_u32() as usize;
        if lo >= handles.len() || hi >= handles.len() {
            return Err(DecodeError::ForwardReference);
        }
        let (lo, hi) = (handles[lo], handles[hi]);
        let node = m.mk(var, lo.0, hi.0);
        handles.push(Bdd(node));
    }
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let root = buf.get_u32() as usize;
    if root >= handles.len() {
        return Err(DecodeError::ForwardReference);
    }
    Ok(handles[root])
}

/// Convenience: serializes to a fresh byte vector.
pub fn to_bytes(m: &BddManager, f: Bdd) -> Vec<u8> {
    let mut buf = Vec::new();
    serialize(m, f, &mut buf);
    buf
}

/// Convenience: deserializes from a byte slice.
pub fn from_bytes(m: &mut BddManager, bytes: &[u8]) -> Result<Bdd, DecodeError> {
    let mut buf = bytes;
    deserialize(m, &mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_roundtrip() {
        let m = BddManager::new(4);
        let mut m2 = BddManager::new(4);
        for f in [Bdd::FALSE, Bdd::TRUE] {
            let bytes = to_bytes(&m, f);
            assert_eq!(from_bytes(&mut m2, &bytes).unwrap(), f);
        }
    }

    #[test]
    fn structure_roundtrips_across_managers() {
        let mut m1 = BddManager::new(8);
        let a = m1.var(0);
        let b = m1.var(3);
        let c = m1.nvar(5);
        let ab = m1.and(a, b);
        let f = m1.or(ab, c);

        let bytes = to_bytes(&m1, f);
        let mut m2 = BddManager::new(8);
        let g = from_bytes(&mut m2, &bytes).unwrap();

        for bits in 0u32..256 {
            let assign: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m1.eval(f, &assign), m2.eval(g, &assign));
        }
    }

    #[test]
    fn deserialize_is_canonical_in_destination() {
        // Re-encoding the same function twice must produce the same handle.
        let mut m1 = BddManager::new(4);
        let a = m1.var(0);
        let b = m1.var(1);
        let f = m1.and(a, b);
        let bytes = to_bytes(&m1, f);
        let mut m2 = BddManager::new(4);
        let g1 = from_bytes(&mut m2, &bytes).unwrap();
        let g2 = from_bytes(&mut m2, &bytes).unwrap();
        assert_eq!(g1, g2);
        // And it equals natively-built structure.
        let a2 = m2.var(0);
        let b2 = m2.var(1);
        let native = m2.and(a2, b2);
        assert_eq!(g1, native);
    }

    #[test]
    fn equivalent_bdds_serialize_byte_identically() {
        // Two managers build the same function along very different
        // construction paths (different operand orders, intermediate
        // results, and therefore different internal node ids); the wire
        // bytes must still be identical, because downstream consumers
        // (checkpoint digests, cross-run RIB diffs) compare them.
        let mut m1 = BddManager::new(8);
        let f1 = {
            let a = m1.var(0);
            let b = m1.var(3);
            let c = m1.nvar(5);
            let ab = m1.and(a, b);
            m1.or(ab, c)
        };

        let mut m2 = BddManager::new(8);
        let f2 = {
            // Same function, built inside-out with extra garbage nodes
            // created along the way to desynchronize the managers' ids.
            let junk1 = m2.var(7);
            let junk2 = m2.var(6);
            let _ = m2.xor(junk1, junk2);
            let c = m2.nvar(5);
            let b = m2.var(3);
            let a = m2.var(0);
            let ba = m2.and(b, a);
            m2.or(c, ba)
        };

        let bytes1 = to_bytes(&m1, f1);
        let bytes2 = to_bytes(&m2, f2);
        assert_eq!(
            bytes1, bytes2,
            "equivalent functions must serialize to identical bytes"
        );

        // And the common prerequisite actually holds: they are the same
        // function (checked semantically, not just assumed).
        for bits in 0u32..256 {
            let assign: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m1.eval(f1, &assign), m2.eval(f2, &assign));
        }
    }

    #[test]
    fn truncated_inputs_are_rejected() {
        let mut m1 = BddManager::new(4);
        let a = m1.var(0);
        let b = m1.var(1);
        let f = m1.and(a, b);
        let bytes = to_bytes(&m1, f);
        let mut m2 = BddManager::new(4);
        for cut in 0..bytes.len() {
            assert!(from_bytes(&mut m2, &bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn var_out_of_range_is_rejected() {
        let mut m1 = BddManager::new(16);
        let f = m1.var(12);
        let bytes = to_bytes(&m1, f);
        let mut small = BddManager::new(4);
        assert_eq!(
            from_bytes(&mut small, &bytes),
            Err(DecodeError::VarOutOfRange(12))
        );
    }

    proptest! {
        /// Random functions roundtrip across managers with identical
        /// semantics and identical node counts (shared structure kept).
        #[test]
        fn prop_roundtrip(ops in proptest::collection::vec((0u8..4, 0u16..6, 0u16..6), 1..30)) {
            let mut m1 = BddManager::new(6);
            let mut f = Bdd::TRUE;
            for (op, v1, v2) in ops {
                let x = m1.var(v1);
                let y = m1.var(v2);
                let g = match op {
                    0 => m1.and(x, y),
                    1 => m1.or(x, y),
                    2 => m1.xor(x, y),
                    _ => m1.not(x),
                };
                f = match op % 2 {
                    0 => m1.and(f, g),
                    _ => m1.or(f, g),
                };
            }
            let bytes = to_bytes(&m1, f);
            let mut m2 = BddManager::new(6);
            let g = from_bytes(&mut m2, &bytes).unwrap();
            prop_assert_eq!(m1.size(f), m2.size(g));
            for bits in 0u32..64 {
                let assign: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                prop_assert_eq!(m1.eval(f, &assign), m2.eval(g, &assign));
            }
        }
    }
}
