//! Boolean operations on BDDs: NOT, AND, OR, XOR, difference, ITE,
//! restriction and existential quantification.
//!
//! All binary operations use a shared computed cache keyed by
//! `(op, lhs, rhs)` with commutative normalization, the classic Bryant
//! apply algorithm.

use crate::manager::{Bdd, BddManager, Op, TERMINAL_VAR};

impl BddManager {
    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(self.not_rec(f.0))
    }

    fn not_rec(&mut self, f: u32) -> u32 {
        if f == 0 {
            return 1;
        }
        if f == 1 {
            return 0;
        }
        if let Some(r) = self.not_cache_get(f) {
            return r;
        }
        let n = self.nodes[f as usize];
        let lo = self.not_rec(n.lo);
        let hi = self.not_rec(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache_put(f, r);
        r
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::And, f.0, g.0))
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Or, f.0, g.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Xor, f.0, g.0))
    }

    /// Set difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Diff, f.0, g.0))
    }

    /// Conjunction over an iterator (TRUE for an empty iterator).
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        let mut acc = Bdd::TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator (FALSE for an empty iterator).
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        let mut acc = Bdd::FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// If-then-else: `c ∧ t ∨ ¬c ∧ e`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        // Implemented via the binary ops; with hash-consing this remains
        // canonical, and the two apply calls are themselves cached.
        let ct = self.and(c, t);
        let nc = self.not(c);
        let nce = self.and(nc, e);
        self.or(ct, nce)
    }

    /// Whether `f → g` is a tautology (i.e. `f ∧ ¬g = ⊥`).
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> bool {
        self.diff(f, g).is_false()
    }

    /// Whether `f ∧ g` is satisfiable (the "overlap" test used by
    /// multipath-consistency checking).
    pub fn intersects(&mut self, f: Bdd, g: Bdd) -> bool {
        !self.and(f, g).is_false()
    }

    fn terminal_case(op: Op, f: u32, g: u32) -> Option<u32> {
        match op {
            Op::And => {
                if f == 0 || g == 0 {
                    Some(0)
                } else if f == 1 {
                    Some(g)
                } else if g == 1 || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Or => {
                if f == 1 || g == 1 {
                    Some(1)
                } else if f == 0 {
                    Some(g)
                } else if g == 0 || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Xor => {
                if f == g {
                    Some(0)
                } else if f == 0 {
                    Some(g)
                } else if g == 0 {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Diff => {
                if f == 0 || g == 1 || f == g {
                    Some(0)
                } else if g == 0 {
                    Some(f)
                } else {
                    None
                }
            }
        }
    }

    fn apply(&mut self, op: Op, f: u32, g: u32) -> u32 {
        if let Some(r) = Self::terminal_case(op, f, g) {
            return r;
        }
        // Normalize commutative operations for better cache hit rates.
        let (f, g) = match op {
            Op::And | Op::Or | Op::Xor if f > g => (g, f),
            _ => (f, g),
        };
        if let Some(r) = self.bin_cache_get(op, f, g) {
            return r;
        }
        let nf = self.nodes[f as usize];
        let ng = self.nodes[g as usize];
        let var = nf.var.min(ng.var);
        debug_assert!(var != TERMINAL_VAR);
        let (flo, fhi) = if nf.var == var { (nf.lo, nf.hi) } else { (f, f) };
        let (glo, ghi) = if ng.var == var { (ng.lo, ng.hi) } else { (g, g) };
        let lo = self.apply(op, flo, glo);
        let hi = self.apply(op, fhi, ghi);
        let r = self.mk(var, lo, hi);
        self.bin_cache_put(op, f, g, r);
        r
    }

    /// Restricts variable `var` to the constant `value` in `f` (cofactor).
    ///
    /// Memoized through the manager's reusable direct-mapped memo buffer
    /// (one generation per call) instead of a per-call `HashMap` — the
    /// memo is lossy, which is safe because `mk` is canonical.
    pub fn restrict(&mut self, f: Bdd, var: u16, value: bool) -> Bdd {
        self.memo_begin();
        Bdd(self.restrict_rec(f.0, var, value))
    }

    fn restrict_rec(&mut self, f: u32, var: u16, value: bool) -> u32 {
        if f <= 1 {
            return f;
        }
        let n = self.nodes[f as usize];
        if n.var > var {
            return f;
        }
        if let Some(r) = self.memo_get(f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value);
            let hi = self.restrict_rec(n.hi, var, value);
            self.mk(n.var, lo, hi)
        };
        self.memo_put(f, r);
        r
    }

    /// Existentially quantifies variable `var`: `f[var:=0] ∨ f[var:=1]`.
    pub fn exists(&mut self, f: Bdd, var: u16) -> Bdd {
        let lo = self.restrict(f, var, false);
        let hi = self.restrict(f, var, true);
        self.or(lo, hi)
    }

    /// Existentially quantifies a set of variables.
    pub fn exists_all(&mut self, f: Bdd, vars: impl IntoIterator<Item = u16>) -> Bdd {
        let mut acc = f;
        for v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (BddManager, Bdd, Bdd, Bdd) {
        let mut m = BddManager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        (m, a, b, c)
    }

    #[test]
    fn basic_identities() {
        let (mut m, a, b, _) = setup();
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        assert_eq!(m.or(a, Bdd::TRUE), Bdd::TRUE);
        assert_eq!(m.xor(a, a), Bdd::FALSE);
        assert_eq!(m.and(a, b), m.and(b, a));
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
        let nna = m.not(na);
        assert_eq!(nna, a);
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = setup();
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let (mut m, a, b, c) = setup();
        let ite = m.ite(a, b, c);
        let manual = {
            let ab = m.and(a, b);
            let na = m.not(a);
            let nac = m.and(na, c);
            m.or(ab, nac)
        };
        assert_eq!(ite, manual);
    }

    #[test]
    fn implies_and_intersects() {
        let (mut m, a, b, _) = setup();
        let ab = m.and(a, b);
        assert!(m.implies(ab, a));
        assert!(!m.implies(a, ab));
        assert!(m.intersects(a, b));
        let na = m.not(a);
        assert!(!m.intersects(a, na));
    }

    #[test]
    fn diff_is_and_not() {
        let (mut m, a, b, _) = setup();
        let d = m.diff(a, b);
        let nb = m.not(b);
        let manual = m.and(a, nb);
        assert_eq!(d, manual);
    }

    #[test]
    fn restrict_cofactors() {
        let (mut m, a, b, _) = setup();
        let ab = m.and(a, b);
        assert_eq!(m.restrict(ab, 0, true), b);
        assert_eq!(m.restrict(ab, 0, false), Bdd::FALSE);
        // Restricting a variable not in the support is a no-op.
        assert_eq!(m.restrict(ab, 7, true), ab);
    }

    #[test]
    fn exists_removes_variable() {
        let (mut m, a, b, _) = setup();
        let ab = m.and(a, b);
        assert_eq!(m.exists(ab, 0), b);
        let ex_all = m.exists_all(ab, [0, 1]);
        assert_eq!(ex_all, Bdd::TRUE);
        assert_eq!(m.exists(Bdd::FALSE, 0), Bdd::FALSE);
    }

    #[test]
    fn and_all_or_all() {
        let (mut m, a, b, c) = setup();
        let all = m.and_all([a, b, c]);
        let manual = {
            let ab = m.and(a, b);
            m.and(ab, c)
        };
        assert_eq!(all, manual);
        assert_eq!(m.and_all([]), Bdd::TRUE);
        assert_eq!(m.or_all([]), Bdd::FALSE);
        let any = m.or_all([a, b]);
        assert_eq!(any, m.or(a, b));
    }

    /// A tiny randomized model check: build random expressions, compare BDD
    /// evaluation against direct Boolean evaluation on all assignments.
    #[derive(Debug, Clone)]
    enum Expr {
        Var(u16),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
    }

    fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = (0u16..4).prop_map(Expr::Var).boxed();
        leaf.prop_recursive(depth, 32, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            ]
            .boxed()
        })
        .boxed()
    }

    fn build(m: &mut BddManager, e: &Expr) -> Bdd {
        match e {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let a = build(m, a);
                m.not(a)
            }
            Expr::And(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.and(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.or(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (build(m, a), build(m, b));
                m.xor(a, b)
            }
        }
    }

    fn eval_expr(e: &Expr, assign: &[bool]) -> bool {
        match e {
            Expr::Var(v) => assign[*v as usize],
            Expr::Not(a) => !eval_expr(a, assign),
            Expr::And(a, b) => eval_expr(a, assign) && eval_expr(b, assign),
            Expr::Or(a, b) => eval_expr(a, assign) || eval_expr(b, assign),
            Expr::Xor(a, b) => eval_expr(a, assign) ^ eval_expr(b, assign),
        }
    }

    proptest! {
        #[test]
        fn prop_bdd_agrees_with_truth_table(e in arb_expr(5)) {
            let mut m = BddManager::new(4);
            let f = build(&mut m, &e);
            for bits in 0u32..16 {
                let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                prop_assert_eq!(m.eval(f, &assign), eval_expr(&e, &assign));
            }
        }

        #[test]
        fn prop_canonical_equality(e1 in arb_expr(4), e2 in arb_expr(4)) {
            let mut m = BddManager::new(4);
            let f1 = build(&mut m, &e1);
            let f2 = build(&mut m, &e2);
            let semantically_equal = (0u32..16).all(|bits| {
                let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                eval_expr(&e1, &assign) == eval_expr(&e2, &assign)
            });
            prop_assert_eq!(f1 == f2, semantically_equal);
        }
    }
}
