//! # s2-bdd
//!
//! A reduced, ordered binary decision diagram (ROBDD) engine, built for the
//! S2 verifier's symbolic packet representation. It plays the role JDD
//! plays in the paper's Java prototype:
//!
//! * hash-consed nodes with a unique table ([`manager`]),
//! * memoized `AND`/`OR`/`XOR`/`NOT`/`ITE` and quantification ([`ops`]),
//! * satisfying-assignment counting and enumeration ([`sat`]),
//! * a compact DAG wire format for shipping BDDs between workers, each of
//!   which owns a *private* manager ([`serialize`] — the BDDIO role),
//! * helpers to encode prefixes, exact values and integer ranges over a
//!   bit-vector variable block ([`builder`]).
//!
//! ## Design notes
//!
//! Every [`Bdd`] handle is only meaningful together with the manager that
//! created it. Managers are deliberately **not** shared: S2 gives each
//! worker its own manager precisely so BDD operations on different workers
//! never contend (§4.3 of the paper). Cross-worker transfer must go through
//! [`serialize::serialize`] / [`serialize::deserialize`].

#![deny(missing_docs)]

pub mod builder;
pub mod manager;
pub mod ops;
pub mod sat;
pub mod serialize;
pub mod splice;

pub use manager::{Bdd, BddManager, CacheConfig, CacheStats};
