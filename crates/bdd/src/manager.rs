//! The BDD manager: node storage, hash-consing and cache bookkeeping.

use std::collections::HashMap;

/// A handle to a BDD rooted at some node of a [`BddManager`].
///
/// Handles are cheap to copy and compare; equality of handles created by the
/// *same* manager is semantic equivalence of the functions they denote
/// (canonicity of ROBDDs). Handles from different managers must never be
/// mixed; debug builds of the operations do not detect this, so the S2
/// runtime keeps managers strictly worker-private.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant FALSE function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant TRUE function.
    pub const TRUE: Bdd = Bdd(1);

    /// Whether this is the constant FALSE.
    #[inline]
    pub const fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Whether this is the constant TRUE.
    #[inline]
    pub const fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Whether this is either constant.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// One decision node. Terminals live at indices 0 and 1 with `var == u16::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    /// Decision variable (lower = closer to the root).
    pub var: u16,
    /// Child when the variable is 0.
    pub lo: u32,
    /// Child when the variable is 1.
    pub hi: u32,
}

/// Sentinel variable number for the two terminal nodes.
pub(crate) const TERMINAL_VAR: u16 = u16::MAX;

/// Binary operation identifiers for the computed cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

/// A BDD manager: owns the node table, the unique table, and the computed
/// caches. All operations go through a `&mut` manager, which is what makes
/// a single manager inherently serial — and why S2 runs one manager per
/// worker to regain parallelism.
#[derive(Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: HashMap<Node, u32>,
    pub(crate) bin_cache: HashMap<(Op, u32, u32), u32>,
    pub(crate) not_cache: HashMap<u32, u32>,
    num_vars: u16,
    peak_nodes: usize,
}

impl BddManager {
    /// Creates a manager for functions over `num_vars` Boolean variables.
    ///
    /// # Panics
    /// Panics if `num_vars >= u16::MAX` (the sentinel value is reserved).
    pub fn new(num_vars: u16) -> Self {
        assert!(num_vars < TERMINAL_VAR, "too many variables");
        let terminals = vec![
            Node {
                var: TERMINAL_VAR,
                lo: 0,
                hi: 0,
            },
            Node {
                var: TERMINAL_VAR,
                lo: 1,
                hi: 1,
            },
        ];
        BddManager {
            nodes: terminals,
            unique: HashMap::new(),
            bin_cache: HashMap::new(),
            not_cache: HashMap::new(),
            num_vars,
            peak_nodes: 2,
        }
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u16 {
        self.num_vars
    }

    /// Total number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// High-water mark of [`node_count`](Self::node_count).
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Approximate heap footprint in bytes: node table plus unique table
    /// plus computed caches. Used by the per-worker memory gauges.
    pub fn approx_bytes(&self) -> usize {
        // Node is 12 bytes; unique-table and cache entries carry hashing
        // overhead we approximate at 2x payload.
        let node_bytes = self.nodes.len() * std::mem::size_of::<Node>();
        let unique_bytes = self.unique.len() * (std::mem::size_of::<Node>() + 8) * 2;
        let cache_bytes = (self.bin_cache.len() * 20 + self.not_cache.len() * 8) * 2;
        node_bytes + unique_bytes + cache_bytes
    }

    /// Drops the computed caches (the unique table is kept so canonicity is
    /// preserved). The S2 workers call this between prefix shards to bound
    /// memory, mirroring the paper's observation that cache/GC pressure
    /// dominates when memory is tight.
    pub fn clear_caches(&mut self) {
        self.bin_cache.clear();
        self.not_cache.clear();
    }

    /// The number of decision nodes reachable from `f` (excluding
    /// terminals); the standard "BDD size" metric.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.nodes[i as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// Returns the (var, lo, hi) triple of a non-terminal node.
    #[inline]
    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The decision variable at the root of `f`, or `None` for constants.
    pub fn root_var(&self, f: Bdd) -> Option<u16> {
        if f.is_const() {
            None
        } else {
            Some(self.node(f).var)
        }
    }

    /// Hash-consing constructor: returns the canonical node for
    /// `(var, lo, hi)`, applying the ROBDD reduction rule `lo == hi`.
    pub(crate) fn mk(&mut self, var: u16, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let key = Node { var, lo, hi };
        if let Some(&idx) = self.unique.get(&key) {
            return idx;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(key);
        self.unique.insert(key, idx);
        if self.nodes.len() > self.peak_nodes {
            self.peak_nodes = self.nodes.len();
        }
        idx
    }

    /// The function that is true iff variable `var` is 1.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: u16) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, 0, 1))
    }

    /// The function that is true iff variable `var` is 0.
    pub fn nvar(&mut self, var: u16) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, 1, 0))
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
        cur == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = BddManager::new(4);
        assert!(Bdd::FALSE.is_false() && !Bdd::FALSE.is_true());
        assert!(Bdd::TRUE.is_true() && Bdd::TRUE.is_const());
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.root_var(Bdd::TRUE), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = BddManager::new(4);
        let a1 = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a1, a2);
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.root_var(a1), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        m.var(2);
    }

    #[test]
    fn eval_follows_decisions() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let na = m.nvar(0);
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, false]));
        assert!(m.eval(na, &[false, false]));
        assert!(m.eval(Bdd::TRUE, &[false, false]));
        assert!(!m.eval(Bdd::FALSE, &[true, true]));
    }

    #[test]
    fn size_counts_reachable_decision_nodes() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        assert_eq!(m.size(Bdd::TRUE), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = BddManager::new(8);
        for v in 0..8 {
            m.var(v);
        }
        assert_eq!(m.peak_node_count(), 10);
        assert!(m.approx_bytes() > 0);
    }
}
