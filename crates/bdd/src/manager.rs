//! The BDD manager: node storage, hash-consing and cache bookkeeping.
//!
//! ## Hot-path table design
//!
//! The unique table is an open-addressed, power-of-two-sized array of node
//! indices probed linearly from a multiplicative hash of `(var, lo, hi)` —
//! the design CUDD and JDD use, replacing the SipHash `std::HashMap` of the
//! seed implementation. Keys are never stored twice: a slot holds only the
//! node index, and the `(var, lo, hi)` triple is read back from the node
//! table on comparison.
//!
//! The computed caches (`apply`, `not`, `restrict`) are fixed-size *lossy*
//! direct-mapped arrays: a colliding insert silently overwrites. That is
//! safe because [`mk`](BddManager::mk) is canonical — a cache miss only
//! costs recomputation, never correctness. Each entry carries a generation
//! tag so [`clear_caches`](BddManager::clear_caches) is O(1): it bumps the
//! generation and every stale entry misses by tag mismatch.

/// A handle to a BDD rooted at some node of a [`BddManager`].
///
/// Handles are cheap to copy and compare; equality of handles created by the
/// *same* manager is semantic equivalence of the functions they denote
/// (canonicity of ROBDDs). Handles from different managers must never be
/// mixed; debug builds of the operations do not detect this, so the S2
/// runtime keeps managers strictly worker-private.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant FALSE function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant TRUE function.
    pub const TRUE: Bdd = Bdd(1);

    /// Whether this is the constant FALSE.
    #[inline]
    pub const fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Whether this is the constant TRUE.
    #[inline]
    pub const fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Whether this is either constant.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// One decision node. Terminals live at indices 0 and 1 with `var == u16::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    /// Decision variable (lower = closer to the root).
    pub var: u16,
    /// Child when the variable is 0.
    pub lo: u32,
    /// Child when the variable is 1.
    pub hi: u32,
}

/// Sentinel variable number for the two terminal nodes.
pub(crate) const TERMINAL_VAR: u16 = u16::MAX;

/// Empty-slot sentinel in the open-addressed unique table.
const EMPTY: u32 = u32::MAX;

/// Generations are packed next to a 3-bit op code in the binary cache, so
/// they wrap early enough to stay representable there.
const GENERATION_LIMIT: u32 = 1 << 28;

/// Binary operation identifiers for the computed cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

/// One direct-mapped slot of the binary computed cache (16 bytes).
#[derive(Debug, Clone, Copy, Default)]
struct BinEntry {
    f: u32,
    g: u32,
    /// Generation tag (bits 3..) and op code (bits 0..3). Generation 0 is
    /// never current, so zeroed slots read as empty.
    op_gen: u32,
    result: u32,
}

/// One direct-mapped slot of the NOT cache (12 bytes).
#[derive(Debug, Clone, Copy, Default)]
struct NotEntry {
    f: u32,
    generation: u32,
    result: u32,
}

/// One direct-mapped slot of the reusable restrict/quantification memo
/// (12 bytes). The tag is a per-top-level-call generation, so the buffer
/// never needs clearing between calls.
#[derive(Debug, Clone, Copy, Default)]
struct MemoEntry {
    f: u32,
    generation: u32,
    result: u32,
}

/// Geometry of the manager's tables. All sizes are log2 of the entry
/// count; the tables are power-of-two sized so slot selection is a mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// log2 capacity of the binary (apply) computed cache.
    pub bin_bits: u32,
    /// log2 capacity of the NOT computed cache.
    pub not_bits: u32,
    /// log2 capacity of the restrict/quantification memo buffer.
    pub memo_bits: u32,
    /// log2 of the *initial* unique-table slot count (the unique table
    /// doubles as the node count grows; the computed caches never do).
    pub unique_bits: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            bin_bits: 13,
            not_bits: 11,
            memo_bits: 11,
            unique_bits: 10,
        }
    }
}

/// Counters for the unique table and the computed caches, exposed through
/// the per-worker memory gauges into the run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Unique-table lookups (one per canonical `mk` that was not reduced).
    pub unique_lookups: u64,
    /// Lookups that found an existing node.
    pub unique_hits: u64,
    /// Probe steps past the home slot (collision cost of the table).
    pub unique_probe_misses: u64,
    /// Times the unique table doubled.
    pub unique_resizes: u64,
    /// Binary computed-cache lookups.
    pub bin_lookups: u64,
    /// Binary computed-cache hits.
    pub bin_hits: u64,
    /// NOT-cache lookups.
    pub not_lookups: u64,
    /// NOT-cache hits.
    pub not_hits: u64,
    /// Restrict-memo lookups.
    pub memo_lookups: u64,
    /// Restrict-memo hits.
    pub memo_hits: u64,
    /// Times [`BddManager::clear_caches`] invalidated the computed caches.
    pub generation_clears: u64,
}

impl CacheStats {
    /// Accumulates another worker's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.unique_lookups += other.unique_lookups;
        self.unique_hits += other.unique_hits;
        self.unique_probe_misses += other.unique_probe_misses;
        self.unique_resizes += other.unique_resizes;
        self.bin_lookups += other.bin_lookups;
        self.bin_hits += other.bin_hits;
        self.not_lookups += other.not_lookups;
        self.not_hits += other.not_hits;
        self.memo_lookups += other.memo_lookups;
        self.memo_hits += other.memo_hits;
        self.generation_clears += other.generation_clears;
    }

    /// Hit rate of the binary computed cache in `[0, 1]`.
    pub fn bin_hit_rate(&self) -> f64 {
        ratio(self.bin_hits, self.bin_lookups)
    }

    /// Hit rate of the unique table in `[0, 1]`.
    pub fn unique_hit_rate(&self) -> f64 {
        ratio(self.unique_hits, self.unique_lookups)
    }

    /// Average probe steps past the home slot per unique-table lookup.
    pub fn unique_probe_miss_rate(&self) -> f64 {
        ratio(self.unique_probe_misses, self.unique_lookups)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A BDD manager: owns the node table, the unique table, and the computed
/// caches. All operations go through a `&mut` manager, which is what makes
/// a single manager inherently serial — and why S2 runs one manager per
/// worker to regain parallelism.
#[derive(Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Open-addressed unique table: node indices, probed linearly.
    unique_slots: Vec<u32>,
    unique_mask: usize,
    bin_cache: Vec<BinEntry>,
    bin_mask: usize,
    not_cache: Vec<NotEntry>,
    not_mask: usize,
    memo: Vec<MemoEntry>,
    memo_mask: usize,
    /// Tag of memo entries written by the current restrict call.
    memo_gen: u32,
    /// Tag of computed-cache entries written since the last clear.
    generation: u32,
    stats: CacheStats,
    num_vars: u16,
    peak_nodes: usize,
}

/// Multiplicative hash of a node triple (or any three small words): three
/// odd 64-bit constants spread the inputs, and the high/low fold keeps the
/// entropy that a power-of-two mask would otherwise discard.
#[inline]
fn hash3(a: u64, b: u64, c: u64) -> usize {
    let h = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ c.wrapping_mul(0x1656_67B1_9E37_79F9);
    ((h >> 32) ^ h) as usize
}

impl BddManager {
    /// Creates a manager for functions over `num_vars` Boolean variables
    /// with the default table geometry.
    ///
    /// # Panics
    /// Panics if `num_vars >= u16::MAX` (the sentinel value is reserved).
    pub fn new(num_vars: u16) -> Self {
        Self::with_config(num_vars, CacheConfig::default())
    }

    /// Creates a manager with an explicit table geometry. Larger computed
    /// caches trade memory for hit rate; the unique table only sets the
    /// pre-resize starting size.
    ///
    /// # Panics
    /// Panics if `num_vars >= u16::MAX` or any size exceeds 30 bits.
    pub fn with_config(num_vars: u16, config: CacheConfig) -> Self {
        assert!(num_vars < TERMINAL_VAR, "too many variables");
        let max_bits = config
            .bin_bits
            .max(config.not_bits)
            .max(config.memo_bits)
            .max(config.unique_bits);
        assert!(max_bits <= 30, "cache geometry out of range");
        let terminals = vec![
            Node {
                var: TERMINAL_VAR,
                lo: 0,
                hi: 0,
            },
            Node {
                var: TERMINAL_VAR,
                lo: 1,
                hi: 1,
            },
        ];
        let unique_len = 1usize << config.unique_bits;
        let bin_len = 1usize << config.bin_bits;
        let not_len = 1usize << config.not_bits;
        let memo_len = 1usize << config.memo_bits;
        BddManager {
            nodes: terminals,
            unique_slots: vec![EMPTY; unique_len],
            unique_mask: unique_len - 1,
            bin_cache: vec![BinEntry::default(); bin_len],
            bin_mask: bin_len - 1,
            not_cache: vec![NotEntry::default(); not_len],
            not_mask: not_len - 1,
            memo: vec![MemoEntry::default(); memo_len],
            memo_mask: memo_len - 1,
            memo_gen: 0,
            generation: 1,
            stats: CacheStats::default(),
            num_vars,
            peak_nodes: 2,
        }
    }

    /// Number of variables this manager was created with.
    pub fn num_vars(&self) -> u16 {
        self.num_vars
    }

    /// Total number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// High-water mark of [`node_count`](Self::node_count).
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Current slot count of the unique table (power of two; grows by
    /// doubling as nodes are interned).
    pub fn unique_capacity(&self) -> usize {
        self.unique_slots.len()
    }

    /// Table and cache counters since the manager was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Approximate heap footprint in bytes: node table plus unique table
    /// plus computed caches. Used by the per-worker memory gauges. The
    /// computed caches are a fixed overhead chosen at construction; only
    /// the node and unique tables grow.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes = self.nodes.len() * std::mem::size_of::<Node>();
        let unique_bytes = self.unique_slots.len() * std::mem::size_of::<u32>();
        let cache_bytes = self.bin_cache.len() * std::mem::size_of::<BinEntry>()
            + self.not_cache.len() * std::mem::size_of::<NotEntry>()
            + self.memo.len() * std::mem::size_of::<MemoEntry>();
        node_bytes + unique_bytes + cache_bytes
    }

    /// Invalidates the computed caches (the unique table is kept so
    /// canonicity is preserved). O(1): bumps the generation tag rather
    /// than touching the arrays. The S2 workers call this between prefix
    /// shards to bound stale-entry footprint, mirroring the paper's
    /// observation that cache/GC pressure dominates when memory is tight.
    pub fn clear_caches(&mut self) {
        s2_obs::event!("bdd.cache_clear", self.nodes.len());
        self.stats.generation_clears += 1;
        self.generation += 1;
        if self.generation >= GENERATION_LIMIT {
            // Tag space exhausted: pay one real clear and restart tags.
            self.bin_cache.fill(BinEntry::default());
            self.not_cache.fill(NotEntry::default());
            self.generation = 1;
        }
    }

    /// The number of decision nodes reachable from `f` (excluding
    /// terminals); the standard "BDD size" metric.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.nodes[i as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// Returns the (var, lo, hi) triple of a non-terminal node.
    #[inline]
    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The decision variable at the root of `f`, or `None` for constants.
    pub fn root_var(&self, f: Bdd) -> Option<u16> {
        if f.is_const() {
            None
        } else {
            Some(self.node(f).var)
        }
    }

    /// Hash-consing constructor: returns the canonical node for
    /// `(var, lo, hi)`, applying the ROBDD reduction rule `lo == hi`.
    pub(crate) fn mk(&mut self, var: u16, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        self.stats.unique_lookups += 1;
        let mut slot = hash3(var as u64, lo as u64, hi as u64) & self.unique_mask;
        loop {
            let idx = self.unique_slots[slot];
            if idx == EMPTY {
                break;
            }
            let n = self.nodes[idx as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                self.stats.unique_hits += 1;
                return idx;
            }
            self.stats.unique_probe_misses += 1;
            slot = (slot + 1) & self.unique_mask;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique_slots[slot] = idx;
        if self.nodes.len() > self.peak_nodes {
            self.peak_nodes = self.nodes.len();
        }
        // Keep load factor under 3/4; doubling re-derives every slot from
        // the node table (no stored hashes, no tombstones — nodes are
        // never removed).
        if (self.nodes.len() - 2) * 4 >= self.unique_slots.len() * 3 {
            self.grow_unique();
        }
        idx
    }

    fn grow_unique(&mut self) {
        let new_len = self.unique_slots.len() * 2;
        s2_obs::event!("bdd.resize", new_len);
        self.stats.unique_resizes += 1;
        let mask = new_len - 1;
        let mut slots = vec![EMPTY; new_len];
        for (idx, n) in self.nodes.iter().enumerate().skip(2) {
            let mut slot = hash3(n.var as u64, n.lo as u64, n.hi as u64) & mask;
            while slots[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            slots[slot] = idx as u32;
        }
        self.unique_slots = slots;
        self.unique_mask = mask;
    }

    /// Looks up `(op, f, g)` in the direct-mapped binary computed cache.
    #[inline]
    pub(crate) fn bin_cache_get(&mut self, op: Op, f: u32, g: u32) -> Option<u32> {
        self.stats.bin_lookups += 1;
        let entry = self.bin_cache[hash3(op as u64, f as u64, g as u64) & self.bin_mask];
        if entry.f == f && entry.g == g && entry.op_gen == ((self.generation << 3) | op as u32) {
            self.stats.bin_hits += 1;
            Some(entry.result)
        } else {
            None
        }
    }

    /// Stores a result in the binary computed cache (lossy: overwrites
    /// whatever shared the slot).
    #[inline]
    pub(crate) fn bin_cache_put(&mut self, op: Op, f: u32, g: u32, result: u32) {
        let slot = hash3(op as u64, f as u64, g as u64) & self.bin_mask;
        self.bin_cache[slot] = BinEntry {
            f,
            g,
            op_gen: (self.generation << 3) | op as u32,
            result,
        };
    }

    /// Looks up `f` in the direct-mapped NOT cache.
    #[inline]
    pub(crate) fn not_cache_get(&mut self, f: u32) -> Option<u32> {
        self.stats.not_lookups += 1;
        let entry = self.not_cache[hash3(f as u64, 0, 0) & self.not_mask];
        if entry.f == f && entry.generation == self.generation {
            self.stats.not_hits += 1;
            Some(entry.result)
        } else {
            None
        }
    }

    /// Stores a result in the NOT cache (lossy).
    #[inline]
    pub(crate) fn not_cache_put(&mut self, f: u32, result: u32) {
        let slot = hash3(f as u64, 0, 0) & self.not_mask;
        self.not_cache[slot] = NotEntry {
            f,
            generation: self.generation,
            result,
        };
    }

    /// Starts a fresh restrict/quantification memo scope: entries written
    /// by earlier calls stop matching without the buffer being touched.
    #[inline]
    pub(crate) fn memo_begin(&mut self) {
        if self.memo_gen == u32::MAX {
            self.memo.fill(MemoEntry::default());
            self.memo_gen = 0;
        }
        self.memo_gen += 1;
    }

    /// Looks up `f` in the current memo scope.
    #[inline]
    pub(crate) fn memo_get(&mut self, f: u32) -> Option<u32> {
        self.stats.memo_lookups += 1;
        let entry = self.memo[hash3(f as u64, 0, 1) & self.memo_mask];
        if entry.f == f && entry.generation == self.memo_gen {
            self.stats.memo_hits += 1;
            Some(entry.result)
        } else {
            None
        }
    }

    /// Stores a result in the current memo scope (lossy).
    #[inline]
    pub(crate) fn memo_put(&mut self, f: u32, result: u32) {
        let slot = hash3(f as u64, 0, 1) & self.memo_mask;
        self.memo[slot] = MemoEntry {
            f,
            generation: self.memo_gen,
            result,
        };
    }

    /// The function that is true iff variable `var` is 1.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: u16) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, 0, 1))
    }

    /// The function that is true iff variable `var` is 0.
    pub fn nvar(&mut self, var: u16) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, 1, 0))
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
        cur == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = BddManager::new(4);
        assert!(Bdd::FALSE.is_false() && !Bdd::FALSE.is_true());
        assert!(Bdd::TRUE.is_true() && Bdd::TRUE.is_const());
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.root_var(Bdd::TRUE), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = BddManager::new(4);
        let a1 = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a1, a2);
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.root_var(a1), Some(0));
        let stats = m.cache_stats();
        assert_eq!(stats.unique_lookups, 2);
        assert_eq!(stats.unique_hits, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        m.var(2);
    }

    #[test]
    fn eval_follows_decisions() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let na = m.nvar(0);
        assert!(m.eval(a, &[true, false]));
        assert!(!m.eval(a, &[false, false]));
        assert!(m.eval(na, &[false, false]));
        assert!(m.eval(Bdd::TRUE, &[false, false]));
        assert!(!m.eval(Bdd::FALSE, &[true, true]));
    }

    #[test]
    fn size_counts_reachable_decision_nodes() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        assert_eq!(m.size(Bdd::TRUE), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = BddManager::new(8);
        for v in 0..8 {
            m.var(v);
        }
        assert_eq!(m.peak_node_count(), 10);
        assert!(m.approx_bytes() > 0);
    }

    #[test]
    fn unique_table_grows_under_load() {
        // A tiny initial table must double repeatedly while staying
        // canonical (hash-consing hits keep working across resizes).
        let config = CacheConfig {
            unique_bits: 2,
            ..CacheConfig::default()
        };
        let mut m = BddManager::with_config(512, config);
        let mut handles = Vec::new();
        for v in 0..512 {
            handles.push(m.var(v));
        }
        assert!(m.cache_stats().unique_resizes >= 5);
        assert!(m.unique_capacity() >= 512);
        for (v, &h) in handles.iter().enumerate() {
            assert_eq!(m.var(v as u16), h, "resize broke canonicity");
        }
        // No node was duplicated: 2 terminals + 512 vars.
        assert_eq!(m.node_count(), 514);
    }

    #[test]
    fn generational_clear_is_cheap_and_effective() {
        let mut m = BddManager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let before = m.cache_stats();
        m.clear_caches();
        // Recomputing after the clear must miss the computed cache...
        let ab2 = m.and(a, b);
        assert_eq!(ab, ab2, "clear must not affect canonicity");
        let after = m.cache_stats();
        assert_eq!(after.generation_clears, before.generation_clears + 1);
        assert!(after.bin_lookups > before.bin_lookups);
        // ...but the unique table survives the clear.
        assert_eq!(m.node_count(), 5);
    }
}
