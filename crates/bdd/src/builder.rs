//! Bit-vector encodings: prefixes, exact values and integer ranges.
//!
//! The data plane represents a packet header as a block of Boolean
//! variables (most significant bit first). These helpers build the BDDs
//! matching "field == value", "field in [lo, hi]" and "address matches
//! prefix", which is everything FIB rules and ACLs need.

use crate::manager::{Bdd, BddManager};

impl BddManager {
    /// BDD for "the `width`-bit field starting at variable `offset` equals
    /// `value`" (most significant bit at `offset`).
    pub fn encode_eq(&mut self, offset: u16, width: u16, value: u64) -> Bdd {
        debug_assert!(width <= 64);
        let mut acc = Bdd::TRUE;
        // Build from the least significant bit up so the conjunction
        // grows bottom-up along the variable order (linear-size result).
        for i in (0..width).rev() {
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            let var = offset + i;
            let lit = if bit { self.var(var) } else { self.nvar(var) };
            acc = self.and(lit, acc);
        }
        acc
    }

    /// BDD for "the 32-bit address field starting at `offset` lies in the
    /// prefix `addr/len`": the first `len` bits are fixed, the rest free.
    pub fn encode_prefix(&mut self, offset: u16, addr: u32, len: u8) -> Bdd {
        debug_assert!(len <= 32);
        let mut acc = Bdd::TRUE;
        for i in (0..len as u16).rev() {
            let bit = (addr >> (31 - i)) & 1 == 1;
            let var = offset + i;
            let lit = if bit { self.var(var) } else { self.nvar(var) };
            acc = self.and(lit, acc);
        }
        acc
    }

    /// BDD for "the `width`-bit field starting at `offset` is ≤ `bound`".
    pub fn encode_le(&mut self, offset: u16, width: u16, bound: u64) -> Bdd {
        debug_assert!(width <= 64);
        // Walk bits from least significant to most significant, building
        // "suffix ≤ bound-suffix" bottom-up.
        let mut acc = Bdd::TRUE;
        for i in (0..width).rev() {
            let var = offset + i;
            let bit = (bound >> (width - 1 - i)) & 1 == 1;
            let v = self.var(var);
            let nv = self.nvar(var);
            acc = if bit {
                // field bit 0 ⇒ anything below; field bit 1 ⇒ suffix must
                // still be ≤.
                let hi_branch = self.and(v, acc);
                self.or(nv, hi_branch)
            } else {
                // field bit must be 0 and suffix ≤.
                self.and(nv, acc)
            };
        }
        acc
    }

    /// BDD for "the `width`-bit field starting at `offset` is ≥ `bound`".
    pub fn encode_ge(&mut self, offset: u16, width: u16, bound: u64) -> Bdd {
        debug_assert!(width <= 64);
        let mut acc = Bdd::TRUE;
        for i in (0..width).rev() {
            let var = offset + i;
            let bit = (bound >> (width - 1 - i)) & 1 == 1;
            let v = self.var(var);
            let nv = self.nvar(var);
            acc = if bit {
                self.and(v, acc)
            } else {
                let lo_branch = self.and(nv, acc);
                self.or(v, lo_branch)
            };
        }
        acc
    }

    /// BDD for "the `width`-bit field starting at `offset` lies in
    /// `[lo, hi]`" (inclusive). Returns FALSE for an empty range.
    pub fn encode_range(&mut self, offset: u16, width: u16, lo: u64, hi: u64) -> Bdd {
        if lo > hi {
            return Bdd::FALSE;
        }
        let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        if lo == 0 && hi >= max {
            return Bdd::TRUE;
        }
        let ge = self.encode_ge(offset, width, lo);
        let le = self.encode_le(offset, width, hi);
        self.and(ge, le)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Evaluates `f` treating variables `[offset, offset+width)` as a big-
    /// endian integer `value`, all other variables false.
    fn eval_field(m: &BddManager, f: Bdd, offset: u16, width: u16, value: u64) -> bool {
        let mut assign = vec![false; m.num_vars() as usize];
        for i in 0..width {
            assign[(offset + i) as usize] = (value >> (width - 1 - i)) & 1 == 1;
        }
        m.eval(f, &assign)
    }

    #[test]
    fn eq_matches_exactly() {
        let mut m = BddManager::new(16);
        let f = m.encode_eq(4, 8, 0xAB);
        for v in 0..=255u64 {
            assert_eq!(eval_field(&m, f, 4, 8, v), v == 0xAB);
        }
        assert_eq!(m.sat_count(f), 1 << 8); // 8 free vars outside the field
    }

    #[test]
    fn prefix_fixes_leading_bits() {
        let mut m = BddManager::new(32);
        // 10.0.0.0/8
        let f = m.encode_prefix(0, 0x0A000000, 8);
        assert!(eval_field(&m, f, 0, 32, 0x0A012345));
        assert!(!eval_field(&m, f, 0, 32, 0x0B000000));
        assert_eq!(m.sat_count(f), 1u128 << 24);
        // /0 matches everything.
        let any = m.encode_prefix(0, 0, 0);
        assert!(any.is_true());
        // /32 matches exactly one.
        let host = m.encode_prefix(0, 0xC0A80101, 32);
        assert_eq!(m.sat_count(host), 1);
    }

    #[test]
    fn le_ge_boundaries() {
        let mut m = BddManager::new(8);
        let le = m.encode_le(0, 8, 100);
        let ge = m.encode_ge(0, 8, 100);
        for v in 0..=255u64 {
            assert_eq!(eval_field(&m, le, 0, 8, v), v <= 100, "le {v}");
            assert_eq!(eval_field(&m, ge, 0, 8, v), v >= 100, "ge {v}");
        }
    }

    #[test]
    fn range_semantics() {
        let mut m = BddManager::new(8);
        let f = m.encode_range(0, 8, 10, 20);
        for v in 0..=255u64 {
            assert_eq!(eval_field(&m, f, 0, 8, v), (10..=20).contains(&v));
        }
        assert_eq!(m.sat_count(f), 11);
        assert!(m.encode_range(0, 8, 20, 10).is_false());
        assert!(m.encode_range(0, 8, 0, 255).is_true());
    }

    proptest! {
        #[test]
        fn prop_range_matches_arith(lo in 0u64..256, hi in 0u64..256, probe in 0u64..256) {
            let mut m = BddManager::new(8);
            let f = m.encode_range(0, 8, lo, hi);
            prop_assert_eq!(eval_field(&m, f, 0, 8, probe), lo <= probe && probe <= hi);
        }

        #[test]
        fn prop_eq_count_is_one_in_field(value in 0u64..65536) {
            let mut m = BddManager::new(16);
            let f = m.encode_eq(0, 16, value);
            prop_assert_eq!(m.sat_count(f), 1);
        }

        #[test]
        fn prop_prefix_count(addr in any::<u32>(), len in 0u8..=32) {
            let mut m = BddManager::new(32);
            let f = m.encode_prefix(0, addr, len);
            prop_assert_eq!(m.sat_count(f), 1u128 << (32 - len));
        }
    }
}
