//! Satisfying-assignment counting and enumeration.

use crate::manager::{Bdd, BddManager};
use std::collections::HashMap;

impl BddManager {
    /// Number of satisfying assignments of `f` over all
    /// [`num_vars`](Self::num_vars) variables, as an exact `u128`.
    ///
    /// # Panics
    /// Panics if the count overflows `u128` (needs > 128 variables all
    /// free, which the 104+m bit packet space can hit only for degenerate
    /// inputs; callers for the packet space use
    /// [`sat_fraction`](Self::sat_fraction) instead).
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let mut memo = HashMap::new();
        let n = self.num_vars();
        self.count_rec(f.0, 0, n, &mut memo)
    }

    fn count_rec(&self, f: u32, from_var: u16, total: u16, memo: &mut HashMap<u32, u128>) -> u128 {
        // Count assignments of variables in [var(f), total), then scale by
        // the free variables between from_var and var(f).
        let var_of = |i: u32| -> u16 {
            if i <= 1 {
                total
            } else {
                self.nodes[i as usize].var
            }
        };
        let base = if f == 0 {
            0
        } else if f == 1 {
            1
        } else if let Some(&c) = memo.get(&f) {
            c
        } else {
            let n = self.nodes[f as usize];
            let lo = self.count_rec(n.lo, n.var + 1, total, memo);
            let hi = self.count_rec(n.hi, n.var + 1, total, memo);
            let c = lo + hi;
            memo.insert(f, c);
            c
        };
        let free = (var_of(f) - from_var) as u32;
        base << free
    }

    /// Fraction of the full assignment space satisfying `f`, as `f64`.
    /// Robust for very wide variable spaces.
    pub fn sat_fraction(&self, f: Bdd) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        return rec(self, f.0, &mut memo);

        fn rec(m: &BddManager, f: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            if f == 0 {
                return 0.0;
            }
            if f == 1 {
                return 1.0;
            }
            if let Some(&v) = memo.get(&f) {
                return v;
            }
            let n = m.nodes[f as usize];
            let v = 0.5 * rec(m, n.lo, memo) + 0.5 * rec(m, n.hi, memo);
            memo.insert(f, v);
            v
        }
    }

    /// Returns one satisfying assignment of `f` as a vector indexed by
    /// variable (don't-care variables are `false`), or `None` if
    /// unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f.is_false() {
            return None;
        }
        let mut assign = vec![false; self.num_vars() as usize];
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            if n.hi != 0 {
                assign[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assign)
    }

    /// Enumerates the satisfying cubes of `f`. Each cube is a vector of
    /// `(var, value)` decisions along a root-to-TRUE path; variables absent
    /// from a cube are don't-cares. Stops after `limit` cubes.
    pub fn sat_cubes(&self, f: Bdd, limit: usize) -> Vec<Vec<(u16, bool)>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.cubes_rec(f.0, &mut path, &mut out, limit);
        out
    }

    fn cubes_rec(
        &self,
        f: u32,
        path: &mut Vec<(u16, bool)>,
        out: &mut Vec<Vec<(u16, bool)>>,
        limit: usize,
    ) {
        if out.len() >= limit || f == 0 {
            return;
        }
        if f == 1 {
            out.push(path.clone());
            return;
        }
        let n = self.nodes[f as usize];
        path.push((n.var, false));
        self.cubes_rec(n.lo, path, out, limit);
        path.pop();
        path.push((n.var, true));
        self.cubes_rec(n.hi, path, out, limit);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_on_small_functions() {
        let mut m = BddManager::new(3);
        assert_eq!(m.sat_count(Bdd::FALSE), 0);
        assert_eq!(m.sat_count(Bdd::TRUE), 8);
        let a = m.var(0);
        assert_eq!(m.sat_count(a), 4);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2);
        let aob = m.or(a, b);
        assert_eq!(m.sat_count(aob), 6);
        let x = m.xor(a, b);
        assert_eq!(m.sat_count(x), 4);
    }

    #[test]
    fn count_handles_gaps_in_variable_order() {
        let mut m = BddManager::new(8);
        let a = m.var(3);
        let b = m.var(6);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 1 << 6);
    }

    #[test]
    fn fraction_matches_count() {
        let mut m = BddManager::new(10);
        let a = m.var(0);
        let b = m.var(5);
        let f = m.or(a, b);
        let frac = m.sat_fraction(f);
        let count = m.sat_count(f) as f64;
        assert!((frac - count / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let nb = m.nvar(1);
        let f = m.and(a, nb);
        let assign = m.any_sat(f).unwrap();
        assert!(m.eval(f, &assign));
        assert!(assign[0] && !assign[1]);
        assert_eq!(m.any_sat(Bdd::FALSE), None);
        assert_eq!(m.any_sat(Bdd::TRUE).unwrap(), vec![false; 4]);
    }

    #[test]
    fn cubes_cover_the_function() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let cubes = m.sat_cubes(f, 100);
        assert_eq!(cubes.len(), 2);
        // Rebuild from cubes and compare.
        let mut rebuilt = Bdd::FALSE;
        for cube in &cubes {
            let mut term = Bdd::TRUE;
            for &(v, val) in cube {
                let lit = if val { m.var(v) } else { m.nvar(v) };
                term = m.and(term, lit);
            }
            rebuilt = m.or(rebuilt, term);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn cube_limit_is_respected() {
        let mut m = BddManager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|v| m.var(v)).collect();
        let f = m.or_all(vars);
        assert_eq!(m.sat_cubes(f, 2).len(), 2);
    }
}
